// Allocation-regression tests for the zero-allocation epoch pipeline: the
// steady-state cached epoch (dense LR and sparse SVM) and the fused step
// kernel must not allocate. These guard the whole point of the decoded-row
// cache — a regression here silently reintroduces the decode-and-allocate
// pass per row per epoch that the cache exists to remove.
package bismarck_test

import (
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/experiments"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// TestEpochScanAllocs asserts that a full cached epoch of gradient steps
// allocates (almost) nothing, and that the reuse-scratch fallback stays
// within its small constant budget.
func TestEpochScanAllocs(t *testing.T) {
	cases, err := experiments.EpochScanCases(2000, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]float64{
		"dense-lr/cached/1w":   1, // acceptance bound: ≤1 alloc per epoch
		"sparse-svm/cached/1w": 1,
		"dense-lr/reuse/1w":    16, // one scratch + decode high-water growth
		"sparse-svm/reuse/1w":  16,
	}
	for name, budget := range budgets {
		c, err := experiments.FindEpochScanCase(cases, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil { // warm up scratch high-water marks
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%s: %.1f allocs per epoch, budget %.0f", name, allocs, budget)
		}
	}
}

// TestShardedEpochAllocs asserts the shared-nothing epoch workers are
// zero-alloc in steady state: all per-shard machinery (epoch sources,
// replicas, step closures) is built once, so a whole sharded epoch —
// thousands of rows — stays within a tiny constant budget that only covers
// goroutine spawn bookkeeping. Any per-row allocation would blow the
// budget by orders of magnitude.
func TestShardedEpochAllocs(t *testing.T) {
	cases, err := experiments.ShardedEpochCases(2000, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]float64{
		"dense-lr/sharded/1w":   2,
		"dense-lr/sharded/4w":   8,
		"sparse-svm/sharded/1w": 2,
		"sparse-svm/sharded/4w": 8,
	}
	for name, budget := range budgets {
		c, err := experiments.FindEpochScanCase(cases, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil { // warm up goroutine free lists
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%s: %.1f allocs per sharded epoch, budget %.0f", name, allocs, budget)
		}
	}
}

// TestStepAllocs asserts the per-tuple transition functions of the linear
// tasks are allocation-free on a dense model: the fused-kernel gain
// closures must stay on the stack.
func TestStepAllocs(t *testing.T) {
	dense := engine.Tuple{
		engine.I64(0),
		engine.DenseV(make(vector.Dense, 54)),
		engine.F64(1),
	}
	sparse := engine.Tuple{
		engine.I64(0),
		engine.SparseV(vector.NewSparse([]int32{3, 17, 40000}, []float64{1, -2, 3})),
		engine.F64(-1),
	}
	for _, c := range []struct {
		name string
		task core.Task
		tp   engine.Tuple
	}{
		{"LR/dense", tasks.NewLR(54), dense},
		{"LR/sparse", tasks.NewLR(41000), sparse},
		{"SVM/dense", tasks.NewSVM(54), dense},
		{"SVM/sparse", tasks.NewSVM(41000), sparse},
		{"Lasso/dense", tasks.NewLasso(54, 0.01), dense},
	} {
		m := core.NewDenseModel(c.task.Dim())
		if allocs := testing.AllocsPerRun(100, func() {
			c.task.Step(m, c.tp, 0.01)
		}); allocs != 0 {
			t.Errorf("%s: Step allocates %.1f per call, want 0", c.name, allocs)
		}
	}
}

// TestDotAxpyAllocs asserts the fused vector kernel itself is
// allocation-free, including through a capturing gain closure.
func TestDotAxpyAllocs(t *testing.T) {
	w, x := make(vector.Dense, 256), make(vector.Dense, 256)
	for i := range x {
		x[i] = float64(i)
	}
	alpha, y := 0.01, 1.0
	if allocs := testing.AllocsPerRun(100, func() {
		vector.DotAxpy(w, x, func(dot float64) float64 { return alpha * y * dot })
	}); allocs != 0 {
		t.Errorf("DotAxpy allocates %.1f per call, want 0", allocs)
	}
	sx := vector.NewSparse([]int32{1, 100, 200}, []float64{1, 2, 3})
	if allocs := testing.AllocsPerRun(100, func() {
		vector.DotAxpySparse(w, sx, func(dot float64) float64 { return alpha * dot })
	}); allocs != 0 {
		t.Errorf("DotAxpySparse allocates %.1f per call, want 0", allocs)
	}
}

// TestCachedPipelineConvergesLikePhysical is the end-to-end guard for the
// logical-shuffle path: the same LR problem trained through the cached
// pipeline and through the paper-faithful physical pipeline must both
// converge to models with comparable loss.
func TestCachedPipelineConvergesLikePhysical(t *testing.T) {
	run := func(physical bool) float64 {
		tbl := data.Forest(2000, 3)
		tr := &core.Trainer{
			Task: tasks.NewLR(54), Step: core.ConstantStep{A: 0.05},
			MaxEpochs: 8, Seed: 1, Order: ordering.ShuffleOnce{},
			Profile: engine.Profile{PhysicalReorder: physical},
		}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalLoss()
	}
	cached, physical := run(false), run(true)
	if cached <= 0 || physical <= 0 {
		t.Fatalf("degenerate losses: cached=%g physical=%g", cached, physical)
	}
	if ratio := cached / physical; ratio > 1.1 || ratio < 0.9 {
		t.Errorf("cached pipeline loss %g diverges from physical %g (ratio %.3f)",
			cached, physical, ratio)
	}
}
