// Top-level benchmarks: one per table/figure of the paper's evaluation
// (each runs the corresponding experiment harness at a reduced scale so
// `go test -bench=.` finishes in minutes), plus ablation benches for the
// design choices DESIGN.md calls out. The full-scale numbers come from
// `go run ./cmd/bench -exp all` and are recorded in EXPERIMENTS.md.
package bismarck_test

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"bismarck"
	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/experiments"
	"bismarck/internal/ordering"
	"bismarck/internal/parallel"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, Workers: 4, Budget: 5 * time.Second, Seed: 42}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1Datasets(b *testing.B)    { runExp(b, "table1") }
func BenchmarkFig5CATX(b *testing.B)          { runExp(b, "fig5") }
func BenchmarkTable2PureUDA(b *testing.B)     { runExp(b, "table2") }
func BenchmarkTable3SharedMem(b *testing.B)   { runExp(b, "table3") }
func BenchmarkFig7AEndToEnd(b *testing.B)     { runExp(b, "fig7a") }
func BenchmarkFig7BCRF(b *testing.B)          { runExp(b, "fig7b") }
func BenchmarkTable4Scalability(b *testing.B) { runExp(b, "table4") }
func BenchmarkFig8Ordering(b *testing.B)      { runExp(b, "fig8") }
func BenchmarkFig9AParallel(b *testing.B)     { runExp(b, "fig9a") }
func BenchmarkFig9BSpeedup(b *testing.B)      { runExp(b, "fig9b") }
func BenchmarkFig10AMRS(b *testing.B)         { runExp(b, "fig10a") }
func BenchmarkFig10BBuffers(b *testing.B)     { runExp(b, "fig10b") }

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkStepRules measures the cost/effect of the three step-size rules
// on one LR epoch trajectory (fixed epochs, loss not evaluated).
func BenchmarkStepRules(b *testing.B) {
	tbl := data.Forest(5000, 1)
	for _, c := range []struct {
		name string
		rule bismarck.StepRule
	}{
		{"Constant", bismarck.ConstantStep{A: 0.05}},
		{"Diminishing", bismarck.DiminishingStep{A0: 0.05}},
		{"Geometric", bismarck.GeometricStep{A0: 0.05, Rho: 0.9}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := &bismarck.Trainer{Task: bismarck.NewLR(54), Step: c.rule,
					MaxEpochs: 5, SkipLoss: true, Seed: 1}
				if _, err := tr.Run(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUDAPlans compares the pure-UDA (state merge) plan against the
// shared-memory plan for the same epoch of work.
func BenchmarkUDAPlans(b *testing.B) {
	tbl := data.Forest(20000, 2)
	if err := tbl.Flush(); err != nil {
		b.Fatal(err)
	}
	task := tasks.NewLR(54)
	b.Run("PureUDA4seg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg := &core.IGDAggregate{Task: task, Alpha: 0.01, Init: core.InitialModel(task, 1)}
			if _, err := engine.RunUDA(tbl, agg, engine.Profile{Segments: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SharedMem4w", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := parallel.NewAtomicModel(task.Dim(), false)
			err := engine.RunSharedScan(tbl, 4, engine.Profile{}, func(_ int, tp engine.Tuple) error {
				task.Step(m, tp, 0.01)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAIGvsNoLock isolates the per-component CAS cost of AIG against
// NoLock's racy adds on a realistic sparse update stream.
func BenchmarkAIGvsNoLock(b *testing.B) {
	tbl := data.DBLife(4000, 41000, 12, 3)
	if err := tbl.Flush(); err != nil {
		b.Fatal(err)
	}
	task := tasks.NewLR(41000)
	for _, mode := range []parallel.Mode{parallel.AIG, parallel.NoLock, parallel.Lock} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := &parallel.Trainer{Task: task, Step: bismarck.ConstantStep{A: 0.05},
					MaxEpochs: 1, Workers: 4, Mode: mode, SkipLoss: true, Seed: 1}
				if _, err := tr.Run(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShuffleCost measures the ORDER BY RANDOM() table rewrite that
// ShuffleAlways pays per epoch (the heart of the §3.2 trade-off).
func BenchmarkShuffleCost(b *testing.B) {
	b.Run("Shuffle16k", func(b *testing.B) {
		tbl := data.DBLife(16000, 41000, 12, 5)
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tbl.Shuffle(rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GradientEpoch16k", func(b *testing.B) {
		tbl := data.DBLife(16000, 41000, 12, 5)
		task := tasks.NewLR(41000)
		m := core.NewDenseModel(task.Dim())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := tbl.Scan(func(tp engine.Tuple) error {
				task.Step(m, tp, 0.01)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOrderingStrategies runs three epochs under each strategy,
// capturing Prepare (shuffle) costs in context. PhysicalReorder pins the
// paper-faithful on-disk rewrite — the cost this bench exists to show.
func BenchmarkOrderingStrategies(b *testing.B) {
	for _, strat := range []core.OrderStrategy{ordering.Clustered{}, ordering.ShuffleOnce{}, ordering.ShuffleAlways{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			tbl := data.DBLife(8000, 41000, 12, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := &bismarck.Trainer{Task: bismarck.NewLR(41000), Step: bismarck.DefaultStep(0.2),
					MaxEpochs: 3, SkipLoss: true, Order: strat, Seed: 1,
					Profile: engine.Profile{PhysicalReorder: true}}
				if _, err := tr.Run(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderingLogical is the cached-pipeline counterpart of
// BenchmarkOrderingStrategies: the same three epochs, with shuffles
// expressed as permutations of the decoded-row cache's index — the
// ablation DESIGN.md §5 calls "logical vs physical reorder".
func BenchmarkOrderingLogical(b *testing.B) {
	for _, strat := range []core.OrderStrategy{ordering.ShuffleOnce{}, ordering.ShuffleAlways{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			tbl := data.DBLife(8000, 41000, 12, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := &bismarck.Trainer{Task: bismarck.NewLR(41000), Step: bismarck.DefaultStep(0.2),
					MaxEpochs: 3, SkipLoss: true, Order: strat, Seed: 1}
				if _, err := tr.Run(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEpochScan is the epoch pipeline's decode-path ablation: one full
// pass of gradient steps per op over dense LR and sparse SVM workloads,
// comparing the seed decode-per-epoch path against reusable-scratch decode
// and the materialized columnar cache, sequentially and with 4 shared-
// memory workers. The cached dense-LR steady state must hold ≤1 alloc/op
// (see TestEpochScanAllocs) and ≥2x decode's rows/sec.
func BenchmarkEpochScan(b *testing.B) {
	cases, err := experiments.EpochScanCases(
		experiments.EpochScanDenseRows, experiments.EpochScanSparseRows, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.Rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkShardedEpoch is the shared-nothing scaling family: one op = one
// sharded epoch (K workers over per-shard row caches, then one
// row-weighted model average) at K = 1, 2, 4 over dense LR and sparse SVM.
// rows/s should scale with K on a multicore machine, and the steady state
// must stay zero-alloc per row (see TestShardedEpochAllocs); the K=1 case
// is the mode's overhead floor against BenchmarkEpochScan's cached/1w.
func BenchmarkShardedEpoch(b *testing.B) {
	cases, err := experiments.ShardedEpochCases(
		experiments.EpochScanDenseRows, experiments.EpochScanSparseRows, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.Rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkDotAxpy isolates the fused step kernel against the separate
// dot-then-axpy calls it replaced.
func BenchmarkDotAxpy(b *testing.B) {
	const d = 1024
	w, x := make(vector.Dense, d), make(vector.Dense, d)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}
	b.Run("Fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vector.DotAxpy(w, x, func(dot float64) float64 { return 1e-9 * dot })
		}
	})
	b.Run("Split", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dot := vector.Dot(w, x)
			vector.Axpy(w, x, 1e-9*dot)
		}
	})
}
