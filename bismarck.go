// Package bismarck is a Go reproduction of "Towards a Unified Architecture
// for in-RDBMS Analytics" (Feng, Kumar, Recht, Ré — SIGMOD 2012): one
// architecture that runs many analytics tasks as incremental gradient
// descent (IGD) inside a database engine's user-defined-aggregate (UDA)
// machinery.
//
// This root package is the public facade over the implementation packages:
//
//   - storage engine: heap files, catalog, scans, UDA executors
//   - the IGD trainer, step rules, proximal operators
//   - tasks: LR, SVM, least squares, LMF, CRF, Kalman, portfolio
//   - ordering strategies (shuffle-once / shuffle-always / clustered)
//   - parallel schemes (pure-UDA averaging, Lock, AIG, NoLock/Hogwild)
//   - reservoir subsampling and multiplexed reservoir sampling (MRS)
//   - baselines (IRLS, batch GD, ALS) and synthetic dataset generators
//
// Quick start:
//
//	tbl := bismarck.NewMemTable("train", bismarck.DenseExampleSchema)
//	// ... insert (id, vec, label) tuples ...
//	task := bismarck.NewLR(dim)
//	res, err := (&bismarck.Trainer{
//	    Task: task, Step: bismarck.DefaultStep(0.1),
//	    MaxEpochs: 20, Order: bismarck.ShuffleOnce{},
//	}).Run(tbl)
//
// See examples/ for complete programs and cmd/bench for the harness that
// regenerates every table and figure of the paper's evaluation.
package bismarck

import (
	"bismarck/internal/baselines"
	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/parallel"
	"bismarck/internal/sampling"
	"bismarck/internal/server"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"

	// Side effect: the built-in tasks self-register with the statement
	// layer's registry.
	_ "bismarck/internal/tasks/register"
)

// --- vectors ---

type (
	// Dense is a dense float64 feature/model vector.
	Dense = vector.Dense
	// Sparse is a sparse vector in sorted coordinate form.
	Sparse = vector.Sparse
)

// NewSparse builds a sparse vector from index/value pairs.
func NewSparse(idx []int32, val []float64) Sparse { return vector.NewSparse(idx, val) }

// --- storage engine ---

type (
	// Catalog is a registry of tables, in-memory or file-backed.
	Catalog = engine.Catalog
	// Table is a heap of typed tuples with scan, shuffle, and cluster ops.
	Table = engine.Table
	// Schema describes a table's columns.
	Schema = engine.Schema
	// Column is one column of a schema.
	Column = engine.Column
	// Tuple is one typed row.
	Tuple = engine.Tuple
	// Value is one typed cell.
	Value = engine.Value
	// UDA is the initialize/transition/terminate aggregate contract.
	UDA = engine.UDA
	// Profile emulates a hosting engine's execution characteristics.
	Profile = engine.Profile
	// SharedMemory mimics the RDBMS shared-memory facility.
	SharedMemory = engine.SharedMemory
)

// Column type tags.
const (
	TInt64     = engine.TInt64
	TFloat64   = engine.TFloat64
	TString    = engine.TString
	TDenseVec  = engine.TDenseVec
	TSparseVec = engine.TSparseVec
	TInt32Vec  = engine.TInt32Vec
)

// Value constructors.
var (
	I64     = engine.I64
	F64     = engine.F64
	Str     = engine.Str
	DenseV  = engine.DenseV
	SparseV = engine.SparseV
	IntsV   = engine.IntsV
)

// NewMemTable creates an in-memory table.
func NewMemTable(name string, schema Schema) *Table { return engine.NewMemTable(name, schema) }

// NewCatalog creates an in-memory catalog.
func NewCatalog() *Catalog { return engine.NewCatalog() }

// OpenFileCatalog opens (or initializes) a file-backed catalog directory.
func OpenFileCatalog(dir string, poolPages int) (*Catalog, error) {
	return engine.OpenFileCatalog(dir, poolPages)
}

// Engine profiles from the paper's evaluation.
var (
	ProfilePostgres = engine.ProfilePostgres
	ProfileDBMSA    = engine.ProfileDBMSA
	ProfileDBMSB    = engine.ProfileDBMSB
)

// --- the Bismarck core ---

type (
	// Task is one analytics technique: a per-tuple gradient step + loss.
	Task = core.Task
	// Model is the mutable aggregation state a Step updates.
	Model = core.Model
	// Trainer is the sequential Bismarck epoch loop.
	Trainer = core.Trainer
	// Result reports a finished training run.
	Result = core.Result
	// StepRule produces per-epoch step sizes.
	StepRule = core.StepRule
	// ConstantStep is a fixed step size.
	ConstantStep = core.ConstantStep
	// DiminishingStep is the divergent-series rule A0/(1+e)^p.
	DiminishingStep = core.DiminishingStep
	// GeometricStep is A0·ρ^e.
	GeometricStep = core.GeometricStep
	// OrderStrategy prepares the table order before each epoch.
	OrderStrategy = core.OrderStrategy
	// IGDAggregate is IGD expressed as a standard UDA.
	IGDAggregate = core.IGDAggregate
)

// DefaultStep is a mildly decaying geometric rule.
func DefaultStep(a0 float64) StepRule { return core.DefaultStep(a0) }

// TotalLoss evaluates a task's objective over a table.
func TotalLoss(t Task, w Dense, tbl *Table) (float64, error) { return core.TotalLoss(t, w, tbl) }

// TuneStep grid-searches initial step sizes (best first).
var TuneStep = core.TuneStep

// DefaultStepGrid is a decade-spanning step-size candidate grid.
var DefaultStepGrid = core.DefaultStepGrid

// Proximal operators (Appendix A).
var (
	ProxL1         = core.ProxL1
	ProxL2         = core.ProxL2
	ProjectSimplex = core.ProjectSimplex
	ProjectBall2   = core.ProjectBall2
)

// --- tasks ---

// Standard schemas for the built-in tasks.
var (
	DenseExampleSchema  = tasks.DenseExampleSchema
	SparseExampleSchema = tasks.SparseExampleSchema
	RatingSchema        = tasks.RatingSchema
	SeqSchema           = tasks.SeqSchema
	SeriesSchema        = tasks.SeriesSchema
	ReturnSchema        = tasks.ReturnSchema
)

type (
	// LR is logistic regression.
	LR = tasks.LR
	// SVM is a linear support vector machine.
	SVM = tasks.SVM
	// LeastSquares is plain least squares (the CA-TX model).
	LeastSquares = tasks.LeastSquares
	// LMF is low-rank matrix factorization.
	LMF = tasks.LMF
	// CRF is a linear-chain conditional random field.
	CRF = tasks.CRF
	// Kalman fits noisy time series.
	Kalman = tasks.Kalman
	// Portfolio optimizes a simplex-constrained portfolio.
	Portfolio = tasks.Portfolio
	// Lasso is L1-regularized least squares.
	Lasso = tasks.Lasso
	// Softmax is multiclass logistic regression.
	Softmax = tasks.Softmax
	// MaxCut is the low-rank relaxation of MAX-CUT (the §5 extension).
	MaxCut = tasks.MaxCut
	// BinaryMetrics summarizes binary classification quality.
	BinaryMetrics = tasks.BinaryMetrics
)

// Task constructors.
var (
	NewLR           = tasks.NewLR
	NewSVM          = tasks.NewSVM
	NewLeastSquares = tasks.NewLeastSquares
	NewLMF          = tasks.NewLMF
	NewCRF          = tasks.NewCRF
	NewKalman       = tasks.NewKalman
	NewPortfolio    = tasks.NewPortfolio
	NewLasso        = tasks.NewLasso
	NewSoftmax      = tasks.NewSoftmax
	NewMaxCut       = tasks.NewMaxCut
	// EvaluateBinary scores a binary classifier over a labeled table.
	EvaluateBinary = tasks.EvaluateBinary
)

// --- ordering strategies (§3.2) ---

type (
	// ShuffleOnce shuffles before the first epoch only (Bismarck default).
	ShuffleOnce = ordering.ShuffleOnce
	// ShuffleAlways reshuffles before every epoch.
	ShuffleAlways = ordering.ShuffleAlways
	// Clustered trains on the stored order.
	Clustered = ordering.Clustered
)

// --- parallelism (§3.3) ---

type (
	// ParallelTrainer runs the epoch loop with a parallel IGD aggregate.
	ParallelTrainer = parallel.Trainer
	// ParallelMode selects PureUDA / Lock / AIG / NoLock.
	ParallelMode = parallel.Mode
	// AtomicModel is the CAS/racy shared model for AIG and NoLock.
	AtomicModel = parallel.AtomicModel
)

// Parallelization schemes.
const (
	PureUDA = parallel.PureUDA
	Lock    = parallel.Lock
	AIG     = parallel.AIG
	NoLock  = parallel.NoLock
)

// --- sampling (§3.4) ---

type (
	// Reservoir is a uniform without-replacement sampler.
	Reservoir = sampling.Reservoir
	// SubsampleTrainer trains on one reservoir sample only.
	SubsampleTrainer = sampling.SubsampleTrainer
	// MRSTrainer is multiplexed reservoir sampling.
	MRSTrainer = sampling.MRSTrainer
)

// NewReservoir returns a reservoir of the given capacity.
var NewReservoir = sampling.NewReservoir

// --- the declarative statement layer (§2.1) ---

type (
	// Statement is the parsed AST of one declarative statement
	// (SELECT ... TO TRAIN/PREDICT/EVALUATE, or a legacy SELECT Func(...)).
	Statement = spec.Statement
	// TaskSpec is one task's registration with the statement layer:
	// constructor, canonical data layout, and tunable WITH-parameters.
	TaskSpec = spec.TaskSpec
	// ParamSpec declares one tunable WITH parameter of a task.
	ParamSpec = spec.ParamSpec
	// Params holds bound, type-checked WITH parameters.
	Params = spec.Params
	// Session executes declarative statements against a catalog.
	Session = sqlish.Session
)

// ParseStatement parses one statement of the declarative grammar.
func ParseStatement(src string) (*Statement, error) { return spec.Parse(src) }

// RegisterTask adds a task to the statement layer's registry, making it
// reachable as TO TRAIN <name>; the 10 built-in tasks self-register.
func RegisterTask(ts TaskSpec) { spec.Register(ts) }

// LookupTask resolves a registered task name or alias.
func LookupTask(name string) (*TaskSpec, error) { return spec.Lookup(name) }

// RegisteredTasks lists all registered task specs sorted by name.
func RegisteredTasks() []*TaskSpec { return spec.Tasks() }

// --- the multi-session server layer ---

type (
	// ServerManager shares one catalog across concurrent client sessions
	// behind per-model RW locks, and schedules TRAIN ... ASYNC jobs.
	ServerManager = server.Manager
	// ServerOptions tunes a ServerManager (worker pool, session defaults).
	ServerOptions = server.Options
	// TCPServer serves a ServerManager over the bismarckd wire protocol.
	TCPServer = server.TCPServer
	// ServerClient is a wire-protocol client for a running bismarckd.
	ServerClient = server.Client
)

// NewServerManager wraps a catalog for multi-session use.
func NewServerManager(cat *Catalog, opts ServerOptions) *ServerManager {
	return server.NewManager(cat, opts)
}

// NewTCPServer wraps a manager for serving connections.
func NewTCPServer(m *ServerManager) *TCPServer { return server.NewTCPServer(m) }

// DialServer connects to a bismarckd address.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }

// --- baselines ---

type (
	// IRLS is Newton-method logistic regression (MADlib-style).
	IRLS = baselines.IRLS
	// BatchGD is full-gradient descent over any task.
	BatchGD = baselines.BatchGD
	// ALS is alternating least squares matrix factorization.
	ALS = baselines.ALS
)
