// Command bench regenerates the paper's tables and figures, and emits the
// machine-readable perf trajectory of the epoch pipeline.
//
// Usage:
//
//	bench -exp all                 # run every experiment at default scale
//	bench -exp fig8 -scale 0.25    # one experiment on smaller data
//	bench -list                    # list experiment ids
//	bench -bench-json BENCH_2.json # epoch-scan microbenchmarks as JSON
//
// The full-scale table/figure numbers are recorded in EXPERIMENTS.md; the
// -bench-json output is the per-PR perf trajectory (ns/op, allocs/op,
// rows/sec for the epoch-scan decode paths) that EXPERIMENTS.md tracks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"bismarck/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id to run, or 'all'")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = repo defaults)")
		workers   = flag.Int("workers", 8, "max threads for the parallel experiments")
		budget    = flag.Duration("budget", 15*time.Second, "per-tool budget for the Table 4 grid")
		seed      = flag.Int64("seed", 42, "random seed for data generation and training")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		benchJSON = flag.String("bench-json", "", "write epoch-scan microbenchmark results to this JSON file and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Budget: *budget, Seed: *seed}
	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %s)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// benchEntry is one epoch-scan measurement in the perf-trajectory file.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// servingEntry is one serving-plane measurement: predictions/sec through
// serve.Plane at a given batch shape and client concurrency.
type servingEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	PredsPerSec float64 `json:"preds_per_sec"`
}

type benchFile struct {
	Generated string         `json:"generated"`
	Note      string         `json:"note"`
	Benches   []benchEntry   `json:"benches"`
	Serving   []servingEntry `json:"serving"`
	Speedups  struct {
		DenseLRCachedVsDecode    float64 `json:"dense_lr_cached_vs_decode"`
		SparseSVMCachedVsDecode  float64 `json:"sparse_svm_cached_vs_decode"`
		DenseLRSharded4wVs1w     float64 `json:"dense_lr_sharded_4w_vs_1w"`
		SparseSVMSharded4wVs1w   float64 `json:"sparse_svm_sharded_4w_vs_1w"`
		ServeBatch8VsPoint1c     float64 `json:"serve_batch8_vs_point_1c"`
		ServePoint4cVs1c         float64 `json:"serve_point_4c_vs_1c"`
		ServeWireBinVsTextPoint  float64 `json:"serve_wire_bin_vs_text_point"`
		ServeWireBinVsTextBatch8 float64 `json:"serve_wire_bin_vs_text_batch8"`
	} `json:"speedups"`
}

// writeBenchJSON runs the epoch-scan family through testing.Benchmark and
// writes the machine-readable trajectory file.
func writeBenchJSON(path string, seed int64) error {
	cases, err := experiments.EpochScanCases(
		experiments.EpochScanDenseRows, experiments.EpochScanSparseRows, seed)
	if err != nil {
		return err
	}
	sharded, err := experiments.ShardedEpochCases(
		experiments.EpochScanDenseRows, experiments.EpochScanSparseRows, seed)
	if err != nil {
		return err
	}
	cases = append(cases, sharded...)
	out := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "one op = one full epoch of gradient steps; decode = per-row " +
			"DecodeTuple (seed path), reuse = reusable-scratch decode, cached = " +
			"materialized columnar row cache, sharded/Kw = K shared-nothing " +
			"shard workers merged by row-weighted model averaging; serving " +
			"entries: preds/sec through the point-PREDICT plane (hot snapshot " +
			"cache + admission gate) at Nc concurrent clients; wire-text/-bin " +
			"entries go through a real TCP server with pipelined frames in the " +
			"text and negotiated binary encodings",
	}
	rows := map[string]float64{}
	for _, c := range cases {
		c := c
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return fmt.Errorf("%s: %w", c.Name, runErr)
		}
		ns := float64(r.NsPerOp())
		rps := float64(c.Rows) / (ns / 1e9)
		rows[c.Name] = rps
		out.Benches = append(out.Benches, benchEntry{
			Name:        c.Name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			RowsPerSec:  rps,
		})
		fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %14.0f rows/s\n",
			c.Name, ns, r.AllocsPerOp(), rps)
	}
	if d := rows["dense-lr/decode/1w"]; d > 0 {
		out.Speedups.DenseLRCachedVsDecode = rows["dense-lr/cached/1w"] / d
	}
	if d := rows["sparse-svm/decode/1w"]; d > 0 {
		out.Speedups.SparseSVMCachedVsDecode = rows["sparse-svm/cached/1w"] / d
	}
	if d := rows["dense-lr/sharded/1w"]; d > 0 {
		out.Speedups.DenseLRSharded4wVs1w = rows["dense-lr/sharded/4w"] / d
	}
	if d := rows["sparse-svm/sharded/1w"]; d > 0 {
		out.Speedups.SparseSVMSharded4wVs1w = rows["sparse-svm/sharded/4w"] / d
	}

	servingCases, err := experiments.ServingCases(seed)
	if err != nil {
		return err
	}
	wireCases, wireClose, err := experiments.ServingWireCases(seed)
	if err != nil {
		return err
	}
	defer wireClose()
	servingCases = append(servingCases, wireCases...)
	preds := map[string]float64{}
	for _, c := range servingCases {
		c := c
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.Run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return fmt.Errorf("%s: %w", c.Name, runErr)
		}
		ns := float64(r.NsPerOp())
		pps := float64(c.Preds) / (ns / 1e9)
		preds[c.Name] = pps
		out.Serving = append(out.Serving, servingEntry{
			Name: c.Name, NsPerOp: ns, PredsPerSec: pps,
		})
		fmt.Printf("%-24s %12.0f ns/op %35.0f preds/s\n", c.Name, ns, pps)
	}
	if d := preds["serve-lr/point/1c"]; d > 0 {
		out.Speedups.ServeBatch8VsPoint1c = preds["serve-lr/batch8/1c"] / d
		out.Speedups.ServePoint4cVs1c = preds["serve-lr/point/4c"] / d
	}
	if d := preds["wire-text/point/1c"]; d > 0 {
		out.Speedups.ServeWireBinVsTextPoint = preds["wire-bin/point/1c"] / d
	}
	if d := preds["wire-text/batch8/1c"]; d > 0 {
		out.Speedups.ServeWireBinVsTextBatch8 = preds["wire-bin/batch8/1c"] / d
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
