// Command bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bench -exp all                 # run every experiment at default scale
//	bench -exp fig8 -scale 0.25    # one experiment on smaller data
//	bench -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bismarck/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = repo defaults)")
		workers = flag.Int("workers", 8, "max threads for the parallel experiments")
		budget  = flag.Duration("budget", 15*time.Second, "per-tool budget for the Table 4 grid")
		seed    = flag.Int64("seed", 42, "random seed for data generation and training")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Budget: *budget, Seed: *seed}
	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %s)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
