// Command bismarck is the declarative front end of §2.1: a REPL (or
// one-shot runner) for the SQLFlow-style statement grammar, executed
// against a file catalog created with the datagen command.
//
//	bismarck -data ./db "SELECT vec, label FROM papers TO TRAIN svm WITH alpha=0.1 INTO myModel"
//	bismarck -data ./db "SELECT * FROM papers TO PREDICT USING myModel"
//	bismarck -data ./db "PREDICT (0.5, 1.25) USING myModel"   # inline scoring, no table
//	bismarck -data ./db            # interactive REPL; statements end with ';'
//	bismarck -connect 127.0.0.1:7077   # client for a running bismarckd
//
// With -connect the catalog lives in the daemon: statements (including the
// async-job grammar — TRAIN ... ASYNC, SHOW JOBS, WAIT JOB, CANCEL JOB)
// are sent over the wire protocol and responses are printed as they
// arrive.
//
// The legacy MADlib-style calls (SELECT SVMTrain('m','t','vec','label'))
// keep working. SHOW TASKS lists every registered task and its WITH
// parameters; SHOW TABLES lists the catalog.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"bismarck/internal/engine"
	"bismarck/internal/serve"
	"bismarck/internal/server"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

func main() {
	var (
		dataDir    = flag.String("data", "./bismarck-data", "catalog directory")
		connect    = flag.String("connect", "", "bismarckd address; statements run remotely instead of on -data")
		epochs     = flag.Int("epochs", 0, "default training epochs when a statement sets none (0 = 20)")
		alpha      = flag.Float64("alpha", 0, "default initial step size when a statement sets none (0 = task preference)")
		serveCache = flag.Bool("serve-cache", true, "score inline PREDICT (...) USING m from a hot-model cache instead of reloading the model per statement")
	)
	flag.Parse()

	if *connect != "" {
		// The local-only flags would be silently meaningless remotely —
		// session defaults live with the daemon (bismarckd -epochs/-alpha),
		// and so does the serving plane the daemon-side cache lives in
		// (bismarckd -serve-inflight/-serve-queue).
		var misused []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "data", "epochs", "alpha", "serve-cache":
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			fmt.Fprintf(os.Stderr, "bismarck: %s only apply locally; with -connect set them on the daemon (bismarckd flags)\n",
				strings.Join(misused, ", "))
			os.Exit(2)
		}
		os.Exit(runRemote(*connect, flag.Args()))
	}

	cat, err := engine.OpenFileCatalog(*dataDir, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
		os.Exit(1)
	}

	sess := &sqlish.Session{Cat: cat, Out: os.Stdout, Epochs: *epochs, Alpha: *alpha}
	// The local serving plane answers inline point-PREDICT from cached
	// snapshots — repeated scoring in a REPL stops reloading the model
	// every statement. No Guard: this process owns the catalog.
	var plane *serve.Plane
	if *serveCache {
		plane = serve.New(cat, nil, serve.Options{})
	}

	status := 0
	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			for _, stmt := range spec.SplitStatements(arg) {
				if err := execOne(sess, plane, stmt); err != nil {
					fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
					status = 1
					break
				}
			}
			if status != 0 {
				break
			}
		}
	} else {
		repl(sess, plane)
	}
	// Discard any in-flight shadow generation a failed statement left
	// registered, then save even after a failed statement: earlier
	// statements in the same invocation may have created tables that must
	// reach catalog.json.
	if err := cat.DiscardShadows(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: discarding in-flight shadows: %v\n", err)
	}
	if err := cat.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: saving catalog: %v\n", err)
		status = 1
	}
	if err := cat.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: closing catalog: %v\n", err)
		status = 1
	}
	os.Exit(status)
}

// repl runs the local interactive loop against the in-process session.
func repl(sess *sqlish.Session, plane *serve.Plane) {
	fmt.Println(`bismarck> statements end with ';'. Try SHOW TASKS; or SHOW TABLES; (Ctrl-D quits)`)
	statementLoop(func(text string) { execAll(sess, plane, text) })
}

// statementLoop reads statements from stdin, accumulating lines until a
// statement is terminated with ';' (a lone blank line also submits), and
// hands each completed batch to exec. Both the local and the -connect
// REPL run through it, so EOF flushing (don't drop a final statement
// missing its ';') and scanner-error reporting behave identically.
func statementLoop(exec func(text string)) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	var term spec.TermScanner
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("bismarck> ")
		} else {
			fmt.Print("     ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && trimmed == "":
			// skip leading blank lines
		case buf.Len() == 0 && (strings.EqualFold(trimmed, "help") || trimmed == "\\h"):
			fmt.Println("statements:")
			fmt.Println("  SELECT cols FROM t [WHERE ...] TO TRAIN task [WITH k=v,...] [COLUMN ...] [LABEL c] INTO model [ASYNC];")
			fmt.Println("  SELECT cols FROM t TO PREDICT [WITH threshold=x] [INTO out] USING model;")
			fmt.Println("  SELECT cols FROM t TO EVALUATE USING model;")
			fmt.Println("  PREDICT (v1, v2, ...) USING model;            -- inline scoring, no table")
			fmt.Println("  PREDICT VALUES (...), (...) USING model;      -- batched, one model generation")
			fmt.Println("  SHOW TASKS;  SHOW TABLES;  SHOW MODELS;  SHOW SHARDS t [k];")
			fmt.Println("  SHOW JOBS;  WAIT JOB n;  CANCEL JOB n;    (with -connect)")
			fmt.Println("  SHOW SERVING;                             -- serving-plane gate + per-model hits/fills/sheds")
			fmt.Println("  CHECK TABLE t;  SHOW SCRUB;               -- verify page checksums / list quarantined pages")
			fmt.Println("  (WITH degraded=true skips quarantined pages in source scans, reporting rows skipped)")
			fmt.Println("  (SHOW TASKS marks tasks scorable by inline PREDICT with [point])")
		default:
			buf.WriteString(line)
			buf.WriteByte('\n')
			term.Write(line)
			term.Write("\n")
			// Submit on a real terminator only — a ';' inside an open
			// string literal or behind a -- comment is payload, and the
			// incremental scanner knows the difference. A blank line still
			// force-submits as an escape hatch.
			if term.Terminated() || trimmed == "" {
				text := buf.String()
				buf.Reset()
				term.Reset()
				exec(text)
			}
		}
		prompt()
	}
	if err := sc.Err(); err != nil {
		// A scanner error may have truncated the buffered statement —
		// report it rather than executing a partial statement.
		fmt.Fprintf(os.Stderr, "error: reading input: %v\n", err)
	} else if strings.TrimSpace(buf.String()) != "" {
		// Don't silently drop a final statement missing its ';' at EOF.
		exec(buf.String())
	}
	fmt.Println()
}

// execAll splits the buffered text into ';'-terminated statements
// (respecting quoted strings and -- comments) and executes each.
func execAll(sess *sqlish.Session, plane *serve.Plane, text string) {
	for _, stmt := range spec.SplitStatements(text) {
		if err := execOne(sess, plane, stmt); err != nil {
			// A typed unknown-model error is a user mistake, not an engine
			// failure: render it without the package prefix.
			var ume *sqlish.UnknownModelError
			if errors.As(err, &ume) {
				fmt.Fprintf(os.Stderr, "%s\n", strings.TrimPrefix(err.Error(), "sqlish: "))
				continue
			}
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// execOne runs a single statement: inline point-PREDICT through the local
// serving plane when -serve-cache is on (hot snapshots, generation-
// checked against the catalog), everything else through the session.
func execOne(sess *sqlish.Session, plane *serve.Plane, stmt string) error {
	st, err := spec.Parse(stmt)
	if err != nil {
		return err
	}
	if st.Kind == spec.KindPointPredict && plane != nil {
		scores := make([]float64, len(st.Points))
		if _, err := plane.Predict(st.Model, st.Points, scores); err != nil {
			return err
		}
		for _, v := range scores {
			fmt.Fprintf(sess.Out, "%.6g\n", v)
		}
		return nil
	}
	if st.Kind == spec.KindShowServing && plane != nil {
		gs, models := plane.Stats()
		fmt.Fprintf(sess.Out, "gate inflight=%d/%d queued=%d/%d models=%d\n",
			gs.Inflight, gs.InflightCap, gs.Queued, gs.QueueCap, gs.Models)
		for _, ms := range models {
			fmt.Fprintf(sess.Out, "model %-12s hits=%-6d fills=%-4d sheds=%-4d queued=%-3d retry_after_ms=%d\n",
				ms.Model, ms.Hits, ms.Fills, ms.Sheds, ms.Queued, ms.RetryAfterMS)
		}
		return nil
	}
	return sess.Run(st)
}

// runRemote speaks the wire protocol to a bismarckd. With args each is
// split into statements and run (first failure stops, like the local
// one-shot mode); without args it is a remote REPL. Splitting client-side
// matters for framing: the server answers once per statement, and
// Client.Exec reads exactly one response, so the stream stays in sync
// only when exactly one statement goes out per Exec.
func runRemote(addr string, args []string) int {
	c, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
		return 1
	}
	defer c.Close()

	exec := func(stmt string) bool {
		body, err := c.Exec(stmt)
		fmt.Print(body)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return false
		}
		return true
	}

	if len(args) > 0 {
		for _, arg := range args {
			for _, stmt := range spec.SplitStatements(arg) {
				if !exec(stmt) {
					return 1
				}
			}
		}
		return 0
	}

	fmt.Printf("bismarck> connected to %s; statements end with ';' (Ctrl-D quits)\n", addr)
	statementLoop(func(text string) {
		for _, stmt := range spec.SplitStatements(text) {
			exec(stmt)
		}
	})
	return 0
}
