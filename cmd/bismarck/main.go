// Command bismarck is the MADlib-style front end of §2.1: it executes
// statements like
//
//	bismarck -data ./db "SELECT SVMTrain('myModel', 'papers', 'vec', 'label')"
//	bismarck -data ./db "SELECT Predict('myModel', 'papers', 'vec')"
//
// against a file catalog created with the datagen command. Supported
// functions: LRTrain, SVMTrain, LMFTrain, CRFTrain, Predict, Tables.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"bismarck/internal/engine"
	"bismarck/internal/sqlish"
)

func main() {
	var (
		dataDir = flag.String("data", "./bismarck-data", "catalog directory")
		epochs  = flag.Int("epochs", 20, "training epochs")
		alpha   = flag.Float64("alpha", 0.1, "initial step size")
	)
	flag.Parse()

	cat, err := engine.OpenFileCatalog(*dataDir, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
		os.Exit(1)
	}
	defer cat.Close()

	sess := &sqlish.Session{Cat: cat, Out: os.Stdout, Epochs: *epochs, Alpha: *alpha}

	runOne := func(stmt string) {
		if err := sess.Exec(stmt); err != nil {
			fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
			os.Exit(1)
		}
	}

	if flag.NArg() > 0 {
		for _, stmt := range flag.Args() {
			runOne(stmt)
		}
	} else {
		// REPL over stdin.
		sc := bufio.NewScanner(os.Stdin)
		fmt.Println("bismarck> enter statements, one per line (Ctrl-D to quit)")
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			if err := sess.Exec(line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
	}
	if err := cat.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: saving catalog: %v\n", err)
		os.Exit(1)
	}
}
