// Command bismarck is the declarative front end of §2.1: a REPL (or
// one-shot runner) for the SQLFlow-style statement grammar, executed
// against a file catalog created with the datagen command.
//
//	bismarck -data ./db "SELECT vec, label FROM papers TO TRAIN svm WITH alpha=0.1 INTO myModel"
//	bismarck -data ./db "SELECT * FROM papers TO PREDICT USING myModel"
//	bismarck -data ./db            # interactive REPL; statements end with ';'
//
// The legacy MADlib-style calls (SELECT SVMTrain('m','t','vec','label'))
// keep working. SHOW TASKS lists every registered task and its WITH
// parameters; SHOW TABLES lists the catalog.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

func main() {
	var (
		dataDir = flag.String("data", "./bismarck-data", "catalog directory")
		epochs  = flag.Int("epochs", 0, "default training epochs when a statement sets none (0 = 20)")
		alpha   = flag.Float64("alpha", 0, "default initial step size when a statement sets none (0 = task preference)")
	)
	flag.Parse()

	cat, err := engine.OpenFileCatalog(*dataDir, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
		os.Exit(1)
	}

	sess := &sqlish.Session{Cat: cat, Out: os.Stdout, Epochs: *epochs, Alpha: *alpha}

	status := 0
	if flag.NArg() > 0 {
		for _, stmt := range flag.Args() {
			if err := sess.Exec(stmt); err != nil {
				fmt.Fprintf(os.Stderr, "bismarck: %v\n", err)
				status = 1
				break
			}
		}
	} else {
		repl(sess)
	}
	// Save even after a failed statement: earlier statements in the same
	// invocation may have created tables that must reach catalog.json.
	if err := cat.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: saving catalog: %v\n", err)
		status = 1
	}
	if err := cat.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarck: closing catalog: %v\n", err)
		status = 1
	}
	os.Exit(status)
}

// repl reads statements from stdin, accumulating lines until a statement
// is terminated with ';' (a lone blank line also submits).
func repl(sess *sqlish.Session) {
	fmt.Println(`bismarck> statements end with ';'. Try SHOW TASKS; or SHOW TABLES; (Ctrl-D quits)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("bismarck> ")
		} else {
			fmt.Print("     ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && trimmed == "":
			// skip leading blank lines
		case buf.Len() == 0 && (strings.EqualFold(trimmed, "help") || trimmed == "\\h"):
			fmt.Println("statements:")
			fmt.Println("  SELECT cols FROM t [WHERE ...] TO TRAIN task [WITH k=v,...] [COLUMN ...] [LABEL c] INTO model;")
			fmt.Println("  SELECT cols FROM t TO PREDICT [WITH threshold=x] [INTO out] USING model;")
			fmt.Println("  SELECT cols FROM t TO EVALUATE USING model;")
			fmt.Println("  SHOW TASKS;  SHOW TABLES;")
		default:
			buf.WriteString(line)
			buf.WriteByte('\n')
			if strings.HasSuffix(trimmed, ";") || trimmed == "" {
				text := buf.String()
				buf.Reset()
				execAll(sess, text)
			}
		}
		prompt()
	}
	if err := sc.Err(); err != nil {
		// A scanner error may have truncated the buffered statement —
		// report it rather than executing a partial statement.
		fmt.Fprintf(os.Stderr, "error: reading input: %v\n", err)
	} else {
		// Don't silently drop a final statement missing its ';' at EOF.
		execAll(sess, buf.String())
	}
	fmt.Println()
}

// execAll splits the buffered text into ';'-terminated statements
// (respecting quoted strings and -- comments) and executes each.
func execAll(sess *sqlish.Session, text string) {
	for _, stmt := range spec.SplitStatements(text) {
		if err := sess.Exec(stmt); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}
