// Command bismarckd is the multi-session Bismarck daemon: it serves the
// declarative statement grammar over a line-oriented TCP protocol, sharing
// one file catalog across every connection behind the server package's
// per-model locking, and runs `TO TRAIN ... ASYNC` statements on a
// background worker pool (SHOW JOBS / WAIT JOB <id> / CANCEL JOB <id>).
//
//	bismarckd -data ./db -listen 127.0.0.1:7077 -workers 4
//
// Connect with `bismarck -connect 127.0.0.1:7077` or any line tool:
//
//	$ nc 127.0.0.1 7077
//	| bismarckd ready — statements end with ';'
//	OK
//	SELECT vec, label FROM papers TO TRAIN svm INTO m ASYNC;
//	| job 1 queued: TRAIN svm INTO "m" (SHOW JOBS / WAIT JOB 1)
//	OK
//
// Inline point-PREDICT is served from the hot-model cache, either as a
// statement or pipelined many-at-a-time with "@<id> <stmt>" frames
// (answered "@<id> OK <scores>" / "@<id> ERR <msg>", out of order); a
// client can negotiate the length-prefixed binary encoding with "@bin".
// The -serve-inflight / -serve-queue flags size the plane's global
// admission control and -serve-model-inflight / -serve-model-queue one
// model's share of it: past a queue the daemon sheds with "ERR busy: ...
// retry_after_ms=<hint>". -serve-warm pre-decodes persisted models at
// start, and SHOW SERVING reports the per-model serving counters.
//
// On SIGINT/SIGTERM the daemon stops accepting, cancels still-queued
// jobs, lets running jobs finish and commit, and saves the catalog before
// exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"bismarck/internal/engine"
	"bismarck/internal/server"
)

func main() {
	var (
		dataDir   = flag.String("data", "./bismarck-data", "catalog directory")
		listen    = flag.String("listen", "127.0.0.1:7077", "TCP listen address")
		workers   = flag.Int("workers", 0, "async TRAIN worker pool size (0 = NumCPU, max 8)")
		epochs    = flag.Int("epochs", 0, "default training epochs when a statement sets none (0 = 20)")
		alpha     = flag.Float64("alpha", 0, "default initial step size when a statement sets none (0 = task preference)")
		serveIn   = flag.Int("serve-inflight", 0, "concurrent point-PREDICT scoring slots (0 = GOMAXPROCS)")
		serveQ    = flag.Int("serve-queue", 0, "point-PREDICT waiters beyond the slots before shedding with ERR busy (0 = 4x slots)")
		serveMIn  = flag.Int("serve-model-inflight", 0, "one model's concurrent scoring slots (0 = the global slots)")
		serveMQ   = flag.Int("serve-model-queue", 0, "one model's waiters before shedding (0 = half the global queue)")
		serveWarm = flag.Bool("serve-warm", true, "pre-decode every persisted model into the serving cache at start")
		executor  = flag.Bool("executor", false, "run as a shard executor: in-memory catalog, no persistence — host training shards shipped by WITH executors=... coordinators")
		execIn    = flag.Int("exec-inflight", 0, "concurrent executor shard-op slots (0 = GOMAXPROCS)")
		execQ     = flag.Int("exec-queue", 0, "executor shard-op waiters before shedding with ERR busy (0 = 4x slots)")
	)
	flag.Parse()
	if err := run(*dataDir, *listen, *workers, *epochs, *alpha,
		*serveIn, *serveQ, *serveMIn, *serveMQ, *serveWarm,
		*executor, *execIn, *execQ); err != nil {
		fmt.Fprintf(os.Stderr, "bismarckd: %v\n", err)
		os.Exit(1)
	}
}

func run(dataDir, listen string, workers, epochs int, alpha float64, serveIn, serveQ, serveMIn, serveMQ int, serveWarm bool, executor bool, execIn, execQ int) error {
	// Executor mode is stateless by design: shard heaps live only on
	// their coordinator connections, so there is nothing to persist — an
	// in-memory catalog keeps a dead executor from leaving artifacts a
	// restart would have to recover.
	var cat *engine.Catalog
	var err error
	if executor {
		cat = engine.NewCatalog()
	} else {
		cat, err = engine.OpenFileCatalog(dataDir, 0)
		if err != nil {
			return err
		}
	}
	// Opening doubled as crash recovery: say what it found (swaps rolled
	// forward, orphan shadows swept, tables it refused to resurrect).
	if r := cat.Recovery; !r.Clean() {
		for _, name := range r.Completed {
			fmt.Printf("bismarckd: recovery: completed committed swap of %q\n", name)
		}
		for name, reason := range r.Skipped {
			fmt.Printf("bismarckd: recovery: not registering %q (%s)\n", name, reason)
		}
		for _, f := range r.Swept {
			fmt.Printf("bismarckd: recovery: swept %s\n", f)
		}
		for name, what := range r.Repaired {
			fmt.Printf("bismarckd: recovery: repaired %q (%s)\n", name, what)
		}
		for name, pages := range r.Quarantined {
			fmt.Printf("bismarckd: recovery: %q has %d quarantined pages %v — reads fail until CHECK TABLE passes or the table is rewritten; retry WITH degraded=true to skip them\n",
				name, len(pages), pages)
		}
	}
	mgr := server.NewManager(cat, server.Options{Workers: workers, Epochs: epochs, Alpha: alpha,
		ServeInflight: serveIn, ServeQueue: serveQ,
		ServeModelInflight: serveMIn, ServeModelQueue: serveMQ,
		ExecInflight: execIn, ExecQueue: execQ})
	srv := server.NewTCPServer(mgr)

	// Warm-start: decode every persisted model into the serving cache before
	// accepting connections, so the first PREDICT after a restart is a cache
	// hit instead of a decode behind the fill mutex. Executor mode starts
	// with an empty in-memory catalog — nothing to warm.
	if serveWarm && !executor {
		if warmed := mgr.Plane().Warm(); len(warmed) > 0 {
			fmt.Printf("bismarckd: warmed %d model(s) into the serving cache: %v\n", len(warmed), warmed)
		}
	}

	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	if executor {
		fmt.Printf("bismarckd: shard executor on %s (in-memory, nothing persisted)\n", lis.Addr())
	} else {
		fmt.Printf("bismarckd: serving catalog %q on %s\n", dataDir, lis.Addr())
	}

	// Shutdown order matters: stop the wire first (no new statements), let
	// accepted jobs finish (their saves still take the model locks), then
	// persist and close the catalog.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("bismarckd: %v — draining jobs and saving catalog\n", s)
		srv.Close()
	}()

	serveErr := srv.Serve(lis)
	// Serve returns as soon as the listener dies — on shutdown or on a
	// fatal accept error. Either way the teardown is the same: Close
	// (idempotent) waits for in-flight connection handlers, Drain waits
	// for async jobs, and only then is the catalog saved and closed, so
	// nothing is still mutating heap files and every model a client was
	// told about reaches catalog.json.
	srv.Close()
	mgr.Drain()
	// Discard any in-flight shadow generations an aborted save left behind
	// (a failed job's cleanup can itself fail): they must not reach the
	// final catalog save or linger as orphan heaps for the next open.
	if err := cat.DiscardShadows(); err != nil {
		fmt.Fprintf(os.Stderr, "bismarckd: discarding in-flight shadows: %v\n", err)
	}
	var saveErr error
	if cat.FileBacked() {
		saveErr = cat.Save()
	}
	closeErr := cat.Close()
	if serveErr != nil {
		return serveErr
	}
	if saveErr != nil {
		return fmt.Errorf("saving catalog: %w", saveErr)
	}
	if closeErr != nil {
		return fmt.Errorf("closing catalog: %w", closeErr)
	}
	fmt.Println("bismarckd: bye")
	return nil
}
