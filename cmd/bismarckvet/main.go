// Command bismarckvet checks the bismarck tree against its own
// invariants: ticket/admission/unlock pairing, lock ordering, crash
// fidelity of deferred cleanups, and //bismarck:noalloc hot paths.
//
// Standalone:
//
//	go run ./cmd/bismarckvet ./...
//
// As a vet tool (cached per package by the go command):
//
//	go build -o "$(go env GOPATH)/bin/bismarckvet" ./cmd/bismarckvet
//	go vet -vettool="$(which bismarckvet)" ./...
package main

import (
	"os"

	"bismarck/internal/analysis"
	"bismarck/internal/analysis/framework"
)

func main() {
	os.Exit(framework.Main(analysis.Suite(), os.Args[1:], os.Stdout, os.Stderr))
}
