// Command datagen writes synthetic datasets (Table 1 stand-ins) into a file
// catalog that the bismarck command can train on.
//
//	datagen -out ./db -dataset forest -n 10000
//	datagen -out ./db -dataset dblife -n 4000
//	datagen -out ./db -dataset movielens -n 100000
//	datagen -out ./db -dataset conll -n 500
package main

import (
	"flag"
	"fmt"
	"os"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

func main() {
	var (
		out     = flag.String("out", "./bismarck-data", "catalog directory to create/extend")
		dataset = flag.String("dataset", "forest", "forest | dblife | movielens | conll | catx | returns | series")
		n       = flag.Int("n", 10000, "number of rows (examples/ratings/sequences)")
		name    = flag.String("name", "", "table name (defaults to the dataset name)")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	var src *engine.Table
	switch *dataset {
	case "forest":
		src = data.Forest(*n, *seed)
	case "dblife":
		src = data.DBLife(*n, 41000, 12, *seed)
	case "movielens":
		src = data.MovieLens(6040, 3952, *n, 10, 0.3, *seed)
	case "conll":
		src = data.CoNLL(*n, 8000, 9, 12, *seed)
	case "catx":
		src = data.CATX(*n / 2)
	case "returns":
		src = data.ReturnsTable(*n, 20, *seed)
	case "series":
		src = data.NoisySeries(*n, 1, 0.3, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	tblName := *name
	if tblName == "" {
		tblName = *dataset
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	cat, err := engine.OpenFileCatalog(*out, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	defer cat.Close()

	dst, err := cat.Create(tblName, src.Schema)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := src.CopyTo(dst); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := cat.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	st, err := data.Describe(dst, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote table %q: %d rows, %s on disk at %s\n", tblName, st.Rows, data.HumanBytes(st.Bytes), *out)
}
