// Classification: the paper's motivating workload — LR and SVM on a
// Forest-covertype-style dense dataset — plus a demonstration of §3.2: how
// badly a label-clustered storage order hurts IGD, and how shuffle-once
// repairs it.
package main

import (
	"fmt"
	"log"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const n = 20000
	train := data.Forest(n, 7)

	// Train LR and SVM through the same unified trainer — the point of the
	// paper: only the transition function differs between the two.
	for _, task := range []bismarck.Task{bismarck.NewLR(54), bismarck.NewSVM(54)} {
		tr := &bismarck.Trainer{
			Task: task, Step: bismarck.DefaultStep(0.05),
			MaxEpochs: 15, Order: bismarck.ShuffleOnce{}, Seed: 7,
		}
		res, err := tr.Run(train)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s: %d epochs, loss %.1f, %.0fms\n",
			task.Name(), res.Epochs, res.FinalLoss(), float64(res.Total.Milliseconds()))
	}

	// Now the ordering experiment of §3.2 on sparse high-dimensional data
	// (where the clustering pathology really bites): cluster a DBLife-style
	// table by label — all -1 rows before all +1 rows, the layout a real
	// RDBMS might store — and count the epochs each strategy needs to reach
	// a common target loss.
	sparse := data.DBLife(4000, 41000, 12, 7)
	task := bismarck.NewLR(41000)
	step := bismarck.GeometricStep{A0: 0.4, Rho: 0.96}
	ref, err := (&bismarck.Trainer{Task: task, Step: step,
		MaxEpochs: 60, Order: bismarck.ShuffleOnce{}, Seed: 7}).Run(sparse)
	if err != nil {
		log.Fatal(err)
	}
	target := ref.FinalLoss() * 1.01
	for _, order := range []bismarck.OrderStrategy{bismarck.Clustered{}, bismarck.ShuffleOnce{}} {
		if err := data.ClusterByLabel(sparse); err != nil {
			log.Fatal(err)
		}
		tr := &bismarck.Trainer{
			Task: task, Step: step,
			MaxEpochs: 200, TargetLoss: target, Order: order, Seed: 7,
		}
		res, err := tr.Run(sparse)
		if err != nil {
			log.Fatal(err)
		}
		epochs := fmt.Sprintf("%d", res.Epochs)
		if !res.Converged {
			epochs = ">" + epochs
		}
		fmt.Printf("ordering %-13s: %s epochs to reach loss %.1f\n", order.Name(), epochs, target)
	}
	fmt.Println("(clustered order converges far slower — shuffle once before training)")
}
