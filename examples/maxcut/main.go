// MAX-CUT: the paper's §5 future-work item realized — solve the
// Goemans–Williamson relaxation of MAX-CUT with IGD over an edge table
// (one tuple per edge), then round with random hyperplanes. The graph is a
// planted two-community graph, so the true max cut is (approximately) the
// community boundary.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bismarck"
)

func main() {
	const (
		n      = 60   // vertices
		pIntra = 0.05 // edge prob within a community
		pInter = 0.5  // edge prob across communities
		rank   = 6
	)
	rng := rand.New(rand.NewSource(17))
	edges := bismarck.NewMemTable("edges", bismarck.RatingSchema)
	community := func(v int) int { return v % 2 }
	nEdges, crossing := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pIntra
			if community(i) != community(j) {
				p = pInter
			}
			if rng.Float64() < p {
				if err := edges.Insert(bismarck.Tuple{bismarck.I64(int64(i)), bismarck.I64(int64(j)), bismarck.F64(1)}); err != nil {
					log.Fatal(err)
				}
				nEdges++
				if community(i) != community(j) {
					crossing++
				}
			}
		}
	}
	fmt.Printf("graph: %d vertices, %d edges (%d cross the planted cut)\n", n, nEdges, crossing)

	task := bismarck.NewMaxCut(n, rank)
	tr := &bismarck.Trainer{
		Task: task, Step: bismarck.GeometricStep{A0: 0.3, Rho: 0.95},
		MaxEpochs: 100, Order: bismarck.ShuffleOnce{}, Seed: 17, SkipLoss: true,
	}
	res, err := tr.Run(edges)
	if err != nil {
		log.Fatal(err)
	}

	cut, val, err := task.RoundCut(res.Model, edges, 100, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounded cut value: %.0f / %d edges (planted cut crosses %d)\n", val, nEdges, crossing)

	// How well did we recover the planted communities (up to sign)?
	agree := 0
	for v := 0; v < n; v++ {
		side := community(v)*2 - 1 // -1 or +1
		if int(cut[v]) == side {
			agree++
		}
	}
	if agree < n/2 {
		agree = n - agree
	}
	fmt.Printf("community recovery: %d/%d vertices on the planted side\n", agree, n)
}
