// Portfolio optimization: the constrained task from the paper's Figure 1 —
// balance risk against expected return with the allocation constrained to
// the probability simplex, handled by a per-step proximal projection
// (Appendix A) inside the same IGD architecture.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const assets = 12
	returns := data.ReturnsTable(3000, assets, 31)

	task := bismarck.NewPortfolio(assets)
	task.Lambda = 4 // risk aversion
	task.Gamma = 1
	tr := &bismarck.Trainer{
		Task: task, Step: bismarck.DiminishingStep{A0: 0.1},
		MaxEpochs: 40, Order: bismarck.ShuffleOnce{}, Seed: 31,
	}
	res, err := tr.Run(returns)
	if err != nil {
		log.Fatal(err)
	}

	w := res.Model
	var sum float64
	for _, x := range w {
		sum += x
	}
	fmt.Printf("optimized in %d epochs; allocation sums to %.6f (simplex feasible)\n", res.Epochs, sum)

	// Report the allocation sorted by weight.
	type alloc struct {
		asset  int
		weight float64
	}
	var as []alloc
	for i, x := range w {
		as = append(as, alloc{i, x})
	}
	sort.Slice(as, func(i, j int) bool { return as[i].weight > as[j].weight })
	fmt.Println("allocation:")
	for _, a := range as {
		if a.weight < 1e-4 {
			continue
		}
		fmt.Printf("  asset %2d: %5.1f%%\n", a.asset, 100*a.weight)
	}

	// Realized mean return and variance of the optimized portfolio.
	var mean, m2 float64
	n := 0
	returns.Scan(func(tp bismarck.Tuple) error {
		var r float64
		for i, x := range tp[1].Dense {
			r += w[i] * x
		}
		n++
		delta := r - mean
		mean += delta / float64(n)
		m2 += delta * (r - mean)
		return nil
	})
	fmt.Printf("portfolio: mean return %.4f, stdev %.4f per period\n", mean, math.Sqrt(m2/float64(n)))
}
