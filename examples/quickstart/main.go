// Quickstart: train, evaluate, and predict with the declarative statement
// API — build a catalog table, then drive everything through SQLFlow-style
// extended SQL. The same statement grammar selects the trainer (sequential
// or parallel) purely via WITH knobs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"bismarck"
)

func main() {
	// 1. Create a catalog with a table of labeled examples: (id, vec, label).
	cat := bismarck.NewCatalog()
	tbl, err := cat.Create("train", bismarck.DenseExampleSchema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n, d = 2000, 10
	truth := make(bismarck.Dense, d)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	dot := func(a, b bismarck.Dense) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for i := 0; i < n; i++ {
		x := make(bismarck.Dense, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 1.0
		if dot(truth, x)+0.3*rng.NormFloat64() < 0 {
			y = -1
		}
		if err := tbl.Insert(bismarck.Tuple{bismarck.I64(int64(i)), bismarck.DenseV(x), bismarck.F64(y)}); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Open a session and train declaratively: logistic regression via
	// IGD, with the step rule, ordering, and convergence tolerance all
	// selected in the WITH clause.
	sess := &bismarck.Session{Cat: cat, Out: os.Stdout}
	run := func(stmt string) {
		fmt.Printf("sql> %s\n", stmt)
		if err := sess.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	run(`SELECT vec, label FROM train
	     TO TRAIN lr
	     WITH alpha=0.2, epochs=25, tol=0.0001, order=shuffle_once
	     INTO lr_model;`)

	// 3. Evaluate and predict through the same grammar.
	run(`SELECT * FROM train TO EVALUATE USING lr_model;`)
	run(`SELECT * FROM train TO PREDICT INTO scores USING lr_model;`)

	// 4. The identical statement shape drives the parallel trainer — only
	// the WITH knobs change (Hogwild over 4 workers).
	run(`SELECT vec, label FROM train
	     TO TRAIN svm
	     WITH alpha=0.2, epochs=25, parallel=nolock, workers=4
	     INTO svm_model;`)
	run(`SELECT * FROM train TO EVALUATE USING svm_model;`)

	// 5. Trained models persist as plain user tables.
	scores, err := cat.Get("scores")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scores table holds %d rows, e.g.:\n", scores.NumRows())
	shown := 0
	scores.Scan(func(tp bismarck.Tuple) error {
		if shown < 3 {
			fmt.Printf("  id %4d  P(label=+1) = %.4f\n", tp[0].Int, tp[1].Float)
			shown++
		}
		return nil
	})
}
