// Quickstart: train a logistic regression classifier end-to-end with the
// Bismarck public API — build a table, run the IGD trainer with
// shuffle-once ordering, evaluate accuracy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bismarck"
)

func main() {
	// 1. Create a table of labeled examples: (id, vec, label).
	tbl := bismarck.NewMemTable("train", bismarck.DenseExampleSchema)
	rng := rand.New(rand.NewSource(1))
	const n, d = 2000, 10
	truth := make(bismarck.Dense, d)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	dot := func(a, b bismarck.Dense) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for i := 0; i < n; i++ {
		x := make(bismarck.Dense, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 1.0
		if dot(truth, x)+0.3*rng.NormFloat64() < 0 {
			y = -1
		}
		if err := tbl.Insert(bismarck.Tuple{bismarck.I64(int64(i)), bismarck.DenseV(x), bismarck.F64(y)}); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Train: logistic regression via incremental gradient descent,
	// expressed as a user-defined aggregate over the table.
	task := bismarck.NewLR(d)
	trainer := &bismarck.Trainer{
		Task:      task,
		Step:      bismarck.DefaultStep(0.2),
		MaxEpochs: 25,
		RelTol:    1e-4,
		Order:     bismarck.ShuffleOnce{},
		Seed:      1,
	}
	res, err := trainer.Run(tbl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s in %d epochs (%.1fms), final loss %.2f\n",
		task.Name(), res.Epochs, float64(res.Total.Microseconds())/1000, res.FinalLoss())

	// 3. Evaluate on the training table.
	correct := 0
	err = tbl.Scan(func(tp bismarck.Tuple) error {
		p := task.Predict(res.Model, tp[1])
		if (p > 0.5) == (tp[2].Float > 0) {
			correct++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training accuracy: %d/%d = %.1f%%\n", correct, n, 100*float64(correct)/n)
}
