// Recommender: low-rank matrix factorization on a MovieLens-style ratings
// table, trained by IGD (the paper's LMF task), then used to predict
// held-out ratings.
package main

import (
	"fmt"
	"log"
	"math"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const (
		users, items = 500, 400
		rank         = 8
	)
	ratings := data.MovieLens(users, items, 30000, rank, 0.2, 11)

	// Hold out every 10th rating for evaluation.
	train := bismarck.NewMemTable("train", bismarck.RatingSchema)
	test := bismarck.NewMemTable("test", bismarck.RatingSchema)
	i := 0
	err := ratings.Scan(func(tp bismarck.Tuple) error {
		dst := train
		if i%10 == 0 {
			dst = test
		}
		i++
		return dst.Insert(tp)
	})
	if err != nil {
		log.Fatal(err)
	}

	task := bismarck.NewLMF(users, items, rank)
	task.Mu = 0.02 // a little Frobenius regularization for generalization
	task.InitScale = 0.5
	tr := &bismarck.Trainer{
		Task: task, Step: bismarck.GeometricStep{A0: 0.04, Rho: 0.95},
		MaxEpochs: 60, Order: bismarck.ShuffleOnce{}, Seed: 11,
	}
	res, err := tr.Run(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LMF trained: %d epochs, train loss %.1f\n", res.Epochs, res.FinalLoss())

	// Evaluate RMSE on the held-out ratings.
	var se float64
	n := 0
	err = test.Scan(func(tp bismarck.Tuple) error {
		pred := task.Predict(res.Model, int(tp[0].Int), int(tp[1].Int))
		d := pred - tp[2].Float
		se += d * d
		n++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out RMSE over %d ratings: %.3f (rating scale 1-5)\n", n, rmse(se, n))

	// Show a few predictions.
	shown := 0
	test.Scan(func(tp bismarck.Tuple) error {
		if shown < 5 {
			fmt.Printf("  user %3d, item %3d: actual %.1f, predicted %.2f\n",
				tp[0].Int, tp[1].Int, tp[2].Float, task.Predict(res.Model, int(tp[0].Int), int(tp[1].Int)))
			shown++
		}
		return nil
	})
}

func rmse(se float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / float64(n))
}
