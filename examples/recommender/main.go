// Recommender: low-rank matrix factorization on a MovieLens-style ratings
// table through the declarative statement API. A fold column carves the
// train/holdout split in the WHERE clause (which may filter on columns the
// task never sees), the WITH clause sets the factorization shape and step
// rule, and TO EVALUATE reports held-out RMSE — no imperative trainer
// wiring at all.
package main

import (
	"fmt"
	"log"
	"os"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const (
		users, items = 500, 400
		rank         = 8
	)
	// Ratings land in a 4-column table: (row, col, rating, fold) with
	// fold = rating# mod 10; fold 0 is the holdout.
	cat := bismarck.NewCatalog()
	ratings, err := cat.Create("ratings", bismarck.Schema{
		{Name: "row", Type: bismarck.TInt64},
		{Name: "col", Type: bismarck.TInt64},
		{Name: "rating", Type: bismarck.TFloat64},
		{Name: "fold", Type: bismarck.TInt64},
	})
	if err != nil {
		log.Fatal(err)
	}
	i := int64(0)
	err = data.MovieLens(users, items, 30000, rank, 0.2, 11).Scan(func(tp bismarck.Tuple) error {
		row := append(append(bismarck.Tuple{}, tp...), bismarck.I64(i%10))
		i++
		return ratings.Insert(row)
	})
	if err != nil {
		log.Fatal(err)
	}

	sess := &bismarck.Session{Cat: cat, Out: os.Stdout}
	run := func(stmt string) {
		fmt.Printf("sql> %s\n", stmt)
		if err := sess.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// Train on folds 1-9. The SELECT list projects the task's three data
	// columns; WHERE filters on the fold column the task never sees.
	run(fmt.Sprintf(`SELECT row, col, rating FROM ratings
	     WHERE fold != 0
	     TO TRAIN lmf
	     WITH rows=%d, cols=%d, rank=%d, mu=0.02, init_scale=0.5,
	          alpha=0.04, epochs=60, order=shuffle_once
	     INTO mf;`, users, items, rank))

	// Held-out quality: RMSE over the ratings the model never saw...
	run(`SELECT row, col, rating FROM ratings WHERE fold = 0 TO EVALUATE USING mf;`)
	// ...and on the training folds, for reference.
	run(`SELECT row, col, rating FROM ratings WHERE fold != 0 TO EVALUATE USING mf;`)

	// Score the holdout into a table and show a few predictions next to
	// the actual ratings.
	run(`SELECT row, col, rating FROM ratings WHERE fold = 0 TO PREDICT INTO preds USING mf;`)
	preds, err := cat.Get("preds")
	if err != nil {
		log.Fatal(err)
	}
	var actual []float64
	ratings.Scan(func(tp bismarck.Tuple) error {
		if tp[3].Int == 0 {
			actual = append(actual, tp[2].Float)
		}
		return nil
	})
	k := 0
	preds.Scan(func(tp bismarck.Tuple) error {
		// preds preserves the holdout's scan order: row k scores actual[k].
		if k < 5 {
			fmt.Printf("  holdout rating for user %3d: actual %.1f, predicted %.2f\n",
				tp[0].Int, actual[k], tp[1].Float)
		}
		k++
		return nil
	})
}
