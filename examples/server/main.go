// Server: the multi-session deployment shape of the paper — analytics
// living inside the data-management system, queried by many concurrent
// clients. This example starts an in-process bismarckd-style server over
// an in-memory catalog, then drives it with three concurrent wire-protocol
// clients: one keeps retraining a shared model asynchronously (watching it
// through SHOW JOBS / WAIT JOB) while the other two score against whatever
// model generation is currently committed. Per-model reader/writer locking
// means the scoring clients always see a complete snapshot — never a
// half-saved model.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"
	"sync"

	"bismarck"
)

func main() {
	// 1. A shared catalog with a labeled training table.
	cat := bismarck.NewCatalog()
	tbl, err := cat.Create("events", bismarck.DenseExampleSchema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n, d = 1500, 8
	truth := make(bismarck.Dense, d)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		x := make(bismarck.Dense, d)
		var dot float64
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * truth[j]
		}
		label := -1.0
		if dot > 0 {
			label = 1.0
		}
		tbl.MustInsert(bismarck.Tuple{
			bismarck.I64(int64(i)), bismarck.DenseV(x), bismarck.F64(label)})
	}

	// 2. Serve it. Manager = shared locks + job scheduler; TCPServer = wire.
	mgr := bismarck.NewServerManager(cat, bismarck.ServerOptions{Workers: 2})
	srv := bismarck.NewTCPServer(mgr)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	addr := lis.Addr().String()
	fmt.Printf("serving on %s\n\n", addr)

	exec := func(who string, c *bismarck.ServerClient, stmt string) string {
		body, err := c.Exec(stmt)
		if err != nil {
			log.Fatalf("%s: %s: %v", who, stmt, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			fmt.Printf("[%s] %s\n", who, line)
		}
		return body
	}

	// 3. Bootstrap generation 1 of the model so scorers always have one.
	boot, err := bismarck.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	exec("boot", boot, "SELECT vec, label FROM events TO TRAIN svm WITH epochs=3, seed=1 INTO spamModel")
	boot.Close()

	// 4. One trainer keeps shipping new generations asynchronously while
	// two scorers hammer the committed one.
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		c, err := bismarck.DialServer(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		for gen := 2; gen <= 4; gen++ {
			body := exec("trainer", c, fmt.Sprintf(
				"SELECT vec, label FROM events TO TRAIN svm WITH epochs=6, seed=%d INTO spamModel ASYNC", gen))
			var id int
			fmt.Sscanf(body, "job %d", &id)
			exec("trainer", c, "SHOW JOBS")
			exec("trainer", c, fmt.Sprintf("WAIT JOB %d", id))
		}
	}()
	for s := 1; s <= 2; s++ {
		go func(s int) {
			defer wg.Done()
			c, err := bismarck.DialServer(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 4; i++ {
				exec(fmt.Sprintf("scorer%d", s), c,
					"SELECT * FROM events TO PREDICT USING spamModel")
			}
		}(s)
	}
	wg.Wait()

	srv.Close()
	mgr.Drain()
	fmt.Println("\ndone: every PREDICT scored a complete model generation")
}
