// Smoothing: fit a noisy time series with the Kalman-filter objective from
// the paper's Figure 1 — quadratic observation error plus a state-coupling
// smoothness term — solved by the same IGD machinery, one tuple per time
// step.
package main

import (
	"fmt"
	"log"
	"math"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const T = 200
	series := data.NoisySeries(T, 1, 0.5, 41)

	task := bismarck.NewKalman(T, 1)
	task.Rho = 6 // smoothness weight: higher = smoother fit
	tr := &bismarck.Trainer{
		Task: task, Step: bismarck.GeometricStep{A0: 0.05, Rho: 0.995},
		MaxEpochs: 300, RelTol: 1e-6, Seed: 41,
	}
	res, err := tr.Run(series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothed %d steps in %d epochs, objective %.2f\n", T, res.Epochs, res.FinalLoss())

	// Compare the roughness (sum of squared first differences) of the raw
	// observations vs the fitted states: smoothing should shrink it a lot.
	var raw []float64
	series.Scan(func(tp bismarck.Tuple) error {
		raw = append(raw, tp[1].Dense[0])
		return nil
	})
	rough := func(xs []float64) float64 {
		var s float64
		for i := 1; i < len(xs); i++ {
			d := xs[i] - xs[i-1]
			s += d * d
		}
		return s
	}
	fitted := make([]float64, T)
	for t := 0; t < T; t++ {
		fitted[t] = task.State(res.Model, t)[0]
	}
	fmt.Printf("roughness: observations %.2f -> fitted states %.2f (%.0fx smoother)\n",
		rough(raw), rough(fitted), rough(raw)/math.Max(rough(fitted), 1e-9))

	// Print a coarse ASCII sketch of raw vs fitted.
	fmt.Println("\n t   raw      fitted")
	for t := 0; t < T; t += 20 {
		fmt.Printf("%3d  %+7.3f  %+7.3f\n", t, raw[t], fitted[t])
	}
}
