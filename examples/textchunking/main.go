// Text chunking: the paper's "next generation" task — linear-chain CRF
// sequence labeling (CoNLL-style) — trained through exactly the same IGD
// architecture as LR and SVM, then decoded with Viterbi.
package main

import (
	"fmt"
	"log"

	"bismarck"
	"bismarck/internal/data"
)

func main() {
	const (
		numSeqs  = 800
		features = 2000
		labels   = 5
	)
	seqs := data.CoNLL(numSeqs, features, labels, 10, 21)

	task := bismarck.NewCRF(features, labels)
	tr := &bismarck.Trainer{
		Task: task, Step: bismarck.GeometricStep{A0: 0.15, Rho: 0.9},
		MaxEpochs: 20, RelTol: 1e-4, Order: bismarck.ShuffleOnce{}, Seed: 21,
	}
	res, err := tr.Run(seqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRF trained: %d epochs, negative log-likelihood %.1f\n", res.Epochs, res.FinalLoss())

	// Token-level tagging accuracy via Viterbi decoding.
	var total, correct int
	shown := 0
	err = seqs.Scan(func(tp bismarck.Tuple) error {
		pred := task.Decode(res.Model, tp)
		gold := tp[3].Ints
		for i := range gold {
			total++
			if pred[i] == gold[i] {
				correct++
			}
		}
		if shown < 3 {
			fmt.Printf("  seq %d: gold %v, viterbi %v\n", tp[0].Int, gold, pred)
			shown++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token accuracy: %d/%d = %.1f%%\n", correct, total, 100*float64(correct)/float64(total))
}
