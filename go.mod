module bismarck

go 1.24
