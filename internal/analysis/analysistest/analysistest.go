// Package analysistest runs a bismarckvet analyzer over fixture packages
// under testdata/src/<pkg>/ and checks its diagnostics against
// "// want" expectations, mirroring x/tools' analysistest contract:
//
//	tk, _ := g.Admit() // want `ticket .* never released`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression; every expectation must be matched by a diagnostic on that
// line and every diagnostic must match an expectation — fixtures are
// exact, both flagging and non-flagging lines.
//
// Fixture packages are real, type-checked Go: they may import the
// module's own packages (bismarck/internal/serve, ...) and the standard
// library, so a fixture can seed a historical bug against the genuine
// types it bit.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bismarck/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// want is one expectation: a compiled pattern at a file:line, matched at
// most once.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzer to each fixture package (testdata/src/<pkg>)
// and reports mismatches between its diagnostics and the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	moduleDir := findModuleRoot(t, testdata)
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := framework.LoadDir(moduleDir, dir, pkg)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkg, err)
			continue
		}
		diags, err := framework.RunPackage(loaded, []*framework.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		wants := collectWants(t, dir)
		for _, d := range diags {
			pos := loaded.Fset.Position(d.Pos)
			if w := findWant(wants, pos.Filename, pos.Line, d.Message); w != nil {
				w.matched = true
				continue
			}
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, filepath.Base(w.file), w.line, w.raw)
			}
		}
	}
}

// findWant returns the first unmatched expectation at file:line whose
// pattern matches msg.
func findWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.line == line && sameFile(w.file, file) && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

func sameFile(a, b string) bool {
	return filepath.Base(a) == filepath.Base(b)
}

// collectWants scans every fixture file in dir for want comments using
// the Go scanner (so a "// want" inside a string literal is payload, not
// an expectation).
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		fset := token.NewFileSet()
		file := fset.AddFile(path, fset.Base(), len(src))
		var sc scanner.Scanner
		sc.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := sc.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(lit, "//")), "want ")
			if !ok {
				continue
			}
			position := fset.Position(pos)
			for _, raw := range splitPatterns(t, path, position.Line, rest) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, position.Line, raw, err)
				}
				wants = append(wants, &want{file: path, line: position.Line, re: re, raw: raw})
			}
		}
	}
	return wants
}

// splitPatterns parses the body of a want comment: one or more Go string
// literals (backquoted or double-quoted).
func splitPatterns(t *testing.T, path string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", path, line)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			// Re-quote through strconv to honor escapes.
			rest := s[1:]
			end := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", path, line)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", path, line, s[:end+2], err)
			}
			s = s[end+2:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted or backquoted strings, got %q", path, line, s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: empty want comment", path, line)
	}
	return out
}

// findModuleRoot walks up from dir to the enclosing go.mod.
func findModuleRoot(t *testing.T, dir string) string {
	t.Helper()
	d, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatal(fmt.Sprintf("no go.mod above %s", dir))
		}
		d = parent
	}
}
