// Package crashfidelity implements the bismarckvet analyzer for the
// fault-injection contract: when a storage seam (IOHooks / CatalogHooks)
// simulates a crash by returning engine.ErrInjectedCrash, the process
// must return through the stack exactly as a power loss would — no
// rollback, no cleanup, no tidying. Crash-recovery tests assert on the
// on-disk state the "crash" left behind; a deferred cleanup that runs on
// every error quietly repairs that state and the test then proves
// nothing.
//
// The analyzer flags deferred err-conditional cleanups
//
//	defer func() { if err != nil { rollback() } }()
//
// in functions whose guarded error can carry an injected crash — i.e.
// functions that call into the storage layers (engine, sqlish) after the
// defer is registered — unless the guard excludes the sentinel the way
// the shadow-swap save path does:
//
//	if err != nil && !errors.Is(err, engine.ErrInjectedCrash) { ... }
//
// Pure error decoration (re-assigning the guarded error) is not cleanup
// and is not flagged; neither are inline (non-deferred) rollbacks, which
// by construction run before the injected error exists.
package crashfidelity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bismarck/internal/analysis/framework"
)

// Analyzer is the crashfidelity analyzer.
var Analyzer = &framework.Analyzer{
	Name: "crashfidelity",
	Doc: "check that deferred cleanups spare injected-crash errors\n\n" +
		"A fault-injection hook returning engine.ErrInjectedCrash simulates power loss;\n" +
		"cleanup that runs anyway repairs the state crash-recovery tests must observe.\n" +
		"Deferred err-conditional cleanups in storage-coupled functions must gate with\n" +
		"!errors.Is(err, engine.ErrInjectedCrash).",
	Run: run,
}

// seamPackage reports whether a package path belongs to the in-process
// storage layers that originate or propagate injected crashes.
func seamPackage(path string) bool {
	return strings.HasSuffix(path, "/engine") || path == "engine" ||
		strings.HasSuffix(path, "/sqlish") || path == "sqlish"
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Visited through its enclosing function; its own defers
				// are checked against its own seam calls when Inspect
				// reaches it, so analyze it independently too.
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	seams := seamCallPositions(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // nested function: its own checkBody pass handles it
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		checkDeferredCleanup(pass, ds, fl, seams)
		return true
	})
}

// seamCallPositions collects the positions of calls into seam packages
// directly in body (not inside nested function literals, whose bodies
// are separate scopes).
func seamCallPositions(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeOf(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if seamPackage(fn.Pkg().Path()) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// checkDeferredCleanup flags fl (the deferred closure) if it performs an
// err-conditional cleanup without excluding ErrInjectedCrash, and a seam
// call after the defer can feed the guarded error.
func checkDeferredCleanup(pass *framework.Pass, ds *ast.DeferStmt, fl *ast.FuncLit, seams []token.Pos) {
	info := pass.TypesInfo
	if mentionsInjectedCrash(fl) {
		return
	}
	seamAfter := false
	for _, p := range seams {
		if p > ds.End() {
			seamAfter = true
			break
		}
	}
	if !seamAfter {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		errObj := guardedError(info, ifs.Cond)
		if errObj == nil {
			return true
		}
		if !isCleanup(info, ifs.Body, errObj) {
			return true
		}
		pass.Reportf(ifs.Cond.Pos(),
			"deferred cleanup runs even when the error is an injected crash; gate it with !errors.Is(%s, engine.ErrInjectedCrash) so crash-recovery tests observe the pre-crash state",
			errObj.Name())
		return true
	})
}

// mentionsInjectedCrash reports whether the closure references the crash
// sentinel anywhere (any object named ErrInjectedCrash).
func mentionsInjectedCrash(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "ErrInjectedCrash" {
			found = true
		}
		return !found
	})
	return found
}

// guardedError extracts the error object of an `err != nil` guard (alone
// or as a conjunct), nil if the condition is not such a guard.
func guardedError(info *types.Info, cond ast.Expr) types.Object {
	e := ast.Unparen(cond)
	if be, ok := e.(*ast.BinaryExpr); ok {
		if be.Op == token.LAND {
			if obj := guardedError(info, be.X); obj != nil {
				return obj
			}
			return guardedError(info, be.Y)
		}
		if be.Op == token.NEQ {
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			switch {
			case isNilIdent(y):
				// x is the candidate error
			case isNilIdent(x):
				x = y
			default:
				return nil
			}
			obj := framework.ObjectOf(info, x)
			if obj != nil && obj.Type() != nil && obj.Type().String() == "error" {
				return obj
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isCleanup reports whether the guarded block does anything beyond
// decorating the error itself. Re-assignments to the guarded error are
// decoration; everything else — calls, writes to other state — is
// cleanup the crash must be allowed to skip.
func isCleanup(info *types.Info, block *ast.BlockStmt, errObj types.Object) bool {
	for _, s := range block.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if framework.ObjectOf(info, l) != errObj {
				return true
			}
		}
	}
	return false
}
