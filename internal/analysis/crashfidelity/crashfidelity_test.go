package crashfidelity_test

import (
	"testing"

	"bismarck/internal/analysis/analysistest"
	"bismarck/internal/analysis/crashfidelity"
)

func TestCrashFidelity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), crashfidelity.Analyzer, "crash")
}
