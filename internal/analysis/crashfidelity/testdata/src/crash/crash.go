// Package crash seeds the crash-fidelity bug class: a deferred rollback
// that also runs when the error is an injected crash, repairing exactly
// the state the crash-recovery tests need to observe.
package crash

import (
	"errors"

	"bismarck/internal/engine"
)

func cleanupFiles() {}

// badRollback cleans up on every error — including the simulated power
// loss, which must leave the torn state in place.
func badRollback(cat *engine.Catalog, final, shadow, drop []string) (err error) {
	defer func() {
		if err != nil { // want `deferred cleanup runs even when the error is an injected crash`
			cleanupFiles()
		}
	}()
	err = cat.Swap(final, shadow, drop)
	return err
}

// okGatedRollback spares the sentinel, the established shadow-swap idiom.
func okGatedRollback(cat *engine.Catalog, final, shadow, drop []string) (err error) {
	defer func() {
		if err != nil && !errors.Is(err, engine.ErrInjectedCrash) {
			cleanupFiles()
		}
	}()
	err = cat.Swap(final, shadow, drop)
	return err
}

// okWrapOnly only decorates the error; decoration is not cleanup.
func okWrapOnly(cat *engine.Catalog, final, shadow, drop []string) (err error) {
	defer func() {
		if err != nil {
			err = errors.New("swap failed: " + err.Error())
		}
	}()
	err = cat.Swap(final, shadow, drop)
	return err
}

// okNoSeam never calls the storage layers after the defer, so its error
// can never be an injected crash and the cleanup is unconstrained.
func okNoSeam(setup func() error) (err error) {
	defer func() {
		if err != nil {
			cleanupFiles()
		}
	}()
	err = setup()
	return err
}
