package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CalleeOf resolves the called function or method of call, or nil for
// builtins, type conversions, and calls of function-typed expressions
// the checker cannot attribute (computed closures).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeName returns the callee's fully-qualified name — e.g.
// "(*bismarck/internal/serve.Gate).Admit" for methods (always in pointer
// form, so value- and pointer-receiver call sites compare equal) or
// "fmt.Errorf" for package functions — and "" when the callee cannot be
// resolved.
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeOf(info, call)
	if fn == nil {
		return ""
	}
	return NormalizedFuncName(fn)
}

// NormalizedFuncName renders fn like types.Func.FullName but with any
// method receiver forced to its pointer form, giving one canonical
// spelling per method.
func NormalizedFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.FullName()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fn.FullName() // interface method: FullName is already canonical
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return fn.FullName()
	}
	return "(*" + obj.Pkg().Path() + "." + obj.Name() + ")." + fn.Name()
}

// IsMethodNamed reports whether call invokes a method with the given
// name on a (pointer to) named type whose qualified name
// "pkgpath.TypeName" ends in typeSuffix. Matching by suffix lets an
// analyzer recognize both the real type and a structurally equivalent
// fixture type under testdata.
func IsMethodNamed(info *types.Info, call *ast.CallExpr, typeSuffix, method string) bool {
	name := CalleeName(info, call)
	if name == "" {
		return false
	}
	open := strings.Index(name, "(*")
	close := strings.Index(name, ")")
	if open != 0 || close < 0 {
		return false
	}
	return strings.HasSuffix(name[2:close], typeSuffix) && name[close:] == ")."+method
}

// AnnotationPrefix is the magic-comment namespace of the bismarckvet
// analyzers (e.g. "//bismarck:noalloc").
const AnnotationPrefix = "//bismarck:"

// HasAnnotation reports whether the function's doc comment carries the
// given bismarck annotation (name without the "//bismarck:" prefix).
// Annotations are matched on the first whitespace-delimited word, so
// "//bismarck:noalloc scoring hot path" annotates noalloc with a reason.
func HasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(rest, " ")
		if strings.TrimSpace(word) == name {
			return true
		}
	}
	return false
}

// LineAnnotations collects, per line of f, the bismarck annotations
// appearing in comments on that line ("//bismarck:allowalloc reason"
// suppressions attach to the line they share).
func LineAnnotations(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
			if !ok {
				continue
			}
			word, _, _ := strings.Cut(rest, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], strings.TrimSpace(word))
		}
	}
	return out
}

// ObjectOf resolves the object an identifier expression denotes (through
// parens), or nil for non-identifier expressions.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// RefersTo reports whether any identifier under n denotes obj.
func RefersTo(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// Terminates reports whether stmt unconditionally leaves the enclosing
// function: a return, a panic, or a call that never returns (os.Exit,
// log.Fatal*, runtime.Goexit, testing's t.Fatal*). Branch statements
// (break/continue/goto) are NOT terminating here — callers handle loops
// conservatively.
func Terminates(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && info.Uses[id] == nil && info.Defs[id] == nil {
			return true
		}
		switch CalleeName(info, call) {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
		name := CalleeName(info, call)
		return strings.HasSuffix(name, ").Fatal") || strings.HasSuffix(name, ").Fatalf") ||
			strings.HasSuffix(name, ").Skip") || strings.HasSuffix(name, ").Skipf")
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if Terminates(info, inner) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return Terminates(info, s.Body) && Terminates(info, s.Else)
	}
	return false
}
