// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface bismarckvet needs: Analyzer,
// Pass, Diagnostic, a module-aware package loader, a standalone runner,
// and the `go vet -vettool` unit-checker protocol.
//
// The build environment is hermetic — nothing outside the standard
// library may be fetched — so instead of depending on x/tools this
// package rebuilds the pieces on go/ast, go/types, go/parser and the gc
// export-data importer. The API is shaped like go/analysis on purpose:
// if the x/tools dependency ever becomes available, each analyzer ports
// by changing one import line.
//
// What is deliberately NOT reimplemented: cross-package facts (every
// bismarckvet analyzer is single-package), SSA, and the control-flow
// graph package (the analyzers use a structural path walk over the AST,
// which is precise enough for the invariant shapes this codebase uses
// and is documented per analyzer).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer
// minus facts and requires: bismarckvet analyzers are independent and
// package-local.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. By convention a single lowercase word (e.g. "ticketpair").
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. A returned error aborts the whole run — it
	// means the analyzer itself is broken, not that the code is.
	Run func(pass *Pass) error
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Diagnostic is one finding: a position and a message, attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// RunPackage applies each analyzer to pkg and returns the diagnostics
// sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: internal analyzer error on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
