package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	ImportPath string
	Dir        string
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -export -deps` on the patterns from
// moduleDir and returns every listed package. Export data for each
// dependency comes out of the build cache, so the loader never compiles
// anything itself and works fully offline.
func goList(moduleDir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("framework: starting go list: %w", err)
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("framework: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("framework: go list %v: %w", patterns, err)
	}
	return pkgs, nil
}

// exportLookup builds the gc importer's lookup function over the listed
// packages' export files. "unsafe" is resolved by the importer itself and
// never reaches the lookup.
func exportLookup(pkgs []*listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("framework: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates a fully-populated types.Info (every map analyzers may
// consult).
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typeCheck parses goFiles (absolute or dir-relative paths) and
// type-checks them as one package, resolving imports through imp.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("framework: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("framework: type errors in %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %w", importPath, err)
	}
	return &Package{Fset: fset, Syntax: files, Types: tpkg, Info: info, ImportPath: importPath, Dir: dir}, nil
}

// Load resolves patterns (import paths or ./...-style) relative to
// moduleDir and returns each matched package type-checked from source,
// with its dependencies imported from compiled export data. Test files
// are not included — bismarckvet proves invariants about shipped code;
// the hammer tests remain the runtime witnesses.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("framework: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks one directory of Go files that live OUTSIDE the
// module's package graph (analysistest fixtures under testdata/, which
// the go tool refuses to list). Imports — standard library or module
// packages alike — are resolved by asking `go list` from moduleDir for
// their export data.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("framework: no Go files in %s", dir)
	}

	// Pre-parse just the import clauses to learn what go list must resolve.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, path := range goFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("framework: parsing imports of %s: %w", path, err)
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil || p == "unsafe" {
				continue
			}
			imports[p] = true
		}
	}
	var patterns []string
	for p := range imports {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)

	var listed []*listedPkg
	if len(patterns) > 0 {
		listed, err = goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("framework: fixture dependency %s: %s", p.ImportPath, p.Error.Err)
			}
		}
	}
	fset = token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	return typeCheck(fset, imp, importPath, dir, goFiles)
}
