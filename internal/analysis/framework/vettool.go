package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool=` unit-checker protocol, the
// same contract x/tools' unitchecker speaks:
//
//   - `tool -V=full` prints a version line cmd/go can hash into its
//     build cache key;
//   - `tool -flags` prints a JSON description of the tool's flags (none);
//   - `tool [flags] <file>.cfg` analyzes ONE package described by the
//     cfg file cmd/go wrote: source files plus an import map pointing at
//     compiled export data for every dependency. Diagnostics go to
//     stderr (or stdout as JSON under -json) and a non-zero exit tells
//     cmd/go the package failed vetting.
//
// bismarckvet has no cross-package facts, so the .vetx facts file the
// protocol requires is written empty and PackageVetx inputs are ignored.

// vetConfig mirrors the JSON cmd/go hands a vet tool per package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is the unitchecker JSON diagnostic shape.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runVetTool handles one cfg-file invocation. Returns the process exit
// code.
func runVetTool(cfgPath string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "bismarckvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist whenever the tool succeeds; bismarckvet
	// carries no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "bismarckvet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only request from a dependency: nothing to compute
	}
	// go vet folds test files into the package's vet unit. bismarckvet
	// proves invariants about shipped code only: the hammer and
	// fault-injection tests deliberately reproduce the very violations
	// the analyzers reject (leaked tickets, deadlock shapes), and must
	// keep compiling. Same policy as standalone mode's loader.
	var srcFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			srcFiles = append(srcFiles, f)
		}
	}
	if len(srcFiles) == 0 {
		return 0 // external test package: nothing shipped to analyze
	}
	cfg.GoFiles = srcFiles

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := typeCheck(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
		return 1
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
		return 1
	}
	if jsonOut {
		byAnalyzer := map[string][]jsonDiagnostic{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer],
				jsonDiagnostic{Posn: fset.Position(d.Pos).String(), Message: d.Message})
		}
		out := map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byAnalyzer}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return 0 // JSON mode: cmd/go reads the stream, exit stays clean
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// Main is the bismarckvet entry point: it dispatches between the
// vet-tool protocol (a single .cfg argument from cmd/go) and the
// standalone mode (`bismarckvet ./...`), which loads packages itself and
// needs no driver. Returns the process exit code.
func Main(analyzers []*Analyzer, args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// cmd/go parses the buildID field out of this line and hashes
			// it into its action cache key: same tool binary, same cached
			// vet verdicts. Hash the executable itself so rebuilding the
			// tool invalidates the cache.
			id := "unknown"
			if exe, err := os.Executable(); err == nil {
				if data, err := os.ReadFile(exe); err == nil {
					sum := sha256.Sum256(data)
					id = fmt.Sprintf("%x", sum[:16])
				}
			}
			fmt.Fprintf(stdout, "bismarckvet version devel buildID=%s\n", id)
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-h" || a == "-help" || a == "--help":
			usage(analyzers, stdout)
			return 0
		case strings.HasPrefix(a, "-"):
			// Unknown driver flags (e.g. analyzer toggles a future cmd/go
			// might pass) are accepted and ignored rather than fatal: the
			// suite always runs whole.
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], analyzers, jsonOut, stdout, stderr)
	}

	// Standalone mode: resolve patterns from the current directory.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
		return 1
	}
	pkgs, err := Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "bismarckvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			bad++
			fmt.Fprintf(stderr, "%s: %s: %s\n", relPosition(cwd, pkg.Fset.Position(d.Pos)), d.Analyzer, d.Message)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "bismarckvet: %d invariant violation(s)\n", bad)
		return 2
	}
	return 0
}

// relPosition renders a position with its filename relative to root when
// possible (shorter, stable diagnostics in CI logs).
func relPosition(root string, pos token.Position) string {
	if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}

func usage(analyzers []*Analyzer, w io.Writer) {
	fmt.Fprintf(w, "bismarckvet proves bismarck's concurrency, resource and crash-fidelity\ninvariants at compile time.\n\n")
	fmt.Fprintf(w, "usage:\n  bismarckvet [packages]            # standalone, e.g. bismarckvet ./...\n")
	fmt.Fprintf(w, "  go vet -vettool=$(which bismarckvet) ./...\n\nanalyzers:\n")
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, summary)
	}
}
