// Package lockorder implements the bismarckvet analyzer for the
// codebase's lock-acquisition disciplines, the rules whose violations
// are deadlocks rather than leaks:
//
//   - Rule A (one name lock per session): a function never holds two
//     exclusive name locks at once. The sole sanctioned exception is the
//     shadow-then-final window of the replace-and-fill protocol, where
//     one of the keys is derived via shadowName and therefore disjoint
//     by construction.
//   - Rule B (__meta collapses): lock keys normalize any __meta suffix
//     chain to the base name. Locking a literal "...__meta" key through
//     a raw Guard/NameLocks call bypasses that collapse and silently
//     stops contending with the model's writer.
//   - Rule C (model slot ⇒ global slot): a second-level Gate.Admit may
//     take a slot only on a path that has checked the first-level
//     ticket is booked; the queued path must use admitQueued. Taking a
//     model slot while waiting for a global one is the two-gate
//     deadlock shape TestQueuedGlobalAdmissionHoldsNoModelSlot guards
//     at runtime.
//   - Rule D (xxxLocked under the mutex): a method named *Locked is a
//     contract that the receiver's mutex is held. Calling one from a
//     function that is not itself *Locked and has not locked a mutex on
//     the receiver first is the decode-storm class of bug — the PR 8
//     cache fill published entries concurrently because a *Locked
//     helper ran outside the critical section.
//   - Rule E (no client I/O under a name lock): session output can be a
//     network connection; fmt.Fprint* while a name lock is held lets one
//     stalled client write stall every writer queued on the table's
//     exclusive lock. Compute under the lock, release, then print.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bismarck/internal/analysis/framework"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "check name-lock and admission ordering disciplines\n\n" +
		"Reports nested exclusive name locks (outside the shadow-swap exception), raw lock\n" +
		"calls on __meta keys that bypass lockKey's collapse, second-level admissions not\n" +
		"guarded by a booked check, *Locked methods called without the mutex, and output\n" +
		"writes made while a name lock is held.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, name = fn.Body, fn.Name.Name
			case *ast.FuncLit:
				body, name = fn.Body, ""
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkNestedNameLocks(pass, body)
			checkAdmissionOrder(pass, body)
			checkLockedCalls(pass, name, body)
			return true
		})
		checkMetaKeys(pass, f)
	}
	return nil
}

// isNameLockAcquire reports whether call acquires a name lock, and
// whether it is exclusive. The matched shapes are the Guard contract
// (Lock/RLock returning func()) and the session wrappers
// lockName/rlockName.
func isNameLockAcquire(info *types.Info, call *ast.CallExpr) (acquire, exclusive bool) {
	fn := framework.CalleeOf(info, call)
	if fn == nil {
		return false, false
	}
	switch fn.Name() {
	case "Lock", "lockName":
		exclusive = true
	case "RLock", "rlockName":
	default:
		return false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false, false
	}
	rsig, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	if !ok || rsig.Params().Len() != 0 || rsig.Results().Len() != 0 {
		return false, false
	}
	return true, exclusive
}

// keyIsShadowDerived reports whether the lock key expression goes through
// shadowName — the replace-and-fill exception, disjoint from the base key
// by construction.
func keyIsShadowDerived(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	derived := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(inner.Fun).(*ast.Ident); ok && id.Name == "shadowName" {
				derived = true
			}
		}
		return !derived
	})
	return derived
}

// heldLock is one name lock the linear scan believes is held.
type heldLock struct {
	pos    token.Pos
	shadow bool
	excl   bool
	obj    types.Object // unlock closure variable, nil for defer-immediate
	pinned bool         // held to end of function (deferred release)
}

// checkNestedNameLocks walks the body in source order, tracking which
// name locks are held. It reports a second exclusive acquisition while
// another exclusive lock is held — unless one of the two keys is
// shadow-derived — and any fmt.Fprint* output written while any name
// lock is held. The scan is linear (branches are not forked): the
// locking protocol keeps lock windows straight-line, and the one
// sanctioned nesting is recognized by key, not by path.
func checkNestedNameLocks(pass *framework.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var held []heldLock

	report := func(call *ast.CallExpr, prior heldLock) {
		pass.Reportf(call.Pos(),
			"exclusive name lock taken while another (line %d) is still held; a session holds at most one name lock (shadow-swap keys are the only exception)",
			pass.Fset.Position(prior.pos).Line)
	}
	acquireAt := func(call *ast.CallExpr, obj types.Object, pinned, excl bool) {
		shadow := keyIsShadowDerived(call)
		if excl {
			for _, h := range held {
				if h.excl && !h.shadow && !shadow {
					report(call, h)
					return // one diagnostic per site
				}
			}
		}
		held = append(held, heldLock{pos: call.Pos(), shadow: shadow, excl: excl, obj: obj, pinned: pinned})
	}
	releaseObj := func(obj types.Object) {
		for i, h := range held {
			if h.obj == obj && !h.pinned {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its body is scanned as its own function
		case *ast.DeferStmt:
			// defer s.lockName(k)(): acquire now, release at return —
			// pinned for the rest of the scan.
			if inner, ok := ast.Unparen(s.Call.Fun).(*ast.CallExpr); ok {
				if ok, excl := isNameLockAcquire(info, inner); ok {
					acquireAt(inner, nil, true, excl)
				}
				return false
			}
			// defer unlock(): pin the corresponding lock.
			if obj := framework.ObjectOf(info, s.Call.Fun); obj != nil {
				for i := range held {
					if held[i].obj == obj {
						held[i].pinned = true
					}
				}
			}
			return false
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
					if ok, excl := isNameLockAcquire(info, call); ok {
						var obj types.Object
						if len(s.Lhs) == 1 {
							if id, isID := ast.Unparen(s.Lhs[0]).(*ast.Ident); isID && id.Name != "_" {
								obj = framework.ObjectOf(info, s.Lhs[0])
								if obj == nil {
									obj = info.Defs[id]
								}
							}
						}
						acquireAt(call, obj, false, excl)
						return false
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				// unlock() releases; an immediate s.lockName(k)() pair is
				// a degenerate no-op window.
				if obj := framework.ObjectOf(info, call.Fun); obj != nil {
					releaseObj(obj)
				}
				if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok {
					if ok, _ := isNameLockAcquire(info, inner); ok {
						return false
					}
				}
			}
		case *ast.CallExpr:
			// Rule E: session output while any name lock is held.
			if len(held) > 0 && isOutputWrite(info, s) {
				pass.Reportf(s.Pos(),
					"output written while a name lock (line %d) is held; compute under the lock, release it, then print — a stalled client write must not stall the table's writers",
					pass.Fset.Position(held[0].pos).Line)
			}
		}
		return true
	})
}

// isOutputWrite reports whether call is a fmt.Fprint* write — the
// session-output shape whose destination may be a network connection.
func isOutputWrite(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.CalleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		strings.HasPrefix(fn.Name(), "Fprint")
}

// checkMetaKeys reports raw Guard/NameLocks lock calls whose key ends in
// __meta: lockKey collapses the suffix, so a raw __meta key locks a
// DIFFERENT lock than every normalized path uses.
func checkMetaKeys(pass *framework.Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeOf(info, call)
		if fn == nil || (fn.Name() != "Lock" && fn.Name() != "RLock") {
			return true
		}
		if ok, _ := isNameLockAcquire(info, call); !ok {
			return true
		}
		if len(call.Args) == 1 && hasMetaSuffix(info, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"raw lock on a __meta key bypasses lockKey's collapse; lock the base model name instead")
		}
		return true
	})
}

// hasMetaSuffix reports whether the key expression statically ends in
// "__meta": a string literal/constant with the suffix, or a
// concatenation whose right side has it.
func hasMetaSuffix(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		s := tv.Value.String()
		return strings.HasSuffix(strings.Trim(s, `"`), "__meta")
	}
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		return hasMetaSuffix(info, be.Y)
	}
	return false
}

// checkAdmissionOrder enforces rule C inside one function: after a first
// Gate.Admit, any further Gate.Admit must be under a branch that checked
// the booked field of an earlier ticket (the queued path books a queue
// position with admitQueued instead).
func checkAdmissionOrder(pass *framework.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	admits := 0
	var walk func(n ast.Node, bookedGuarded bool)
	walk = func(n ast.Node, bookedGuarded bool) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.IfStmt:
			if s.Init != nil {
				walk(s.Init, bookedGuarded)
			}
			walk(s.Cond, bookedGuarded)
			pos, neg := bookedCondition(s.Cond)
			walk(s.Body, bookedGuarded || pos)
			if s.Else != nil {
				walk(s.Else, bookedGuarded || neg)
			}
			return
		case *ast.CallExpr:
			if framework.IsMethodNamed(info, s, "Gate", "Admit") {
				admits++
				if admits > 1 && !bookedGuarded {
					pass.Reportf(s.Pos(),
						"second-level Admit without checking the first ticket is booked: a queued global admission must take only a queue position (admitQueued), or two requests deadlock holding one slot each")
				}
			}
			if framework.IsMethodNamed(info, s, "Gate", "admitQueued") {
				admits++ // occupies the second level; further Admits need the guard too
			}
		}
		children(n, func(c ast.Node) { walk(c, bookedGuarded) })
	}
	walk(body, false)
}

// bookedCondition reports whether cond is a booked-field check: pos for
// `x.booked`-shaped truth, neg for its negation (whose ELSE branch is the
// guarded one).
func bookedCondition(cond ast.Expr) (pos, neg bool) {
	e := ast.Unparen(cond)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		p, _ := bookedCondition(ue.X)
		return false, p
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		return name == "booked" || name == "Booked", false
	}
	return false, false
}

// checkLockedCalls enforces rule D: a call to x.fooLocked() must come
// from a *Locked function itself, or after a Lock/RLock call on a mutex
// reachable from the same receiver root earlier in the body.
func checkLockedCalls(pass *framework.Pass, funcName string, body *ast.BlockStmt) {
	if strings.HasSuffix(funcName, "Locked") {
		return
	}
	info := pass.TypesInfo
	locked := map[types.Object]bool{} // roots whose mutex was locked
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name == "Lock" || name == "RLock" {
			if isSyncMutexLock(info, call) {
				if root := rootObject(info, sel.X); root != nil {
					locked[root] = true
				}
			}
			return true
		}
		if strings.HasSuffix(name, "Locked") && framework.CalleeOf(info, call) != nil {
			root := rootObject(info, sel.X)
			if root == nil || !locked[root] {
				pass.Reportf(call.Pos(),
					"%s is a *Locked method: the receiver's mutex must be held at the call (lock it first, or hoist the call into the critical section)", name)
			}
		}
		return true
	})
}

// isSyncMutexLock reports whether call locks a sync.Mutex or
// sync.RWMutex.
func isSyncMutexLock(info *types.Info, call *ast.CallExpr) bool {
	name := framework.CalleeName(info, call)
	return name == "(*sync.Mutex).Lock" || name == "(*sync.RWMutex).Lock" || name == "(*sync.RWMutex).RLock"
}

// rootObject resolves the leftmost identifier of a selector chain
// (c.mu → c; c.inner.mu → c).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return framework.ObjectOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// children invokes fn for each immediate child node of n (one-level
// Inspect).
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
