package lockorder_test

import (
	"testing"

	"bismarck/internal/analysis/analysistest"
	"bismarck/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "locks")
}
