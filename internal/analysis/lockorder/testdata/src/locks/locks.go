// Package locks seeds the deadlock-shaped bug classes lockorder must
// catch: nested exclusive name locks, raw __meta lock keys, the two-gate
// admission deadlock, and *Locked helpers called outside the critical
// section (the decode-storm class).
package locks

import (
	"fmt"
	"io"
	"sync"
)

// Guard mirrors the sqlish.Guard contract shape.
type Guard interface {
	Lock(name string) (unlock func())
	RLock(name string) (unlock func())
}

func shadowName(name string) string { return name + "__shadow" }

// badNested holds two exclusive name locks at once.
func badNested(g Guard) {
	unlock := g.Lock("alpha")
	defer unlock()
	u2 := g.Lock("beta") // want `exclusive name lock taken while another`
	u2()
}

// okSequential closes one window before opening the next.
func okSequential(g Guard) {
	u := g.Lock("alpha")
	u()
	u2 := g.Lock("beta")
	u2()
}

// okShadowSwap is the sanctioned replace-and-fill nesting: the shadow key
// is disjoint from the base key by construction.
func okShadowSwap(g Guard, name string) {
	defer g.Lock(shadowName(name))()
	unlock := g.Lock(name)
	defer unlock()
}

// okReadThenWrite holds a shared lock only; rule A constrains exclusive
// pairs.
func okReadThenWrite(g Guard) {
	ru := g.RLock("alpha")
	defer ru()
	u := g.Lock("beta")
	u()
}

// badMetaKey locks the side table's raw name, missing every writer that
// locks the collapsed base key.
func badMetaKey(g Guard) {
	u := g.Lock("digits__meta") // want `raw lock on a __meta key bypasses lockKey's collapse`
	u()
}

// badMetaConcat builds the bypassing key dynamically.
func badMetaConcat(g Guard, model string) {
	u := g.RLock(model + "__meta") // want `raw lock on a __meta key bypasses lockKey's collapse`
	u()
}

// badPrintUnderLock writes to the session output while the name lock is
// held: if out is a network connection, one stalled client write stalls
// every writer queued on the table's exclusive lock.
func badPrintUnderLock(g Guard, out io.Writer, rows int) {
	defer g.Lock("papers")()
	fmt.Fprintf(out, "table has %d rows\n", rows) // want `output written while a name lock`
}

// okPrintAfterUnlock computes under the lock and prints after release.
func okPrintAfterUnlock(g Guard, out io.Writer, count func() int) {
	unlock := g.RLock("papers")
	rows := count()
	unlock()
	fmt.Fprintf(out, "table has %d rows\n", rows)
}

// Ticket and Gate mirror the serve admission shapes.
type Ticket struct{ booked bool }

func (t *Ticket) Release() {}

type Gate struct{}

func (g *Gate) Admit() (Ticket, error)       { return Ticket{booked: true}, nil }
func (g *Gate) admitQueued() (Ticket, error) { return Ticket{}, nil }

// badTwoLevel is the admission deadlock shape: the model slot is taken
// while the global admission may still be queued, so two requests can
// hold one slot each of the two gates and wait forever for the other's.
func badTwoLevel(global, model *Gate) error {
	gt, err := global.Admit()
	if err != nil {
		return err
	}
	defer gt.Release()
	mt, err := model.Admit() // want `second-level Admit without checking the first ticket is booked`
	if err != nil {
		return err
	}
	defer mt.Release()
	return nil
}

// okTwoLevel takes the model slot only when the global slot is already
// booked; the queued path books a queue position.
func okTwoLevel(global, model *Gate) error {
	gt, err := global.Admit()
	if err != nil {
		return err
	}
	defer gt.Release()
	var mt Ticket
	if gt.booked {
		mt, err = model.Admit()
	} else {
		mt, err = model.admitQueued()
	}
	if err != nil {
		return err
	}
	defer mt.Release()
	return nil
}

// cache mirrors the serving cache's publishLocked contract.
type cache struct {
	mu      sync.Mutex
	entries map[string]int
}

func (c *cache) publishLocked(k string) { c.entries[k] = 1 }

// refreshLocked is itself *Locked: its callers own the mutex.
func (c *cache) refreshLocked(k string) { c.publishLocked(k) }

// badPublish calls the *Locked helper with no mutex held — the
// decode-storm shape, where concurrent fills each publish their own
// entry.
func badPublish(c *cache, k string) {
	c.publishLocked(k) // want `publishLocked is a \*Locked method`
}

// okPublish hoists the call into the critical section.
func okPublish(c *cache, k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishLocked(k)
}
