// Package noalloc implements the bismarckvet analyzer for the
// //bismarck:noalloc annotation: a function so marked is a steady-state
// zero-allocation hot path (a scoring kernel, the cache hit path, the
// binary frame loop), and the analyzer rejects constructs that allocate
// per call:
//
//   - calls into package fmt;
//   - string concatenation and string<->[]byte conversions (conversions
//     compiled away inside comparisons are allowed — the memoization
//     idiom's comparison form);
//   - append to a function-local slice (per-call growth; append into a
//     caller-owned or struct-owned buffer is the amortized idiom and is
//     allowed);
//   - make/new outside a cap-guarded grow-once block
//     (`if cap(x) < n { x = make(...) }` amortizes to zero);
//   - function literals (closure allocation);
//   - boxing a numeric or boolean scalar into an interface argument.
//
// Two escapes keep the annotation honest rather than performative:
// anything inside a return statement is a cold path by construction
// (the function is leaving; error construction lives there), and a line
// carrying //bismarck:allowalloc <reason> is accepted as an audited
// exception (the binary session's model-name memoization re-converts
// only when the model changes).
//
// The runtime witnesses — TestPredictZeroAlloc, TestBinFrameZeroAlloc,
// TestShardedEpochAllocs — remain authoritative; noalloc catches the
// regression at vet time, before a benchmark ever runs.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"bismarck/internal/analysis/framework"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc: "check //bismarck:noalloc functions for per-call allocations\n\n" +
		"Annotated hot paths must not call fmt, concatenate or convert strings outside\n" +
		"comparisons, append to function-local slices, make/new outside cap-guarded\n" +
		"grow-once blocks, create closures, or box scalars into interfaces. Return\n" +
		"statements are cold paths; //bismarck:allowalloc marks audited exceptions.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		allow := framework.LineAnnotations(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !framework.HasAnnotation(fd.Doc, "noalloc") {
				continue
			}
			w := &walker{pass: pass, info: pass.TypesInfo, allow: allow, decl: fd}
			w.stmt(fd.Body, ctx{})
		}
	}
	return nil
}

// ctx carries the path context that licenses allocations.
type ctx struct {
	inReturn   bool // inside a return statement: cold path
	capGuarded bool // inside an `if cap(...) ...` grow-once block
	inCompare  bool // operand of a comparison: conversions compile away
}

type walker struct {
	pass  *framework.Pass
	info  *types.Info
	allow map[int][]string
	decl  *ast.FuncDecl
}

// allowed reports whether the node's line carries an allowalloc
// suppression.
func (w *walker) allowed(pos token.Pos) bool {
	for _, a := range w.allow[w.pass.Fset.Position(pos).Line] {
		if a == "allowalloc" {
			return true
		}
	}
	return false
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	if w.allowed(pos) {
		return
	}
	w.pass.Reportf(pos, "//bismarck:noalloc function %s: "+format,
		append([]any{w.decl.Name.Name}, args...)...)
}

func (w *walker) stmt(s ast.Stmt, c ctx) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.stmt(inner, c)
		}
	case *ast.ReturnStmt:
		rc := c
		rc.inReturn = true
		for _, r := range s.Results {
			w.expr(r, rc)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, c)
		w.expr(s.Cond, c)
		bodyCtx := c
		if condChecksCap(s.Cond) {
			bodyCtx.capGuarded = true
		}
		w.stmt(s.Body, bodyCtx)
		w.stmt(s.Else, c)
	case *ast.ForStmt:
		w.stmt(s.Init, c)
		if s.Cond != nil {
			w.expr(s.Cond, c)
		}
		w.stmt(s.Post, c)
		w.stmt(s.Body, c)
	case *ast.RangeStmt:
		w.expr(s.X, c)
		w.stmt(s.Body, c)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, c)
		}
		for _, l := range s.Lhs {
			w.expr(l, c)
		}
	case *ast.ExprStmt:
		w.expr(s.X, c)
	case *ast.DeferStmt:
		w.expr(s.Call, c)
	case *ast.GoStmt:
		w.report(s.Pos(), "go statement allocates a goroutine per call")
		w.expr(s.Call, c)
	case *ast.SendStmt:
		w.expr(s.Chan, c)
		w.expr(s.Value, c)
	case *ast.IncDecStmt:
		w.expr(s.X, c)
	case *ast.SwitchStmt:
		w.stmt(s.Init, c)
		if s.Tag != nil {
			// A switch tag compares against each case: conversions here
			// enjoy the same comparison optimization.
			tc := c
			tc.inCompare = true
			w.expr(s.Tag, tc)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				ec := c
				ec.inCompare = true
				w.expr(e, ec)
			}
			for _, inner := range cc.Body {
				w.stmt(inner, c)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, c)
		w.stmt(s.Assign, c)
		for _, cl := range s.Body.List {
			for _, inner := range cl.(*ast.CaseClause).Body {
				w.stmt(inner, c)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			w.stmt(cc.Comm, c)
			for _, inner := range cc.Body {
				w.stmt(inner, c)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, c)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, c)
					}
				}
			}
		}
	}
}

func (w *walker) expr(e ast.Expr, c ctx) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.expr(e.X, c)
	case *ast.FuncLit:
		w.report(e.Pos(), "function literal allocates a closure per call")
		// Do not descend: the closure itself is the finding.
	case *ast.BinaryExpr:
		inner := c
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			inner.inCompare = true
		case token.ADD:
			if isStringType(w.info, e) && !c.inReturn {
				w.report(e.OpPos, "string concatenation allocates")
			}
		}
		w.expr(e.X, inner)
		w.expr(e.Y, inner)
	case *ast.CallExpr:
		w.call(e, c)
	case *ast.UnaryExpr:
		if e.Op == token.AND && !c.inReturn {
			if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); isLit {
				w.report(e.Pos(), "composite literal address allocates")
			}
		}
		w.expr(e.X, c)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, c)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, c)
	case *ast.SelectorExpr:
		w.expr(e.X, c)
	case *ast.IndexExpr:
		w.expr(e.X, c)
		w.expr(e.Index, c)
	case *ast.SliceExpr:
		w.expr(e.X, c)
		w.expr(e.Low, c)
		w.expr(e.High, c)
		w.expr(e.Max, c)
	case *ast.StarExpr:
		w.expr(e.X, c)
	case *ast.TypeAssertExpr:
		w.expr(e.X, c)
	}
}

func (w *walker) call(call *ast.CallExpr, c ctx) {
	// Conversions: string <-> []byte/[]rune allocate a copy, except when
	// compiled into a comparison.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isAllocConversion(w.info, tv.Type, call.Args[0]) && !c.inReturn && !c.inCompare {
			w.report(call.Pos(), "string conversion allocates a copy (the comparison form string(b) == s is free; memoize with //bismarck:allowalloc if a copy is required)")
		}
		w.expr(call.Args[0], c)
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(w.info, id) {
		switch id.Name {
		case "make", "new":
			if !c.inReturn && !c.capGuarded {
				w.report(call.Pos(), "%s outside a cap-guarded grow-once block allocates per call", id.Name)
			}
		case "append":
			if !c.inReturn && !c.capGuarded && len(call.Args) > 0 && w.appendsToLocal(call.Args[0]) {
				w.report(call.Pos(), "append to a function-local slice grows per call; append into a caller-owned or reused buffer instead")
			}
		}
		for _, a := range call.Args {
			w.expr(a, c)
		}
		return
	}

	if fn := framework.CalleeOf(w.info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !c.inReturn {
			w.report(call.Pos(), "call to fmt.%s allocates (format state and boxed operands)", fn.Name())
		}
		w.checkBoxing(call, fn, c)
	}
	w.expr(call.Fun, c)
	for _, a := range call.Args {
		w.expr(a, c)
	}
}

// checkBoxing reports numeric/bool scalars passed to interface-typed
// parameters: the conversion heap-allocates the boxed word.
func (w *walker) checkBoxing(call *ast.CallExpr, fn *types.Func, c ctx) {
	if c.inReturn {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return // fmt already reported wholesale
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := w.info.Types[arg].Type
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			w.report(arg.Pos(), "scalar %s boxed into interface argument allocates", at.String())
		}
	}
}

// appendsToLocal reports whether the append destination is a bare local
// variable of the annotated function (fresh per-call growth). Parameters,
// struct fields, dereferences and slice expressions are caller- or
// receiver-owned buffers.
func (w *walker) appendsToLocal(dst ast.Expr) bool {
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return false
	}
	obj := framework.ObjectOf(w.info, id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if w.decl.Type.Params != nil {
		for _, f := range w.decl.Type.Params.List {
			for _, n := range f.Names {
				if w.info.Defs[n] == obj {
					return false
				}
			}
		}
	}
	if w.decl.Recv != nil {
		for _, f := range w.decl.Recv.List {
			for _, n := range f.Names {
				if w.info.Defs[n] == obj {
					return false
				}
			}
		}
	}
	return v.Pos() >= w.decl.Body.Pos() && v.Pos() <= w.decl.Body.End()
}

// isBuiltin reports whether the identifier denotes a language builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if _, ok := obj.(*types.Builtin); ok {
		return true
	}
	return obj == nil && info.Defs[id] == nil
}

// condChecksCap reports whether the condition consults cap() — the
// grow-once guard shape.
func condChecksCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStringType reports whether the expression has string type.
func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAllocConversion reports whether converting arg to target copies
// memory: string <-> []byte / []rune in either direction.
func isAllocConversion(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.Types[arg].Type
	if at == nil {
		return false
	}
	return (isStringy(target) && isByteOrRuneSlice(at)) ||
		(isByteOrRuneSlice(target) && isStringy(at))
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	k := b.Kind()
	return k == types.Uint8 || k == types.Int32
}
