package noalloc_test

import (
	"testing"

	"bismarck/internal/analysis/analysistest"
	"bismarck/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "hot")
}
