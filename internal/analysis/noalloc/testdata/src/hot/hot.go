// Package hot seeds the hot-path allocation bug classes noalloc must
// catch, headlined by the historical one: a per-step gradient buffer
// allocated inside a training kernel.
package hot

import "fmt"

func record(v any) {}

// badStepKernel is the historical bug: one fresh slice per gradient
// step, a few hundred thousand allocations per epoch.
//
//bismarck:noalloc
func badStepKernel(w, x []float64, lr float64) {
	grad := make([]float64, len(w)) // want `make outside a cap-guarded grow-once block allocates per call`
	for i := range x {
		grad[i] = x[i] * lr
	}
	for i := range w {
		w[i] -= grad[i]
	}
}

// okStepKernel takes the scratch buffer from the caller.
//
//bismarck:noalloc
func okStepKernel(w, x, grad []float64, lr float64) {
	for i := range x {
		grad[i] = x[i] * lr
	}
	for i := range w {
		w[i] -= grad[i]
	}
}

type scratch struct{ buf []float64 }

// okGrowOnce is the amortized idiom: make only under the cap guard.
//
//bismarck:noalloc
func (s *scratch) okGrowOnce(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
	return s.buf
}

// badFmt drags the whole fmt machinery into a kernel.
//
//bismarck:noalloc
func badFmt(w, x []float64) float64 {
	var dot float64
	for i := range w {
		dot += w[i] * x[i]
	}
	fmt.Println(dot) // want `call to fmt.Println allocates`
	return dot
}

// okColdError may build its error: a return statement is a cold path by
// construction.
//
//bismarck:noalloc
func okColdError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative size %d", n)
	}
	return n * 2, nil
}

// badConvert copies the byte slice on every call.
//
//bismarck:noalloc
func badConvert(b []byte) int {
	s := string(b) // want `string conversion allocates a copy`
	return len(s)
}

// okMemoized is the binary session's model-name idiom: the comparison
// form is free, and the rare re-conversion is an audited exception.
//
//bismarck:noalloc
func okMemoized(b []byte, cur string) string {
	if string(b) != cur {
		cur = string(b) //bismarck:allowalloc model switch is rare
	}
	return cur
}

// badConcat builds a key per call.
//
//bismarck:noalloc
func badConcat(a, b string) int {
	key := a + b // want `string concatenation allocates`
	return len(key)
}

// badAccumulate grows a fresh local slice per call.
//
//bismarck:noalloc
func badAccumulate(xs []float64) float64 {
	var squares []float64
	for _, v := range xs {
		squares = append(squares, v*v) // want `append to a function-local slice grows per call`
	}
	var sum float64
	for _, v := range squares {
		sum += v
	}
	return sum
}

// okAppendCallerBuf appends into the caller's buffer — the amortized
// response-encoding idiom.
//
//bismarck:noalloc
func okAppendCallerBuf(dst []byte, id byte) []byte {
	dst = append(dst, id)
	return dst
}

// badClosure allocates the step function per call.
//
//bismarck:noalloc
func badClosure(w []float64, lr float64) {
	step := func(i int) { w[i] -= lr } // want `function literal allocates a closure per call`
	for i := range w {
		step(i)
	}
}

// badBoxing boxes every sample into an interface.
//
//bismarck:noalloc
func badBoxing(vs []float64) {
	for _, v := range vs {
		record(v) // want `scalar float64 boxed into interface argument allocates`
	}
}

// unannotated functions may allocate freely.
func okUnannotated(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}
