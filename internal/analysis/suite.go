// Package analysis assembles the bismarckvet analyzer suite: the
// project-specific static checks that prove the codebase's concurrency,
// resource, and crash-fidelity invariants at compile time. Each analyzer
// encodes an invariant that already has a runtime witness (a hammer or
// fault-injection test); the suite makes the same regression fail `go
// vet` before any test runs.
package analysis

import (
	"bismarck/internal/analysis/crashfidelity"
	"bismarck/internal/analysis/framework"
	"bismarck/internal/analysis/lockorder"
	"bismarck/internal/analysis/noalloc"
	"bismarck/internal/analysis/ticketpair"
)

// Suite is every bismarckvet analyzer, in the order diagnostics group
// most usefully: resource pairing first (the leaks), then ordering (the
// deadlocks), then crash fidelity, then allocation discipline.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		ticketpair.Analyzer,
		lockorder.Analyzer,
		crashfidelity.Analyzer,
		noalloc.Analyzer,
	}
}
