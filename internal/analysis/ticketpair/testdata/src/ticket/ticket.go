// Package ticket seeds the acquire/release bug classes ticketpair must
// catch — and the legitimate pairings it must not flag. The first case is
// the PR 8 slot leak verbatim: a gate ticket acquired by a connection
// worker that returns on an error path without Release.
package ticket

import (
	"sync"

	"bismarck/internal/serve"
	"bismarck/internal/sqlish"
)

type scratch struct{ n int }

func doWork() error  { return nil }
func use(s *scratch) {}

// leakOnEarlyReturn is the historical PR 8 shape: the error path between
// Admit and Release returns with the slot still booked.
func leakOnEarlyReturn(g *serve.Gate, work func() error) error {
	tk, err := g.Admit() // want `gate ticket "tk" can leave the function without being released`
	if err != nil {
		return err
	}
	tk.Wait()
	if err := work(); err != nil {
		return err // slot still booked here
	}
	tk.Release()
	return nil
}

// okDeferRelease pairs the ticket the recommended way.
func okDeferRelease(g *serve.Gate) error {
	tk, err := g.Admit()
	if err != nil {
		return err
	}
	defer tk.Release()
	tk.Wait()
	return doWork()
}

// okWaitOrCancel handles the cancellation result: WaitOrCancel returning
// false means the booking was already returned.
func okWaitOrCancel(g *serve.Gate, done chan struct{}) bool {
	tk, err := g.Admit()
	if err != nil {
		return false
	}
	if !tk.WaitOrCancel(done) {
		return false
	}
	defer tk.Release()
	return true
}

// leakAfterWait forgets Release on the granted path.
func leakAfterWait(g *serve.Gate, done chan struct{}) {
	tk, err := g.Admit() // want `gate ticket "tk" can leave the function without being released`
	if err != nil {
		return
	}
	if !tk.WaitOrCancel(done) {
		return
	}
	_ = doWork()
}

// okAbandon returns the booking without serving.
func okAbandon(g *serve.Gate) {
	tk, err := g.Admit()
	if err != nil {
		return
	}
	tk.Abandon()
}

// okHandOff transfers the obligation to the receiver of the channel.
func okHandOff(g *serve.Gate, out chan serve.Ticket) error {
	tk, err := g.Admit()
	if err != nil {
		return err
	}
	out <- tk
	return nil
}

// discardedTicket drops the ticket on the floor at the call site.
func discardedTicket(g *serve.Gate) {
	g.Admit() // want `result of this call is discarded; the gate ticket it acquires can never be released`
}

// admissionLeak loses a two-level admission (model and global slot) on
// the granted path.
func admissionLeak(p *serve.Plane, done chan struct{}) {
	ad, err := p.Admit("digits") // want `admission "ad" can leave the function without being released`
	if err != nil {
		return
	}
	if !ad.Wait(done) {
		return
	}
	_ = doWork()
}

// okAdmission is the serveFrame worker shape from the binary protocol: the
// admission is handed to a goroutine that waits cancellably and releases.
func okAdmission(p *serve.Plane, done chan struct{}, wg *sync.WaitGroup) {
	ad, err := p.Admit("digits")
	if err != nil {
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if !ad.Wait(done) {
			return
		}
		defer ad.Release()
		_ = doWork()
	}()
}

// poolLeak takes a scratch object from the pool and returns without
// putting it back on one path.
func poolLeak(pool *sync.Pool, hot bool) {
	sc := pool.Get().(*scratch) // want `pooled object "sc" can leave the function without being released`
	sc.n++
	if hot {
		return // sc never returned to the pool
	}
	pool.Put(sc)
}

// okPool is the Plane.score idiom.
func okPool(pool *sync.Pool) {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	use(sc)
}

// lockLeak drops a name lock on an early return.
func lockLeak(g sqlish.Guard, cond bool) {
	unlock := g.Lock("model") // want `unlock closure "unlock" can leave the function without being released`
	if cond {
		return // lock held forever
	}
	unlock()
}

// okLockDefer releases through the immediate-defer form.
func okLockDefer(g sqlish.Guard) error {
	defer g.Lock("model")()
	return doWork()
}

// okRLockWindow bounds a shared lock to an explicit window.
func okRLockWindow(g sqlish.Guard) error {
	unlock := g.RLock("model")
	err := doWork()
	unlock()
	return err
}

// discardedUnlock never even binds the release closure.
func discardedUnlock(g sqlish.Guard) {
	g.Lock("model") // want `result of this call is discarded; the unlock closure it acquires can never be released`
}

// uncancellableWait is the deprecated Ticket.Wait on a connection-owned
// path: a done channel is right there and must be used.
func uncancellableWait(g *serve.Gate, done chan struct{}) {
	tk, err := g.Admit()
	if err != nil {
		return
	}
	defer tk.Release()
	tk.Wait() // want `Ticket.Wait blocks uncancellably while cancel channel "done" is in scope`
}

// nilCancelWait passes nil where the connection's done channel belongs.
func nilCancelWait(p *serve.Plane, done chan struct{}) {
	ad, err := p.Admit("digits")
	if err != nil {
		return
	}
	defer ad.Release()
	ad.Wait(nil) // want `waiting with a nil cancel channel blocks uncancellably while cancel channel "done" is in scope`
}

// okPlainWait has no cancellation signal in scope, so the blocking wait
// is the only option and is not flagged.
func okPlainWait(g *serve.Gate) {
	tk, err := g.Admit()
	if err != nil {
		return
	}
	defer tk.Release()
	tk.Wait()
}
