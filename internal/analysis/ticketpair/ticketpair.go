// Package ticketpair implements the bismarckvet analyzer that proves the
// acquire/release pairing invariants of the serving and storage planes:
//
//   - every serve.Gate ticket obtained from Admit (or admitQueued) must
//     reach Release or Abandon — or a handled WaitOrCancel cancellation —
//     on every path out of the acquiring function (the PR 8 dead-client
//     slot-leak class);
//   - every serve.Plane admission must likewise reach Release or a
//     handled Wait(cancel)=false;
//   - every sync.Pool object taken with Get must be Put back;
//   - every unlock closure returned by a name-lock acquisition
//     (sqlish.Guard.Lock/RLock, server.NameLocks, Session.lockName/
//     rlockName) must be invoked or deferred, never dropped.
//
// A value that escapes the function — returned, captured by a closure,
// stored, or passed to another call — discharges the obligation there:
// the analyzer is per-function and flow-sensitive, not a whole-program
// escape analysis. Paths are explored structurally (both branches of
// every if/switch/select, loop bodies once), with the (value, error)
// acquisition idiom understood: the obligation exists only where the
// paired error is nil.
//
// It also enforces the PR 8 teardown lesson as a style rule: calling the
// uncancellable Ticket.Wait (or passing a nil cancel) while a done
// channel is in scope is reported — connection-owned paths must use
// WaitOrCancel so a dead client's queued work can be abandoned.
package ticketpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"bismarck/internal/analysis/framework"
)

// Analyzer is the ticketpair analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ticketpair",
	Doc: "check that gate tickets, admissions, pooled objects and unlock closures are released on every path\n\n" +
		"The serving plane's admission tickets, sync.Pool scratch objects and per-name unlock\n" +
		"closures are manually paired resources; leaking one on an early return is the PR 8\n" +
		"slot-leak bug class. ticketpair walks every path of the acquiring function and\n" +
		"reports acquisitions that can reach a return unreleased.",
	Run: run,
}

// acquireKind classifies what a call acquires.
type acquireKind int

const (
	acqNone acquireKind = iota
	acqTicket
	acqAdmission
	acqPoolObj
	acqUnlock
)

func (k acquireKind) noun() string {
	switch k {
	case acqTicket:
		return "gate ticket"
	case acqAdmission:
		return "admission"
	case acqPoolObj:
		return "pooled object"
	case acqUnlock:
		return "unlock closure"
	}
	return "value"
}

// releaseMethods names the methods that discharge each kind when invoked
// on the tracked value.
var releaseMethods = map[acquireKind]map[string]bool{
	acqTicket:    {"Release": true, "Abandon": true},
	acqAdmission: {"Release": true},
}

// classifyAcquire reports what call acquires, if anything.
func classifyAcquire(info *types.Info, call *ast.CallExpr) acquireKind {
	switch {
	case framework.IsMethodNamed(info, call, "serve.Gate", "Admit"),
		framework.IsMethodNamed(info, call, "serve.Gate", "admitQueued"):
		return acqTicket
	case framework.IsMethodNamed(info, call, "serve.Plane", "Admit"):
		return acqAdmission
	case framework.CalleeName(info, call) == "(*sync.Pool).Get":
		return acqPoolObj
	}
	// Unlock closures: any method named Lock/RLock/lockName/rlockName
	// whose only result is a niladic func — the Guard contract shape.
	if fn := framework.CalleeOf(info, call); fn != nil {
		switch fn.Name() {
		case "Lock", "RLock", "lockName", "rlockName":
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Results().Len() == 1 {
				if rsig, ok := sig.Results().At(0).Type().Underlying().(*types.Signature); ok &&
					rsig.Params().Len() == 0 && rsig.Results().Len() == 0 {
					return acqUnlock
				}
			}
		}
	}
	return acqNone
}

// tracked is one acquisition being followed through the function.
type tracked struct {
	kind acquireKind
	pos  token.Pos // the acquiring call
	name string    // variable name, for diagnostics
	err  types.Object
}

// pathState is the walker's per-path view: which tracked objects are
// still owed a release on this path.
type pathState struct {
	open map[types.Object]bool
}

func (st *pathState) clone() *pathState {
	c := &pathState{open: make(map[types.Object]bool, len(st.open))}
	for k, v := range st.open {
		c.open[k] = v
	}
	return c
}

// walker analyzes one function body.
type walker struct {
	pass    *framework.Pass
	info    *types.Info
	tracked map[types.Object]*tracked
	leaked  map[types.Object]bool // reported (dedup across paths)
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &walker{
				pass:    pass,
				info:    pass.TypesInfo,
				tracked: map[types.Object]*tracked{},
				leaked:  map[types.Object]bool{},
			}
			st := &pathState{open: map[types.Object]bool{}}
			terminated := w.walkStmts(body.List, st, nil)
			if !terminated {
				w.reportOpen(st, nil, body.End())
			}
			// Closure bodies are analyzed by their own Inspect visit.
			return true
		})
		checkUncancellableWaits(pass, f)
	}
	return nil
}

// reportOpen reports every obligation still open in st (excluding objs
// open at an enclosing loop's entry, which may still be released after
// the loop).
func (w *walker) reportOpen(st *pathState, loopEntry map[types.Object]bool, _ token.Pos) {
	for obj, open := range st.open {
		if !open || w.leaked[obj] || (loopEntry != nil && loopEntry[obj]) {
			continue
		}
		w.leaked[obj] = true
		tr := w.tracked[obj]
		w.pass.Reportf(tr.pos, "%s %q can leave the function without being released (every path must Release/Abandon it, invoke the unlock, Put it back, or hand it off)", tr.kind.noun(), tr.name)
	}
}

// walkStmts walks a statement list sequentially, returning whether the
// list unconditionally terminates the function.
func (w *walker) walkStmts(stmts []ast.Stmt, st *pathState, loopEntry map[types.Object]bool) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st, loopEntry) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt, st *pathState, loopEntry map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.escapeScan(v, st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.handleExprStmt(s, st)
	case *ast.DeferStmt:
		w.handleDefer(s, st)
	case *ast.GoStmt:
		w.escapeScan(s.Call, st)
	case *ast.SendStmt:
		w.escapeScan(s.Chan, st)
		w.escapeScan(s.Value, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeScan(r, st)
		}
		w.reportOpen(st, nil, s.Pos())
		return true
	case *ast.BranchStmt:
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE {
			// Leaving the loop iteration: anything acquired inside the
			// loop body is owed by now.
			w.reportOpen(st, loopEntry, s.Pos())
		}
		return false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st, loopEntry)
	case *ast.IfStmt:
		return w.walkIf(s, st, loopEntry)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopEntry)
		}
		if s.Cond != nil {
			w.escapeScan(s.Cond, st)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.escapeScan(s.X, st)
		w.walkLoopBody(s.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkClauses(s, st, loopEntry)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st, loopEntry)
	}
	return false
}

// walkLoopBody analyzes a loop body: obligations acquired inside it must
// be discharged by iteration end (a leak per iteration is still a leak);
// discharges of outer obligations propagate out (the loop may run, and
// zero-iteration leaks are the enclosing path's to report).
func (w *walker) walkLoopBody(body *ast.BlockStmt, st *pathState) {
	entry := make(map[types.Object]bool, len(st.open))
	for k, v := range st.open {
		if v {
			entry[k] = true
		}
	}
	inner := st.clone()
	terminated := w.walkStmts(body.List, inner, entry)
	if !terminated {
		w.reportOpen(inner, entry, body.End())
	}
	// Propagate discharges of outer obligations.
	for obj := range st.open {
		if st.open[obj] && !inner.open[obj] {
			st.open[obj] = false
		}
	}
}

// walkClauses handles switch/type-switch/select: every clause is an
// independent path; an obligation survives if any non-terminating clause
// (or the implicit fall-through of a switch without default) leaves it
// open.
func (w *walker) walkClauses(s ast.Stmt, st *pathState, loopEntry map[types.Object]bool) bool {
	var bodies [][]ast.Stmt
	hasDefault := false
	addCase := func(list []ast.Stmt, isDefault bool) {
		bodies = append(bodies, list)
		hasDefault = hasDefault || isDefault
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopEntry)
		}
		if s.Tag != nil {
			w.escapeScan(s.Tag, st)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			addCase(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopEntry)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			addCase(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				// Channel operations in the comm statement may hand a
				// tracked value off.
				w.walkStmt(cc.Comm, st, loopEntry)
			}
			addCase(cc.Body, cc.Comm == nil)
		}
		hasDefault = true // select blocks until SOME clause runs
	}
	states := make([]*pathState, 0, len(bodies)+1)
	allTerminate := len(bodies) > 0
	for _, b := range bodies {
		cs := st.clone()
		if !w.walkStmts(b, cs, loopEntry) {
			states = append(states, cs)
			allTerminate = false
		}
	}
	if !hasDefault {
		states = append(states, st.clone()) // no case may match
		allTerminate = false
	}
	w.merge(st, states)
	return allTerminate
}

// walkIf handles if/else with the two idioms the codebase pairs
// resources with: the (value, error) acquisition check and the
// WaitOrCancel cancellation check.
func (w *walker) walkIf(s *ast.IfStmt, st *pathState, loopEntry map[types.Object]bool) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st, loopEntry)
	}

	errObj, errEq := errNilCheck(w.info, s.Cond)
	waitObj, waitNeg := waitCancelCheck(w.info, s.Cond)
	if errObj == nil && waitObj == nil {
		// An unrecognized condition may hand tracked values off (f(tk));
		// a recognized idiom's receiver use must NOT count as an escape.
		w.escapeScan(s.Cond, st)
	}

	thenState := st.clone()
	elseState := st.clone()

	// err-pair idiom: inside `if err != nil`, acquisitions paired with
	// err were never granted; inside `if err == nil`, they hold.
	if errObj != nil {
		for tobj, tr := range w.tracked {
			if tr.err == errObj {
				if errEq { // err == nil: then-branch holds the value
					elseState.open[tobj] = false
				} else { // err != nil: then-branch holds nothing
					thenState.open[tobj] = false
				}
			}
		}
	}
	// cancellation idiom: `if !tk.WaitOrCancel(done)` — the false result
	// means the booking is already returned.
	if waitObj != nil && st.open[waitObj] {
		if waitNeg {
			thenState.open[waitObj] = false
		} else {
			elseState.open[waitObj] = false
		}
	}

	thenTerm := w.walkStmts(s.Body.List, thenState, loopEntry)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseState, loopEntry)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseState
	case elseTerm:
		*st = *thenState
	default:
		w.merge(st, []*pathState{thenState, elseState})
	}
	return false
}

// merge folds surviving branch states into st: open if open anywhere.
func (w *walker) merge(st *pathState, branches []*pathState) {
	for obj := range st.open {
		open := false
		for _, b := range branches {
			open = open || b.open[obj]
		}
		st.open[obj] = open
	}
	// Acquisitions that happened inside a branch:
	for _, b := range branches {
		for obj, v := range b.open {
			if _, seen := st.open[obj]; !seen {
				st.open[obj] = st.open[obj] || v
			}
		}
	}
}

// handleAssign tracks acquisitions and scans the RHS for escapes.
func (w *walker) handleAssign(s *ast.AssignStmt, st *pathState) {
	// Single call RHS (possibly via type assertion, the pool.Get idiom).
	if len(s.Rhs) == 1 {
		call := callUnder(s.Rhs[0])
		if call != nil {
			if kind := classifyAcquire(w.info, call); kind != acqNone {
				obj := lhsObject(w.info, s.Lhs, 0)
				if obj == nil {
					w.pass.Reportf(call.Pos(), "%s acquired here is discarded (assigned to _); it can never be released", kind.noun())
				} else {
					tr := &tracked{kind: kind, pos: call.Pos(), name: obj.Name()}
					if len(s.Lhs) == 2 {
						tr.err = lhsObject(w.info, s.Lhs, 1)
					}
					w.tracked[obj] = tr
					st.open[obj] = true
				}
				for _, arg := range call.Args {
					w.escapeScan(arg, st)
				}
				return
			}
		}
	}
	for _, r := range s.Rhs {
		w.escapeScan(r, st)
	}
	for _, l := range s.Lhs {
		// Writing INTO a tracked value's field is receiver use, not escape;
		// writing a tracked value somewhere is covered by the RHS scan.
		_ = l
	}
}

// handleExprStmt recognizes release calls and discarded acquisitions.
func (w *walker) handleExprStmt(s *ast.ExprStmt, st *pathState) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		w.escapeScan(s.X, st)
		return
	}
	if kind := classifyAcquire(w.info, call); kind != acqNone {
		w.pass.Reportf(call.Pos(), "result of this call is discarded; the %s it acquires can never be released", kind.noun())
		return
	}
	if w.dischargeCall(call, st) {
		return
	}
	w.escapeScan(call, st)
}

// handleDefer recognizes the deferred release idioms.
func (w *walker) handleDefer(s *ast.DeferStmt, st *pathState) {
	call := s.Call
	// `defer s.lockName(x)()` — acquire and deferred unlock in one
	// statement: paired by construction.
	if inner := callUnder(call.Fun); inner != nil && classifyAcquire(w.info, inner) != acqNone {
		for _, arg := range inner.Args {
			w.escapeScan(arg, st)
		}
		return
	}
	if w.dischargeCall(call, st) {
		return
	}
	// `defer func() { ... }()` or any deferred call referencing the
	// tracked value hands the obligation to the deferred body.
	w.escapeScan(call, st)
}

// dischargeCall marks obligations released by call: a release method on
// a tracked receiver, an invocation of a tracked unlock closure, or a
// tracked value passed as an argument (Put, hand-off).
func (w *walker) dischargeCall(call *ast.CallExpr, st *pathState) bool {
	// unlock()
	if obj := framework.ObjectOf(w.info, call.Fun); obj != nil {
		if tr, ok := w.tracked[obj]; ok && tr.kind == acqUnlock {
			st.open[obj] = false
			return true
		}
	}
	// tk.Release() / tk.Abandon()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := framework.ObjectOf(w.info, sel.X); obj != nil {
			if tr, ok := w.tracked[obj]; ok {
				if releaseMethods[tr.kind][sel.Sel.Name] {
					st.open[obj] = false
					return true
				}
			}
		}
	}
	return false
}

// escapeScan discharges tracked objects that escape through e: passed to
// a call, captured by a function literal, stored, returned, aliased.
// A method call ON the tracked value (tk.Wait(), sc.Reset()) is receiver
// use, not a hand-off — only its appearance in any other position
// transfers the obligation elsewhere.
func (w *walker) escapeScan(e ast.Expr, st *pathState) {
	if e == nil {
		return
	}
	recv := map[*ast.Ident]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				recv[id] = true
			}
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		// Capture by a function literal hands the obligation to the
		// closure wholesale, receiver positions included (the serveFrame
		// worker pattern: go func() { ...; defer ad.Release() }()).
		if fl, ok := n.(*ast.FuncLit); ok {
			w.dischargeAllRefs(fl.Body, st)
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || recv[id] {
			return true
		}
		obj := w.info.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := w.tracked[obj]; tracked && st.open[obj] {
			st.open[obj] = false
		}
		return true
	})
}

// dischargeAllRefs discharges every tracked object referenced anywhere
// under n, in any position.
func (w *walker) dischargeAllRefs(n ast.Node, st *pathState) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := w.info.Uses[id]; obj != nil {
				if _, tracked := w.tracked[obj]; tracked && st.open[obj] {
					st.open[obj] = false
				}
			}
		}
		return true
	})
}

// callUnder unwraps parens and a type assertion to the call expression
// beneath (the `pool.Get().(*T)` idiom), or returns the call itself.
func callUnder(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, _ := e.(*ast.CallExpr)
	return call
}

// lhsObject resolves the i-th assignee to its object (nil for _ or
// non-identifiers).
func lhsObject(info *types.Info, lhs []ast.Expr, i int) types.Object {
	if i >= len(lhs) {
		return nil
	}
	id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// errNilCheck matches `X != nil` / `X == nil` where X is an identifier
// of type error, returning its object and whether the comparison is ==.
func errNilCheck(info *types.Info, cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNil(info, x) {
		x, y = y, x
	}
	if !isNil(info, y) {
		return nil, false
	}
	obj := framework.ObjectOf(info, x)
	if obj == nil || obj.Type() == nil || obj.Type().String() != "error" {
		return nil, false
	}
	return obj, be.Op == token.EQL
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

// waitCancelCheck matches `tk.WaitOrCancel(c)` / `ad.Wait(c)` (optionally
// negated) used as a condition, returning the receiver object and whether
// the call is negated. The false result of these methods means every
// booking was returned — the cancellation-handled path.
func waitCancelCheck(info *types.Info, cond ast.Expr) (types.Object, bool) {
	negated := false
	e := ast.Unparen(cond)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		negated = true
		e = ast.Unparen(ue.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	isWait := framework.IsMethodNamed(info, call, "serve.Ticket", "WaitOrCancel") ||
		framework.IsMethodNamed(info, call, "serve.Admission", "Wait")
	if !isWait {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return framework.ObjectOf(info, sel.X), negated
}

// checkUncancellableWaits reports Ticket.Wait() calls — and nil-cancel
// Wait/WaitOrCancel calls — made while a done channel is visibly in
// scope: such paths are connection-owned and must wait cancellably, or a
// dead client keeps its queue bookings (the PR 8 teardown lesson).
// Ticket.Wait is deprecated for these paths.
func checkUncancellableWaits(pass *framework.Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		uncancellable := false
		var what string
		switch {
		case framework.IsMethodNamed(info, call, "serve.Ticket", "Wait") && len(call.Args) == 0:
			uncancellable = true
			what = "Ticket.Wait blocks uncancellably"
		case (framework.IsMethodNamed(info, call, "serve.Ticket", "WaitOrCancel") ||
			framework.IsMethodNamed(info, call, "serve.Admission", "Wait")) &&
			len(call.Args) == 1 && isNilExpr(info, call.Args[0]):
			uncancellable = true
			what = "waiting with a nil cancel channel blocks uncancellably"
		}
		if !uncancellable {
			return true
		}
		if done := visibleDoneChannel(pass, call.Pos()); done != "" {
			pass.Reportf(call.Pos(), "%s while cancel channel %q is in scope; use WaitOrCancel(%s) so teardown can reclaim the booking", what, done, done)
		}
		return true
	})
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	return isNil(info, ast.Unparen(e))
}

// visibleDoneChannel reports the name of a chan struct{} (or
// <-chan struct{}) variable declared before pos and visible at it, "" if
// none. Package-level channels are excluded: the rule targets
// connection-owned lifetimes, which are always locals or parameters.
func visibleDoneChannel(pass *framework.Pass, pos token.Pos) string {
	scope := pass.Pkg.Scope().Innermost(pos)
	for ; scope != nil && scope != pass.Pkg.Scope(); scope = scope.Parent() {
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || v.Pos() >= pos {
				continue
			}
			if isStructChan(v.Type()) {
				return name
			}
		}
	}
	return ""
}

func isStructChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
