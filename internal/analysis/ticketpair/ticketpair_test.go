package ticketpair_test

import (
	"testing"

	"bismarck/internal/analysis/analysistest"
	"bismarck/internal/analysis/ticketpair"
)

func TestTicketPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ticketpair.Analyzer, "ticket")
}
