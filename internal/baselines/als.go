package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// ALS trains low-rank matrix factorization by alternating least squares,
// the MADlib-style LMF algorithm: holding R fixed, each L_i is the solution
// of a k×k ridge system over the row's observed cells, and vice versa. Per
// sweep it materializes the rating lists per row and per column and solves
// (rows+cols) dense k×k systems — much heavier machinery per pass than the
// IGD transition, which is how Bismarck ends up orders of magnitude faster
// on MovieLens-scale data (Figure 7A).
type ALS struct {
	Rows, Cols, Rank int
	Mu               float64 // ridge term (defaults to 1e-6 when 0)
	MaxSweeps        int
	RelTol           float64
	TargetLoss       float64
	Seed             int64
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
}

// ALSResult reports a finished ALS run.
type ALSResult struct {
	// Model is flattened exactly like tasks.LMF: L rows then R rows.
	Model     vector.Dense
	Sweeps    int
	Losses    []float64
	Total     time.Duration
	Converged bool
}

type cell struct {
	other int
	v     float64
}

// Run trains on a RatingSchema table.
func (a *ALS) Run(tbl *engine.Table) (*ALSResult, error) {
	if a.MaxSweeps <= 0 {
		return nil, fmt.Errorf("baselines: ALS.MaxSweeps must be > 0")
	}
	mu := a.Mu
	if mu == 0 {
		mu = 1e-6
	}
	k := a.Rank
	// Materialize per-row and per-column rating lists (one scan).
	byRow := make([][]cell, a.Rows)
	byCol := make([][]cell, a.Cols)
	err := tbl.Scan(func(tp engine.Tuple) error {
		i, j, v := int(tp[0].Int), int(tp[1].Int), tp[2].Float
		if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
			return fmt.Errorf("baselines: rating (%d,%d) outside %dx%d", i, j, a.Rows, a.Cols)
		}
		byRow[i] = append(byRow[i], cell{other: j, v: v})
		byCol[j] = append(byCol[j], cell{other: i, v: v})
		return nil
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(a.Seed))
	L := make([]vector.Dense, a.Rows)
	R := make([]vector.Dense, a.Cols)
	for i := range L {
		L[i] = randVec(rng, k, 0.1)
	}
	for j := range R {
		R[j] = randVec(rng, k, 0.1)
	}

	lmf := tasks.NewLMF(a.Rows, a.Cols, a.Rank)
	res := &ALSResult{}
	start := time.Now()
	prevLoss := math.NaN()
	solveSide := func(target []vector.Dense, fixed []vector.Dense, lists [][]cell) error {
		for idx, cells := range lists {
			if len(cells) == 0 {
				continue
			}
			H := NewMatrix(k)
			b := make([]float64, k)
			for _, c := range cells {
				f := fixed[c.other]
				for p := 0; p < k; p++ {
					b[p] += c.v * f[p]
					hp := H.A[p*k:]
					for q := 0; q < k; q++ {
						hp[q] += f[p] * f[q]
					}
				}
			}
			H.AddDiag(mu)
			x, err := H.Solve(b)
			if err != nil {
				return err
			}
			copy(target[idx], x)
		}
		return nil
	}
	for sweep := 0; sweep < a.MaxSweeps; sweep++ {
		if !a.Deadline.IsZero() && time.Now().After(a.Deadline) {
			res.Model = a.flatten(L, R)
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		if err := solveSide(L, R, byRow); err != nil {
			return nil, err
		}
		if err := solveSide(R, L, byCol); err != nil {
			return nil, err
		}
		res.Sweeps = sweep + 1
		w := a.flatten(L, R)
		var loss float64
		err := tbl.Scan(func(tp engine.Tuple) error {
			loss += lmf.Loss(w, tp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Losses = append(res.Losses, loss)
		if a.TargetLoss != 0 && loss <= a.TargetLoss {
			res.Converged = true
			break
		}
		if a.RelTol > 0 && !math.IsNaN(prevLoss) && math.Abs(prevLoss-loss)/math.Max(math.Abs(prevLoss), 1) < a.RelTol {
			res.Converged = true
			break
		}
		prevLoss = loss
	}
	res.Model = a.flatten(L, R)
	res.Total = time.Since(start)
	return res, nil
}

func (a *ALS) flatten(L, R []vector.Dense) vector.Dense {
	w := vector.NewDense((a.Rows + a.Cols) * a.Rank)
	for i, l := range L {
		copy(w[i*a.Rank:], l)
	}
	for j, r := range R {
		copy(w[(a.Rows+j)*a.Rank:], r)
	}
	return w
}

func randVec(rng *rand.Rand, k int, scale float64) vector.Dense {
	v := vector.NewDense(k)
	for i := range v {
		v[i] = scale * rng.NormFloat64()
	}
	return v
}
