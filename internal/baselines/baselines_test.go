package baselines

import (
	"math"
	"math/rand"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

func TestMatrixSolveIdentity(t *testing.T) {
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	x, err := m.Solve([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1, 2, 3} {
		if math.Abs(x[i]-v) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestMatrixSolveRandomSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		m := NewMatrix(n)
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Add(i, i, 3) // keep well-conditioned
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += m.At(i, j) * truth[j]
			}
		}
		x, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			if math.Abs(x[i]-truth[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], truth[i])
			}
		}
	}
}

func TestMatrixSolveSingular(t *testing.T) {
	m := NewMatrix(2) // all zeros
	if _, err := m.Solve([]float64{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestMatrixSolveDimMismatch(t *testing.T) {
	m := NewMatrix(2)
	if _, err := m.Solve([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func denseLRTable(t *testing.T, n, d int, seed int64) (*engine.Table, vector.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make(vector.Dense, d)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	tbl := engine.NewMemTable("d", tasks.DenseExampleSchema)
	for i := 0; i < n; i++ {
		x := make(vector.Dense, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := float64(1)
		if vector.Dot(truth, x)+0.2*rng.NormFloat64() < 0 {
			y = -1
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	return tbl, truth
}

func TestIRLSConvergesQuadratically(t *testing.T) {
	tbl, _ := denseLRTable(t, 400, 6, 1)
	ir := &IRLS{D: 6, Mu: 0.1, MaxIters: 20, RelTol: 1e-8}
	res, err := ir.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("IRLS did not converge in %d iters (losses %v)", res.Iters, res.Losses)
	}
	// Newton on a smooth strongly convex objective converges in few iters.
	if res.Iters > 12 {
		t.Fatalf("IRLS took %d iterations", res.Iters)
	}
	// Its optimum must be at least as good as a long IGD run.
	igd, err := (&core.Trainer{Task: &tasks.LR{D: 6, Mu: 0.1}, Step: core.DefaultStep(0.1), MaxEpochs: 60, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] > igd.FinalLoss()*1.02 {
		t.Fatalf("IRLS loss %g worse than IGD %g", res.Losses[len(res.Losses)-1], igd.FinalLoss())
	}
}

func TestIRLSMaxDimGate(t *testing.T) {
	tbl, _ := denseLRTable(t, 10, 4, 2)
	ir := &IRLS{D: 4, MaxIters: 2, MaxDim: 3}
	if _, err := ir.Run(tbl); err == nil {
		t.Fatal("expected MaxDim gate to fire")
	}
}

func TestBatchGDDecreasesLossOnLR(t *testing.T) {
	tbl, _ := denseLRTable(t, 300, 5, 3)
	b := &BatchGD{Task: tasks.NewLR(5), Alpha: 1.0, MaxIters: 40, LineSearch: true, Seed: 1}
	res, err := b.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0] {
		t.Fatalf("batch GD did not improve: %v", res.Losses)
	}
	for i := 1; i < len(res.Losses); i++ {
		if res.Losses[i] > res.Losses[i-1]*1.5 {
			t.Fatalf("batch GD unstable at iter %d: %v", i, res.Losses)
		}
	}
}

func TestBatchGDNeedsMoreScansThanIGDForSameLoss(t *testing.T) {
	// The core claim behind Figure 7: per full data scan, IGD makes N steps
	// while batch GD makes one.
	tbl, _ := denseLRTable(t, 400, 5, 4)
	igd, err := (&core.Trainer{Task: tasks.NewLR(5), Step: core.DefaultStep(0.3), MaxEpochs: 3, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	target := igd.FinalLoss()
	b := &BatchGD{Task: tasks.NewLR(5), Alpha: 1.0, MaxIters: 3, LineSearch: true, Seed: 1}
	bres, err := b.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if bres.FinalLoss() <= target {
		t.Fatalf("batch GD (%g) unexpectedly beat IGD (%g) at equal scans", bres.FinalLoss(), target)
	}
}

func TestBatchGDValidation(t *testing.T) {
	tbl, _ := denseLRTable(t, 10, 2, 5)
	if _, err := (&BatchGD{Task: tasks.NewLR(2), Alpha: 1}).Run(tbl); err == nil {
		t.Fatal("MaxIters=0 must error")
	}
	if _, err := (&BatchGD{Task: tasks.NewLR(2), MaxIters: 1}).Run(tbl); err == nil {
		t.Fatal("Alpha=0 must error")
	}
	empty := engine.NewMemTable("e", tasks.DenseExampleSchema)
	if _, err := (&BatchGD{Task: tasks.NewLR(2), Alpha: 1, MaxIters: 1}).Run(empty); err == nil {
		t.Fatal("empty table must error")
	}
}

func ratingTable(t *testing.T, rows, cols, rank int, density float64, seed int64) *engine.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	L := make([]vector.Dense, rows)
	R := make([]vector.Dense, cols)
	for i := range L {
		L[i] = randVec(rng, rank, 1)
	}
	for j := range R {
		R[j] = randVec(rng, rank, 1)
	}
	tbl := engine.NewMemTable("r", tasks.RatingSchema)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.I64(int64(j)), engine.F64(vector.Dot(L[i], R[j]))})
			}
		}
	}
	return tbl
}

func TestALSRecoversLowRankMatrix(t *testing.T) {
	tbl := ratingTable(t, 25, 20, 2, 0.5, 6)
	als := &ALS{Rows: 25, Cols: 20, Rank: 2, MaxSweeps: 60, RelTol: 1e-10, Seed: 2}
	res, err := als.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rmse := math.Sqrt(res.Losses[len(res.Losses)-1] / float64(tbl.NumRows()))
	if rmse > 0.05 {
		t.Fatalf("ALS rmse = %g", rmse)
	}
}

func TestALSRejectsOutOfRangeRatings(t *testing.T) {
	tbl := engine.NewMemTable("r", tasks.RatingSchema)
	tbl.MustInsert(engine.Tuple{engine.I64(99), engine.I64(0), engine.F64(1)})
	als := &ALS{Rows: 2, Cols: 2, Rank: 1, MaxSweeps: 1}
	if _, err := als.Run(tbl); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestALSValidation(t *testing.T) {
	tbl := engine.NewMemTable("r", tasks.RatingSchema)
	if _, err := (&ALS{Rows: 1, Cols: 1, Rank: 1}).Run(tbl); err == nil {
		t.Fatal("MaxSweeps=0 must error")
	}
}

func TestBatchGDOnCRFImproves(t *testing.T) {
	// The "Mallet-style" batch CRF trainer must also learn, just slower.
	const F, L = 5, 2
	rng := rand.New(rand.NewSource(7))
	tbl := engine.NewMemTable("seq", tasks.SeqSchema)
	for s := 0; s < 30; s++ {
		T := 3 + rng.Intn(4)
		offsets := make([]int32, T+1)
		var feats []int32
		labels := make([]int32, T)
		for tt := 0; tt < T; tt++ {
			f := int32(rng.Intn(F))
			labels[tt] = f % 2
			feats = append(feats, f)
			offsets[tt+1] = int32(len(feats))
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(s)), engine.IntsV(offsets), engine.IntsV(feats), engine.IntsV(labels)})
	}
	b := &BatchGD{Task: tasks.NewCRF(F, L), Alpha: 2, MaxIters: 25, LineSearch: true, Seed: 1}
	res, err := b.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0]/2 {
		t.Fatalf("batch CRF did not improve enough: %g -> %g", res.Losses[0], res.FinalLoss())
	}
}
