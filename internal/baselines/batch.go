package baselines

import (
	"fmt"
	"math"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// BatchGD trains any core.Task by full (deterministic) gradient descent:
// every iteration scans ALL the data to form one gradient, then takes one
// step. It is the classical alternative to IGD — and the reason IGD wins:
// an IGD epoch takes N steps for the same scan cost. With a conservative
// step size (Mallet-style) it is slower still; BatchGD is the stand-in for
// the batch optimizers inside CRF++ / Mallet and the "native tool" gradient
// code paths.
//
// The gradient is recovered from the task's own Step function by running it
// against a scratch model with α = 1 and differencing, so any Bismarck task
// gets a batch baseline for free.
type BatchGD struct {
	Task       core.Task
	Alpha      float64 // step size applied to the averaged gradient
	MaxIters   int
	RelTol     float64
	TargetLoss float64
	// LineSearch halves Alpha whenever a step fails to decrease the loss.
	LineSearch bool
	Seed       int64
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
}

// Run trains and reports per-iteration losses.
func (b *BatchGD) Run(tbl *engine.Table) (*core.Result, error) {
	if b.MaxIters <= 0 {
		return nil, fmt.Errorf("baselines: BatchGD.MaxIters must be > 0")
	}
	if b.Alpha <= 0 {
		return nil, fmt.Errorf("baselines: BatchGD.Alpha must be > 0")
	}
	d := b.Task.Dim()
	w := core.InitialModel(b.Task, b.Seed)
	res := &core.Result{}
	start := time.Now()
	alpha := b.Alpha
	prevLoss := math.NaN()
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("baselines: empty table")
	}
	grad := vector.NewDense(d)
	scratch := &core.DenseModel{W: vector.NewDense(d)}
	for it := 0; it < b.MaxIters; it++ {
		if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
			res.Model = w
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		iterStart := time.Now()
		grad.Zero()
		// One full scan: accumulate Σ ∇f_i(w) using the task's Step as a
		// gradient oracle (Step(w, z, 1) moves the scratch model by −∇f).
		err := tbl.Scan(func(tp engine.Tuple) error {
			copy(scratch.W, w)
			b.Task.Step(scratch, tp, 1)
			for i := range grad {
				grad[i] += w[i] - scratch.W[i] // = ∇f_i(w)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		inv := 1 / float64(n)
		cand := w.Clone()
		vector.Axpy(cand, grad, -alpha*inv)
		loss, err := core.TotalLoss(b.Task, cand, tbl)
		if err != nil {
			return nil, err
		}
		if b.LineSearch && !math.IsNaN(prevLoss) && loss > prevLoss {
			alpha /= 2
			// Retry the halved step from the same w.
			cand = w.Clone()
			vector.Axpy(cand, grad, -alpha*inv)
			loss, err = core.TotalLoss(b.Task, cand, tbl)
			if err != nil {
				return nil, err
			}
		}
		w = cand
		res.Epochs = it + 1
		res.Losses = append(res.Losses, loss)
		res.EpochTimes = append(res.EpochTimes, time.Since(iterStart))
		if b.TargetLoss != 0 && loss <= b.TargetLoss {
			res.Converged = true
			break
		}
		if b.RelTol > 0 && !math.IsNaN(prevLoss) && math.Abs(prevLoss-loss)/math.Max(math.Abs(prevLoss), 1) < b.RelTol {
			res.Converged = true
			break
		}
		prevLoss = loss
	}
	res.Model = w
	res.Total = time.Since(start)
	return res, nil
}
