package baselines

import (
	"fmt"
	"math"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// IRLS trains logistic regression by iteratively reweighted least squares
// (Newton's method): each iteration builds the d×d Hessian XᵀSX in one data
// scan and solves a dense linear system. The per-iteration cost is
// O(N·d² + d³) — super-linear in the dimension, which is exactly why the
// paper finds the MADlib-style LR slower than IGD on wide data and
// infeasible on sparse 41k-dimensional DBLife.
type IRLS struct {
	D          int
	Mu         float64 // L2 ridge added to the Hessian diagonal
	MaxIters   int
	RelTol     float64
	TargetLoss float64
	// MaxDim aborts with an error when D exceeds it (0 = unlimited); models
	// the "crashes / does not finish" outcomes of Table 4.
	MaxDim int
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
}

// IRLSResult reports a finished IRLS run.
type IRLSResult struct {
	Model     vector.Dense
	Iters     int
	Losses    []float64
	Total     time.Duration
	Converged bool
}

// Run trains on a dense-example table (tasks.DenseExampleSchema).
func (ir *IRLS) Run(tbl *engine.Table) (*IRLSResult, error) {
	if ir.MaxDim > 0 && ir.D > ir.MaxDim {
		return nil, fmt.Errorf("baselines: IRLS on d=%d exceeds budget %d (O(d²) memory, O(d³) solve)", ir.D, ir.MaxDim)
	}
	if ir.MaxIters <= 0 {
		ir.MaxIters = 25
	}
	d := ir.D
	w := vector.NewDense(d)
	lrTask := &tasks.LR{D: d, Mu: ir.Mu}
	res := &IRLSResult{}
	start := time.Now()
	prevLoss := math.NaN()
	for it := 0; it < ir.MaxIters; it++ {
		if !ir.Deadline.IsZero() && time.Now().After(ir.Deadline) {
			res.Model = w
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		H := NewMatrix(d)
		g := vector.NewDense(d)
		err := tbl.Scan(func(tp engine.Tuple) error {
			x := tp[tasks.ColVec].Dense
			y := tp[tasks.ColLabel].Float
			wx := vector.Dot(w[:len(x)], x)
			p := 1 / (1 + math.Exp(-wx))
			// Gradient of Σ log(1+exp(−y wᵀx)) in p-space: (p − t)x with
			// t = (y+1)/2.
			t := (y + 1) / 2
			c := p - t
			s := p * (1 - p)
			for i, xi := range x {
				g[i] += c * xi
				hi := H.A[i*d:]
				for j, xj := range x {
					hi[j] += s * xi * xj
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if ir.Mu > 0 {
			H.AddDiag(ir.Mu)
			for i := range g {
				g[i] += ir.Mu * w[i]
			}
		} else {
			H.AddDiag(1e-8) // numerical floor
		}
		step, err := H.Solve(append([]float64(nil), g...))
		if err != nil {
			return nil, err
		}
		for i := range w {
			w[i] -= step[i]
		}
		res.Iters = it + 1
		loss, err := totalLRLoss(lrTask, w, tbl)
		if err != nil {
			return nil, err
		}
		res.Losses = append(res.Losses, loss)
		if ir.TargetLoss != 0 && loss <= ir.TargetLoss {
			res.Converged = true
			break
		}
		if ir.RelTol > 0 && !math.IsNaN(prevLoss) && math.Abs(prevLoss-loss)/math.Max(math.Abs(prevLoss), 1) < ir.RelTol {
			res.Converged = true
			break
		}
		prevLoss = loss
	}
	res.Model = w
	res.Total = time.Since(start)
	return res, nil
}

func totalLRLoss(t *tasks.LR, w vector.Dense, tbl *engine.Table) (float64, error) {
	var sum float64
	err := tbl.Scan(func(tp engine.Tuple) error {
		sum += t.Loss(w, tp)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return sum + t.RegPenalty(w), nil
}
