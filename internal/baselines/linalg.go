// Package baselines implements the algorithm classes behind the tools the
// paper compares against, so the benchmark harness can reproduce "who wins
// and why":
//
//   - IRLS (Newton) logistic regression — MADlib-style LR, super-linear in
//     the model dimension (d×d Hessian solve per iteration).
//   - Batch (full-)gradient trainers for LR/SVM — classic in-RDBMS gradient
//     tools that must touch all data for every single step.
//   - ALS matrix factorization — MADlib-style LMF, solving k×k normal
//     equations per row/column.
//   - Batch CRF trainers standing in for CRF++ and Mallet.
//
// None of these share Bismarck's tuple-at-a-time UDA shape; that contrast
// is the point of Figure 7 and Table 4.
package baselines

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major d×d matrix used by the Newton/ALS solvers.
type Matrix struct {
	N int
	A []float64
}

// NewMatrix returns a zero n×n matrix.
func NewMatrix(n int) *Matrix { return &Matrix{N: n, A: make([]float64, n*n)} }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set sets element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// AddDiag adds v to every diagonal element.
func (m *Matrix) AddDiag(v float64) {
	for i := 0; i < m.N; i++ {
		m.A[i*m.N+i] += v
	}
}

// Solve solves A·x = b in place by Gaussian elimination with partial
// pivoting, destroying A and b. It returns the solution (aliasing b).
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	n := m.N
	if len(b) != n {
		return nil, fmt.Errorf("baselines: Solve dimension mismatch %d vs %d", len(b), n)
	}
	a := m.A
	for col := 0; col < n; col++ {
		// Pivot.
		piv, pmax := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, fmt.Errorf("baselines: singular matrix at column %d", col)
		}
		if piv != col {
			for j := col; j < n; j++ {
				a[col*n+j], a[piv*n+j] = a[piv*n+j], a[col*n+j]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		// Eliminate below.
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return b, nil
}
