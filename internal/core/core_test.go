package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// --- proximal operators ---

func TestProxL1SoftThreshold(t *testing.T) {
	w := vector.Dense{3, -3, 0.5, -0.5, 0}
	ProxL1(w, 1)
	want := vector.Dense{2, -2, 0, 0, 0}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("ProxL1 = %v, want %v", w, want)
		}
	}
}

func TestProxL1NoopOnZeroAlpha(t *testing.T) {
	w := vector.Dense{1, 2}
	ProxL1(w, 0)
	if w[0] != 1 || w[1] != 2 {
		t.Fatal("ProxL1(0) changed w")
	}
}

func TestProxL2Shrinks(t *testing.T) {
	w := vector.Dense{2, -4}
	ProxL2(w, 1)
	if w[0] != 1 || w[1] != -2 {
		t.Fatalf("ProxL2 = %v", w)
	}
}

func TestProjectBall2(t *testing.T) {
	w := vector.Dense{3, 4}
	ProjectBall2(w, 1)
	if math.Abs(w.Norm2()-1) > 1e-12 {
		t.Fatalf("norm after projection = %v", w.Norm2())
	}
	w2 := vector.Dense{0.1, 0.1}
	before := w2.Clone()
	ProjectBall2(w2, 1)
	if vector.Dist2(before, w2) != 0 {
		t.Fatal("projection moved an interior point")
	}
}

func TestProjectSimplexBasics(t *testing.T) {
	w := vector.Dense{0.5, 0.5}
	ProjectSimplex(w)
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("simplex point moved: %v", w)
	}
	w2 := vector.Dense{2, 0}
	ProjectSimplex(w2)
	if math.Abs(w2[0]-1) > 1e-12 || w2[1] != 0 {
		t.Fatalf("projection of (2,0) = %v, want (1,0)", w2)
	}
	w3 := vector.Dense{-5, -5, -5}
	ProjectSimplex(w3)
	var sum float64
	for _, x := range w3 {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("projection of all-negative sums to %v", sum)
	}
}

// Property: ProjectSimplex output is feasible and is the closest feasible
// point (verified against a dense grid search in 2-D).
func TestQuickProjectSimplexFeasible(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		w := make(vector.Dense, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			w[i] = math.Mod(x, 100)
		}
		ProjectSimplex(w)
		var sum float64
		for _, x := range w {
			if x < -1e-9 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectSimplexIsNearestPoint2D(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		p := vector.Dense{4 * rng.NormFloat64(), 4 * rng.NormFloat64()}
		w := p.Clone()
		ProjectSimplex(w)
		// Grid search the 2-D simplex {(t, 1-t)}.
		best := math.Inf(1)
		for i := 0; i <= 2000; i++ {
			tt := float64(i) / 2000
			d := (p[0]-tt)*(p[0]-tt) + (p[1]-(1-tt))*(p[1]-(1-tt))
			if d < best {
				best = d
			}
		}
		got := (p[0]-w[0])*(p[0]-w[0]) + (p[1]-w[1])*(p[1]-w[1])
		if got > best+1e-5 {
			t.Fatalf("trial %d: projection dist² %g > grid best %g (p=%v w=%v)", trial, got, best, p, w)
		}
	}
}

func TestProjectBox(t *testing.T) {
	w := vector.Dense{-2, 0.5, 7}
	ProjectBox(w, 0, 1)
	if w[0] != 0 || w[1] != 0.5 || w[2] != 1 {
		t.Fatalf("ProjectBox = %v", w)
	}
}

// --- step rules ---

func TestStepRules(t *testing.T) {
	c := ConstantStep{A: 0.3}
	if c.Alpha(0) != 0.3 || c.Alpha(100) != 0.3 {
		t.Fatal("ConstantStep not constant")
	}
	d := DiminishingStep{A0: 1}
	if d.Alpha(0) != 1 || d.Alpha(1) != 0.5 || d.Alpha(3) != 0.25 {
		t.Fatalf("DiminishingStep: %v %v %v", d.Alpha(0), d.Alpha(1), d.Alpha(3))
	}
	dp := DiminishingStep{A0: 1, P: 0.5}
	if math.Abs(dp.Alpha(3)-0.5) > 1e-12 {
		t.Fatalf("DiminishingStep p=0.5: %v", dp.Alpha(3))
	}
	g := GeometricStep{A0: 2, Rho: 0.5}
	if g.Alpha(0) != 2 || g.Alpha(2) != 0.5 {
		t.Fatalf("GeometricStep: %v %v", g.Alpha(0), g.Alpha(2))
	}
	if DefaultStep(1).Alpha(0) != 1 {
		t.Fatal("DefaultStep alpha0")
	}
}

func TestStepRulesDecreaseMonotonically(t *testing.T) {
	rules := []StepRule{DiminishingStep{A0: 1}, DiminishingStep{A0: 1, P: 0.7}, GeometricStep{A0: 1, Rho: 0.9}}
	for _, r := range rules {
		prev := math.Inf(1)
		for e := 0; e < 50; e++ {
			a := r.Alpha(e)
			if a <= 0 || a > prev {
				t.Fatalf("%T not positive decreasing at epoch %d", r, e)
			}
			prev = a
		}
	}
}

// --- models ---

func TestDenseModel(t *testing.T) {
	m := NewDenseModel(3)
	m.Add(1, 2.5)
	if m.Get(1) != 2.5 || m.Dim() != 3 {
		t.Fatal("DenseModel basic ops")
	}
	s := m.Snapshot()
	s[1] = 0
	if m.Get(1) != 2.5 {
		t.Fatal("Snapshot must copy")
	}
}

func TestLockedModel(t *testing.T) {
	m := NewLockedModel(2)
	m.Add(0, 1)
	if m.Get(0) != 1 {
		t.Fatal("LockedModel Add/Get")
	}
	m.LockStep(func(w vector.Dense) { w[1] = 9 })
	if m.Get(1) != 9 {
		t.Fatal("LockStep must mutate")
	}
	if m.Dim() != 2 {
		t.Fatal("Dim")
	}
}

// --- IGD aggregate & trainer ---

// meanTask is a 1-D least-squares-to-labels task: min ½Σ(w−y_i)², whose
// optimum is the label mean — Example 2.1 of the paper.
type meanTask struct{}

func (meanTask) Name() string { return "mean" }
func (meanTask) Dim() int     { return 1 }
func (meanTask) Step(m Model, t engine.Tuple, alpha float64) {
	m.Add(0, -alpha*(m.Get(0)-t[1].Float))
}
func (meanTask) Loss(w vector.Dense, t engine.Tuple) float64 {
	d := w[0] - t[1].Float
	return 0.5 * d * d
}

func meanSchema() engine.Schema {
	return engine.Schema{{Name: "id", Type: engine.TInt64}, {Name: "y", Type: engine.TFloat64}}
}

func meanTable(vals []float64) *engine.Table {
	tbl := engine.NewMemTable("m", meanSchema())
	for i, v := range vals {
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.F64(v)})
	}
	return tbl
}

func TestTrainerConvergesToMean(t *testing.T) {
	tbl := meanTable([]float64{1, 2, 3, 4, 5, 6})
	tr := &Trainer{Task: meanTask{}, Step: DiminishingStep{A0: 0.5}, MaxEpochs: 200, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model[0]-3.5) > 0.05 {
		t.Fatalf("converged to %v, want 3.5", res.Model[0])
	}
	if res.Epochs != 200 || len(res.Losses) != 200 {
		t.Fatalf("epochs=%d losses=%d", res.Epochs, len(res.Losses))
	}
}

func TestTrainerRelTolStopsEarly(t *testing.T) {
	tbl := meanTable([]float64{1, 1, 1, 1})
	tr := &Trainer{Task: meanTask{}, Step: ConstantStep{A: 0.5}, MaxEpochs: 500, RelTol: 1e-6, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Epochs >= 500 {
		t.Fatalf("expected early convergence, got %d epochs (converged=%v)", res.Epochs, res.Converged)
	}
}

func TestTrainerTargetLossStops(t *testing.T) {
	tbl := meanTable([]float64{2, 2, 2})
	tr := &Trainer{Task: meanTask{}, Step: ConstantStep{A: 0.5}, MaxEpochs: 500, TargetLoss: 1e-4, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected TargetLoss convergence")
	}
	if res.FinalLoss() > 1e-4 {
		t.Fatalf("final loss %g above target", res.FinalLoss())
	}
}

func TestTrainerValidation(t *testing.T) {
	tbl := meanTable([]float64{1})
	if _, err := (&Trainer{Task: meanTask{}, Step: ConstantStep{A: 1}}).Run(tbl); err == nil {
		t.Fatal("expected error for MaxEpochs=0")
	}
	if _, err := (&Trainer{Task: meanTask{}, MaxEpochs: 1}).Run(tbl); err == nil {
		t.Fatal("expected error for nil Step")
	}
}

func TestTrainerSkipLoss(t *testing.T) {
	tbl := meanTable([]float64{1, 2})
	tr := &Trainer{Task: meanTask{}, Step: ConstantStep{A: 0.1}, MaxEpochs: 5, SkipLoss: true, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 0 || res.Epochs != 5 {
		t.Fatalf("SkipLoss run recorded losses=%d epochs=%d", len(res.Losses), res.Epochs)
	}
	if math.IsNaN(res.FinalLoss()) == false {
		t.Fatal("FinalLoss should be NaN when no losses recorded")
	}
}

func TestTrainerParallelPlanMatchesShapeOfSequential(t *testing.T) {
	// Model averaging changes the trajectory but must still converge to the
	// same optimum on a convex problem.
	vals := make([]float64, 400)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = 3 + rng.NormFloat64()
	}
	tbl := meanTable(vals)
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))

	for _, segs := range []int{1, 4} {
		tr := &Trainer{Task: meanTask{}, Step: DiminishingStep{A0: 0.5}, MaxEpochs: 100, Seed: 1,
			Profile: engine.Profile{Segments: segs}}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Model[0]-mean) > 0.1 {
			t.Fatalf("segments=%d: model %v, want %v", segs, res.Model[0], mean)
		}
	}
}

func TestIGDAggregateMergeWeightsBySteps(t *testing.T) {
	agg := &IGDAggregate{Task: meanTask{}, Alpha: 0, Init: vector.Dense{0}}
	a := &igdState{w: vector.Dense{1}, steps: 3}
	b := &igdState{w: vector.Dense{5}, steps: 1}
	got := agg.Merge(a, b).(*igdState)
	if math.Abs(got.w[0]-2) > 1e-12 { // (3·1 + 1·5)/4
		t.Fatalf("merge = %v, want 2", got.w[0])
	}
	if got.steps != 4 {
		t.Fatalf("merged steps = %d", got.steps)
	}
}

func TestIGDAggregateMergeEmptyStates(t *testing.T) {
	agg := &IGDAggregate{Task: meanTask{}, Init: vector.Dense{0}}
	a := &igdState{w: vector.Dense{0}, steps: 0}
	b := &igdState{w: vector.Dense{0}, steps: 0}
	got := agg.Merge(a, b).(*igdState)
	if got.steps != 0 {
		t.Fatal("merging empty states should stay empty")
	}
}

func TestIGDStateCopy(t *testing.T) {
	s := &igdState{w: vector.Dense{1, 2}, steps: 5}
	c := s.CopyState().(*igdState)
	c.w[0] = 99
	if s.w[0] != 1 {
		t.Fatal("CopyState must deep copy")
	}
}

func TestInitialModelUsesInitializer(t *testing.T) {
	if w := InitialModel(meanTask{}, 0); len(w) != 1 || w[0] != 0 {
		t.Fatal("default init should be zeros")
	}
}

func TestTotalLossMatchesManualSum(t *testing.T) {
	tbl := meanTable([]float64{1, 3})
	w := vector.Dense{2}
	got, err := TotalLoss(meanTask{}, w, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-12 { // ½(1)² + ½(1)²
		t.Fatalf("TotalLoss = %v, want 1", got)
	}
}

// Property: IGD on the CA-TX least-squares problem converges for any data
// sign pattern under a diminishing step (|w| bounded and shrinking).
func TestQuickMeanIGDStable(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) < 4 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, b := range raw {
			if b {
				vals[i] = 1
			} else {
				vals[i] = -1
			}
		}
		tbl := meanTable(vals)
		tr := &Trainer{Task: meanTask{}, Step: DiminishingStep{A0: 0.5}, MaxEpochs: 50, Seed: 3, SkipLoss: true}
		res, err := tr.Run(tbl)
		if err != nil {
			return false
		}
		return math.Abs(res.Model[0]) <= 1.0+1e-9 // stays in the data hull
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
