package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// igdState is the aggregation context of the IGD UDA: the model plus meta
// data (the number of gradient steps folded into it, which weighs merges).
type igdState struct {
	w     vector.Dense
	steps int
	loss  float64 // piggybacked online loss (sum of pre-step example losses)
}

// CopyState implements engine.StateCopier so the DBMS A profile can charge
// model-passing overhead at merge boundaries.
func (s *igdState) CopyState() engine.State {
	return &igdState{w: s.w.Clone(), steps: s.steps, loss: s.loss}
}

// IGDAggregate is incremental gradient descent expressed as a standard
// user-defined aggregate (§3.1): initialize loads the model, transition
// performs one gradient step per tuple, merge averages two independently
// trained models weighted by their step counts (the model-averaging scheme
// of Zinkevich et al. that makes IGD "essentially algebraic"), and
// terminate returns the model.
type IGDAggregate struct {
	Task  Task
	Alpha float64      // step size for this epoch
	Init  vector.Dense // model at the start of the epoch
	// PiggybackLoss accumulates each example's loss (under the model right
	// before its step) during the same scan — the paper's "piggybacked onto
	// the IGD UDA" loss computation, which saves a second pass per epoch.
	PiggybackLoss bool
}

// Initialize implements engine.UDA.
func (a *IGDAggregate) Initialize() engine.State {
	return &igdState{w: a.Init.Clone()}
}

// Transition implements engine.UDA.
func (a *IGDAggregate) Transition(s engine.State, t engine.Tuple) engine.State {
	st := s.(*igdState)
	if a.PiggybackLoss {
		st.loss += a.Task.Loss(st.w, t)
	}
	a.Task.Step(&DenseModel{W: st.w}, t, a.Alpha)
	st.steps++
	return st
}

// Merge implements engine.Merger by step-count-weighted model averaging.
func (a *IGDAggregate) Merge(x, y engine.State) engine.State {
	sx, sy := x.(*igdState), y.(*igdState)
	tot := sx.steps + sy.steps
	if tot == 0 {
		return sx
	}
	cx := float64(sx.steps) / float64(tot)
	cy := float64(sy.steps) / float64(tot)
	for i := range sx.w {
		sx.w[i] = cx*sx.w[i] + cy*sy.w[i]
	}
	sx.steps = tot
	sx.loss += sy.loss
	return sx
}

// Terminate implements engine.UDA.
func (a *IGDAggregate) Terminate(s engine.State) engine.State { return s }

// OrderStrategy prepares the physical order of the data table before an
// epoch: ShuffleAlways, ShuffleOnce, or Clustered (no-op). Implementations
// live in internal/ordering.
type OrderStrategy interface {
	Name() string
	// Prepare is called before epoch e (0-based) runs.
	Prepare(tbl *engine.Table, epoch int, rng *rand.Rand) error
}

// LogicalOrderStrategy is implemented by ordering strategies that can
// express their reorder as a permutation of a materialized cache's row
// index instead of a physical table rewrite. When the engine profile does
// not charge physical-rewrite cost, the trainers run epochs over the cache
// and call PrepareLogical; strategies without it force the physical path.
type LogicalOrderStrategy interface {
	PrepareLogical(v *engine.MatView, epoch int, rng *rand.Rand) error
}

// NoOrder leaves the table untouched (i.e. "Clustered" when the table is
// physically clustered).
type NoOrder struct{}

// Name implements OrderStrategy.
func (NoOrder) Name() string { return "AsStored" }

// Prepare implements OrderStrategy.
func (NoOrder) Prepare(*engine.Table, int, *rand.Rand) error { return nil }

// PrepareLogical implements LogicalOrderStrategy.
func (NoOrder) PrepareLogical(*engine.MatView, int, *rand.Rand) error { return nil }

// EpochSource selects a trainer run's epoch pipeline and is shared by the
// sequential and parallel trainers. The zero-allocation steady state runs
// every epoch over the table's decoded-row cache, expressing shuffles as
// permutations of a per-run view; only the initial materialization touches
// page bytes. The physical path — profile charges rewrite cost, ordering
// has no logical form, or the table exceeds the cache limit — reorders on
// disk and re-decodes per epoch through reusable scratch. The returned
// prepare function applies the ordering before each epoch against
// whichever pipeline was chosen.
func EpochSource(tbl *engine.Table, order OrderStrategy, p engine.Profile) (
	engine.Relation, func(epoch int, rng *rand.Rand) error, error) {
	logical, canLogical := order.(LogicalOrderStrategy)
	if !p.PhysicalReorder && canLogical {
		mat, err := tbl.Materialize()
		switch {
		case err == nil:
			view := mat.View()
			return view, func(e int, rng *rand.Rand) error {
				return logical.PrepareLogical(view, e, rng)
			}, nil
		case !errors.Is(err, engine.ErrUncacheable):
			return nil, nil, err
		}
		// Too big to cache: reuse-scratch scans below.
	}
	return tbl.Reuse(), func(e int, rng *rand.Rand) error {
		return order.Prepare(tbl, e, rng)
	}, nil
}

// Trainer drives the Bismarck epoch loop of Figure 2: run the IGD aggregate
// over the data, compute the loss, test convergence, repeat.
type Trainer struct {
	Task Task
	Step StepRule
	// MaxEpochs bounds the loop (required, > 0).
	MaxEpochs int
	// RelTol stops when the relative loss drop between consecutive epochs
	// falls below it (0 disables). 1e-3 reproduces the paper's "0.1%
	// tolerance" completion criterion.
	RelTol float64
	// TargetLoss stops as soon as the epoch loss is ≤ this value (0
	// disables); used to measure time-to-quality against baselines.
	TargetLoss float64
	// Order is applied before each epoch; nil means NoOrder.
	Order OrderStrategy
	// Profile selects the hosting engine emulation; zero value is a plain
	// sequential scan.
	Profile engine.Profile
	// Seed drives shuffling and model initialization.
	Seed int64
	// InitModel overrides the task's initial model when non-nil.
	InitModel vector.Dense
	// SkipLoss disables per-epoch loss evaluation (then RelTol/TargetLoss
	// cannot fire and the loop always runs MaxEpochs).
	SkipLoss bool
	// PiggybackLoss computes the per-epoch loss during the gradient scan
	// itself (each example's loss under the model just before its step)
	// instead of a separate aggregation pass. It is an online approximation
	// of the objective, and the convergence tests run against it.
	PiggybackLoss bool
	// Deadline, when nonzero, aborts the run with ErrDeadline before any
	// epoch that would start after it. The partial Result is still returned.
	Deadline time.Time
}

// ErrDeadline reports that a trainer hit its Deadline; the partial result
// accompanies it. Used by the Table 4 scalability harness to record "did
// not finish within budget" outcomes.
var ErrDeadline = errors.New("bismarck: training deadline exceeded")

// Result reports a finished training run.
type Result struct {
	Model      vector.Dense
	Epochs     int
	Losses     []float64 // loss after each epoch (empty if SkipLoss)
	EpochTimes []time.Duration
	Converged  bool
	Total      time.Duration
}

// FinalLoss returns the last recorded loss, or NaN if none.
func (r *Result) FinalLoss() float64 {
	if len(r.Losses) == 0 {
		return math.NaN()
	}
	return r.Losses[len(r.Losses)-1]
}

// Run trains the task over the table and returns the result.
func (tr *Trainer) Run(tbl *engine.Table) (*Result, error) {
	if tr.MaxEpochs <= 0 {
		return nil, fmt.Errorf("core: Trainer.MaxEpochs must be > 0")
	}
	if tr.Step == nil {
		return nil, fmt.Errorf("core: Trainer.Step is required")
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	w := tr.InitModel
	if w == nil {
		w = InitialModel(tr.Task, tr.Seed)
	} else {
		w = w.Clone()
	}
	order := tr.Order
	if order == nil {
		order = NoOrder{}
	}

	src, prepare, err := EpochSource(tbl, order, tr.Profile)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	start := time.Now()
	prevLoss := math.NaN()
	for e := 0; e < tr.MaxEpochs; e++ {
		if !tr.Deadline.IsZero() && time.Now().After(tr.Deadline) {
			res.Model = w
			res.Total = time.Since(start)
			return res, ErrDeadline
		}
		epochStart := time.Now()
		if err := prepare(e, rng); err != nil {
			return nil, err
		}
		agg := &IGDAggregate{Task: tr.Task, Alpha: tr.Step.Alpha(e), Init: w,
			PiggybackLoss: tr.PiggybackLoss && !tr.SkipLoss}
		out, err := engine.RunUDAOn(src, agg, tr.Profile)
		if err != nil {
			return nil, err
		}
		st := out.(*igdState)
		w = st.w
		res.Epochs = e + 1

		if !tr.SkipLoss {
			var loss float64
			if tr.PiggybackLoss {
				loss = st.loss
				if r, ok := tr.Task.(Regularized); ok {
					loss += r.RegPenalty(w)
				}
			} else {
				var err error
				loss, err = TotalLoss(tr.Task, w, tbl)
				if err != nil {
					return nil, err
				}
			}
			res.Losses = append(res.Losses, loss)
			res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))
			if tr.TargetLoss != 0 && loss <= tr.TargetLoss {
				res.Converged = true
				break
			}
			if tr.RelTol > 0 && !math.IsNaN(prevLoss) {
				den := math.Abs(prevLoss)
				if den == 0 {
					den = 1
				}
				if math.Abs(prevLoss-loss)/den < tr.RelTol {
					res.Converged = true
					break
				}
			}
			prevLoss = loss
		} else {
			res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))
		}
	}
	res.Model = w
	res.Total = time.Since(start)
	return res, nil
}
