package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

func TestTrainerDeadlineAborts(t *testing.T) {
	tbl := meanTable(make([]float64, 1000))
	tr := &Trainer{Task: meanTask{}, Step: ConstantStep{A: 0.01}, MaxEpochs: 1 << 20,
		SkipLoss: true, Deadline: time.Now().Add(50 * time.Millisecond)}
	start := time.Now()
	res, err := tr.Run(tbl)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expected ErrDeadline, got %v", err)
	}
	if res == nil || res.Epochs == 0 {
		t.Fatal("partial result must be returned")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestTrainerDeadlineInPastRunsZeroEpochs(t *testing.T) {
	tbl := meanTable([]float64{1})
	tr := &Trainer{Task: meanTask{}, Step: ConstantStep{A: 0.01}, MaxEpochs: 5,
		SkipLoss: true, Deadline: time.Now().Add(-time.Second)}
	res, err := tr.Run(tbl)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expected ErrDeadline, got %v", err)
	}
	if res.Epochs != 0 {
		t.Fatalf("epochs = %d, want 0", res.Epochs)
	}
}

// quadTask is strictly convex in one variable with per-tuple loss ½(w−y)².
type quadTask = meanTask

func TestPiggybackLossTracksTrueLoss(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	tbl := meanTable(vals)
	// With a tiny step the model barely moves during the epoch, so the
	// piggybacked (pre-step) loss must be very close to the true loss at
	// the epoch's start.
	w0 := vector.Dense{10}
	truth, err := TotalLoss(quadTask{}, w0, tbl)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Task: quadTask{}, Step: ConstantStep{A: 1e-9}, MaxEpochs: 1,
		InitModel: w0, PiggybackLoss: true}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Losses[0]-truth) > 1e-6*truth {
		t.Fatalf("piggyback loss %v, true %v", res.Losses[0], truth)
	}
}

func TestPiggybackLossConvergesLikeTrueLoss(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 5
	}
	tbl := meanTable(vals)
	for _, piggy := range []bool{false, true} {
		tr := &Trainer{Task: quadTask{}, Step: DiminishingStep{A0: 0.5}, MaxEpochs: 100,
			RelTol: 1e-6, PiggybackLoss: piggy}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("piggy=%v did not converge", piggy)
		}
		if math.Abs(res.Model[0]-5) > 0.01 {
			t.Fatalf("piggy=%v converged to %v", piggy, res.Model[0])
		}
	}
}

func TestPiggybackLossMergesAcrossSegments(t *testing.T) {
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = 2
	}
	tbl := meanTable(vals)
	tr := &Trainer{Task: quadTask{}, Step: ConstantStep{A: 1e-9}, MaxEpochs: 1,
		InitModel: vector.Dense{1}, PiggybackLoss: true,
		Profile: engine.Profile{Segments: 4}}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * float64(len(vals)) // ½(1−2)² per tuple
	if math.Abs(res.Losses[0]-want) > 1e-3 {
		t.Fatalf("segmented piggyback loss = %v, want %v", res.Losses[0], want)
	}
}
