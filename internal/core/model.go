// Package core implements the paper's primary contribution: incremental
// gradient descent (IGD) expressed as a user-defined aggregate, plus the
// surrounding machinery — step-size rules, proximal operators for
// constraints/regularization (Appendix A), convergence tests (Appendix B),
// and the epoch loop of Figure 2.
package core

import (
	"sync"

	"bismarck/internal/vector"
)

// Model is the mutable aggregation state a task's transition function
// updates: Get reads component i, Add applies a (possibly concurrent)
// additive update. Abstracting the update lets the *same* task code run
// sequentially, under a global lock, with per-component atomics (AIG), or
// entirely unsynchronized (NoLock/Hogwild) — the paper's §3.3 schemes are
// just different Model implementations.
type Model interface {
	// Dim returns the number of components.
	Dim() int
	// Get returns component i.
	Get(i int) float64
	// Add adds delta to component i.
	Add(i int, delta float64)
	// Snapshot copies the current components into a dense vector. Under
	// concurrent updates the copy is only loosely consistent, which is all
	// the loss computation needs.
	Snapshot() vector.Dense
}

// DenseModel is the plain single-threaded model: a dense coefficient vector.
type DenseModel struct {
	W vector.Dense
}

// NewDenseModel returns a zero model of dimension d.
func NewDenseModel(d int) *DenseModel { return &DenseModel{W: vector.NewDense(d)} }

// Dim implements Model.
func (m *DenseModel) Dim() int { return len(m.W) }

// Get implements Model.
func (m *DenseModel) Get(i int) float64 { return m.W[i] }

// Add implements Model.
func (m *DenseModel) Add(i int, delta float64) { m.W[i] += delta }

// Snapshot implements Model.
func (m *DenseModel) Snapshot() vector.Dense { return m.W.Clone() }

// LockedModel wraps a dense vector with a single global mutex taken around
// every component access — the paper's "Lock" scheme, which serializes all
// workers and therefore shows no speed-up in Figure 9(B). Whole-step
// critical sections are available via LockStep for trainers that lock once
// per gradient step instead of once per component.
type LockedModel struct {
	mu sync.Mutex
	W  vector.Dense
}

// NewLockedModel returns a zero locked model of dimension d.
func NewLockedModel(d int) *LockedModel { return &LockedModel{W: vector.NewDense(d)} }

// Dim implements Model.
func (m *LockedModel) Dim() int { return len(m.W) }

// Get implements Model.
func (m *LockedModel) Get(i int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.W[i]
}

// Add implements Model.
func (m *LockedModel) Add(i int, delta float64) {
	m.mu.Lock()
	m.W[i] += delta
	m.mu.Unlock()
}

// LockStep runs fn with the model lock held, passing the raw vector; fn
// must not retain it. This gives per-gradient-step locking granularity.
func (m *LockedModel) LockStep(fn func(w vector.Dense)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.W)
}

// Snapshot implements Model.
func (m *LockedModel) Snapshot() vector.Dense {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.W.Clone()
}
