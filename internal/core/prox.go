package core

import (
	"math"
	"sort"

	"bismarck/internal/vector"
)

// This file implements the proximal point operators of Appendix A:
//
//	Π_{αP}(x) = argmin_w  ½‖x − w‖² + αP(w)
//
// applied after each gradient step (Eq. 3) to handle regularization
// penalties and convex constraints without changing the data access
// pattern.

// ProxL1 applies soft-thresholding, the proximal operator of P(w)=µ‖w‖₁,
// in place: w_i ← sign(w_i)·max(|w_i|−αµ, 0).
func ProxL1(w vector.Dense, alphaMu float64) {
	if alphaMu <= 0 {
		return
	}
	for i, x := range w {
		switch {
		case x > alphaMu:
			w[i] = x - alphaMu
		case x < -alphaMu:
			w[i] = x + alphaMu
		default:
			w[i] = 0
		}
	}
}

// ProxL2 applies the proximal operator of P(w)=(µ/2)‖w‖₂², in place:
// w ← w/(1+αµ).
func ProxL2(w vector.Dense, alphaMu float64) {
	if alphaMu <= 0 {
		return
	}
	c := 1 / (1 + alphaMu)
	for i := range w {
		w[i] *= c
	}
}

// ProjectBall2 projects w onto the Euclidean ball of the given radius, in
// place — e.g. "the model has unit Euclidean norm" from Appendix A.
func ProjectBall2(w vector.Dense, radius float64) {
	n := w.Norm2()
	if n <= radius || n == 0 {
		return
	}
	w.Scale(radius / n)
}

// ProjectSimplex projects w onto the probability simplex
// ∆ = {w : Σw_i = 1, w_i ≥ 0} in place, using the O(d log d) sort-based
// algorithm. This is the constraint set of the portfolio task in Figure 1.
func ProjectSimplex(w vector.Dense) {
	d := len(w)
	if d == 0 {
		return
	}
	sorted := make([]float64, d)
	copy(sorted, w)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum, theta float64
	k := 0
	for i := 0; i < d; i++ {
		cum += sorted[i]
		t := (cum - 1) / float64(i+1)
		if sorted[i]-t > 0 {
			k = i + 1
			theta = t
		}
	}
	if k == 0 { // all mass collapses onto the max coordinate
		theta = sorted[0] - 1
	}
	for i := range w {
		w[i] = math.Max(w[i]-theta, 0)
	}
}

// ProjectBox clamps every component of w into [lo, hi] in place.
func ProjectBox(w vector.Dense, lo, hi float64) {
	for i, x := range w {
		if x < lo {
			w[i] = lo
		} else if x > hi {
			w[i] = hi
		}
	}
}
