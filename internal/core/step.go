package core

import "math"

// StepRule produces the step size α_k for a gradient step. The paper's
// Appendix B discusses the rules real systems use: constant step sizes set
// by an expert, the divergent-series (diminishing) rule, and the geometric
// rule α_k = α0·ρ^k. We expose all three; steps are indexed by epoch, which
// is how Bismarck's epoch loop naturally decays them.
type StepRule interface {
	// Alpha returns the step size for the given epoch (0-based).
	Alpha(epoch int) float64
}

// ConstantStep uses a fixed step size.
type ConstantStep struct{ A float64 }

// Alpha implements StepRule.
func (s ConstantStep) Alpha(int) float64 { return s.A }

// DiminishingStep implements the divergent series rule α_e = A0/(1+e)^p
// with p in (0.5, 1]; Σα = ∞ and α → 0 as required for convergence.
type DiminishingStep struct {
	A0 float64
	P  float64 // exponent; 0 means 1 (classic 1/k)
}

// Alpha implements StepRule.
func (s DiminishingStep) Alpha(epoch int) float64 {
	p := s.P
	if p == 0 {
		p = 1
	}
	return s.A0 / math.Pow(float64(epoch+1), p)
}

// GeometricStep implements α_e = A0·ρ^e with 0 < ρ < 1; the rule Bismarck
// uses by default because it works well in practice with per-epoch decay.
type GeometricStep struct {
	A0  float64
	Rho float64
}

// Alpha implements StepRule.
func (s GeometricStep) Alpha(epoch int) float64 {
	return s.A0 * math.Pow(s.Rho, float64(epoch))
}

// DefaultStep is the geometric rule with a mild decay, a reasonable default
// across the paper's tasks.
func DefaultStep(a0 float64) StepRule { return GeometricStep{A0: a0, Rho: 0.95} }
