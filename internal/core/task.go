package core

import (
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Task is one analytics technique plugged into Bismarck: it supplies the
// per-tuple gradient step (the body of the UDA transition function, Figure
// 4 of the paper) and the per-tuple loss used by convergence tests. The
// rest of the architecture — epoch loop, ordering, parallelism, sampling —
// is shared across all tasks.
type Task interface {
	// Name identifies the task (e.g. "LR", "SVM", "LMF", "CRF").
	Name() string
	// Dim is the flattened model dimension.
	Dim() int
	// Step performs one incremental gradient update on m for tuple t with
	// step size alpha (Eq. 2), including any per-step proximal/projection
	// work the task needs (Eq. 3). The tuple may alias reusable scan
	// scratch: it is only valid during the call and must not be retained.
	Step(m Model, t engine.Tuple, alpha float64)
	// Loss evaluates the tuple's contribution to the objective at w. The
	// same no-retention rule as Step applies.
	Loss(w vector.Dense, t engine.Tuple) float64
}

// Initializer is implemented by tasks whose models should not start at
// zero (e.g. LMF factors start at small random values, portfolio weights
// start uniform on the simplex).
type Initializer interface {
	InitModel(seed int64) vector.Dense
}

// Regularized is implemented by tasks with a nonzero P(w) term whose value
// should be added once per loss evaluation (not once per tuple).
type Regularized interface {
	RegPenalty(w vector.Dense) float64
}

// InitialModel returns the task's preferred starting model: the task's own
// initializer if present, otherwise zeros.
func InitialModel(t Task, seed int64) vector.Dense {
	if init, ok := t.(Initializer); ok {
		return init.InitModel(seed)
	}
	return vector.NewDense(t.Dim())
}

// TotalLoss computes sum_i f(w, z_i) (+ P(w) if the task is Regularized)
// with a sequential aggregation scan — the loss UDA of §3.1. The scan runs
// over the table's decoded-row cache when one is fresh (the common case
// inside the epoch loop, where the gradient pass just materialized it) and
// otherwise through reusable decode scratch; it never builds a cache, so a
// physically reshuffled table does not pay a rematerialization per loss
// evaluation.
func TotalLoss(t Task, w vector.Dense, tbl *engine.Table) (float64, error) {
	var sum float64
	err := tbl.Rows().Scan(func(tp engine.Tuple) error {
		sum += t.Loss(w, tp)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if r, ok := t.(Regularized); ok {
		sum += r.RegPenalty(w)
	}
	return sum, nil
}
