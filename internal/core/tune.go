package core

import (
	"fmt"
	"math"

	"bismarck/internal/engine"
)

// TuneResult reports one candidate's outcome in a step-size search.
type TuneResult struct {
	A0   float64
	Loss float64
}

// TuneStep performs the "extensive search in the parameter space" the paper
// runs for every tool: it trains the task for a few probe epochs at each
// candidate initial step size and returns the candidates ranked by final
// loss (best first). Diverged runs (NaN/Inf loss) rank last.
//
// The probe runs train on the table as stored; pass a pre-shuffled table
// for order-sensitive workloads.
func TuneStep(task Task, tbl *engine.Table, candidates []float64, probeEpochs int, seed int64) ([]TuneResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: TuneStep needs candidates")
	}
	if probeEpochs <= 0 {
		probeEpochs = 3
	}
	out := make([]TuneResult, 0, len(candidates))
	for _, a0 := range candidates {
		tr := &Trainer{Task: task, Step: DefaultStep(a0), MaxEpochs: probeEpochs, Seed: seed}
		res, err := tr.Run(tbl)
		if err != nil {
			return nil, err
		}
		loss := res.FinalLoss()
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			loss = math.Inf(1)
		}
		out = append(out, TuneResult{A0: a0, Loss: loss})
	}
	// Stable selection sort by loss (tiny n).
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Loss < out[best].Loss {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out, nil
}

// DefaultStepGrid is a decade-spanning candidate grid suitable for most
// tasks after feature scaling.
func DefaultStepGrid() []float64 {
	return []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1}
}
