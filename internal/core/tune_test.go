package core

import (
	"testing"
)

func TestTuneStepRanksByLoss(t *testing.T) {
	tbl := meanTable([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	// A huge step diverges on this quadratic; a moderate step converges.
	res, err := TuneStep(meanTask{}, tbl, []float64{1e-6, 0.3, 5}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].A0 != 0.3 {
		t.Fatalf("best a0 = %v, want 0.3 (results %+v)", res[0].A0, res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Loss < res[i-1].Loss {
			t.Fatalf("results not sorted: %+v", res)
		}
	}
}

func TestTuneStepDivergedRanksLast(t *testing.T) {
	tbl := meanTable([]float64{1, -1, 1, -1})
	res, err := TuneStep(meanTask{}, tbl, []float64{0.1, 1e9}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[len(res)-1].A0 != 1e9 {
		t.Fatalf("diverging step should rank last: %+v", res)
	}
}

func TestTuneStepValidation(t *testing.T) {
	tbl := meanTable([]float64{1})
	if _, err := TuneStep(meanTask{}, tbl, nil, 3, 1); err == nil {
		t.Fatal("expected error for empty candidates")
	}
}

func TestDefaultStepGridSpansDecades(t *testing.T) {
	g := DefaultStepGrid()
	if len(g) < 5 || g[0] >= g[len(g)-1] {
		t.Fatalf("grid %v", g)
	}
}
