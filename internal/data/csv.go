package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// This file bridges Bismarck tables to CSV so users can train on their own
// data: dense examples as label,f1,f2,...,fd rows and ratings as i,j,v
// rows.

// ReadDenseCSV loads rows of the form label,f1,...,fd into a dense-example
// table. All rows must have the same arity; the label is the first column.
func ReadDenseCSV(r io.Reader, name string) (*engine.Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	tbl := engine.NewMemTable(name, tasks.DenseExampleSchema)
	dim := -1
	id := int64(0)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: csv row %d: %w", id+1, err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("data: csv row %d has %d fields, need label + features", id+1, len(rec))
		}
		if dim == -1 {
			dim = len(rec) - 1
		} else if len(rec)-1 != dim {
			return nil, fmt.Errorf("data: csv row %d has %d features, want %d", id+1, len(rec)-1, dim)
		}
		label, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: csv row %d label: %w", id+1, err)
		}
		x := make(vector.Dense, dim)
		for i := 0; i < dim; i++ {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv row %d field %d: %w", id+1, i+1, err)
			}
			x[i] = v
		}
		if err := tbl.Insert(engine.Tuple{engine.I64(id), engine.DenseV(x), engine.F64(label)}); err != nil {
			return nil, err
		}
		id++
	}
	return tbl, nil
}

// WriteDenseCSV writes a dense-example table as label,f1,...,fd rows.
func WriteDenseCSV(w io.Writer, tbl *engine.Table) error {
	cw := csv.NewWriter(w)
	err := tbl.Scan(func(tp engine.Tuple) error {
		x := tp[tasks.ColVec].Dense
		rec := make([]string, 0, len(x)+1)
		rec = append(rec, strconv.FormatFloat(tp[tasks.ColLabel].Float, 'g', -1, 64))
		for _, v := range x {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		return cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadRatingsCSV loads rows of the form i,j,value into a rating table.
func ReadRatingsCSV(r io.Reader, name string) (*engine.Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 3
	tbl := engine.NewMemTable(name, tasks.RatingSchema)
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: ratings csv row %d: %w", row+1, err)
		}
		i, err1 := strconv.ParseInt(rec[0], 10, 64)
		j, err2 := strconv.ParseInt(rec[1], 10, 64)
		v, err3 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("data: ratings csv row %d: bad fields %v", row+1, rec)
		}
		if err := tbl.Insert(engine.Tuple{engine.I64(i), engine.I64(j), engine.F64(v)}); err != nil {
			return nil, err
		}
		row++
	}
	return tbl, nil
}

// WriteRatingsCSV writes a rating table as i,j,value rows.
func WriteRatingsCSV(w io.Writer, tbl *engine.Table) error {
	cw := csv.NewWriter(w)
	err := tbl.Scan(func(tp engine.Tuple) error {
		return cw.Write([]string{
			strconv.FormatInt(tp[0].Int, 10),
			strconv.FormatInt(tp[1].Int, 10),
			strconv.FormatFloat(tp[2].Float, 'g', -1, 64),
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
