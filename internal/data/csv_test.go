package data

import (
	"bytes"
	"strings"
	"testing"

	"bismarck/internal/engine"
)

func TestDenseCSVRoundTrip(t *testing.T) {
	src := Forest(50, 1)
	var buf bytes.Buffer
	if err := WriteDenseCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDenseCSV(&buf, "back")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 50 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	// Spot check: rows must match pairwise.
	type row struct {
		label float64
		f0    float64
	}
	var a, b []row
	src.Scan(func(tp engine.Tuple) error {
		a = append(a, row{tp[2].Float, tp[1].Dense[0]})
		return nil
	})
	back.Scan(func(tp engine.Tuple) error {
		b = append(b, row{tp[2].Float, tp[1].Dense[0]})
		return nil
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReadDenseCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short row":   "1\n",
		"ragged rows": "1,2,3\n-1,4\n",
		"bad label":   "abc,1,2\n",
		"bad feature": "1,xyz,2\n",
	}
	for name, csvText := range cases {
		if _, err := ReadDenseCSV(strings.NewReader(csvText), "t"); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestRatingsCSVRoundTrip(t *testing.T) {
	src := MovieLens(20, 15, 200, 3, 0.1, 2)
	var buf bytes.Buffer
	if err := WriteRatingsCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRatingsCSV(&buf, "back")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 200 {
		t.Fatalf("rows = %d", back.NumRows())
	}
}

func TestReadRatingsCSVErrors(t *testing.T) {
	for name, txt := range map[string]string{
		"bad int":   "a,1,2\n",
		"bad float": "1,2,x\n",
		"arity":     "1,2\n",
	} {
		if _, err := ReadRatingsCSV(strings.NewReader(txt), "t"); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
