package data

import (
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
)

func TestForestShape(t *testing.T) {
	tbl := Forest(500, 1)
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	pos, neg := 0, 0
	tbl.Scan(func(tp engine.Tuple) error {
		if len(tp[tasks.ColVec].Dense) != 54 {
			t.Fatalf("dim = %d", len(tp[tasks.ColVec].Dense))
		}
		if tp[tasks.ColLabel].Float > 0 {
			pos++
		} else {
			neg++
		}
		return nil
	})
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate labels: %d/%d", pos, neg)
	}
}

func TestForestIsLearnable(t *testing.T) {
	tbl := Forest(1000, 2)
	tr := &core.Trainer{Task: tasks.NewLR(54), Step: core.DefaultStep(0.1), MaxEpochs: 10, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0]*0.8 {
		t.Fatalf("Forest not learnable: %g -> %g", res.Losses[0], res.FinalLoss())
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	a, b := Forest(50, 7), Forest(50, 7)
	var rowsA, rowsB []engine.Tuple
	a.Scan(func(tp engine.Tuple) error { rowsA = append(rowsA, tp); return nil })
	b.Scan(func(tp engine.Tuple) error { rowsB = append(rowsB, tp); return nil })
	for i := range rowsA {
		if rowsA[i][2].Float != rowsB[i][2].Float ||
			rowsA[i][1].Dense[0] != rowsB[i][1].Dense[0] {
			t.Fatal("same seed must generate identical data")
		}
	}
}

func TestDBLifeSparsity(t *testing.T) {
	tbl := DBLife(300, 41000, 10, 3)
	if tbl.NumRows() != 300 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	var totNNZ, maxIdx int
	tbl.Scan(func(tp engine.Tuple) error {
		sp := tp[tasks.ColVec].Sparse
		totNNZ += sp.NNZ()
		if m := sp.MaxIdx(); m > maxIdx {
			maxIdx = m
		}
		return nil
	})
	avg := float64(totNNZ) / 300
	if avg < 2 || avg > 25 {
		t.Fatalf("avg nnz = %v", avg)
	}
	if maxIdx > 41000 {
		t.Fatalf("feature id out of range: %d", maxIdx)
	}
}

func TestDBLifeIsLearnable(t *testing.T) {
	tbl := DBLife(800, 2000, 8, 4)
	tr := &core.Trainer{Task: tasks.NewLR(2000), Step: core.DefaultStep(0.5), MaxEpochs: 15, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0]*0.6 {
		t.Fatalf("DBLife not learnable: %g -> %g", res.Losses[0], res.FinalLoss())
	}
}

func TestMovieLensRange(t *testing.T) {
	tbl := MovieLens(100, 80, 2000, 5, 0.2, 5)
	if tbl.NumRows() != 2000 {
		t.Fatalf("ratings = %d", tbl.NumRows())
	}
	tbl.Scan(func(tp engine.Tuple) error {
		v := tp[2].Float
		if v < 1 || v > 5 {
			t.Fatalf("rating %v outside [1,5]", v)
		}
		if tp[0].Int >= 100 || tp[1].Int >= 80 {
			t.Fatalf("index out of range (%d,%d)", tp[0].Int, tp[1].Int)
		}
		return nil
	})
}

func TestCoNLLStructure(t *testing.T) {
	tbl := CoNLL(50, 200, 5, 10, 6)
	if tbl.NumRows() != 50 {
		t.Fatalf("seqs = %d", tbl.NumRows())
	}
	tbl.Scan(func(tp engine.Tuple) error {
		offsets, feats, labels := tp[1].Ints, tp[2].Ints, tp[3].Ints
		if len(offsets) != len(labels)+1 {
			t.Fatalf("offsets %d labels %d", len(offsets), len(labels))
		}
		if offsets[0] != 0 || int(offsets[len(offsets)-1]) != len(feats) {
			t.Fatal("offsets do not bracket feats")
		}
		for i := 1; i < len(offsets); i++ {
			if offsets[i] < offsets[i-1] {
				t.Fatal("offsets not monotone")
			}
		}
		for _, l := range labels {
			if l < 0 || l >= 5 {
				t.Fatalf("label %d out of range", l)
			}
		}
		for _, f := range feats {
			if f < 0 || f >= 200 {
				t.Fatalf("feature %d out of range", f)
			}
		}
		return nil
	})
}

func TestCATXLayout(t *testing.T) {
	tbl := CATX(500)
	if tbl.NumRows() != 1000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	i := 0
	tbl.Scan(func(tp engine.Tuple) error {
		want := 1.0
		if i >= 500 {
			want = -1
		}
		if tp[tasks.ColLabel].Float != want || tp[tasks.ColVec].Dense[0] != 1 {
			t.Fatalf("row %d = %+v", i, tp)
		}
		i++
		return nil
	})
}

func TestClusterByLabel(t *testing.T) {
	tbl := Forest(200, 8)
	if err := ClusterByLabel(tbl); err != nil {
		t.Fatal(err)
	}
	prev := -2.0
	tbl.Scan(func(tp engine.Tuple) error {
		if tp[tasks.ColLabel].Float < prev {
			t.Fatal("labels not clustered")
		}
		prev = tp[tasks.ColLabel].Float
		return nil
	})
}

func TestReturnsTable(t *testing.T) {
	tbl := ReturnsTable(100, 5, 9)
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	tbl.Scan(func(tp engine.Tuple) error {
		if len(tp[1].Dense) != 5 {
			t.Fatalf("asset dim %d", len(tp[1].Dense))
		}
		return nil
	})
}

func TestNoisySeries(t *testing.T) {
	tbl := NoisySeries(30, 2, 0.1, 10)
	if tbl.NumRows() != 30 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	i := int64(0)
	tbl.Scan(func(tp engine.Tuple) error {
		if tp[0].Int != i {
			t.Fatalf("time step %d at row %d", tp[0].Int, i)
		}
		i++
		return nil
	})
}

func TestDescribeAndHumanBytes(t *testing.T) {
	tbl := Forest(100, 11)
	st, err := Describe(tbl, "54")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 100 || st.Bytes <= 0 || st.Dim != "54" {
		t.Fatalf("stats = %+v", st)
	}
	for _, c := range []struct {
		b    int64
		want string
	}{{512, "512B"}, {2048, "2.0K"}, {3 << 20, "3.0M"}, {5 << 30, "5.0G"}} {
		if got := HumanBytes(c.b); got != c.want {
			t.Fatalf("HumanBytes(%d) = %s", c.b, got)
		}
	}
}
