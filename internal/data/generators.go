// Package data generates the synthetic stand-ins for the paper's seven
// datasets (Table 1). Real Forest/DBLife/MovieLens/CoNLL files are not
// shipped with this reproduction, so each generator produces data matched
// to the published statistics that matter for the experiments — dimension,
// sparsity, example counts (scaled), label/cluster structure — with
// deterministic seeds.
package data

import (
	"fmt"
	"math/rand"

	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// Forest generates a Forest-covertype-like dense binary classification
// dataset: d=54 continuous features whose class-conditional means differ on
// a random subset, matching the "dense, low-dimensional" role Forest plays.
func Forest(n int, seed int64) *engine.Table {
	return DenseClassification("forest", n, 54, 8, seed)
}

// DenseClassification generates n dense d-dimensional examples with labels
// ±1; `informative` features carry the signal, the rest are noise.
func DenseClassification(name string, n, d, informative int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	if informative > d {
		informative = d
	}
	dir := make(vector.Dense, d)
	for i := 0; i < informative; i++ {
		dir[i] = 1 + rng.Float64()
	}
	tbl := engine.NewMemTable(name, tasks.DenseExampleSchema)
	for i := 0; i < n; i++ {
		y := float64(1)
		if i%2 == 0 {
			y = -1
		}
		x := make(vector.Dense, d)
		for j := 0; j < d; j++ {
			x[j] = rng.NormFloat64()
			if j < informative {
				x[j] += 0.6 * y * dir[j]
			}
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	return tbl
}

// DBLife generates a DBLife-like sparse bag-of-words dataset: dim features
// with a Zipf-ish popularity distribution, ~avgNNZ active features per
// example, and labels determined by a sparse ground-truth direction — the
// "sparse, high-dimensional" classification workload.
func DBLife(n, dim, avgNNZ int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(dim-1))
	// The ground-truth direction lives on the frequent (Zipf-head) features,
	// as in real text corpora where the class signal rides on common terms;
	// this is what lets a modest subsample learn a usable model (§3.4).
	head := dim / 40
	if head < 64 {
		head = 64
	}
	truth := make(map[int32]float64, head/2)
	for f := 0; f < head; f += 2 {
		truth[int32(f)] = rng.NormFloat64()
	}
	tbl := engine.NewMemTable("dblife", tasks.SparseExampleSchema)
	for i := 0; i < n; i++ {
		nnz := 1 + rng.Intn(2*avgNNZ)
		idx := make([]int32, 0, nnz)
		val := make([]float64, 0, nnz)
		seen := make(map[int32]bool, nnz)
		var score float64
		for k := 0; k < nnz; k++ {
			f := int32(zipf.Uint64())
			if seen[f] {
				continue
			}
			seen[f] = true
			v := 1 + 0.2*rng.NormFloat64() // tf-style weight
			idx = append(idx, f)
			val = append(val, v)
			score += truth[f] * v
		}
		y := float64(1)
		if score+0.1*rng.NormFloat64() < 0 {
			y = -1
		}
		// ~8% label noise keeps the optimal loss bounded away from zero,
		// like real text data; without it the synthetic problem is almost
		// perfectly separable, which no real corpus is.
		if rng.Float64() < 0.08 {
			y = -y
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.SparseV(vector.NewSparse(idx, val)), engine.F64(y)})
	}
	return tbl
}

// MovieLens generates a MovieLens-like ratings table: `ratings` cells of a
// rows×cols matrix sampled from a rank-`rank` ground truth plus noise,
// rescaled into the 1..5 star range.
func MovieLens(rows, cols, ratings, rank int, noise float64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	L := make([]vector.Dense, rows)
	R := make([]vector.Dense, cols)
	for i := range L {
		L[i] = randUnit(rng, rank)
	}
	for j := range R {
		R[j] = randUnit(rng, rank)
	}
	tbl := engine.NewMemTable("movielens", tasks.RatingSchema)
	for k := 0; k < ratings; k++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		v := 3 + 2*vector.Dot(L[i], R[j]) + noise*rng.NormFloat64()
		if v < 1 {
			v = 1
		}
		if v > 5 {
			v = 5
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.I64(int64(j)), engine.F64(v)})
	}
	return tbl
}

// CoNLL generates a CoNLL-chunking-like sequence labeling dataset: numSeqs
// token sequences with lengths around avgLen, F observation features, and
// L labels. Token features are drawn label-dependently and labels follow a
// sticky Markov chain, so both emission and transition weights matter.
func CoNLL(numSeqs, F, L, avgLen int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := engine.NewMemTable("conll", tasks.SeqSchema)
	// Each label owns a band of features it tends to emit.
	band := F / L
	if band < 1 {
		band = 1
	}
	for s := 0; s < numSeqs; s++ {
		T := 2 + rng.Intn(2*avgLen-2)
		offsets := make([]int32, T+1)
		feats := make([]int32, 0, 3*T)
		labels := make([]int32, T)
		y := rng.Intn(L)
		for tt := 0; tt < T; tt++ {
			if rng.Float64() < 0.35 { // transition
				y = rng.Intn(L)
			}
			labels[tt] = int32(y)
			nf := 1 + rng.Intn(3)
			for k := 0; k < nf; k++ {
				var f int
				if rng.Float64() < 0.8 { // label-indicative feature
					f = y*band + rng.Intn(band)
				} else { // noise feature
					f = rng.Intn(F)
				}
				feats = append(feats, int32(f))
			}
			offsets[tt+1] = int32(len(feats))
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(s)), engine.IntsV(offsets), engine.IntsV(feats), engine.IntsV(labels)})
	}
	return tbl
}

// ReturnsTable generates n observations of d asset returns with distinct
// means and correlations for the portfolio task.
func ReturnsTable(n, d int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	mean := make(vector.Dense, d)
	vol := make(vector.Dense, d)
	for i := 0; i < d; i++ {
		mean[i] = 0.02 + 0.08*rng.Float64()
		vol[i] = 0.05 + 0.3*rng.Float64()
	}
	tbl := engine.NewMemTable("returns", tasks.ReturnSchema)
	for i := 0; i < n; i++ {
		market := rng.NormFloat64()
		r := make(vector.Dense, d)
		for j := 0; j < d; j++ {
			r[j] = mean[j] + vol[j]*(0.5*market+rng.NormFloat64())
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(r)})
	}
	return tbl
}

// NoisySeries generates a T-step, d-dimensional smooth series plus noise
// for the Kalman task.
func NoisySeries(T, d int, noise float64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := engine.NewMemTable("series", tasks.SeriesSchema)
	state := make(vector.Dense, d)
	for t := 0; t < T; t++ {
		y := make(vector.Dense, d)
		for j := 0; j < d; j++ {
			state[j] += 0.1 * rng.NormFloat64() // random walk truth
			y[j] = state[j] + noise*rng.NormFloat64()
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(t)), engine.DenseV(y)})
	}
	return tbl
}

// CATX builds the paper's 1-D CA-TX dataset (Examples 2.1/3.1): 2n points
// with x=1, the first n labeled +1 and the rest −1 — i.e. physically
// clustered by class, like sales data clustered by state.
func CATX(n int) *engine.Table {
	tbl := engine.NewMemTable("catx", tasks.DenseExampleSchema)
	for i := 0; i < 2*n; i++ {
		y := float64(1)
		if i >= n {
			y = -1
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(vector.Dense{1}), engine.F64(y)})
	}
	return tbl
}

// ClusterByLabel physically rewrites a classification table so all −1 rows
// precede all +1 rows — the pathological in-RDBMS layout of §3.2.
func ClusterByLabel(tbl *engine.Table) error {
	return tbl.ClusterBy(func(tp engine.Tuple) float64 { return tp[tasks.ColLabel].Float })
}

func randUnit(rng *rand.Rand, d int) vector.Dense {
	v := make(vector.Dense, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if n := v.Norm2(); n > 0 {
		v.Scale(1 / n)
	}
	return v
}

// Stats summarizes a table for the Table 1 reproduction.
type Stats struct {
	Name  string
	Rows  int
	Bytes int64
	Dim   string // human description, e.g. "54", "41k sparse", "6k x 4k"
}

// Describe computes row count and encoded size by scanning.
func Describe(tbl *engine.Table, dim string) (Stats, error) {
	var bytes int64
	err := tbl.Scan(func(tp engine.Tuple) error {
		bytes += int64(len(tp.Encode()))
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	return Stats{Name: tbl.Name, Rows: tbl.NumRows(), Bytes: bytes, Dim: dim}, nil
}

// HumanBytes renders a byte count like "2.7M".
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
