package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"bismarck/internal/engine"
	"bismarck/internal/parallel"
	"bismarck/internal/vector"
)

// Text-protocol tokens of the pre-binary handshake. They mirror the
// server package's constants (which dist cannot import — the server
// imports dist to route executor frames); a server-side test pins the
// two sets equal so they cannot drift.
const (
	helloLine  = "@bin"
	helloOK    = "@bin OK"
	textOK     = "OK"
	textErr    = "ERR "
	bodyPrefix = "| "
)

// busyMarker identifies a shed-load rejection in an executor's error
// message; the retry-after hint follows retryHintKey. Both mirror
// serve.BusyError's rendering (pinned by a server-side test, like the
// handshake tokens above).
const (
	busyMarker   = "busy:"
	retryHintKey = "retry_after_ms="
)

// busyHintMS extracts the retry_after_ms hint from a busy rejection
// (0, false when the message is not a busy rejection at all).
func busyHintMS(msg string) (int64, bool) {
	if !strings.HasPrefix(msg, busyMarker) {
		return 0, false
	}
	i := strings.LastIndex(msg, retryHintKey)
	if i < 0 {
		return 1, true
	}
	digits := msg[i+len(retryHintKey):]
	if j := strings.IndexFunc(digits, func(r rune) bool { return r < '0' || r > '9' }); j >= 0 {
		digits = digits[:j]
	}
	ms, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || ms < 1 {
		ms = 1
	}
	return ms, true
}

// execConn is one executor connection: the dialed socket, the binary-mode
// reader, and the request/response scratch. Several remote shards may
// share one executor and the transport is strictly request/response per
// connection, so every round trip serializes on mu — id allocation,
// request build, write, and read all happen under one critical section.
type execConn struct {
	addr string
	conn net.Conn
	br   *bufio.Reader

	mu      sync.Mutex
	nextID  uint64
	sendBuf []byte
	recvBuf []byte
	timeout time.Duration
}

// dialExecutor connects to an executor and negotiates binary mode: read
// the banner, send "@bin", read the ack.
func dialExecutor(addr string, timeout time.Duration) (*execConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &execConn{addr: addr, conn: conn, br: bufio.NewReaderSize(conn, 1<<16), timeout: timeout}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: executor %s handshake: %w", addr, err)
	}
	return c, nil
}

// handshake consumes the text banner and switches to binary framing.
func (c *execConn) handshake() error {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	// Banner: zero or more "| " body lines, then "OK".
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == textOK {
			break
		}
		if strings.HasPrefix(line, textErr) {
			return fmt.Errorf("banner error: %s", strings.TrimPrefix(line, textErr))
		}
		if !strings.HasPrefix(line, bodyPrefix) {
			return fmt.Errorf("unexpected banner line %q", line)
		}
	}
	if _, err := fmt.Fprintf(c.conn, "%s\n", helloLine); err != nil {
		return err
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		return err
	}
	if line = strings.TrimRight(line, "\r\n"); line != helloOK {
		return fmt.Errorf("binary negotiation failed: got %q, want %q", line, helloOK)
	}
	return nil
}

func (c *execConn) close() { c.conn.Close() }

// call performs one round trip: under the connection lock it allocates
// the request id, has build encode the frame into the connection's send
// scratch, writes it, reads the response frame, and decodes it into dst
// (the caller's scratch, so decoded values survive the lock dropping).
// Transport faults come back as ordinary errors; executor verdicts as
// *RemoteError.
func (c *execConn) call(build func(buf []byte, id uint64) ([]byte, error), dst []float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	req, err := build(c.sendBuf[:0], id)
	if err != nil {
		return nil, err
	}
	c.sendBuf = req[:0]
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(req); err != nil {
		return nil, err
	}
	payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	gotID, vals, err := decodeResponse(payload, dst)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("dist: executor %s answered id %d, expected %d", c.addr, gotID, id)
	}
	return vals, nil
}

// readFrame reads one length-prefixed frame into the reusable receive
// buffer. Caller holds c.mu.
func (c *execConn) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFrameBytes {
		return nil, fmt.Errorf("dist: executor frame length %d (want 1..%d)", n, MaxFrameBytes)
	}
	if cap(c.recvBuf) < n {
		c.recvBuf = make([]byte, n)
	}
	c.recvBuf = c.recvBuf[:n]
	if _, err := io.ReadFull(c.br, c.recvBuf); err != nil {
		return nil, err
	}
	return c.recvBuf, nil
}

// ShardTask is everything an executor needs to rebuild one statement's
// task and ordering: the registry name, the fully-resolved parameters
// (a TaskSpec.Snapshot of the coordinator's built task), the order byte,
// and the base seed — shard i seeds its rng with Seed+i, mirroring the
// in-process runners.
type ShardTask struct {
	Name   string
	Params map[string]string
	Order  byte
	Seed   int64
}

// Hooks expose the coordinator's test seams; nil members cost a compare.
type Hooks struct {
	// BeforeStep runs before each remote STEP round trip.
	BeforeStep func(shard, epoch int)
	// AfterStep runs after each remote STEP round trip with its verdict
	// (before any retry or requeue of that shard).
	AfterStep func(shard, epoch int, err error)
}

// executorSlot tracks one executor's health and load under Coordinator.mu.
type executorSlot struct {
	conn   *execConn
	alive  bool
	shards int // shards currently assigned here (requeue balance)
}

// Coordinator owns one statement's distributed run: the partitioned
// table, the executor connections, and the shard→executor assignment.
// Its remote runners plug into parallel.ShardedEpoch, so the epoch loop,
// the row-weighted merge, and the convergence bookkeeping are exactly
// the in-process sharded trainer's.
//
// Fault model: a transport fault (dial, write, read, deadline) marks the
// executor dead and requeues its shards onto the least-loaded survivors,
// re-shipping rows and replaying orderings so the run's result is
// unchanged; a busy rejection backs off by the executor's own
// retry_after_ms hint and retries in place, counting against
// MaxBusyRetries before it, too, escalates to requeue. Only an
// application error (unknown task, schema mismatch) or the death of the
// last executor fails the statement.
type Coordinator struct {
	task    ShardTask
	table   *engine.ShardedTable
	rows    []int
	timeout time.Duration

	// MaxBusyRetries bounds consecutive busy backoffs per logical call
	// before the executor is treated as lost.
	MaxBusyRetries int
	// MaxBusyWait caps one backoff sleep regardless of the hint.
	MaxBusyWait time.Duration
	Hooks       Hooks

	mu    sync.Mutex
	slots []*executorSlot
	owner []int // shard index -> slot index, -1 = unassigned
}

// NewCoordinator dials the executors and scatters the partitioned table:
// each shard goes to the least-loaded live executor (round-robin when
// every dial succeeded), shipped as LOAD + ROWS chunks + SEAL with the
// sealed row count verified. Executors that fail to dial are tolerated
// as long as at least one lives — the same one-dead-node-never-fails-
// the-statement stance the training loop takes. The table must outlive
// the coordinator: shards are re-shipped from it on requeue.
func NewCoordinator(addrs []string, table *engine.ShardedTable, task ShardTask,
	timeout time.Duration) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no executor addresses")
	}
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	co := &Coordinator{
		task: task, table: table, rows: table.RowCounts(), timeout: timeout,
		MaxBusyRetries: 8, MaxBusyWait: 2 * time.Second,
		owner: make([]int, table.NumShards()),
	}
	var dialErrs []string
	for _, addr := range addrs {
		conn, err := dialExecutor(addr, timeout)
		if err != nil {
			dialErrs = append(dialErrs, err.Error())
			co.slots = append(co.slots, &executorSlot{alive: false})
			continue
		}
		co.slots = append(co.slots, &executorSlot{conn: conn, alive: true})
	}
	co.mu.Lock()
	alive := co.aliveLocked()
	co.mu.Unlock()
	if alive == 0 {
		return nil, fmt.Errorf("dist: no executor reachable: %s", strings.Join(dialErrs, "; "))
	}
	for i := range co.owner {
		co.owner[i] = -1
	}
	for i := 0; i < table.NumShards(); i++ {
		if err := co.ship(i); err != nil {
			co.Close()
			return nil, err
		}
	}
	return co, nil
}

// Close tears down every executor connection. Shard state on the
// executors is per-connection and dies with them.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, s := range co.slots {
		if s.conn != nil {
			s.conn.close()
		}
		s.alive = false
	}
}

// Runners builds one parallel.ShardRunner per shard, backed by this
// coordinator.
func (co *Coordinator) Runners() []parallel.ShardRunner {
	out := make([]parallel.ShardRunner, co.table.NumShards())
	for i := range out {
		out[i] = &remoteShard{co: co, idx: i, rows: co.rows[i], stepped: -1}
	}
	return out
}

// AliveExecutors reports how many executors are still marked live.
func (co *Coordinator) AliveExecutors() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.aliveLocked()
}

func (co *Coordinator) aliveLocked() int {
	n := 0
	for _, s := range co.slots {
		if s.alive {
			n++
		}
	}
	return n
}

// pickSlotLocked returns the least-loaded live slot index, or -1.
func (co *Coordinator) pickSlotLocked() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for i, s := range co.slots {
		if s.alive && s.shards < bestLoad {
			best, bestLoad = i, s.shards
		}
	}
	return best
}

// markDead retires a slot: its connection closes and every shard it
// owned becomes unassigned, to be re-shipped on demand by whichever
// worker needs it next.
func (co *Coordinator) markDead(slot int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	s := co.slots[slot]
	if !s.alive {
		return
	}
	s.alive = false
	if s.conn != nil {
		s.conn.close()
	}
	for i, o := range co.owner {
		if o == slot {
			co.owner[i] = -1
		}
	}
}

// ownerConn resolves a shard's current executor, shipping the shard to a
// survivor first when it is unassigned (the requeue path).
func (co *Coordinator) ownerConn(shard int) (int, *execConn, error) {
	for {
		co.mu.Lock()
		if o := co.owner[shard]; o >= 0 && co.slots[o].alive {
			conn := co.slots[o].conn
			co.mu.Unlock()
			return o, conn, nil
		}
		co.mu.Unlock()
		if err := co.ship(shard); err != nil {
			return -1, nil, err
		}
	}
}

// ship assigns the shard to the least-loaded live executor and ships its
// rows (LOAD, ROWS chunks, SEAL). A transport fault during shipping
// marks that executor dead and tries the next survivor; a busy rejection
// frees the partial shard state, backs off by the executor's hint, and
// retries — counted against MaxBusyRetries before the executor is
// treated as lost. Shipping fails only when no executor remains or one
// rejects the shard outright (unknown task, schema mismatch).
func (co *Coordinator) ship(shard int) error {
	busy := 0
	for {
		co.mu.Lock()
		slot := co.pickSlotLocked()
		if slot < 0 {
			co.mu.Unlock()
			return fmt.Errorf("dist: no live executor left for shard %d", shard)
		}
		conn := co.slots[slot].conn
		co.mu.Unlock()

		err := co.shipTo(conn, shard)
		if err == nil {
			co.mu.Lock()
			// The slot may have died between shipTo returning and here; if
			// so the shard's state died with the connection — loop and ship
			// again rather than record a dead owner.
			if co.slots[slot].alive {
				co.owner[shard] = slot
				co.slots[slot].shards++
				co.mu.Unlock()
				return nil
			}
			co.mu.Unlock()
			continue
		}
		var rerr *RemoteError
		if asRemote(err, &rerr) {
			hint, isBusy := busyHintMS(rerr.Msg)
			if !isBusy {
				// The executor is alive and said no: deterministic, fatal.
				return fmt.Errorf("dist: executor %s rejected shard %d: %w", conn.addr, shard, rerr)
			}
			// Shed load mid-ship: the sequence may have stopped after LOAD
			// already registered the shard, so drop the partial state before
			// the retry re-LOADs (a transport fault here retires the slot —
			// the state dies with the connection anyway).
			if ferr := co.freeShard(conn, shard); ferr != nil {
				co.markDead(slot)
				continue
			}
			if busy++; busy > co.MaxBusyRetries {
				co.markDead(slot)
				busy = 0
				continue
			}
			wait := time.Duration(hint) * time.Millisecond
			if wait > co.MaxBusyWait {
				wait = co.MaxBusyWait
			}
			time.Sleep(wait)
			continue
		}
		co.markDead(slot)
	}
}

// freeShard drops one shard's state from an executor, absorbing busy
// shedding with bounded backoff. Application verdicts ("no shard N" when
// the failed ship never got past admission) mean there is nothing to
// free; only a transport fault is reported.
func (co *Coordinator) freeShard(c *execConn, shard int) error {
	var scratch [1]float64
	for attempt := 0; ; attempt++ {
		_, err := c.call(func(buf []byte, id uint64) ([]byte, error) {
			return AppendShardOnly(buf, OpShardFree, id, uint32(shard))
		}, scratch[:0])
		if err == nil {
			return nil
		}
		var rerr *RemoteError
		if !asRemote(err, &rerr) {
			return err
		}
		if hint, isBusy := busyHintMS(rerr.Msg); isBusy && attempt < co.MaxBusyRetries {
			wait := time.Duration(hint) * time.Millisecond
			if wait > co.MaxBusyWait {
				wait = co.MaxBusyWait
			}
			time.Sleep(wait)
			continue
		}
		return nil
	}
}

// shipTo performs the LOAD → ROWS* → SEAL sequence for one shard on one
// connection, verifying the executor sealed exactly the shipped rows.
func (co *Coordinator) shipTo(c *execConn, shard int) error {
	var scratch [2]float64
	t := co.task
	if _, err := c.call(func(buf []byte, id uint64) ([]byte, error) {
		return AppendLoad(buf, id, uint32(shard), t.Order, t.Seed+int64(shard),
			t.Name, t.Params, co.table.Schema)
	}, scratch[:0]); err != nil {
		return err
	}
	err := co.table.ShardChunks(shard, MaxRowChunkBytes, func(records [][]byte) error {
		_, err := c.call(func(buf []byte, id uint64) ([]byte, error) {
			return AppendRows(buf, id, uint32(shard), records)
		}, scratch[:0])
		return err
	})
	if err != nil {
		return err
	}
	vals, err := c.call(func(buf []byte, id uint64) ([]byte, error) {
		return AppendShardOnly(buf, OpShardSeal, id, uint32(shard))
	}, scratch[:0])
	if err != nil {
		return err
	}
	if len(vals) != 1 || int(vals[0]) != co.rows[shard] {
		return fmt.Errorf("dist: executor %s sealed shard %d with %v rows, shipped %d",
			c.addr, shard, vals, co.rows[shard])
	}
	return nil
}

// asRemote reports whether err (or anything it wraps) is a *RemoteError.
func asRemote(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// remoteShard is the parallel.ShardRunner over one remote shard. Its
// value scratch is private to the shard's epoch worker goroutine.
type remoteShard struct {
	co   *Coordinator
	idx  int
	rows int
	vals []float64
	// stepped is the newest epoch this shard has completed (-1 before the
	// first). LOSS frames carry it so a mid-loss-pass requeue replays the
	// ordering stream before summing — see Executor.lossAt.
	stepped int
}

// Rows implements parallel.ShardRunner.
func (r *remoteShard) Rows() int { return r.rows }

// RunEpoch implements parallel.ShardRunner: one remote STEP round trip
// with backoff, retry, and requeue per the coordinator's fault model.
func (r *remoteShard) RunEpoch(epoch int, w vector.Dense, alpha float64, replica vector.Dense) error {
	vals, err := r.call(epoch, func(buf []byte, id uint64) ([]byte, error) {
		return AppendStep(buf, id, uint32(r.idx), epoch, alpha, w)
	})
	if err != nil {
		return err
	}
	if len(vals) != len(replica)+1 {
		return fmt.Errorf("dist: shard %d STEP answered %d values, want %d", r.idx, len(vals), len(replica)+1)
	}
	if int(vals[0]) != r.rows {
		return fmt.Errorf("dist: shard %d STEP reports %d rows, shipped %d", r.idx, int(vals[0]), r.rows)
	}
	copy(replica, vals[1:])
	r.stepped = epoch
	return nil
}

// LossAt implements parallel.ShardRunner.
func (r *remoteShard) LossAt(w vector.Dense) (float64, error) {
	vals, err := r.call(-1, func(buf []byte, id uint64) ([]byte, error) {
		return AppendLoss(buf, id, uint32(r.idx), r.stepped, w)
	})
	if err != nil {
		return 0, err
	}
	if len(vals) != 1 {
		return 0, fmt.Errorf("dist: shard %d LOSS answered %d values, want 1", r.idx, len(vals))
	}
	return vals[0], nil
}

// call drives one logical round trip to wherever the shard currently
// lives, looping over busy backoffs and executor loss. epoch >= 0 marks
// a STEP (for the hooks); -1 a LOSS pass.
func (r *remoteShard) call(epoch int, build func(buf []byte, id uint64) ([]byte, error)) ([]float64, error) {
	busy := 0
	for {
		slot, conn, err := r.co.ownerConn(r.idx)
		if err != nil {
			return nil, err
		}
		if epoch >= 0 && r.co.Hooks.BeforeStep != nil {
			r.co.Hooks.BeforeStep(r.idx, epoch)
		}
		vals, err := conn.call(build, r.vals[:0])
		if epoch >= 0 && r.co.Hooks.AfterStep != nil {
			r.co.Hooks.AfterStep(r.idx, epoch, err)
		}
		if err == nil {
			r.vals = vals
			return vals, nil
		}
		var rerr *RemoteError
		if asRemote(err, &rerr) {
			hint, isBusy := busyHintMS(rerr.Msg)
			if !isBusy {
				return nil, fmt.Errorf("dist: shard %d on executor %s: %w", r.idx, conn.addr, rerr)
			}
			if busy++; busy > r.co.MaxBusyRetries {
				// Persistently saturated: treat like a lost node so the
				// shard can drain somewhere with headroom.
				r.co.markDead(slot)
				busy = 0
				continue
			}
			wait := time.Duration(hint) * time.Millisecond
			if wait > r.co.MaxBusyWait {
				wait = r.co.MaxBusyWait
			}
			time.Sleep(wait)
			continue
		}
		// Transport fault: the executor is lost; requeue via ownerConn.
		r.co.markDead(slot)
	}
}
