package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/vector"
)

// BuildTask reconstructs a training task from its registry name and
// fully-resolved parameters — no data view, exactly the model-snapshot
// rebuild path. The server injects an implementation backed by the spec
// registry; dist stays below the statement layer.
type BuildTask func(name string, params map[string]string) (core.Task, error)

// Gate is the executor's admission hook, wrapped around the server's
// serving gate. Admit may block while queued for a slot; it returns a
// release func on success, ok=false when the server is shutting down
// (tear the connection down, answer nothing), and an error — typically a
// busy rejection carrying retry_after_ms — when the request is shed.
type Gate interface {
	Admit() (release func(), ok bool, err error)
}

// nopGate admits everything (standalone executors without a gate).
type nopGate struct{}

func (nopGate) Admit() (func(), bool, error) { return func() {}, true, nil }

// ExecutorHooks expose test seams inside op handling. Nil hooks cost one
// pointer compare.
type ExecutorHooks struct {
	// MidStep runs after a STEP request is admitted and decoded but
	// before the epoch scan — the "mid STEP" point of the crash matrix.
	MidStep func(shard uint32, epoch int)
}

// MaxExecutorBytes caps the total encoded row bytes one connection may
// ship: the executor is a network service and a hostile coordinator must
// not OOM it with an unbounded table. Var, not const, so tests (and a
// future flag) can tighten it.
var MaxExecutorBytes = int64(256 << 20)

// execShard is one loaded shard's training state: the shard heap, its
// epoch pipeline, the ordering replay cursor, and the task replica.
type execShard struct {
	tbl     *engine.Table
	schema  engine.Schema
	task    core.Task
	order   core.OrderStrategy
	rng     *rand.Rand
	src     engine.Relation
	prepare func(epoch int, rng *rand.Rand) error
	rows    int
	sealed  bool

	// lastEpoch is the newest epoch whose ordering preparation has run;
	// STEP(e) replays lastEpoch+1..e in sequence so the rng stream — and
	// with it the scan order — is identical whether the shard lived here
	// from epoch 0 or was requeued from a lost executor mid-run.
	lastEpoch int

	model core.DenseModel
	// step/loss state pre-bound exactly like the in-process runner.
	alpha   float64
	cur     vector.Dense
	partial float64
	stepFn  func(engine.Tuple) error
	lossFn  func(engine.Tuple) error
}

func (sh *execShard) step(tp engine.Tuple) error {
	sh.task.Step(&sh.model, tp, sh.alpha)
	return nil
}

func (sh *execShard) loss(tp engine.Tuple) error {
	sh.partial += sh.task.Loss(sh.cur, tp)
	return nil
}

// Executor is one connection's shard-hosting state machine. It is
// single-goroutine by construction — the server's binary loop is
// synchronous — so no locking happens here; the admission gate is the
// only shared resource.
type Executor struct {
	build BuildTask
	gate  Gate
	Hooks ExecutorHooks

	shards map[uint32]*execShard
	bytes  int64 // encoded row bytes accepted so far (MaxExecutorBytes cap)
	out    []byte
	vals   []float64
	w      vector.Dense
}

// NewExecutor builds a connection's executor. gate may be nil (admit
// everything); build must be able to resolve every task name the
// coordinator will ship.
func NewExecutor(build BuildTask, gate Gate) *Executor {
	if gate == nil {
		gate = nopGate{}
	}
	return &Executor{build: build, gate: gate, shards: make(map[uint32]*execShard)}
}

// Close releases every shard heap. The server calls it when the
// connection dies — shard state never outlives its TCP session.
func (ex *Executor) Close() {
	for k, sh := range ex.shards {
		sh.tbl.Close()
		delete(ex.shards, k)
	}
}

// Shards reports the currently loaded shard count (tests, SHOW SERVING).
func (ex *Executor) Shards() int { return len(ex.shards) }

// Handle serves one executor request payload (opcode already verified to
// be an executor op by the caller), leaving the response frame in the
// returned buffer, which is reused across calls. ok=false means the
// server is shutting down and the connection should be torn down without
// a response.
func (ex *Executor) Handle(payload []byte) (resp []byte, ok bool) {
	if len(payload) < reqHeader {
		// Id 0 is the unattributable-error id, as in the predict frames.
		return AppendErr(ex.out[:0], 0, "dist: executor frame truncated before header"), true
	}
	op := payload[0]
	id := binary.LittleEndian.Uint64(payload[1:9])
	release, ok, err := ex.gate.Admit()
	if !ok {
		return nil, false
	}
	if err != nil {
		return AppendErr(ex.out[:0], id, err.Error()), true
	}
	defer release()
	vals, herr := ex.dispatch(op, payload[reqHeader:])
	if herr != nil {
		return AppendErr(ex.out[:0], id, herr.Error()), true
	}
	ex.out = AppendOK(ex.out[:0], id, vals)
	return ex.out, true
}

func (ex *Executor) dispatch(op byte, body []byte) ([]float64, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("dist: executor frame truncated before shard id")
	}
	shard := binary.LittleEndian.Uint32(body)
	body = body[4:]
	switch op {
	case OpShardLoad:
		return nil, ex.load(shard, body)
	case OpShardRows:
		return nil, ex.rows(shard, body)
	case OpShardSeal:
		return ex.seal(shard)
	case OpShardStep:
		return ex.step(shard, body)
	case OpShardLoss:
		return ex.lossAt(shard, body)
	case OpShardFree:
		sh, ok := ex.shards[shard]
		if !ok {
			return nil, fmt.Errorf("dist: executor has no shard %d", shard)
		}
		sh.tbl.Close()
		delete(ex.shards, shard)
		return nil, nil
	}
	return nil, fmt.Errorf("dist: unknown executor opcode %d", op)
}

// load handles SHARD_LOAD: declare the shard, rebuild its task from the
// shipped name+params, and stand up an empty shard heap to receive rows.
func (ex *Executor) load(shard uint32, body []byte) error {
	if _, dup := ex.shards[shard]; dup {
		return fmt.Errorf("dist: shard %d already loaded on this connection", shard)
	}
	if len(ex.shards) >= 1024 {
		return fmt.Errorf("dist: connection shard limit reached")
	}
	if len(body) < 1+8 {
		return fmt.Errorf("dist: SHARD_LOAD frame truncated")
	}
	orderByte := body[0]
	seed := int64(binary.LittleEndian.Uint64(body[1:9]))
	body = body[9:]
	taskName, body, err := u16str(body, "task name", maxTaskNameLen)
	if err != nil {
		return err
	}
	if len(body) < 2 {
		return fmt.Errorf("dist: SHARD_LOAD frame truncated before param count")
	}
	npairs := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if npairs > maxParamPairs {
		return fmt.Errorf("dist: %d task params exceed the limit of %d", npairs, maxParamPairs)
	}
	params := make(map[string]string, npairs)
	for i := 0; i < npairs; i++ {
		var k, v []byte
		if k, body, err = u16str(body, "param key", maxParamLen); err != nil {
			return err
		}
		if v, body, err = u16str(body, "param value", maxParamLen); err != nil {
			return err
		}
		params[string(k)] = string(v)
	}
	if len(body) < 2 {
		return fmt.Errorf("dist: SHARD_LOAD frame truncated before schema")
	}
	ncols := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if ncols == 0 || ncols > maxSchemaCols {
		return fmt.Errorf("dist: schema of %d columns out of range", ncols)
	}
	schema := make(engine.Schema, ncols)
	for i := 0; i < ncols; i++ {
		if len(body) < 1 {
			return fmt.Errorf("dist: SHARD_LOAD frame truncated inside schema")
		}
		typ := engine.Type(body[0])
		body = body[1:]
		if typ < engine.TInt64 || typ > engine.TInt32Vec {
			return fmt.Errorf("dist: schema column %d has unknown type tag %d", i, typ)
		}
		var name []byte
		if name, body, err = u16str(body, "column name", maxColNameLen); err != nil {
			return err
		}
		if len(name) == 0 {
			return fmt.Errorf("dist: schema column %d has an empty name", i)
		}
		schema[i] = engine.Column{Name: string(name), Type: typ}
	}
	if len(body) != 0 {
		return fmt.Errorf("dist: SHARD_LOAD frame has %d trailing bytes", len(body))
	}
	task, err := ex.build(string(taskName), params)
	if err != nil {
		return fmt.Errorf("dist: rebuilding task %q: %w", taskName, err)
	}
	if task.Dim() > MaxWireDim {
		return fmt.Errorf("dist: task dimension %d exceeds the wire limit %d", task.Dim(), MaxWireDim)
	}
	var order core.OrderStrategy
	switch orderByte {
	case OrderAsStored:
		order = core.NoOrder{}
	case OrderShuffleOnce:
		order = ordering.ShuffleOnce{}
	case OrderShuffleAlways:
		order = ordering.ShuffleAlways{}
	case OrderClustered:
		order = ordering.Clustered{}
	default:
		return fmt.Errorf("dist: unknown order byte %d", orderByte)
	}
	sh := &execShard{
		tbl:       engine.NewMemTable(fmt.Sprintf("__exec_shard%d", shard), schema),
		schema:    schema,
		task:      task,
		order:     order,
		rng:       rand.New(rand.NewSource(seed)),
		lastEpoch: -1,
		model:     core.DenseModel{W: vector.NewDense(task.Dim())},
	}
	sh.stepFn = sh.step
	sh.lossFn = sh.loss
	ex.shards[shard] = sh
	return nil
}

// rows handles SHARD_ROWS: decode each shipped record against the
// shard's schema and insert it into the shard heap.
func (ex *Executor) rows(shard uint32, body []byte) error {
	sh, ok := ex.shards[shard]
	if !ok {
		return fmt.Errorf("dist: executor has no shard %d", shard)
	}
	if sh.sealed {
		return fmt.Errorf("dist: shard %d is sealed — no more rows", shard)
	}
	if len(body) < 4 {
		return fmt.Errorf("dist: SHARD_ROWS frame truncated before record count")
	}
	nrecs := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if nrecs == 0 {
		return fmt.Errorf("dist: SHARD_ROWS frame with zero records")
	}
	for i := 0; i < nrecs; i++ {
		if len(body) < 4 {
			return fmt.Errorf("dist: SHARD_ROWS frame truncated before record %d", i)
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n == 0 || n > len(body) {
			return fmt.Errorf("dist: SHARD_ROWS record %d length %d out of range", i, n)
		}
		if ex.bytes += int64(n); ex.bytes > MaxExecutorBytes {
			return fmt.Errorf("dist: connection exceeded the %d-byte shard budget", MaxExecutorBytes)
		}
		tp, err := engine.DecodeTuple(body[:n])
		if err != nil {
			return fmt.Errorf("dist: record %d: %w", i, err)
		}
		if !tp.Matches(sh.schema) {
			return fmt.Errorf("dist: record %d does not match the declared schema", i)
		}
		if err := sh.tbl.Insert(tp); err != nil {
			return err
		}
		sh.rows++
		body = body[n:]
	}
	if len(body) != 0 {
		return fmt.Errorf("dist: SHARD_ROWS frame has %d trailing bytes", len(body))
	}
	return nil
}

// seal handles SHARD_SEAL: flush the shard heap and stand up the epoch
// pipeline. Replies the accepted row count so the coordinator can verify
// nothing was lost in transit.
func (ex *Executor) seal(shard uint32) ([]float64, error) {
	sh, ok := ex.shards[shard]
	if !ok {
		return nil, fmt.Errorf("dist: executor has no shard %d", shard)
	}
	if sh.sealed {
		return nil, fmt.Errorf("dist: shard %d already sealed", shard)
	}
	if err := sh.tbl.Flush(); err != nil {
		return nil, err
	}
	src, prepare, err := core.EpochSource(sh.tbl, sh.order, engine.Profile{})
	if err != nil {
		return nil, err
	}
	sh.src, sh.prepare, sh.sealed = src, prepare, true
	ex.vals = append(ex.vals[:0], float64(sh.rows))
	return ex.vals, nil
}

// catchUp replays the ordering preparation for every epoch in
// (lastEpoch, e] — the requeue-determinism mechanism (see the package
// comment).
func (sh *execShard) catchUp(e int) error {
	for epoch := sh.lastEpoch + 1; epoch <= e; epoch++ {
		if err := sh.prepare(epoch, sh.rng); err != nil {
			return err
		}
	}
	sh.lastEpoch = e
	return nil
}

// step handles SHARD_STEP: catch up the ordering stream, run one epoch
// of gradient steps from the shipped model, and reply [rows, w...].
func (ex *Executor) step(shard uint32, body []byte) ([]float64, error) {
	sh, ok := ex.shards[shard]
	if !ok {
		return nil, fmt.Errorf("dist: executor has no shard %d", shard)
	}
	if !sh.sealed {
		return nil, fmt.Errorf("dist: shard %d not sealed — STEP before SEAL", shard)
	}
	if len(body) < 4+8+2 {
		return nil, fmt.Errorf("dist: SHARD_STEP frame truncated")
	}
	epoch := int(binary.LittleEndian.Uint32(body))
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(body[4:12]))
	w, err := ex.decodeModel(body[12:], sh)
	if err != nil {
		return nil, err
	}
	if epoch > maxEpoch {
		return nil, fmt.Errorf("dist: epoch %d out of range", epoch)
	}
	if epoch <= sh.lastEpoch {
		return nil, fmt.Errorf("dist: shard %d already past epoch %d (at %d) — out-of-order STEP", shard, epoch, sh.lastEpoch)
	}
	if ex.Hooks.MidStep != nil {
		ex.Hooks.MidStep(shard, epoch)
	}
	if err := sh.catchUp(epoch); err != nil {
		return nil, err
	}
	copy(sh.model.W, w)
	sh.alpha = alpha
	if err := sh.src.Scan(sh.stepFn); err != nil {
		return nil, err
	}
	ex.vals = append(ex.vals[:0], float64(sh.rows))
	ex.vals = append(ex.vals, sh.model.W...)
	return ex.vals, nil
}

// lossAt handles SHARD_LOSS: the shard's summed example loss at the
// shipped model. The frame carries the newest completed epoch so a shard
// requeued here mid-loss-pass first replays the ordering stream up to it:
// the scan — and the float summation order — is then identical to a shard
// that ran every STEP in place. On a shard already at (or past) that
// epoch the catch-up is a no-op, matching the in-process runner's
// "loss passes do not advance the cursor" behaviour.
func (ex *Executor) lossAt(shard uint32, body []byte) ([]float64, error) {
	sh, ok := ex.shards[shard]
	if !ok {
		return nil, fmt.Errorf("dist: executor has no shard %d", shard)
	}
	if !sh.sealed {
		return nil, fmt.Errorf("dist: shard %d not sealed — LOSS before SEAL", shard)
	}
	if len(body) < 4 {
		return nil, fmt.Errorf("dist: SHARD_LOSS frame truncated before epoch")
	}
	epoch := int(int32(binary.LittleEndian.Uint32(body)))
	body = body[4:]
	if epoch < -1 || epoch > maxEpoch {
		return nil, fmt.Errorf("dist: epoch %d out of range", epoch)
	}
	w, err := ex.decodeModel(body, sh)
	if err != nil {
		return nil, err
	}
	if epoch > sh.lastEpoch {
		if err := sh.catchUp(epoch); err != nil {
			return nil, err
		}
	}
	sh.cur, sh.partial = w, 0
	if err := sh.src.Scan(sh.lossFn); err != nil {
		return nil, err
	}
	ex.vals = append(ex.vals[:0], sh.partial)
	return ex.vals, nil
}

// decodeModel parses the u16 dim | f64×dim tail shared by STEP and LOSS
// into the executor's reusable model buffer, validating against the
// shard's task dimension.
func (ex *Executor) decodeModel(body []byte, sh *execShard) (vector.Dense, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("dist: frame truncated before model dimension")
	}
	dim := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if dim != sh.task.Dim() {
		return nil, fmt.Errorf("dist: model dimension %d, shard task wants %d", dim, sh.task.Dim())
	}
	if len(body) != 8*dim {
		return nil, fmt.Errorf("dist: frame carries %d model bytes, dimension %d needs %d", len(body), dim, 8*dim)
	}
	if cap(ex.w) < dim {
		ex.w = vector.NewDense(dim)
	}
	w := ex.w[:dim]
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return w, nil
}
