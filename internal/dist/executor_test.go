package dist

import (
	"reflect"
	"strings"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
)

// buildLR resolves the only task these tests ship. Using the registry
// would import spec, which imports dist — the server wires the real
// registry in production.
func buildLR(name string, params map[string]string) (core.Task, error) {
	return &tasks.LR{D: 54}, nil
}

// roundTrip feeds one already-encoded request frame (length prefix
// included, as the Append helpers build them) through the executor and
// decodes the response.
func roundTrip(t *testing.T, ex *Executor, frame []byte) ([]float64, error) {
	t.Helper()
	resp, ok := ex.Handle(frame[4:])
	if !ok {
		t.Fatal("executor refused a frame outside shutdown")
	}
	_, vals, err := decodeResponse(resp[4:], nil)
	// vals aliases executor scratch reused by the next Handle; copy.
	return append([]float64(nil), vals...), err
}

// shipShard drives the LOAD → ROWS* → SEAL flow for shard 0 of tbl onto
// ex, returning the sealed row count.
func shipShard(t *testing.T, ex *Executor, tbl *engine.Table, seed int64) int {
	t.Helper()
	st, err := engine.ShardTable(tbl, 1, engine.ShardRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	frame, err := AppendLoad(nil, 1, 0, OrderShuffleOnce, seed, "lr", map[string]string{"dim": "54"}, tasks.DenseExampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := roundTrip(t, ex, frame); err != nil {
		t.Fatalf("LOAD: %v", err)
	}
	err = st.ShardChunks(0, MaxRowChunkBytes, func(records [][]byte) error {
		frame, err := AppendRows(nil, 2, 0, records)
		if err != nil {
			return err
		}
		_, err = roundTrip(t, ex, frame)
		return err
	})
	if err != nil {
		t.Fatalf("ROWS: %v", err)
	}
	frame, err = AppendShardOnly(nil, OpShardSeal, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := roundTrip(t, ex, frame)
	if err != nil {
		t.Fatalf("SEAL: %v", err)
	}
	if len(vals) != 1 {
		t.Fatalf("SEAL answered %d values, want 1", len(vals))
	}
	return int(vals[0])
}

func stepAt(t *testing.T, ex *Executor, epoch int, w []float64) []float64 {
	t.Helper()
	frame, err := AppendStep(nil, 10+uint64(epoch), 0, epoch, 0.1, w)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := roundTrip(t, ex, frame)
	if err != nil {
		t.Fatalf("STEP(%d): %v", epoch, err)
	}
	if len(vals) != len(w)+1 {
		t.Fatalf("STEP(%d) answered %d values, want %d", epoch, len(vals), len(w)+1)
	}
	return vals
}

func lossAt(t *testing.T, ex *Executor, epoch int, w []float64) float64 {
	t.Helper()
	frame, err := AppendLoss(nil, 20, 0, epoch, w)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := roundTrip(t, ex, frame)
	if err != nil {
		t.Fatalf("LOSS(%d): %v", epoch, err)
	}
	if len(vals) != 1 {
		t.Fatalf("LOSS answered %d values, want 1", len(vals))
	}
	return vals[0]
}

// TestExecutorEpochReplayDeterminism is the requeue property at the
// executor level: a fresh executor asked to STEP at epoch E replays the
// ordering stream 0..E first, so its reply is bit-identical to an
// executor that lived through every earlier epoch in place — and a LOSS
// carrying epoch E on a never-stepped shard sums in the same order too.
func TestExecutorEpochReplayDeterminism(t *testing.T) {
	tbl := data.Forest(60, 3)
	defer tbl.Close()

	lived := NewExecutor(buildLR, nil)
	defer lived.Close()
	if rows := shipShard(t, lived, tbl, 42); rows != 60 {
		t.Fatalf("sealed %d rows, shipped 60", rows)
	}
	w := make([]float64, 54)
	for e := 0; e < 2; e++ {
		out := stepAt(t, lived, e, w)
		copy(w, out[1:])
	}
	// w is now the epoch-2 input; take the lived executor's epoch-2 reply.
	last := stepAt(t, lived, 2, w)

	// The requeue stand-in: fresh shard, straight to epoch 2 from the
	// same incoming model.
	fresh := NewExecutor(buildLR, nil)
	defer fresh.Close()
	shipShard(t, fresh, tbl, 42)
	got := stepAt(t, fresh, 2, w)
	if !reflect.DeepEqual(got, last) {
		t.Error("fresh executor's catch-up STEP(2) is not bit-identical to the lived executor's")
	}

	// Loss parity mid-pass: a never-stepped shard told "epoch 2" must
	// sum in the replayed order, not as-stored.
	freshLoss := NewExecutor(buildLR, nil)
	defer freshLoss.Close()
	shipShard(t, freshLoss, tbl, 42)
	if a, b := lossAt(t, freshLoss, 2, got[1:]), lossAt(t, lived, 2, got[1:]); a != b {
		t.Errorf("requeued-shard loss %v differs from lived-shard loss %v", a, b)
	}
}

// TestExecutorProtocolGuards walks the rejection surface: every
// violation must come back as a RemoteError reply, never kill the
// executor, and leave it usable.
func TestExecutorProtocolGuards(t *testing.T) {
	tbl := data.Forest(20, 1)
	defer tbl.Close()
	ex := NewExecutor(buildLR, nil)
	defer ex.Close()
	shipShard(t, ex, tbl, 7)
	w := make([]float64, 54)

	expectErr := func(name string, frame []byte, wantSub string) {
		t.Helper()
		_, err := roundTrip(t, ex, frame)
		var rerr *RemoteError
		if !asRemote(err, &rerr) {
			t.Fatalf("%s: got %v, want a RemoteError", name, err)
		}
		if !strings.Contains(rerr.Msg, wantSub) {
			t.Errorf("%s: %q does not mention %q", name, rerr.Msg, wantSub)
		}
	}

	stepAt(t, ex, 1, w)
	f, _ := AppendStep(nil, 90, 0, 1, 0.1, w)
	expectErr("out-of-order STEP", f, "out-of-order")
	f, _ = AppendLoad(nil, 91, 0, OrderShuffleOnce, 7, "lr", nil, tasks.DenseExampleSchema)
	expectErr("duplicate LOAD", f, "already loaded")
	f, _ = AppendRows(nil, 92, 0, [][]byte{{1, 2, 3}})
	expectErr("ROWS after SEAL", f, "sealed")
	f, _ = AppendStep(nil, 93, 5, 2, 0.1, w)
	expectErr("STEP on unknown shard", f, "no shard")
	f, _ = AppendShardOnly(nil, 9, 94, 0)
	expectErr("unknown opcode", f, "unknown executor opcode")
	// Truncated STEP: chop the model tail off a valid frame (roundTrip
	// hands Handle the payload past the length prefix, so no refit).
	f, _ = AppendStep(nil, 95, 0, 2, 0.1, w)
	expectErr("truncated STEP", f[:len(f)-8], "model bytes")

	// The executor still works after every rejection.
	stepAt(t, ex, 2, w)
	if got := ex.Shards(); got != 1 {
		t.Fatalf("executor holds %d shards, want 1", got)
	}
}

// TestWireEncodersRejectOutOfRange pins the client-side validation so a
// bad statement fails locally instead of as a garbled frame.
func TestWireEncodersRejectOutOfRange(t *testing.T) {
	w := make([]float64, 4)
	if _, err := AppendStep(nil, 1, 0, -1, 0.1, w); err == nil {
		t.Error("AppendStep accepted a negative epoch")
	}
	if _, err := AppendLoss(nil, 1, 0, -2, w); err == nil {
		t.Error("AppendLoss accepted an epoch below -1")
	}
	if _, err := AppendLoss(nil, 1, 0, 0, nil); err == nil {
		t.Error("AppendLoss accepted an empty model")
	}
	if _, err := AppendLoad(nil, 1, 0, OrderAsStored, 0, "", nil, tasks.DenseExampleSchema); err == nil {
		t.Error("AppendLoad accepted an empty task name")
	}
	if _, err := AppendRows(nil, 1, 0, nil); err == nil {
		t.Error("AppendRows accepted zero records")
	}
}

// TestAdaptiveShards pins the K heuristic: one shard per executor at
// minimum, growing in executor multiples only while shards stay above
// the row target, capped at 4x executors and the engine ceiling.
func TestAdaptiveShards(t *testing.T) {
	cases := []struct {
		rows, executors, maxK, want int
	}{
		{1000, 2, 1024, 2},          // small table: one shard per node
		{100000, 2, 1024, 6},        // grows while shards stay >= 16384 rows
		{10000000, 2, 1024, 8},      // capped at 4x executors
		{10000000, 2, 3, 3},         // engine ceiling wins
		{500, 0, 1024, 1},           // degenerate executor count
		{16384 * 8, 4, 1024, 8},     // exact boundary: 8 shards of 16384
		{16384*8 - 1, 4, 1024, 4},   // just under: stays at one per node
		{1 << 30, 16, 1024, 16 * 4}, // big everything: 4x executors
	}
	for _, c := range cases {
		if got := AdaptiveShards(c.rows, c.executors, c.maxK); got != c.want {
			t.Errorf("AdaptiveShards(%d, %d, %d) = %d, want %d", c.rows, c.executors, c.maxK, got, c.want)
		}
	}
}
