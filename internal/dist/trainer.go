package dist

import (
	"fmt"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/parallel"
	"bismarck/internal/vector"
)

// targetRowsPerShard is the shard granularity AdaptiveShards aims for: K
// grows past the executor count only while shards would still carry more
// rows than this, so small tables do not fragment into chatty slivers.
const targetRowsPerShard = 16384

// maxShardsPerExecutor caps the adaptive K at a small multiple of the
// executor count — enough requeue granularity that losing one node
// spreads its load across the survivors, not so much that frame overhead
// dominates the epoch.
const maxShardsPerExecutor = 4

// AdaptiveShards picks the partition count for a distributed run with no
// explicit shards knob: at least one shard per executor (every node
// works), growing in executor multiples while shards stay above
// targetRowsPerShard rows, capped at maxShardsPerExecutor×executors and
// maxK (the engine's shard ceiling).
func AdaptiveShards(rows, executors, maxK int) int {
	if executors < 1 {
		executors = 1
	}
	k := executors
	for k+executors <= maxShardsPerExecutor*executors && rows/(k+executors) >= targetRowsPerShard {
		k += executors
	}
	if k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Trainer runs the Bismarck epoch loop over remote executors: the table
// is partitioned like the in-process sharded mode, the shards scatter to
// executor processes, and every epoch is one STEP round trip per shard
// with the replicas merged by row-weighted averaging. Because the remote
// runners slot into the same parallel.ShardedEpoch the local mode uses,
// a distributed run over healthy executors produces exactly the model
// the in-process sharded run with the same K, seed, and ordering would.
type Trainer struct {
	// Executors is the dialable host:port list (required, non-empty).
	Executors []string
	// TaskName and TaskParams rebuild the task on the executors (the
	// registry name and a TaskSpec.Snapshot of Task).
	TaskName   string
	TaskParams map[string]string
	// Task is the coordinator-side task (merge dims, initial model).
	Task core.Task
	Step core.StepRule
	// OrderName is the spec order-knob name, mapped via OrderByte.
	OrderName string
	MaxEpochs int
	// Shards is the partition count K; 0 picks AdaptiveShards.
	Shards int
	// MaxShards bounds the adaptive K (the spec's shard ceiling).
	MaxShards  int
	Strategy   engine.ShardStrategy
	RelTol     float64
	TargetLoss float64
	Seed       int64
	InitModel  vector.Dense
	SkipLoss   bool
	Deadline   time.Time
	// Timeout bounds each executor round trip (0: the dist default).
	Timeout time.Duration
	Hooks   Hooks
}

// Run partitions the table, scatters it, and trains the task.
func (tr *Trainer) Run(tbl *engine.Table) (*core.Result, error) {
	if len(tr.Executors) == 0 {
		return nil, fmt.Errorf("dist: Executors is required")
	}
	if tr.MaxEpochs <= 0 {
		return nil, fmt.Errorf("dist: MaxEpochs must be > 0")
	}
	if tr.Step == nil {
		return nil, fmt.Errorf("dist: Step is required")
	}
	if tr.Task == nil {
		return nil, fmt.Errorf("dist: Task is required")
	}
	if dim := tr.Task.Dim(); dim > MaxWireDim {
		return nil, fmt.Errorf("dist: task dimension %d exceeds the wire limit %d "+
			"(train in-process with shards= instead)", dim, MaxWireDim)
	}
	k := tr.Shards
	if k < 1 {
		maxK := tr.MaxShards
		if maxK < 1 {
			maxK = maxShardsPerExecutor * len(tr.Executors)
		}
		k = AdaptiveShards(tbl.NumRows(), len(tr.Executors), maxK)
	}
	sharded, err := engine.ShardTable(tbl, k, tr.Strategy)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()

	co, err := NewCoordinator(tr.Executors, sharded, ShardTask{
		Name:   tr.TaskName,
		Params: tr.TaskParams,
		Order:  OrderByte(tr.OrderName),
		Seed:   tr.Seed,
	}, tr.Timeout)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	co.Hooks = tr.Hooks

	se, err := parallel.NewShardedEpochRunners(tr.Task, co.Runners())
	if err != nil {
		return nil, err
	}
	return parallel.Drive(se, parallel.DriveConfig{
		Task: tr.Task, Step: tr.Step, MaxEpochs: tr.MaxEpochs,
		RelTol: tr.RelTol, TargetLoss: tr.TargetLoss, Seed: tr.Seed,
		InitModel: tr.InitModel, SkipLoss: tr.SkipLoss, Deadline: tr.Deadline,
	})
}
