// Package dist is the distributed training plane: a coordinator that
// scatters one statement's shard partitions to executor bismarckd
// processes and drives per-epoch remote steps over the binary frame
// transport, merging the replica models with the same row-weighted
// averaging the in-process sharded mode uses (DESIGN.md §7 — the algebra
// is identical; only the worker moved out of process).
//
// The wire protocol extends the "@bin" binary framing (see
// internal/server/binframe.go): after the text-mode handshake, every
// frame is `u32 LE payload length | payload`, requests carry
// `u8 opcode | u64 LE id | ...`, responses carry `u8 status | u64 LE id`
// followed by `u16 LE n | f64 LE × n` on success or `u16 LE len | msg`
// on error. Executor opcodes continue the numbering after predict (1):
//
//	2 SHARD_LOAD  u32 shard | u8 order | u64 seed | u16 tlen | task
//	              | u16 npairs | (u16 klen | key | u16 vlen | val)×npairs
//	              | u16 ncols | (u8 type | u16 nlen | name)×ncols
//	              → OK, n=0
//	3 SHARD_ROWS  u32 shard | u32 nrecs | (u32 reclen | record)×nrecs
//	              → OK, n=0        (records are engine.Tuple.Encode bytes)
//	4 SHARD_SEAL  u32 shard → OK, n=1: [rows]
//	5 SHARD_STEP  u32 shard | u32 epoch | f64 alpha | u16 dim | f64×dim w
//	              → OK, n=dim+1: [rows, w_i...]
//	6 SHARD_LOSS  u32 shard | u32 epoch | u16 dim | f64×dim w
//	              → OK, n=1: [partial]  (epoch: newest completed, -1
//	              before the first — a requeued shard catches the
//	              ordering up before summing)
//	7 SHARD_FREE  u32 shard → OK, n=0
//
// One statement's shard lives on one connection: executor state is
// per-connection and dies with it, so a lost coordinator can never leak
// shard heaps past its TCP session. The flow is LOAD → ROWS* → SEAL →
// (STEP | LOSS)* → FREE; STEP carries the epoch number and the executor
// replays the ordering preparation for every epoch it has not seen yet,
// which is what makes a shard requeued onto a fresh executor reproduce
// the exact rng stream — and therefore the exact model — the original
// would have produced.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bismarck/internal/engine"
)

// Executor opcodes (predict owns 1; see the package comment).
const (
	OpShardLoad = 2
	OpShardRows = 3
	OpShardSeal = 4
	OpShardStep = 5
	OpShardLoss = 6
	OpShardFree = 7
)

// Response statuses, shared with the predict frames.
const (
	statusOK  = 0
	statusErr = 1
)

const (
	reqHeader  = 1 + 8 // opcode, id
	respHeader = 1 + 8 // status, id

	// MaxFrameBytes mirrors the server's binary frame cap: one frame's
	// payload never exceeds 1 MiB in either direction.
	MaxFrameBytes = 1 << 20

	// MaxWireDim caps the model dimension of distributed training: the
	// STEP response packs rows plus dim coefficients behind a u16 count,
	// so dim+1 must fit in 65535.
	MaxWireDim = 65534

	// MaxRowChunkBytes bounds one SHARD_ROWS frame's record payload —
	// comfortably under MaxFrameBytes so framing overhead never tips a
	// chunk over the cap.
	MaxRowChunkBytes = 1 << 18

	// maxEpoch bounds the epoch number an executor will replay orderings
	// up to; a corrupt or hostile STEP must not buy a year-long loop.
	maxEpoch = 1 << 20

	// Field caps for LOAD payloads — all network-facing.
	maxTaskNameLen = 256
	maxParamPairs  = 64
	maxParamLen    = 1024
	maxSchemaCols  = 64
	maxColNameLen  = 256
)

// Ordering bytes of the LOAD frame (the shard's epoch-order strategy).
const (
	OrderAsStored      = 0
	OrderShuffleOnce   = 1
	OrderShuffleAlways = 2
	OrderClustered     = 3
)

// OrderByte maps a spec order-knob name onto its wire byte; unknown names
// fall back to shuffle_once, mirroring Knobs.OrderStrategy.
func OrderByte(name string) byte {
	switch name {
	case "shuffle_always":
		return OrderShuffleAlways
	case "clustered":
		return OrderClustered
	case "", "shuffle_once":
		return OrderShuffleOnce
	}
	return OrderShuffleOnce
}

// appendHeader starts a request payload (no length prefix yet — the
// caller prepends it once the payload is complete via finishFrame).
func appendHeader(buf []byte, op byte, id uint64) []byte {
	buf = append(buf, op)
	return binary.LittleEndian.AppendUint64(buf, id)
}

// finishFrame prepends the u32 length prefix to the payload built after
// buf[:start] and validates the frame cap.
func finishFrame(buf []byte, start int) ([]byte, error) {
	n := len(buf) - start - 4
	if n <= 0 {
		return buf, fmt.Errorf("dist: empty frame payload")
	}
	if n > MaxFrameBytes {
		return buf, fmt.Errorf("dist: frame payload %d exceeds %d bytes", n, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// AppendLoad encodes a SHARD_LOAD request (length prefix included): the
// shard's identity, ordering, rng seed, task name, resolved task
// parameters, and the canonical schema the shipped rows decode against.
func AppendLoad(buf []byte, id uint64, shard uint32, order byte, seed int64,
	task string, params map[string]string, schema engine.Schema) ([]byte, error) {
	if len(task) == 0 || len(task) > maxTaskNameLen {
		return buf, fmt.Errorf("dist: task name length %d out of range", len(task))
	}
	if len(params) > maxParamPairs {
		return buf, fmt.Errorf("dist: %d task params exceed the limit of %d", len(params), maxParamPairs)
	}
	if len(schema) == 0 || len(schema) > maxSchemaCols {
		return buf, fmt.Errorf("dist: schema of %d columns out of range", len(schema))
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendHeader(buf, OpShardLoad, id)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	buf = append(buf, order)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seed))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(task)))
	buf = append(buf, task...)
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(keys)))
	for _, k := range keys {
		v := params[k]
		if len(k) > maxParamLen || len(v) > maxParamLen {
			return buf, fmt.Errorf("dist: task param %q too long", k)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(schema)))
	for _, col := range schema {
		if len(col.Name) == 0 || len(col.Name) > maxColNameLen {
			return buf, fmt.Errorf("dist: schema column name length %d out of range", len(col.Name))
		}
		buf = append(buf, byte(col.Type))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(col.Name)))
		buf = append(buf, col.Name...)
	}
	return finishFrame(buf, start)
}

// AppendRows encodes a SHARD_ROWS request carrying a chunk of encoded
// records. The caller keeps chunks under MaxRowChunkBytes of record bytes
// (engine.ShardedTable.ShardChunks does); the frame cap is validated here
// regardless.
func AppendRows(buf []byte, id uint64, shard uint32, records [][]byte) ([]byte, error) {
	if len(records) == 0 {
		return buf, fmt.Errorf("dist: SHARD_ROWS wants at least one record")
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendHeader(buf, OpShardRows, id)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(records)))
	for _, rec := range records {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
		buf = append(buf, rec...)
	}
	return finishFrame(buf, start)
}

// AppendShardOnly encodes the bodyless shard ops: SEAL and FREE.
func AppendShardOnly(buf []byte, op byte, id uint64, shard uint32) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendHeader(buf, op, id)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	return finishFrame(buf, start)
}

// AppendStep encodes a SHARD_STEP request: run the shard's epoch from
// model w with step size alpha (replaying any unseen epoch orderings
// first).
func AppendStep(buf []byte, id uint64, shard uint32, epoch int, alpha float64, w []float64) ([]byte, error) {
	if len(w) == 0 || len(w) > MaxWireDim {
		return buf, fmt.Errorf("dist: model dimension %d out of wire range 1..%d", len(w), MaxWireDim)
	}
	if epoch < 0 || epoch > maxEpoch {
		return buf, fmt.Errorf("dist: epoch %d out of range", epoch)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendHeader(buf, OpShardStep, id)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(epoch))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(alpha))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w)))
	for _, v := range w {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return finishFrame(buf, start)
}

// AppendLoss encodes a SHARD_LOSS request: sum the shard's example losses
// at model w. epoch is the newest completed training epoch (-1 before the
// first): a shard requeued onto a fresh executor mid-loss-pass replays the
// ordering stream up to that epoch before scanning, so the float summation
// order — and with it the loss bits — matches a shard that lived through
// every STEP in place.
func AppendLoss(buf []byte, id uint64, shard uint32, epoch int, w []float64) ([]byte, error) {
	if len(w) == 0 || len(w) > MaxWireDim {
		return buf, fmt.Errorf("dist: model dimension %d out of wire range 1..%d", len(w), MaxWireDim)
	}
	if epoch < -1 || epoch > maxEpoch {
		return buf, fmt.Errorf("dist: epoch %d out of range", epoch)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendHeader(buf, OpShardLoss, id)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(epoch)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w)))
	for _, v := range w {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return finishFrame(buf, start)
}

// AppendOK encodes a success response frame (length prefix included) —
// the executor side of the protocol. The layout matches the predict
// frames byte for byte.
func AppendOK(buf []byte, id uint64, vals []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(respHeader+2+8*len(vals)))
	buf = append(buf, statusOK)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// AppendErr encodes an error response frame (length prefix included);
// long messages truncate to the u16 length field.
func AppendErr(buf []byte, id uint64, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(respHeader+2+len(msg)))
	buf = append(buf, statusErr)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	return buf
}

// RemoteError is an error the executor reported in a well-formed ERR
// frame: the executor is alive and the request was delivered — the
// failure is an application verdict, not a transport fault, so the
// coordinator must not treat it as a lost node.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// decodeResponse parses a response payload into dst (reused when large
// enough). A statusErr payload returns (*RemoteError); malformed payloads
// return ordinary errors, which callers treat as transport faults.
func decodeResponse(payload []byte, dst []float64) (id uint64, vals []float64, err error) {
	if len(payload) < respHeader+2 {
		return 0, nil, fmt.Errorf("dist: response payload %d bytes, header alone is %d", len(payload), respHeader+2)
	}
	status := payload[0]
	id = binary.LittleEndian.Uint64(payload[1:9])
	n := int(binary.LittleEndian.Uint16(payload[9:11]))
	rest := payload[11:]
	switch status {
	case statusOK:
		if len(rest) != 8*n {
			return id, nil, fmt.Errorf("dist: response carries %d value bytes, header says %d values", len(rest), n)
		}
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		vals = dst[:n]
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return id, vals, nil
	case statusErr:
		if len(rest) != n {
			return id, nil, fmt.Errorf("dist: response carries %d message bytes, header says %d", len(rest), n)
		}
		msg := string(rest)
		if msg == "" {
			msg = "unspecified executor error"
		}
		return id, nil, &RemoteError{Msg: msg}
	}
	return id, nil, fmt.Errorf("dist: unknown response status %d", status)
}

// u16str reads a u16-length-prefixed byte string, returning it with the
// remaining buffer.
func u16str(buf []byte, what string, maxLen int) ([]byte, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, fmt.Errorf("dist: frame truncated before %s length", what)
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if n > maxLen {
		return nil, nil, fmt.Errorf("dist: %s length %d exceeds %d", what, n, maxLen)
	}
	buf = buf[2:]
	if len(buf) < n {
		return nil, nil, fmt.Errorf("dist: frame truncated inside %s", what)
	}
	return buf[:n], buf[n:], nil
}
