package engine

import (
	"container/list"
	"fmt"
	"io"
	"sync"
)

// maxPoolShards bounds the number of lock shards; 16 is enough that the
// segment scans of the parallel trainers (bounded by core count) rarely
// collide on one shard's mutex.
const maxPoolShards = 16

// BufferPool is a fixed-capacity read cache of pages over a random-access
// file, with per-shard LRU replacement. The heap is append-only and writes
// go straight to the file, so the pool never holds dirty pages; Invalidate
// evicts stale entries after an append or rewrite.
//
// The pool is sharded by page id: a single mutex (and an LRU list touched
// on every hit) serializes concurrent segment scans, which is exactly the
// contention profile of the shared-memory parallel plan. Each shard owns
// 1/nth of the capacity and pages hash to shards by id, so a sequential
// scan rotates through the shards instead of convoying on one lock. Within
// a shard, a hit on the current LRU front skips the MoveToFront entirely —
// the common case for a sequential scan re-reading the page it just
// touched.
type BufferPool struct {
	src    io.ReaderAt
	shards []poolShard
	// verify, when set, validates a page as it is filled from src and
	// before it becomes visible to any caller — the pool's contract is that
	// a cached page is never a corrupt page. Fills that fail verification
	// are not cached. Hits pay nothing: verification cost is strictly
	// per-miss, which is what keeps the checksum off the hot epoch path.
	verify func(id int, p page) error
}

type poolShard struct {
	mu    sync.Mutex
	cap   int
	pages map[int]*list.Element
	lru   *list.List // front = most recent

	hits   int64
	misses int64
}

type poolEntry struct {
	id   int
	data page
}

// NewBufferPool returns a pool caching at most capPages pages of src.
func NewBufferPool(src io.ReaderAt, capPages int) *BufferPool {
	if capPages < 1 {
		capPages = 1
	}
	// Keep every shard at least 4 pages deep so that a small pool does not
	// thrash on hot pages that collide modulo the shard count — a pool of 4
	// stays one LRU of 4, exactly the pre-sharding contract.
	nshards := capPages / 4
	if nshards > maxPoolShards {
		nshards = maxPoolShards
	}
	if nshards < 1 {
		nshards = 1
	}
	bp := &BufferPool{src: src, shards: make([]poolShard, nshards)}
	base, rem := capPages/nshards, capPages%nshards
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.cap = base
		if i < rem { // spread the remainder so total capacity == capPages
			sh.cap++
		}
		sh.pages = make(map[int]*list.Element, sh.cap)
		sh.lru = list.New()
	}
	return bp
}

func (bp *BufferPool) shard(id int) *poolShard {
	if id < 0 {
		id = -id
	}
	return &bp.shards[id%len(bp.shards)]
}

// Get returns page id, reading it from the file on a miss. The returned
// slice aliases pool memory: callers must not write to it and must not hold
// it across operations that may evict (it is safe for the duration of one
// tuple-at-a-time scan step, which is how the engine uses it).
func (bp *BufferPool) Get(id int) (page, error) {
	sh := bp.shard(id)
	sh.mu.Lock()
	if el, ok := sh.pages[id]; ok {
		if el != sh.lru.Front() {
			sh.lru.MoveToFront(el)
		}
		sh.hits++
		p := el.Value.(*poolEntry).data
		sh.mu.Unlock()
		return p, nil
	}
	sh.misses++
	sh.mu.Unlock()

	// Read outside the lock; concurrent readers may duplicate work for the
	// same page but correctness is unaffected.
	buf := make(page, PageSize)
	if _, err := bp.src.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("engine: buffer pool read page %d: %w", id, err)
	}
	if bp.verify != nil {
		if err := bp.verify(id, buf); err != nil {
			return nil, err
		}
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.pages[id]; ok { // raced with another reader
		if el != sh.lru.Front() {
			sh.lru.MoveToFront(el)
		}
		return el.Value.(*poolEntry).data, nil
	}
	el := sh.lru.PushFront(&poolEntry{id: id, data: buf})
	sh.pages[id] = el
	for sh.lru.Len() > sh.cap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.pages, back.Value.(*poolEntry).id)
	}
	return buf, nil
}

// Invalidate drops page id from the cache if present.
func (bp *BufferPool) Invalidate(id int) {
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.pages[id]; ok {
		sh.lru.Remove(el)
		delete(sh.pages, id)
	}
}

// InvalidateAll empties the cache.
func (bp *BufferPool) InvalidateAll() {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		sh.pages = make(map[int]*list.Element, sh.cap)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// Stats returns cumulative hit and miss counts across all shards.
func (bp *BufferPool) Stats() (hits, misses int64) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}
