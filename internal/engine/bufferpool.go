package engine

import (
	"container/list"
	"fmt"
	"io"
	"sync"
)

// BufferPool is a fixed-capacity read cache of pages over a random-access
// file, with LRU replacement. The heap is append-only and writes go straight
// to the file, so the pool never holds dirty pages; Invalidate evicts stale
// entries after an append or rewrite.
type BufferPool struct {
	mu    sync.Mutex
	src   io.ReaderAt
	cap   int
	pages map[int]*list.Element
	lru   *list.List // front = most recent

	hits   int64
	misses int64
}

type poolEntry struct {
	id   int
	data page
}

// NewBufferPool returns a pool caching at most capPages pages of src.
func NewBufferPool(src io.ReaderAt, capPages int) *BufferPool {
	if capPages < 1 {
		capPages = 1
	}
	return &BufferPool{
		src:   src,
		cap:   capPages,
		pages: make(map[int]*list.Element, capPages),
		lru:   list.New(),
	}
}

// Get returns page id, reading it from the file on a miss. The returned
// slice aliases pool memory: callers must not write to it and must not hold
// it across operations that may evict (it is safe for the duration of one
// tuple-at-a-time scan step, which is how the engine uses it).
func (bp *BufferPool) Get(id int) (page, error) {
	bp.mu.Lock()
	if el, ok := bp.pages[id]; ok {
		bp.lru.MoveToFront(el)
		bp.hits++
		p := el.Value.(*poolEntry).data
		bp.mu.Unlock()
		return p, nil
	}
	bp.misses++
	bp.mu.Unlock()

	// Read outside the lock; concurrent readers may duplicate work for the
	// same page but correctness is unaffected.
	buf := make(page, PageSize)
	if _, err := bp.src.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("engine: buffer pool read page %d: %w", id, err)
	}

	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.pages[id]; ok { // raced with another reader
		bp.lru.MoveToFront(el)
		return el.Value.(*poolEntry).data, nil
	}
	el := bp.lru.PushFront(&poolEntry{id: id, data: buf})
	bp.pages[id] = el
	for bp.lru.Len() > bp.cap {
		back := bp.lru.Back()
		bp.lru.Remove(back)
		delete(bp.pages, back.Value.(*poolEntry).id)
	}
	return buf, nil
}

// Invalidate drops page id from the cache if present.
func (bp *BufferPool) Invalidate(id int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.pages[id]; ok {
		bp.lru.Remove(el)
		delete(bp.pages, id)
	}
}

// InvalidateAll empties the cache.
func (bp *BufferPool) InvalidateAll() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.pages = make(map[int]*list.Element, bp.cap)
	bp.lru.Init()
}

// Stats returns cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}
