package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bismarck/internal/vector"
)

func exampleSchema() Schema {
	return Schema{{"id", TInt64}, {"vec", TDenseVec}, {"label", TFloat64}}
}

func fillExampleTable(t *testing.T, tbl *Table, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		v := vector.Dense{rng.NormFloat64(), rng.NormFloat64()}
		lbl := float64(1)
		if i%2 == 1 {
			lbl = -1
		}
		if err := tbl.Insert(Tuple{I64(int64(i)), DenseV(v), F64(lbl)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableInsertScan(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 100, 1)
	if tbl.NumRows() != 100 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	i := int64(0)
	err := tbl.Scan(func(tp Tuple) error {
		if tp[0].Int != i {
			return fmt.Errorf("row %d has id %d", i, tp[0].Int)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTableInsertSchemaMismatch(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	if err := tbl.Insert(Tuple{F64(1)}); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestTableClusterBy(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 50, 2)
	// Cluster by label: all -1 rows before all +1 rows (the CA-TX layout).
	if err := tbl.ClusterBy(func(tp Tuple) float64 { return tp[2].Float }); err != nil {
		t.Fatal(err)
	}
	var labels []float64
	if err := tbl.Scan(func(tp Tuple) error {
		labels = append(labels, tp[2].Float)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] < labels[i-1] {
			t.Fatalf("labels not clustered at %d: %v then %v", i, labels[i-1], labels[i])
		}
	}
}

func TestTableShuffleKeepsRows(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 200, 3)
	if err := tbl.Shuffle(rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	if err := tbl.Scan(func(tp Tuple) error {
		seen[tp[0].Int] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 200 {
		t.Fatalf("shuffle lost rows: %d", len(seen))
	}
}

func TestSegmentsPartitionPages(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 1000, 4)
	segs, err := tbl.Segments(4)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0][0] != 0 || segs[len(segs)-1][1] != tbl.NumPages() {
		t.Fatalf("segments do not cover pages: %v (np=%d)", segs, tbl.NumPages())
	}
	for i := 1; i < len(segs); i++ {
		if segs[i][0] != segs[i-1][1] {
			t.Fatalf("segments not contiguous: %v", segs)
		}
	}
}

func TestRunUDACountSequentialAndParallel(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 777, 5)
	for _, p := range []Profile{
		{Name: "seq", Segments: 1},
		{Name: "par4", Segments: 4},
		{Name: "par16", Segments: 16},
	} {
		got, err := RunUDA(tbl, CountUDA{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.(int64) != 777 {
			t.Fatalf("%s: count = %v, want 777", p.Name, got)
		}
	}
}

func TestRunUDASumMatchesAcrossPlans(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 500, 6)
	seqv, err := RunUDA(tbl, SumUDA{Col: 2}, Profile{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	parv, err := RunUDA(tbl, SumUDA{Col: 2}, Profile{Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := seqv.(float64) - parv.(float64); d > 1e-9 || d < -1e-9 {
		t.Fatalf("sum differs: seq=%v par=%v", seqv, parv)
	}
}

func TestRunUDAParallelRequiresMerge(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 10, 7)
	u := &FuncUDA{
		Name:    "nomerge",
		InitFn:  func() State { return 0 },
		TransFn: func(s State, _ Tuple) State { return s.(int) + 1 },
	}
	if _, err := RunUDA(tbl, u, Profile{Segments: 2}); err == nil {
		t.Fatal("expected error: parallel plan without merge")
	}
}

func TestFuncUDAAdapters(t *testing.T) {
	u := &FuncUDA{
		Name:    "cnt",
		InitFn:  func() State { return 0 },
		TransFn: func(s State, _ Tuple) State { return s.(int) + 1 },
		MergeFn: func(a, b State) State { return a.(int) + b.(int) },
	}
	if !u.CanMerge() {
		t.Fatal("CanMerge should be true")
	}
	s := u.Initialize()
	s = u.Transition(s, nil)
	s = u.Merge(s, u.Transition(u.Initialize(), nil))
	if u.Terminate(s).(int) != 2 {
		t.Fatalf("Terminate = %v", u.Terminate(s))
	}
}

func TestRunSharedScanVisitsAllOnce(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 600, 8)
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		seen := make(map[int64]int)
		var calls atomic.Int64
		err := RunSharedScan(tbl, workers, Profile{}, func(w int, tp Tuple) error {
			calls.Add(1)
			mu.Lock()
			seen[tp[0].Int]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 600 || len(seen) != 600 {
			t.Fatalf("workers=%d: %d calls, %d distinct", workers, calls.Load(), len(seen))
		}
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("a", exampleSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("a", exampleSchema()); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("zzz"); err == nil {
		t.Fatal("Get of missing table should fail")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Names = %v", got)
	}
	if err := c.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("a"); err == nil {
		t.Fatal("double drop should fail")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileCatalogCreatesFiles(t *testing.T) {
	dir := t.TempDir()
	c := NewFileCatalog(dir, 4)
	tbl, err := c.Create("data", exampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillExampleTable(t, tbl, 50, 11)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "data.heap")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedMemoryRegions(t *testing.T) {
	m := NewSharedMemory()
	r, err := m.Allocate("model", 10)
	if err != nil {
		t.Fatal(err)
	}
	r[3] = 1.5
	r2, err := m.Attach("model")
	if err != nil {
		t.Fatal(err)
	}
	if r2[3] != 1.5 {
		t.Fatal("attach must see writes (shared)")
	}
	if _, err := m.Allocate("model", 5); err == nil {
		t.Fatal("duplicate allocate should fail")
	}
	if _, err := m.Attach("nope"); err == nil {
		t.Fatal("attach of missing region should fail")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Free("model"); err != nil {
		t.Fatal(err)
	}
	if err := m.Free("model"); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bp.heap")
	h, err := OpenFileHeap(path, 2) // tiny pool: 2 pages
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Write enough records to span several pages.
	rec := make([]byte, 1000)
	for i := 0; i < 60; i++ {
		rec[0] = byte(i)
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() < 5 {
		t.Fatalf("expected >=5 pages, got %d", h.NumPages())
	}
	// Two full scans: pool of 2 over >=5 pages must evict but stay correct.
	for pass := 0; pass < 2; pass++ {
		n := 0
		if err := h.Scan(func(r []byte) error {
			if r[0] != byte(n) {
				return fmt.Errorf("pass %d rec %d corrupted", pass, n)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != 60 {
			t.Fatalf("pass %d scanned %d", pass, n)
		}
	}
	fs := h.st.(*fileStore)
	hits, misses := fs.pool.Stats()
	if hits+misses == 0 {
		t.Fatal("pool unused")
	}
	if misses <= int64(h.NumPages()) {
		t.Fatalf("with pool=2 over %d pages and 3 scans, expected evictions (misses=%d)", h.NumPages(), misses)
	}
}

func TestBufferPoolConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenFileHeap(filepath.Join(dir, "c.heap"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 200; i++ {
		if err := h.Append([]byte(fmt.Sprintf("row-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			errs[g] = h.Scan(func([]byte) error { n++; return nil })
			if errs[g] == nil && n != 200 {
				errs[g] = fmt.Errorf("goroutine %d scanned %d", g, n)
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
}

func TestNullUDAIsNoOp(t *testing.T) {
	tbl := NewMemTable("t", exampleSchema())
	fillExampleTable(t, tbl, 10, 12)
	got, err := RunUDA(tbl, NullUDA{}, Profile{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("NULL aggregate returned %v", got)
	}
}

// TestValidTableName pins the catalog's name validation: path tricks and
// control bytes must be rejected before any heap file path is formed.
func TestValidTableName(t *testing.T) {
	for _, bad := range []string{"", "../x", "a/b", `a\b`, "m\x00", "m\nx", "m\tx", "\x7f"} {
		if err := ValidTableName(bad); err == nil {
			t.Errorf("ValidTableName(%q) accepted", bad)
		}
	}
	for _, ok := range []string{"m", "my model", "m;x", "it's", "forest_svm", "m__meta", "a..b", ".."} {
		if err := ValidTableName(ok); err != nil {
			t.Errorf("ValidTableName(%q): %v", ok, err)
		}
	}
}

// TestFileCatalogRejectsCaseCollision: on a file catalog, "m" and "M"
// would share one heap file on a case-insensitive filesystem.
func TestFileCatalogRejectsCaseCollision(t *testing.T) {
	schema := Schema{{Name: "x", Type: TInt64}}
	fc := NewFileCatalog(t.TempDir(), 0)
	defer fc.Close()
	if _, err := fc.Create("m", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Create("M", schema); err == nil ||
		!strings.Contains(err.Error(), "case-insensitively") {
		t.Fatalf("file catalog case collision: %v", err)
	}
	// In-memory catalogs have no files and keep case-sensitive semantics.
	mc := NewCatalog()
	defer mc.Close()
	if _, err := mc.Create("m", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Create("M", schema); err != nil {
		t.Fatalf("mem catalog should allow distinct case: %v", err)
	}
}
