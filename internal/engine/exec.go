package engine

import (
	"fmt"
	"sync"
)

// Relation is the scan contract the executors run over: a physical table
// (page-granular segments, decode per row), a table's reusable-scratch view
// (Table.Reuse), or a materialized row cache and its logically-ordered
// views (row-granular segments, zero decode). Consumers must not retain
// tuples past the callback unless the concrete relation documents otherwise
// (only Materialized rows are stable).
type Relation interface {
	// Scan visits every tuple in the relation's order.
	Scan(fn func(Tuple) error) error
	// ScanSegment visits the tuples of one segment; segment bounds come
	// from Segments and are page ranges for tables, row ranges for caches.
	ScanSegment(from, to int, fn func(Tuple) error) error
	// Segments splits the relation into n contiguous ranges of roughly
	// equal size for parallel scanning.
	Segments(n int) ([][2]int, error)
}

// Compile-time checks: all scan providers satisfy the contract.
var (
	_ Relation = (*Table)(nil)
	_ Relation = (*Materialized)(nil)
	_ Relation = (*MatView)(nil)
	_ Relation = reuseRelation{}
)

// RunUDA executes a user-defined aggregate over a table under an engine
// profile: the standard aggregation query plan. Tuples are decoded fresh
// per row (a UDA may retain them); the trainers run the same plan over the
// decoded-row cache via RunUDAOn.
func RunUDA(t *Table, u UDA, p Profile) (State, error) {
	return RunUDAOn(t, u, p)
}

// RunUDAOn executes a user-defined aggregate over any relation. With
// Segments == 1 the scan is sequential; otherwise the engine's built-in
// shared-nothing parallelism is used — each segment aggregates
// independently and the states are merged left-to-right, which requires the
// UDA to implement Merger.
func RunUDAOn(r Relation, u UDA, p Profile) (State, error) {
	if p.Segments <= 1 {
		s := u.Initialize()
		err := r.Scan(func(tp Tuple) error {
			spin(p.PerCallOverhead)
			s = u.Transition(s, tp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return u.Terminate(s), nil
	}

	m, ok := u.(Merger)
	if !ok {
		return nil, fmt.Errorf("engine: %d-segment plan requires a merge function", p.Segments)
	}
	if mc, ok := u.(interface{ CanMerge() bool }); ok && !mc.CanMerge() {
		return nil, fmt.Errorf("engine: %d-segment plan requires a merge function", p.Segments)
	}
	segs, err := r.Segments(p.Segments)
	if err != nil {
		return nil, err
	}
	states := make([]State, len(segs))
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, from, to int) {
			defer wg.Done()
			s := u.Initialize()
			errs[i] = r.ScanSegment(from, to, func(tp Tuple) error {
				spin(p.PerCallOverhead)
				s = u.Transition(s, tp)
				return nil
			})
			states[i] = s
		}(i, seg[0], seg[1])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	s := states[0]
	for _, s2 := range states[1:] {
		if p.StateCopyPerMerge {
			s = m.Merge(copyState(s), copyState(s2))
		} else {
			s = m.Merge(s, s2)
		}
	}
	return u.Terminate(s), nil
}

// StateCopier lets a UDA state participate in the serialization overhead
// emulation of DBMS A's pure-UDA plan.
type StateCopier interface {
	CopyState() State
}

func copyState(s State) State {
	if c, ok := s.(StateCopier); ok {
		return c.CopyState()
	}
	return s
}

// RunSharedScan drives the shared-memory UDA plan over a table; see
// RunSharedScanOn.
func RunSharedScan(t *Table, workers int, p Profile, fn func(worker int, tp Tuple) error) error {
	return RunSharedScanOn(t, workers, p, fn)
}

// RunSharedScanOn drives the shared-memory UDA plan over any relation:
// `workers` goroutines scan disjoint segments concurrently and deliver
// tuples to fn. The aggregation state lives in shared memory owned by the
// caller (the model), which is exactly how the paper's shared-memory
// variant keeps the three-function abstraction while updating one model
// concurrently; the concurrency scheme (Lock / AIG / NoLock) is the
// caller's choice of model representation.
func RunSharedScanOn(r Relation, workers int, p Profile, fn func(worker int, tp Tuple) error) error {
	if workers <= 1 {
		return r.Scan(func(tp Tuple) error {
			spin(p.PerCallOverhead)
			return fn(0, tp)
		})
	}
	segs, err := r.Segments(workers)
	if err != nil {
		return err
	}
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i, from, to int) {
			defer wg.Done()
			errs[i] = r.ScanSegment(from, to, func(tp Tuple) error {
				spin(p.PerCallOverhead)
				return fn(i, tp)
			})
		}(i, seg[0], seg[1])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
