package engine

import (
	"fmt"
	"sync"
)

// RunUDA executes a user-defined aggregate over a table under an engine
// profile: the standard aggregation query plan. With Segments == 1 the scan
// is sequential; otherwise the engine's built-in shared-nothing parallelism
// is used — each segment aggregates independently and the states are merged
// left-to-right, which requires the UDA to implement Merger.
func RunUDA(t *Table, u UDA, p Profile) (State, error) {
	if p.Segments <= 1 {
		s := u.Initialize()
		err := t.Scan(func(tp Tuple) error {
			spin(p.PerCallOverhead)
			s = u.Transition(s, tp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return u.Terminate(s), nil
	}

	m, ok := u.(Merger)
	if !ok {
		return nil, fmt.Errorf("engine: %d-segment plan requires a merge function", p.Segments)
	}
	if mc, ok := u.(interface{ CanMerge() bool }); ok && !mc.CanMerge() {
		return nil, fmt.Errorf("engine: %d-segment plan requires a merge function", p.Segments)
	}
	segs, err := t.Segments(p.Segments)
	if err != nil {
		return nil, err
	}
	states := make([]State, len(segs))
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, from, to int) {
			defer wg.Done()
			s := u.Initialize()
			errs[i] = t.ScanPages(from, to, func(tp Tuple) error {
				spin(p.PerCallOverhead)
				s = u.Transition(s, tp)
				return nil
			})
			states[i] = s
		}(i, seg[0], seg[1])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	s := states[0]
	for _, s2 := range states[1:] {
		if p.StateCopyPerMerge {
			s = m.Merge(copyState(s), copyState(s2))
		} else {
			s = m.Merge(s, s2)
		}
	}
	return u.Terminate(s), nil
}

// StateCopier lets a UDA state participate in the serialization overhead
// emulation of DBMS A's pure-UDA plan.
type StateCopier interface {
	CopyState() State
}

func copyState(s State) State {
	if c, ok := s.(StateCopier); ok {
		return c.CopyState()
	}
	return s
}

// RunSharedScan drives the shared-memory UDA plan: `workers` goroutines
// scan disjoint page segments concurrently and deliver tuples to fn. The
// aggregation state lives in shared memory owned by the caller (the model),
// which is exactly how the paper's shared-memory variant keeps the
// three-function abstraction while updating one model concurrently; the
// concurrency scheme (Lock / AIG / NoLock) is the caller's choice of model
// representation.
func RunSharedScan(t *Table, workers int, p Profile, fn func(worker int, tp Tuple) error) error {
	if workers <= 1 {
		return t.Scan(func(tp Tuple) error {
			spin(p.PerCallOverhead)
			return fn(0, tp)
		})
	}
	segs, err := t.Segments(workers)
	if err != nil {
		return err
	}
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i, from, to int) {
			defer wg.Done()
			errs[i] = t.ScanPages(from, to, func(tp Tuple) error {
				spin(p.PerCallOverhead)
				return fn(i, tp)
			})
		}(i, seg[0], seg[1])
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
