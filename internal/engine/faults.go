package engine

import (
	"fmt"
	"sync/atomic"
)

// IOFault selects one disk fault for the fault-injecting file store. The
// taxonomy covers the failure modes a heap file meets in practice: a write
// that never reaches the device, a write the device accepts only part of, a
// write torn mid-page by power loss, a sector that stops reading back, a
// sector that reads back with flipped bits, and an fsync that fails — or
// worse, lies.
type IOFault int

const (
	// IONone injects nothing; the operation runs against the real file.
	IONone IOFault = iota
	// IOWriteError fails a page write outright: nothing reaches the file
	// and the caller sees an error.
	IOWriteError
	// IOShortWrite persists only the first half of the page and reports the
	// short count — the device accepted part of the write. The store must
	// roll the file back to the last full page, not leave a torn tail.
	IOShortWrite
	// IOTornWrite persists the first half of the page and then simulates
	// power loss (ErrInjectedCrash): no rollback runs, exactly as if the
	// process died mid-write. The torn tail is the next open's problem.
	IOTornWrite
	// IOReadError fails a page read outright.
	IOReadError
	// IOBitRot lets the read succeed but flips one bit in the returned
	// page, simulating media decay between write and read.
	IOBitRot
	// IOSyncError fails the fsync; the caller must treat the generation as
	// not durable.
	IOSyncError
	// IOSyncLie reports the fsync as successful without forcing anything —
	// a lying disk cache. Software cannot detect this at sync time; tests
	// pair it with a simulated power cut that discards the unsynced writes
	// and assert the damage is caught at the NEXT open, not absorbed.
	IOSyncLie
)

// String names the fault for logs and test tables.
func (f IOFault) String() string {
	switch f {
	case IONone:
		return "none"
	case IOWriteError:
		return "write-error"
	case IOShortWrite:
		return "short-write"
	case IOTornWrite:
		return "torn-write"
	case IOReadError:
		return "read-error"
	case IOBitRot:
		return "bit-rot"
	case IOSyncError:
		return "fsync-error"
	case IOSyncLie:
		return "fsync-lie"
	}
	return fmt.Sprintf("IOFault(%d)", int(f))
}

// IOHooks are fault-injection points inside the file store, the I/O-level
// sibling of CatalogHooks: each hook is consulted per operation and returns
// the fault to inject (IONone passes the operation through). Hooks are keyed
// by the path the store was opened with and, for page operations, the page
// id — deterministic by construction, so a test can tear exactly the third
// page of exactly one heap. Production code leaves them nil.
type IOHooks struct {
	// Write picks the fault for appending page pageID to path.
	Write func(path string, pageID int) IOFault
	// Read picks the fault for reading page pageID from path. It applies to
	// buffer-pool fills and scrub reads; pool hits never reach the disk and
	// therefore never reach this hook.
	Read func(path string, pageID int) IOFault
	// Sync picks the fault for fsyncing path.
	Sync func(path string) IOFault
}

// writeFault consults the Write hook (nil-safe).
func (io *IOHooks) writeFault(path string, pageID int) IOFault {
	if io == nil || io.Write == nil {
		return IONone
	}
	return io.Write(path, pageID)
}

// readFault consults the Read hook (nil-safe).
func (io *IOHooks) readFault(path string, pageID int) IOFault {
	if io == nil || io.Read == nil {
		return IONone
	}
	return io.Read(path, pageID)
}

// syncFault consults the Sync hook (nil-safe).
func (io *IOHooks) syncFault(path string) IOFault {
	if io == nil || io.Sync == nil {
		return IONone
	}
	return io.Sync(path)
}

// CorruptPageError reports a page that failed integrity verification: its
// checksum did not match at read time, or it was already quarantined by an
// earlier scrub. Strict scans over a table with corrupt pages fail with it;
// degraded scans skip the page and count what was lost. Table is filled by
// the owning table; Path/Page locate the bytes for forensics.
type CorruptPageError struct {
	Table  string
	Path   string
	Page   int
	Reason string
}

// Error implements error.
func (e *CorruptPageError) Error() string {
	where := e.Table
	if where == "" {
		where = e.Path
	}
	return fmt.Sprintf("engine: corrupt page %d in %s: %s (run CHECK TABLE, or retry WITH degraded=true to skip quarantined pages)",
		e.Page, where, e.Reason)
}

// crcVerifies counts page-checksum verifications engine-wide. The bench
// guard asserts it does NOT grow across a warm (pool-hit) epoch scan:
// verification happens only when a page is filled from disk, so the cached
// hot path provably does zero checksum work.
var crcVerifies atomic.Int64

// CRCVerifyCount returns the cumulative number of page-checksum
// verifications performed since process start.
func CRCVerifyCount() int64 { return crcVerifies.Load() }

// DegradedStats reports what a degraded scan skipped. SkippedRows is a
// lower bound: a page that was already unreadable when the heap was opened
// never revealed how many records it held, so it contributes its page to
// SkippedPages but nothing to SkippedRows.
type DegradedStats struct {
	SkippedPages int
	SkippedRows  int
}

// Add accumulates another scan's losses (segmented scans merge per-segment
// stats with it).
func (d *DegradedStats) Add(o DegradedStats) {
	d.SkippedPages += o.SkippedPages
	d.SkippedRows += o.SkippedRows
}
