package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- helpers ---

// faultRecs builds n deterministic ~100-byte records.
func faultRecs(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("rec-%04d-%s", i, strings.Repeat("x", 88)))
	}
	return recs
}

// buildHeapFile writes recs into a fresh heap at path and closes it.
func buildHeapFile(t *testing.T, path string, recs [][]byte) {
	t.Helper()
	h, err := OpenFileHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := h.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// flipBit XORs one bit of the file at byte offset off.
func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// collect scans every record (strict), copying them out.
func collect(t *testing.T, h *Heap) [][]byte {
	t.Helper()
	var out [][]byte
	if err := h.Scan(func(rec []byte) error {
		out = append(out, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// --- write-side fault matrix ---

// TestAppendFaultMatrix drives the recoverable write faults through a
// flush: the append must fail, roll the file back to the last full page,
// and leave the heap retryable once the fault clears.
func TestAppendFaultMatrix(t *testing.T) {
	for _, tc := range []struct {
		fault   IOFault
		wantMsg string
	}{
		{IOWriteError, "injected write error"},
		{IOShortWrite, "short write"},
	} {
		t.Run(tc.fault.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.heap")
			armed := false
			hooks := &IOHooks{Write: func(string, int) IOFault {
				if armed {
					return tc.fault
				}
				return IONone
			}}
			h, _, err := openFileHeap(path, 16, hooks, false)
			if err != nil {
				t.Fatal(err)
			}
			recs := faultRecs(10)
			for _, r := range recs {
				if err := h.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			armed = true
			if err := h.Flush(); err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("Flush under %s = %v, want %q", tc.fault, err, tc.wantMsg)
			}
			// The rollback must leave the file page-aligned with no torn tail.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size()%PageSize != 0 {
				t.Fatalf("file size %d not page aligned after failed append", st.Size())
			}
			// Fault cleared: the same flush succeeds and nothing was lost.
			armed = false
			if err := h.Flush(); err != nil {
				t.Fatalf("retry after fault: %v", err)
			}
			got := collect(t, h)
			if len(got) != len(recs) || !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[9], recs[9]) {
				t.Fatalf("retry lost records: got %d want %d", len(got), len(recs))
			}
			h.Close()
		})
	}
}

// TestTornWriteCrashAndRepair: a torn write simulates power loss — the
// error wraps ErrInjectedCrash, no rollback runs, and the torn tail is
// left on disk. A plain open refuses the file; the repairTail open (what
// catalog recovery grants non-pair tables) truncates back to the last
// full page and keeps every record before the tear.
func TestTornWriteCrashAndRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	recs := faultRecs(10)
	buildHeapFile(t, path, recs)
	st, _ := os.Stat(path)
	fullSize := st.Size()

	armed := false
	hooks := &IOHooks{Write: func(string, int) IOFault {
		if armed {
			return IOTornWrite
		}
		return IONone
	}}
	h, _, err := openFileHeap(path, 16, hooks, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := h.Flush(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("torn write = %v, want ErrInjectedCrash", err)
	}
	h.Abandon() // the dying process never flushes or rolls back

	st, _ = os.Stat(path)
	if st.Size() != fullSize+PageSize/2 {
		t.Fatalf("torn tail: size %d, want %d", st.Size(), fullSize+PageSize/2)
	}
	if _, err := OpenFileHeap(path, 16); err == nil || !strings.Contains(err.Error(), "not page aligned") {
		t.Fatalf("plain open of torn file = %v, want alignment refusal", err)
	}
	h2, info, err := openFileHeap(path, 16, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if info.repairedBytes != PageSize/2 {
		t.Fatalf("repairedBytes = %d, want %d", info.repairedBytes, PageSize/2)
	}
	if got := collect(t, h2); len(got) != len(recs) {
		t.Fatalf("repaired heap has %d records, want %d", len(got), len(recs))
	}
}

// TestSyncFaultMatrix: a failed fsync surfaces as an error; a lying fsync
// cannot be detected at sync time — the damage (a power cut discarding
// the "synced" writes) must be caught at the NEXT open, never absorbed.
func TestSyncFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	t.Run("fsync-error", func(t *testing.T) {
		path := filepath.Join(dir, "e.heap")
		hooks := &IOHooks{Sync: func(string) IOFault { return IOSyncError }}
		h, _, err := openFileHeap(path, 16, hooks, false)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if err := h.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err == nil || !strings.Contains(err.Error(), "fsync") {
			t.Fatalf("Sync = %v, want injected fsync failure", err)
		}
	})
	t.Run("fsync-lie", func(t *testing.T) {
		path := filepath.Join(dir, "l.heap")
		hooks := &IOHooks{Sync: func(string) IOFault { return IOSyncLie }}
		h, _, err := openFileHeap(path, 16, hooks, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range faultRecs(5) {
			if err := h.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		// The lie: Sync reports success without forcing anything.
		if err := h.Sync(); err != nil {
			t.Fatalf("lying Sync should report success, got %v", err)
		}
		h.Abandon()
		// Simulated power cut: the cache that lied loses half the last page.
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-PageSize/2); err != nil {
			t.Fatal(err)
		}
		// The next open must refuse the damage, not serve a shortened heap.
		if _, err := OpenFileHeap(path, 16); err == nil || !strings.Contains(err.Error(), "not page aligned") {
			t.Fatalf("open after lying fsync + power cut = %v, want refusal", err)
		}
	})
}

// --- read-side faults ---

// TestReadErrorRetryableButScrubQuarantines: a transient read error fails
// a strict scan (retryable once the device recovers — no quarantine), a
// degraded scan skips over it, and a scrub — whose job is to decide what
// the disk holds — quarantines the page stickily.
func TestReadErrorRetryableButScrubQuarantines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.heap")
	recs := faultRecs(200) // > 2 pages
	buildHeapFile(t, path, recs)

	armed := false
	hooks := &IOHooks{Read: func(_ string, pageID int) IOFault {
		if armed && pageID == 1 {
			return IOReadError
		}
		return IONone
	}}
	// Pool of 1 page so reads actually reach the disk (and the fault).
	h, _, err := openFileHeap(path, 1, hooks, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	total := h.NumRecords()

	armed = true
	err = h.Scan(func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "injected read error") {
		t.Fatalf("strict scan = %v, want read error", err)
	}
	var ce *CorruptPageError
	if errors.As(err, &ce) {
		t.Fatalf("transient read error must not be a CorruptPageError: %v", err)
	}
	if h.QuarantinedPages() != nil {
		t.Fatalf("transient read error quarantined: %v", h.QuarantinedPages())
	}

	n := 0
	stats, err := h.ScanDegraded(func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	if stats.SkippedPages != 1 || stats.SkippedRows == 0 || n+stats.SkippedRows != total {
		t.Fatalf("degraded stats %+v, visited %d of %d", stats, n, total)
	}

	// Device recovers: the strict scan works again — nothing was condemned.
	armed = false
	if got := collect(t, h); len(got) != total {
		t.Fatalf("after recovery: %d records, want %d", len(got), total)
	}

	// Scrub under the fault quarantines, and quarantine is sticky even
	// after the fault clears: scans must degrade deterministically.
	armed = true
	rep := h.Scrub()
	if len(rep.NewBad) != 1 || rep.NewBad[0] != 1 {
		t.Fatalf("scrub NewBad = %v, want [1]", rep.NewBad)
	}
	armed = false
	err = h.Scan(func([]byte) error { return nil })
	if !errors.As(err, &ce) || ce.Page != 1 {
		t.Fatalf("post-scrub strict scan = %v, want CorruptPageError on page 1", err)
	}
}

// TestBitRotHookDeterministic: the injected bit flip is a function of the
// page id, so two reads rot identically — and the checksum catches it.
func TestBitRotHookDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.heap")
	buildHeapFile(t, path, faultRecs(200))

	armed := false
	hooks := &IOHooks{Read: func(_ string, pageID int) IOFault {
		if armed && pageID == 0 {
			return IOBitRot
		}
		return IONone
	}}
	h, _, err := openFileHeap(path, 1, hooks, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	armed = true
	err = h.Scan(func([]byte) error { return nil })
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.Page != 0 || ce.Reason != "checksum mismatch" {
		t.Fatalf("scan under bit rot = %v, want checksum mismatch on page 0", err)
	}
	// Rot is sticky via quarantine: even with the fault cleared the page
	// stays out until a rewrite, which clears the quarantine wholesale.
	armed = false
	if _, bad := h.badPage(0); !bad {
		t.Fatal("rotted page not quarantined")
	}
	if err := h.Rewrite([][]byte{[]byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	if h.QuarantinedPages() != nil {
		t.Fatal("rewrite must clear the quarantine")
	}
}

// --- on-disk bit-rot offset-class matrix ---

// TestBitRotOffsetClassMatrix flips one bit per offset class — header,
// slot array, record body, overflow continuation — directly in the heap
// file, and asserts each of {scan, scrub, recovery-open} detects it. The
// classes behave identically on purpose: the page CRC covers every byte,
// so no offset can rot silently.
func TestBitRotOffsetClassMatrix(t *testing.T) {
	// Pristine layout: 160 inline records fill pages 0-2, one 20000-byte
	// record follows as overflow start (page 3) + two continuations (4, 5).
	dir := t.TempDir()
	pristine := filepath.Join(dir, "pristine.heap")
	recs := faultRecs(160)
	big := bytes.Repeat([]byte("B"), 20000)
	buildHeapFile(t, pristine, append(append([][]byte{}, recs...), big))
	want, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	// 80 inline records per page: pages 0-1 data, page 2 overflow start,
	// pages 3-4 overflow continuations.
	if len(want) != 5*PageSize {
		t.Fatalf("pristine layout is %d pages, test expects 5", len(want)/PageSize)
	}
	totalRecs := len(recs) + 1

	classes := []struct {
		name string
		page int
		off  int64 // within the page
	}{
		{"header-kind", 0, 0},
		{"header-version", 0, 1},
		{"slot-array", 0, pageHeaderSize + 2},
		{"record-body", 0, PageSize - pageTrailerSize - 10},
		{"overflow-start", 2, pageHeaderSize + overflowHeaderSize + 7},
		{"overflow-cont", 3, pageHeaderSize + 10},
	}
	// recsLost: how many records a quarantined page costs at open. Rotting
	// any page of the overflow chain condemns its one record; a data page
	// costs its slot count (80 per full page here).
	recsLost := map[string]int{
		"header-kind": 80, "header-version": 80, "slot-array": 80, "record-body": 80,
		"overflow-start": 1, "overflow-cont": 1,
	}
	modes := []string{"scan", "scrub", "open"}

	for _, cl := range classes {
		for _, mode := range modes {
			t.Run(cl.name+"/"+mode, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "m.heap")
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				globalOff := int64(cl.page)*PageSize + cl.off

				switch mode {
				case "scan":
					// Rot lands after open; a tiny pool forces re-reads.
					h, _, err := openFileHeap(path, 1, nil, false)
					if err != nil {
						t.Fatal(err)
					}
					defer h.Close()
					flipBit(t, path, globalOff)
					err = h.Scan(func([]byte) error { return nil })
					var ce *CorruptPageError
					if !errors.As(err, &ce) || ce.Page != cl.page {
						t.Fatalf("scan = %v, want CorruptPageError on page %d", err, cl.page)
					}
					// Degraded completes and accounts the loss.
					n := 0
					stats, err := h.ScanDegraded(func([]byte) error { n++; return nil })
					if err != nil {
						t.Fatalf("degraded: %v", err)
					}
					if stats.SkippedRows == 0 || n+stats.SkippedRows != totalRecs {
						t.Fatalf("degraded visited %d + skipped %d != %d", n, stats.SkippedRows, totalRecs)
					}
				case "scrub":
					// A large pool holds a clean cached copy; the scrub must
					// look past it at the disk, then evict it.
					h, _, err := openFileHeap(path, 64, nil, false)
					if err != nil {
						t.Fatal(err)
					}
					defer h.Close()
					flipBit(t, path, globalOff)
					rep := h.Scrub()
					if len(rep.NewBad) != 1 || rep.NewBad[0] != cl.page {
						t.Fatalf("scrub NewBad = %v, want [%d]", rep.NewBad, cl.page)
					}
					if err := h.Scan(func([]byte) error { return nil }); err == nil {
						t.Fatal("strict scan after scrub quarantine should fail")
					}
				case "open":
					flipBit(t, path, globalOff)
					h, err := OpenFileHeap(path, 64)
					if err != nil {
						t.Fatalf("open must quarantine, not fail: %v", err)
					}
					defer h.Close()
					q := h.QuarantinedPages()
					if _, bad := q[cl.page]; !bad {
						t.Fatalf("page %d not quarantined at open: %v", cl.page, q)
					}
					if h.NumRecords() != totalRecs-recsLost[cl.name] {
						t.Fatalf("NumRecords = %d, want %d", h.NumRecords(), totalRecs-recsLost[cl.name])
					}
				}
			})
		}
	}
}

// --- legacy format: the silent-corruption regression ---

// legacyDataPage builds a pre-checksum (version 0) data page: payload runs
// to the page end, no CRC trailer.
func legacyDataPage(recs [][]byte) page {
	p := make(page, PageSize)
	p[0] = pageData
	p[1] = 0
	p.setSlotCount(0)
	p.setFreeLow(pageHeaderSize)
	p.setFreeHigh(PageSize)
	for _, r := range recs {
		if !p.insert(r) {
			panic("legacy test page overflow")
		}
	}
	return p
}

// writeLegacyHeap writes a two-page version-0 heap file.
func writeLegacyHeap(t *testing.T, path string, recs [][]byte) {
	t.Helper()
	half := len(recs) / 2
	var buf bytes.Buffer
	buf.Write(legacyDataPage(recs[:half]))
	buf.Write(legacyDataPage(recs[half:]))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLegacySilentCorruptionThenDetected reproduces the bug the checksum
// closes: on the pre-checksum format a flipped record-body bit decodes
// without any error — the scan returns wrong bytes and nothing notices.
// After migration to the checksummed format, the same flip is detected.
func TestLegacySilentCorruptionThenDetected(t *testing.T) {
	dir := t.TempDir()
	recs := faultRecs(40)
	// Record bodies grow backward from the page end: the last bytes of
	// page 0 are the body of the first record.
	rotOff := int64(PageSize - 10)

	// Part 1: the legacy format absorbs the rot silently.
	legacy := filepath.Join(dir, "legacy.heap")
	writeLegacyHeap(t, legacy, recs)
	flipBit(t, legacy, rotOff)
	fs, _, err := openFileStore(legacy, 16, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.legacy {
		t.Fatal("legacy file not sniffed as legacy")
	}
	h := &Heap{st: fs}
	h.buildIndex()
	var got [][]byte
	if err := h.Scan(func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("legacy scan should succeed SILENTLY (that is the bug): %v", err)
	}
	fs.close()
	if len(got) != len(recs) {
		t.Fatalf("legacy scan records = %d, want %d", len(got), len(recs))
	}
	corruptedSomething := false
	for i := range got {
		if !bytes.Equal(got[i], recs[i]) {
			corruptedSomething = true
		}
	}
	if !corruptedSomething {
		t.Fatal("rot did not land in a record body; silent-corruption repro is vacuous")
	}

	// Part 2: migration to the checksummed format, then the same flip is
	// caught instead of silently served.
	migrated := filepath.Join(dir, "migrated.heap")
	writeLegacyHeap(t, migrated, recs)
	h2, info, err := openFileHeap(migrated, 16, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !info.migrated {
		t.Fatal("legacy heap was not migrated")
	}
	if got := collect(t, h2); len(got) != len(recs) || !bytes.Equal(got[0], recs[0]) {
		t.Fatalf("migration lost data: %d records", len(got))
	}
	h2.Close()
	b, _ := os.ReadFile(migrated)
	for i := 0; i*PageSize < len(b); i++ {
		if b[i*PageSize+1] != pageFormatV1 {
			t.Fatalf("page %d still version %d after migration", i, b[i*PageSize+1])
		}
	}
	flipBit(t, migrated, rotOff)
	h3, err := OpenFileHeap(migrated, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if len(h3.QuarantinedPages()) == 0 {
		t.Fatal("post-migration rot was not detected")
	}
}

// TestLegacyMigrationIdempotentAndCrashSafe: a stale .migrate side file
// from a crashed migration is discarded, the migration still completes,
// and a second open does not migrate again.
func TestLegacyMigrationIdempotentAndCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.heap")
	recs := faultRecs(40)
	writeLegacyHeap(t, path, recs)
	if err := os.WriteFile(path+".migrate", []byte("stale junk from a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, info, err := openFileHeap(path, 16, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !info.migrated {
		t.Fatal("not migrated")
	}
	if got := collect(t, h); len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	h.Close()
	if _, err := os.Stat(path + ".migrate"); !os.IsNotExist(err) {
		t.Fatal("side file left behind")
	}
	h2, info2, err := openFileHeap(path, 16, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if info2.migrated {
		t.Fatal("second open migrated again")
	}
}

// --- catalog recovery integration ---

// TestRecoveryRepairsTornTailOfPlainTable: a non-model table with a torn
// tail is repaired at open (truncated to the last full page) and the
// repair is reported; every record before the tear survives.
func TestRecoveryRepairsTornTailOfPlainTable(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 0)
	tbl, err := cat.Create("d", Schema{{Name: "x", Type: TInt64}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tbl.MustInsert(Tuple{I64(int64(i))})
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	rows := tbl.NumRows()
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "d.heap"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, PageSize/3)) // torn tail
	f.Close()

	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if what := re.Recovery.Repaired["d"]; !strings.Contains(what, "torn tail") {
		t.Fatalf("Repaired[d] = %q, want torn-tail note", what)
	}
	tbl2, err := re.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != rows {
		t.Fatalf("rows after repair = %d, want %d", tbl2.NumRows(), rows)
	}
}

// TestRecoveryQuarantinesPlainTablePages: a plain table with a rotted page
// still registers — with the bad pages surfaced in Recovery.Quarantined,
// strict scans failing typed, and degraded scans accounting the loss.
func TestRecoveryQuarantinesPlainTablePages(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 0)
	tbl, err := cat.Create("d", Schema{{Name: "x", Type: TInt64}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ { // several pages
		tbl.MustInsert(Tuple{I64(int64(i))})
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	total := tbl.NumRows()
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	flipBit(t, filepath.Join(dir, "d.heap"), PageSize+100) // page 1

	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Recovery.Quarantined["d"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("Quarantined[d] = %v, want [1]", got)
	}
	tbl2, err := re.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	err = tbl2.Scan(func(Tuple) error { return nil })
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.Table != "d" || ce.Page != 1 {
		t.Fatalf("strict scan = %v, want CorruptPageError{Table:d, Page:1}", err)
	}
	if !strings.Contains(err.Error(), "CHECK TABLE") || !strings.Contains(err.Error(), "degraded=true") {
		t.Fatalf("error does not name the remedies: %v", err)
	}
	n := 0
	stats, err := tbl2.ScanReuseDegraded(func(Tuple) error { n++; return nil })
	if err != nil {
		t.Fatalf("degraded: %v", err)
	}
	// The page was quarantined at OPEN, so its record count was never
	// learned: SkippedRows is a lower bound (possibly 0), but the page
	// count and the shortened row count are exact.
	if stats.SkippedPages != 1 || n >= total || n+stats.SkippedRows > total {
		t.Fatalf("degraded stats %+v, visited %d of %d", stats, n, total)
	}
}

// TestRecoveryCondemnsQuarantinedModelPair: corrupt pages in a model's
// coefficient table condemn the model AND its metadata side table — a
// model is never served degraded — and both heaps are quarantined aside.
func TestRecoveryCondemnsQuarantinedModelPair(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 0)
	schema := Schema{{Name: "x", Type: TInt64}}
	m, err := cat.Create("m", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		m.MustInsert(Tuple{I64(int64(i))})
	}
	if _, err := cat.Create("m"+MetaSuffix, schema); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	flipBit(t, filepath.Join(dir, "m.heap"), PageSize+50)

	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if reason := re.Recovery.Skipped["m"]; !strings.Contains(reason, "never served degraded") {
		t.Fatalf("Skipped[m] = %q", reason)
	}
	if _, ok := re.Recovery.Skipped["m"+MetaSuffix]; !ok {
		t.Fatal("metadata partner not condemned with the model")
	}
	if len(re.Recovery.Quarantined) != 0 {
		t.Fatalf("model pair leaked into Quarantined: %v", re.Recovery.Quarantined)
	}
	for _, name := range []string{"m", "m" + MetaSuffix} {
		if _, err := re.Get(name); err == nil {
			t.Fatalf("condemned table %q still registered", name)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".heap.orphaned")); err != nil {
			t.Fatalf("heap of %q not quarantined aside: %v", name, err)
		}
	}
}

// TestOrphanNumberingAndRetention: repeated condemnations of one name get
// numbered forensic copies instead of overwriting, and reapOrphans bounds
// the total, keeping the newest.
func TestOrphanNumberingAndRetention(t *testing.T) {
	t.Run("numbering", func(t *testing.T) {
		dir := t.TempDir()
		cat := NewFileCatalog(dir, 0)
		if _, err := cat.Create("keep", Schema{{Name: "x", Type: TInt64}}); err != nil {
			t.Fatal(err)
		}
		if err := cat.Save(); err != nil {
			t.Fatal(err)
		}
		cat.Close()
		// An unreferenced heap beside an existing forensic copy: the new
		// quarantine must not clobber the old one.
		buildHeapFile(t, filepath.Join(dir, "stray.heap"), faultRecs(3))
		if err := os.WriteFile(filepath.Join(dir, "stray.heap.orphaned"), []byte("old evidence"), 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenFileCatalog(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if _, err := os.Stat(filepath.Join(dir, "stray.heap.orphaned.1")); err != nil {
			t.Fatalf("numbered quarantine missing: %v", err)
		}
		old, err := os.ReadFile(filepath.Join(dir, "stray.heap.orphaned"))
		if err != nil || string(old) != "old evidence" {
			t.Fatalf("previous forensic copy clobbered: %q %v", old, err)
		}
	})
	t.Run("retention", func(t *testing.T) {
		dir := t.TempDir()
		n := OrphanRetention + 3
		base := time.Now().Add(-time.Hour)
		for i := 0; i < n; i++ {
			name := filepath.Join(dir, fmt.Sprintf("t%02d.heap.orphaned", i))
			if err := os.WriteFile(name, []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
			// Strictly increasing mtimes: t00 oldest, t<n-1> newest.
			mt := base.Add(time.Duration(i) * time.Minute)
			if err := os.Chtimes(name, mt, mt); err != nil {
				t.Fatal(err)
			}
		}
		cat, err := OpenFileCatalog(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer cat.Close()
		reaped := 0
		for _, s := range cat.Recovery.Swept {
			if strings.HasPrefix(s, "reaped ") {
				reaped++
			}
		}
		if reaped != 3 {
			t.Fatalf("reaped %d, want 3 (swept: %v)", reaped, cat.Recovery.Swept)
		}
		// The oldest went; the newest stayed.
		if _, err := os.Stat(filepath.Join(dir, "t00.heap.orphaned")); !os.IsNotExist(err) {
			t.Fatal("oldest orphan survived retention")
		}
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("t%02d.heap.orphaned", n-1))); err != nil {
			t.Fatal("newest orphan was reaped")
		}
	})
}

// TestCRCVerifyCountWarmScan is the deterministic form of the "<3%
// checksum overhead" guarantee: verification happens only when a page is
// filled from disk, so a warm (pool-hit) scan performs ZERO checksum
// work — the cached epoch path pays nothing.
func TestCRCVerifyCountWarmScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.heap")
	buildHeapFile(t, path, faultRecs(500))
	h, err := OpenFileHeap(path, DefaultPoolPages)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Cold pass fills the pool (open already did, but be explicit).
	if err := h.Scan(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	before := CRCVerifyCount()
	for i := 0; i < 3; i++ {
		if err := h.Scan(func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if after := CRCVerifyCount(); after != before {
		t.Fatalf("warm scans verified %d checksums, want 0", after-before)
	}
}

// BenchmarkFileHeapScan quantifies the checksum cost at both ends of the
// buffer pool: "warm" scans hit the pool on every page (zero verifies —
// the cached epoch path's regime), "cold" forces a fill+verify per page
// read via a one-page pool. The delta between cold here and cold on a
// pre-checksum build is the entire CRC bill; the warm number is the
// proof it is not paid on the steady-state path.
func BenchmarkFileHeapScan(b *testing.B) {
	for _, bc := range []struct {
		name string
		pool int
	}{
		{"warm", DefaultPoolPages},
		{"cold", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.heap")
			recs := faultRecs(4000) // ~50 pages
			h, err := OpenFileHeap(path, 16)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range recs {
				if err := h.Append(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
			h, err = OpenFileHeap(path, bc.pool)
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			c0 := CRCVerifyCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Scan(func([]byte) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(CRCVerifyCount()-c0)/float64(b.N), "crc-verifies/op")
		})
	}
}
