package engine

import "sync/atomic"

// Per-name generation counters: the serving plane's lock-free read hook.
//
// Every mutation that changes which rows a table name resolves to — Create,
// Drop, and the in-memory retarget of a committed Swap — bumps the name's
// counter. A reader that captured a decoded snapshot of the table (the
// serve package's hot-model cache) revalidates it with one atomic load and
// an integer compare, taking neither the catalog mutex nor any per-name RW
// lock: equal generation means the snapshot is still the published table,
// unequal means a newer generation committed and the snapshot must be
// refilled. Invalidation is therefore by compare, not broadcast — a swap
// does not know or care who holds snapshots.
//
// Counter objects are stable for the life of the catalog: once a name has a
// counter it is never removed (a Drop bumps it, so a holder of the handle
// observes the drop), which is what makes handing out *atomic.Uint64
// pointers safe. The map is bounded by the set of names ever registered in
// this process — counters are only created by mutations of real tables and
// by GenHandle on existing tables, never by lookups of arbitrary names.

// bumpGen advances the name's generation counter, creating it at first
// mutation. Callers hold whatever lock the mutation itself requires; the
// counter needs none of its own.
func (c *Catalog) bumpGen(name string) {
	c.genOf(name).Add(1)
}

// genOf returns the name's counter, creating it on first use.
func (c *Catalog) genOf(name string) *atomic.Uint64 {
	if v, ok := c.gens.Load(name); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := c.gens.LoadOrStore(name, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// Generation returns the name's current generation without taking any
// lock. Zero means the name has not been mutated since this catalog was
// opened (tables loaded by OpenFileCatalog start at a nonzero generation,
// since registration itself is a mutation).
func (c *Catalog) Generation(name string) uint64 {
	if v, ok := c.gens.Load(name); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// GenHandle returns the name's stable generation counter for lock-free
// polling, or nil when the name is not a registered table (handles are
// only minted for real tables so unknown-name probes cannot grow the map).
// The returned pointer stays valid — and keeps counting — across any
// number of swaps, drops, and re-creates of the name.
func (c *Catalog) GenHandle(name string) *atomic.Uint64 {
	c.mu.Lock()
	_, ok := c.tables[name]
	c.mu.Unlock()
	if !ok {
		return nil
	}
	return c.genOf(name)
}
