package engine

import (
	"sync"
	"testing"
)

var genTestSchema = Schema{
	{Name: "idx", Type: TInt64},
	{Name: "value", Type: TFloat64},
}

// TestGenerationBumps pins the three mutation points of the generation
// protocol: create, swap retarget, and drop each advance the name's
// counter, and a handle minted before a swap observes every later bump.
func TestGenerationBumps(t *testing.T) {
	c := NewCatalog()
	if g := c.Generation("m"); g != 0 {
		t.Fatalf("unregistered name generation = %d, want 0", g)
	}
	if h := c.GenHandle("m"); h != nil {
		t.Fatalf("GenHandle of unregistered name = %p, want nil", h)
	}

	if _, err := c.Create("m", genTestSchema); err != nil {
		t.Fatal(err)
	}
	h := c.GenHandle("m")
	if h == nil {
		t.Fatal("GenHandle of registered table = nil")
	}
	afterCreate := h.Load()
	if afterCreate == 0 {
		t.Fatal("generation still 0 after Create")
	}
	if g := c.Generation("m"); g != afterCreate {
		t.Fatalf("Generation = %d, handle = %d", g, afterCreate)
	}

	// A committed swap bumps the final name; the pre-swap handle sees it.
	if _, err := c.Create("m"+ShadowSuffix, genTestSchema); err != nil {
		t.Fatal(err)
	}
	if err := c.Swap([]string{"m"}, []string{"m" + ShadowSuffix}, nil); err != nil {
		t.Fatal(err)
	}
	afterSwap := h.Load()
	if afterSwap <= afterCreate {
		t.Fatalf("generation %d after swap, want > %d", afterSwap, afterCreate)
	}

	// Drop bumps too, so a holder can tell "replaced" from "gone" only by
	// re-resolving — either way its snapshot is invalid, which is the point.
	if err := c.Drop("m"); err != nil {
		t.Fatal(err)
	}
	if g := h.Load(); g <= afterSwap {
		t.Fatalf("generation %d after drop, want > %d", g, afterSwap)
	}

	// The handle is stable across re-create: same counter keeps counting.
	if _, err := c.Create("m", genTestSchema); err != nil {
		t.Fatal(err)
	}
	if h2 := c.GenHandle("m"); h2 != h {
		t.Fatalf("re-created name minted a new handle %p, old %p", h2, h)
	}
}

// TestGenerationSwapRetargetOrder verifies the swap-side ordering contract:
// by the time a generation bump is visible, the catalog already resolves
// the name to the new generation's rows. Readers poll the handle with no
// locks while swaps run; observing bump N and then reading old rows would
// let a cache pin stale coefficients under a fresh generation number.
func TestGenerationSwapRetargetOrder(t *testing.T) {
	c := NewCatalog()
	tbl, err := c.Create("m", genTestSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Tuple{I64(0), F64(0)}); err != nil {
		t.Fatal(err)
	}
	h := c.GenHandle("m")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, 1)
	go func() {
		defer wg.Done()
		last := h.Load()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := h.Load()
			if g == last {
				continue
			}
			last = g
			// Generation moved: the published table must already carry
			// the value equal to its generation's payload marker.
			tb, err := c.Get("m")
			if err != nil {
				continue // raced a re-create window; fine
			}
			var got float64
			n := 0
			if err := tb.Scan(func(tp Tuple) error { got = tp[1].Float; n++; return nil }); err != nil {
				continue
			}
			// The swapper writes payload k into generation bump k; a reader
			// observing bump g must never see payload < its observation
			// point's floor (a lagging payload would mean bump-before-retarget).
			if n == 1 && got+1 < float64(g)-float64(last) {
				select {
				case errs <- err:
				default:
				}
			}
		}
	}()

	for k := 1; k <= 200; k++ {
		sh, err := c.Create("m"+ShadowSuffix, genTestSchema)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Insert(Tuple{I64(0), F64(float64(k))}); err != nil {
			t.Fatal(err)
		}
		if err := c.Swap([]string{"m"}, []string{"m" + ShadowSuffix}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("reader observed bump before retarget: %v", err)
	default:
	}
}
