package engine

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
)

// pageStore abstracts where pages live: in memory or in a file (read through
// a buffer pool). Pages are append-only; rewrites replace the whole store
// contents (that is how ClusterBy / Shuffle work, mirroring a table rewrite
// in a real engine).
type pageStore interface {
	numPages() int
	// readPage returns the contents of page i. The returned slice must be
	// treated as read-only and is only valid until the next store call on
	// the same goroutine's pool handle.
	readPage(i int) (page, error)
	appendPage(p page) error
	// reset discards all pages.
	reset() error
	// sync forces written pages to stable storage (fsync for file stores).
	sync() error
	close() error
}

// memStore keeps pages in memory.
type memStore struct {
	pages []page
}

func (m *memStore) numPages() int { return len(m.pages) }

func (m *memStore) readPage(i int) (page, error) {
	if i < 0 || i >= len(m.pages) {
		return nil, fmt.Errorf("engine: page %d out of range (%d pages)", i, len(m.pages))
	}
	return m.pages[i], nil
}

func (m *memStore) appendPage(p page) error {
	cp := make(page, PageSize)
	copy(cp, p)
	m.pages = append(m.pages, cp)
	return nil
}

func (m *memStore) reset() error {
	m.pages = nil
	return nil
}

func (m *memStore) sync() error { return nil }

func (m *memStore) close() error { return nil }

// fileStore keeps pages in an OS file, read through a BufferPool.
type fileStore struct {
	f    *os.File
	path string
	n    int
	pool *BufferPool
}

func newFileStore(path string, poolPages int) (*fileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("engine: %s size %d not page aligned", path, st.Size())
	}
	fs := &fileStore{f: f, path: path, n: int(st.Size() / PageSize)}
	fs.pool = NewBufferPool(fs.f, poolPages)
	return fs, nil
}

func (fs *fileStore) numPages() int { return fs.n }

func (fs *fileStore) readPage(i int) (page, error) {
	if i < 0 || i >= fs.n {
		return nil, fmt.Errorf("engine: page %d out of range (%d pages)", i, fs.n)
	}
	return fs.pool.Get(i)
}

func (fs *fileStore) appendPage(p page) error {
	if _, err := fs.f.WriteAt(p, int64(fs.n)*PageSize); err != nil {
		return err
	}
	fs.pool.Invalidate(fs.n)
	fs.n++
	return nil
}

func (fs *fileStore) reset() error {
	if err := fs.f.Truncate(0); err != nil {
		return err
	}
	fs.n = 0
	fs.pool.InvalidateAll()
	return nil
}

func (fs *fileStore) sync() error { return fs.f.Sync() }

func (fs *fileStore) close() error { return fs.f.Close() }

// Heap is an append-only heap file of variable-length records stored on
// slotted pages, with overflow chains for records larger than a page.
type Heap struct {
	st   pageStore
	cur  page // partially filled tail data page, nil if none
	nrec int
}

// NewMemHeap returns a heap whose pages live in memory.
func NewMemHeap() *Heap { return &Heap{st: &memStore{}} }

// DefaultPoolPages is the default buffer pool capacity for file-backed
// heaps: 1024 pages = 8 MB.
const DefaultPoolPages = 1024

// OpenFileHeap opens (or creates) a file-backed heap at path. Existing
// records are counted so NumRecords is correct after reopen.
func OpenFileHeap(path string, poolPages int) (*Heap, error) {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	fs, err := newFileStore(path, poolPages)
	if err != nil {
		return nil, err
	}
	h := &Heap{st: fs}
	if fs.numPages() > 0 {
		n := 0
		if err := h.Scan(func([]byte) error { n++; return nil }); err != nil {
			fs.close()
			return nil, err
		}
		h.nrec = n
	}
	return h, nil
}

// NumRecords returns the number of records appended to the heap.
func (h *Heap) NumRecords() int { return h.nrec }

// NumPages returns the number of flushed pages (excluding the in-memory
// tail page, if any).
func (h *Heap) NumPages() int { return h.st.numPages() }

// Append adds one record to the heap.
func (h *Heap) Append(rec []byte) error {
	if len(rec) > maxInlineRecord {
		if err := h.flushCur(); err != nil {
			return err
		}
		if err := h.appendOverflow(rec); err != nil {
			return err
		}
		h.nrec++
		return nil
	}
	if h.cur == nil {
		h.cur = newPage(pageData)
	}
	if !h.cur.insert(rec) {
		if err := h.flushCur(); err != nil {
			return err
		}
		h.cur = newPage(pageData)
		if !h.cur.insert(rec) {
			return fmt.Errorf("engine: record of %d bytes does not fit in fresh page", len(rec))
		}
	}
	h.nrec++
	return nil
}

func (h *Heap) flushCur() error {
	if h.cur == nil {
		return nil
	}
	if err := h.st.appendPage(h.cur); err != nil {
		return err
	}
	h.cur = nil
	return nil
}

// Flush seals the in-memory tail page so all records live on flushed pages.
// Parallel page-range scans require a flushed heap.
func (h *Heap) Flush() error { return h.flushCur() }

// Sync flushes the tail page and forces every written page to stable
// storage. The shadow-generation swap calls it before its commit point: a
// generation is only publishable once its heap would survive a crash.
func (h *Heap) Sync() error {
	if err := h.flushCur(); err != nil {
		return err
	}
	return h.st.sync()
}

// Abandon releases the underlying store WITHOUT flushing the tail page —
// the crash-simulation teardown for fault-injection tests: a SIGKILLed
// process never gets to write its in-memory tail, and neither must the
// simulated one.
func (h *Heap) Abandon() error { return h.st.close() }

func (h *Heap) appendOverflow(rec []byte) error {
	// First page: kind, then uint32 total length, then data.
	first := newPage(pageOverflowStart)
	binary.LittleEndian.PutUint32(first[pageHeaderSize:], uint32(len(rec)))
	n := copy(first[pageHeaderSize+overflowHeaderSize:], rec)
	if err := h.st.appendPage(first); err != nil {
		return err
	}
	rec = rec[n:]
	for len(rec) > 0 {
		cont := newPage(pageOverflowCont)
		n = copy(cont[pageHeaderSize:], rec)
		if err := h.st.appendPage(cont); err != nil {
			return err
		}
		rec = rec[n:]
	}
	return nil
}

// Scan visits every record in storage order. The record slice passed to fn
// is only valid during the call.
func (h *Heap) Scan(fn func(rec []byte) error) error {
	return h.ScanPages(0, h.st.numPages(), fn)
}

// ScanPages visits the records whose storage begins in pages [from, to).
// Overflow chains that start in the range are followed past `to`; overflow
// continuation pages at the start of the range are skipped (they belong to
// a chain owned by an earlier range). If to == NumPages, the in-memory tail
// page is scanned as well.
func (h *Heap) ScanPages(from, to int, fn func(rec []byte) error) error {
	np := h.st.numPages()
	if from < 0 || to > np || from > to {
		return fmt.Errorf("engine: ScanPages range [%d,%d) out of [0,%d]", from, to, np)
	}
	for i := from; i < to; i++ {
		p, err := h.st.readPage(i)
		if err != nil {
			return err
		}
		switch p.kind() {
		case pageData:
			for s := 0; s < p.slotCount(); s++ {
				rec, err := p.record(s)
				if err != nil {
					return err
				}
				if err := fn(rec); err != nil {
					return err
				}
			}
		case pageOverflowStart:
			total := int(binary.LittleEndian.Uint32(p[pageHeaderSize:]))
			rec := make([]byte, 0, total)
			take := total
			if m := PageSize - pageHeaderSize - overflowHeaderSize; take > m {
				take = m
			}
			rec = append(rec, p[pageHeaderSize+overflowHeaderSize:pageHeaderSize+overflowHeaderSize+take]...)
			j := i + 1
			for len(rec) < total {
				if j >= np {
					return fmt.Errorf("engine: truncated overflow chain at page %d", i)
				}
				cp, err := h.st.readPage(j)
				if err != nil {
					return err
				}
				if cp.kind() != pageOverflowCont {
					return fmt.Errorf("engine: broken overflow chain at page %d", j)
				}
				take = total - len(rec)
				if m := PageSize - pageHeaderSize; take > m {
					take = m
				}
				rec = append(rec, cp[pageHeaderSize:pageHeaderSize+take]...)
				j++
			}
			if err := fn(rec); err != nil {
				return err
			}
			// Pages i+1..j-1 were consumed as part of this chain; skip them
			// when they fall inside our range.
			if j-1 > i {
				i = j - 1
				if i >= to {
					// Chain extended past our range; remaining cont pages
					// belong to us, nothing more to do in range.
					i = to - 1
				}
			}
		case pageOverflowCont:
			// Owned by a chain that started before `from`; skip.
		default:
			return fmt.Errorf("engine: unknown page kind %d at page %d", p.kind(), i)
		}
	}
	if to == np && h.cur != nil {
		for s := 0; s < h.cur.slotCount(); s++ {
			rec, err := h.cur.record(s)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rewrite replaces the heap contents with the given records, in order.
func (h *Heap) Rewrite(records [][]byte) error {
	if err := h.st.reset(); err != nil {
		return err
	}
	h.cur = nil
	h.nrec = 0
	for _, r := range records {
		if err := h.Append(r); err != nil {
			return err
		}
	}
	return h.Flush()
}

// materialize reads every record into memory (used by reordering ops).
func (h *Heap) materialize() ([][]byte, error) {
	recs := make([][]byte, 0, h.nrec)
	err := h.Scan(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	return recs, err
}

// Shuffle randomly permutes the heap's records — the engine-level
// implementation of ORDER BY RANDOM() from §3.1 of the paper. It is a full
// table rewrite, which is exactly why shuffle-always is expensive.
func (h *Heap) Shuffle(rng *rand.Rand) error {
	recs, err := h.materialize()
	if err != nil {
		return err
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return h.Rewrite(recs)
}

// Close releases the underlying store.
func (h *Heap) Close() error {
	if err := h.flushCur(); err != nil {
		return err
	}
	return h.st.close()
}
