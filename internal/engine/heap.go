package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
)

// pageStore abstracts where pages live: in memory or in a file (read through
// a buffer pool). Pages are append-only; rewrites replace the whole store
// contents (that is how ClusterBy / Shuffle work, mirroring a table rewrite
// in a real engine).
type pageStore interface {
	numPages() int
	// readPage returns the contents of page i. The returned slice must be
	// treated as read-only and is only valid until the next store call on
	// the same goroutine's pool handle.
	readPage(i int) (page, error)
	appendPage(p page) error
	// checkPage re-reads page i from the backing medium (bypassing any
	// cache) and verifies its integrity — the scrub primitive. File stores
	// evict the page from the pool when the fresh copy is bad, so a stale
	// cached copy cannot outlive the eviction and resurrect it.
	checkPage(i int) error
	// reset discards all pages.
	reset() error
	// sync forces written pages to stable storage (fsync for file stores).
	sync() error
	close() error
}

// memStore keeps pages in memory.
type memStore struct {
	pages []page
}

func (m *memStore) numPages() int { return len(m.pages) }

func (m *memStore) readPage(i int) (page, error) {
	if i < 0 || i >= len(m.pages) {
		return nil, fmt.Errorf("engine: page %d out of range (%d pages)", i, len(m.pages))
	}
	return m.pages[i], nil
}

func (m *memStore) appendPage(p page) error {
	cp := make(page, PageSize)
	copy(cp, p)
	m.pages = append(m.pages, cp)
	return nil
}

func (m *memStore) checkPage(i int) error {
	if i < 0 || i >= len(m.pages) {
		return fmt.Errorf("engine: page %d out of range (%d pages)", i, len(m.pages))
	}
	return nil // memory does not rot within a process lifetime
}

func (m *memStore) reset() error {
	m.pages = nil
	return nil
}

func (m *memStore) sync() error { return nil }

func (m *memStore) close() error { return nil }

// fileStore keeps pages in an OS file, read through a BufferPool that
// verifies every page it fills. All reads and writes pass through the
// IOHooks fault layer; production stores carry nil hooks and pay only a
// pair of nil checks.
type fileStore struct {
	f    *os.File
	path string
	n    int
	pool *BufferPool
	io   *IOHooks
	// legacy marks a pre-checksum file (every page's version byte is 0):
	// verification is impossible, and the open path migrates the file to
	// the v1 format before handing out a heap. The flag is per-FILE, never
	// per-page — in a v1 file the checksum covers the version byte, so rot
	// there fails verification instead of downgrading the page to
	// "unverifiable".
	legacy bool
}

// openFileStore opens (or creates) the page file at path. With repairTail,
// a non-page-aligned file — the torn tail of a crash mid-append — is
// truncated back to the last full page instead of refusing to open; only
// catalog recovery opts in, and only for tables outside model pairs.
func openFileStore(path string, poolPages int, io *IOHooks, repairTail bool) (*fileStore, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	size := st.Size()
	var repaired int64
	if rem := size % PageSize; rem != 0 {
		if !repairTail {
			f.Close()
			return nil, 0, fmt.Errorf("engine: %s size %d not page aligned", path, size)
		}
		size -= rem
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		repaired = rem
	}
	fs := &fileStore{f: f, path: path, n: int(size / PageSize), io: io}
	fs.legacy = fs.sniffLegacy()
	fs.pool = NewBufferPool(fs, poolPages)
	fs.pool.verify = fs.verifyPage
	return fs, repaired, nil
}

// sniffLegacy reports whether the file predates the checksummed format:
// non-empty with every page's version byte 0. It reads the raw file, not
// the fault layer — format detection is metadata, and an injected read
// fault here would misclassify the file rather than exercise a read path.
func (fs *fileStore) sniffLegacy() bool {
	if fs.n == 0 {
		return false
	}
	var vb [1]byte
	for i := 0; i < fs.n; i++ {
		if _, err := fs.f.ReadAt(vb[:], int64(i)*PageSize+1); err != nil {
			return false // unreadable: let page verification report it
		}
		if vb[0] != 0 {
			return false
		}
	}
	return true
}

// ReadAt implements io.ReaderAt for the buffer pool, applying read faults.
// The pool only ever reads whole aligned pages, so off/PageSize identifies
// the page an injected fault lands on.
func (fs *fileStore) ReadAt(b []byte, off int64) (int, error) {
	pageID := int(off / PageSize)
	switch fs.io.readFault(fs.path, pageID) {
	case IOReadError:
		return 0, fmt.Errorf("engine: %s: injected read error at page %d", fs.path, pageID)
	case IOBitRot:
		n, err := fs.f.ReadAt(b, off)
		if err == nil && n > 0 {
			// Deterministic single-bit flip; position and bit derive from
			// the page id so a test can predict exactly what rots.
			pos := (pageID * 2654435761) % n
			if pos < 0 {
				pos = -pos
			}
			b[pos] ^= 1 << (pageID & 7)
		}
		return n, err
	}
	return fs.f.ReadAt(b, off)
}

// verifyPage is the pool's fill-time verifier: a page is checksummed once
// when it comes off the disk and never again while cached.
func (fs *fileStore) verifyPage(id int, p page) error {
	if fs.legacy {
		return nil // pre-checksum file: nothing to verify (migration pending)
	}
	if !p.checksumOK() {
		return &CorruptPageError{Path: fs.path, Page: id, Reason: "checksum mismatch"}
	}
	return nil
}

func (fs *fileStore) numPages() int { return fs.n }

func (fs *fileStore) readPage(i int) (page, error) {
	if i < 0 || i >= fs.n {
		return nil, fmt.Errorf("engine: page %d out of range (%d pages)", i, fs.n)
	}
	return fs.pool.Get(i)
}

func (fs *fileStore) appendPage(p page) error {
	p.seal()
	off := int64(fs.n) * PageSize
	var (
		n   int
		err error
	)
	switch fs.io.writeFault(fs.path, fs.n) {
	case IOWriteError:
		err = fmt.Errorf("engine: %s: injected write error at page %d", fs.path, fs.n)
	case IOShortWrite:
		// The device accepted only half the page but the syscall reported
		// the short count; the n < PageSize check below must catch it.
		n, err = fs.f.WriteAt(p[:PageSize/2], off)
	case IOTornWrite:
		// Power loss mid-write: half the sealed page reaches the platter
		// and the "process" dies. No rollback runs — a dying process runs
		// none — so the torn tail is the next open's problem.
		_, _ = fs.f.WriteAt(p[:PageSize/2], off)
		return fmt.Errorf("engine: %s: torn write at page %d: %w", fs.path, fs.n, ErrInjectedCrash)
	default:
		n, err = fs.f.WriteAt(p, off)
	}
	if err == nil && n < PageSize {
		err = fmt.Errorf("engine: %s: short write at page %d (%d of %d bytes)", fs.path, fs.n, n, PageSize)
	}
	if err != nil {
		// Roll the file back to the last full page: fs.n stays truthful,
		// the next append lands on a clean page boundary, and no torn tail
		// is left for recovery to condemn.
		if terr := fs.f.Truncate(off); terr != nil {
			return fmt.Errorf("%w (rollback truncate failed: %v)", err, terr)
		}
		return err
	}
	fs.pool.Invalidate(fs.n)
	fs.n++
	return nil
}

func (fs *fileStore) checkPage(i int) error {
	if i < 0 || i >= fs.n {
		return fmt.Errorf("engine: page %d out of range (%d pages)", i, fs.n)
	}
	buf := make(page, PageSize)
	if _, err := fs.ReadAt(buf, int64(i)*PageSize); err != nil {
		fs.pool.Invalidate(i)
		return fmt.Errorf("engine: scrub read page %d of %s: %w", i, fs.path, err)
	}
	if err := fs.verifyPage(i, buf); err != nil {
		// The disk copy is bad; a stale good copy must not linger in the
		// pool only to vanish at the next eviction.
		fs.pool.Invalidate(i)
		return err
	}
	return nil
}

func (fs *fileStore) reset() error {
	if err := fs.f.Truncate(0); err != nil {
		return err
	}
	fs.n = 0
	fs.pool.InvalidateAll()
	return nil
}

func (fs *fileStore) sync() error {
	switch fs.io.syncFault(fs.path) {
	case IOSyncError:
		return fmt.Errorf("engine: %s: injected fsync failure", fs.path)
	case IOSyncLie:
		// The lying cache: report durable without forcing anything. Tests
		// pair this with a simulated power cut that discards the writes.
		return nil
	}
	return fs.f.Sync()
}

func (fs *fileStore) close() error { return fs.f.Close() }

// Heap is an append-only heap file of variable-length records stored on
// slotted pages, with overflow chains for records larger than a page.
// File-backed heaps verify every page as it is read off disk and keep a
// quarantine map of pages that failed: strict scans fail on them with a
// *CorruptPageError, degraded scans skip them and count the loss.
type Heap struct {
	st   pageStore
	cur  page // partially filled tail data page, nil if none
	nrec int

	// table is the owning table's name, stamped into CorruptPageError so
	// statement-layer callers see which relation is sick ("" for raw heaps).
	table string

	// mu guards the corruption map and the per-page record counts: scans
	// read both concurrently while another scan or scrub may be
	// quarantining a freshly rotted page.
	mu   sync.RWMutex
	quar map[int]string
	// pageRecs tracks how many records BEGIN on each flushed page (data
	// pages: slot count; overflow starts: 1; continuations: 0; -1 when the
	// page was already unreadable at open). It is what lets a degraded
	// read report how many rows a quarantined page cost.
	pageRecs []int
}

// NewMemHeap returns a heap whose pages live in memory.
func NewMemHeap() *Heap { return &Heap{st: &memStore{}} }

// DefaultPoolPages is the default buffer pool capacity for file-backed
// heaps: 1024 pages = 8 MB.
const DefaultPoolPages = 1024

// heapOpenInfo reports what opening a file heap had to do beyond opening.
type heapOpenInfo struct {
	migrated      bool  // legacy pre-checksum file rewritten to v1
	repairedBytes int64 // torn tail truncated (repairTail only)
}

// OpenFileHeap opens (or creates) a file-backed heap at path. Pre-checksum
// files are migrated to the checksummed format in place (via a side file
// and one rename, so a crash leaves either format complete, never a mix).
// Every page is verified at open; pages that fail are quarantined rather
// than failing the open, and NumRecords counts what is actually readable.
func OpenFileHeap(path string, poolPages int) (*Heap, error) {
	h, _, err := openFileHeap(path, poolPages, nil, false)
	return h, err
}

func openFileHeap(path string, poolPages int, io *IOHooks, repairTail bool) (*Heap, heapOpenInfo, error) {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	var info heapOpenInfo
	fs, repaired, err := openFileStore(path, poolPages, io, repairTail)
	if err != nil {
		return nil, info, err
	}
	info.repairedBytes = repaired
	if fs.legacy {
		if err := migrateLegacyHeap(fs); err != nil {
			return nil, info, err
		}
		info.migrated = true
		if fs, _, err = openFileStore(path, poolPages, io, false); err != nil {
			return nil, info, err
		}
	}
	h := &Heap{st: fs, quar: map[int]string{}}
	h.buildIndex()
	return h, info, nil
}

// migrateLegacyHeap rewrites a pre-checksum heap into the v1 format via a
// side file: records are scanned out of the legacy pages, written sealed
// into <path>.migrate, synced, and renamed over the original. A crash at
// any point leaves either the untouched legacy file or the complete v1
// file — never a mix. The legacy store is closed either way.
func migrateLegacyHeap(fs *fileStore) error {
	src := &Heap{st: fs}
	path, dir := fs.path, filepath.Dir(fs.path)
	tmp := path + ".migrate"
	_ = os.Remove(tmp) // stale side file from an interrupted migration
	dstFS, _, err := openFileStore(tmp, 64, fs.io, false)
	if err != nil {
		fs.close()
		return err
	}
	dst := &Heap{st: dstFS}
	err = src.Scan(func(rec []byte) error { return dst.Append(rec) })
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if cerr := fs.close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("engine: migrating legacy heap %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// buildIndex walks every flushed page once at open: the walk itself
// verifies each page (reads go through the pool's fill-time checksum),
// quarantines the ones that fail, records per-page record counts for
// degraded-read accounting, and counts the readable records so NumRecords
// reflects what a scan can actually yield.
func (h *Heap) buildIndex() {
	np := h.st.numPages()
	h.pageRecs = make([]int, np)
	n := 0
	for i := 0; i < np; i++ {
		p, err := h.st.readPage(i)
		if err != nil {
			h.quarantine(i, openReason(err))
			h.pageRecs[i] = -1
			continue
		}
		switch p.kind() {
		case pageData:
			h.pageRecs[i] = p.slotCount()
			n += p.slotCount()
		case pageOverflowStart:
			// A chain holds exactly one record; if any of its pages is bad
			// the start page is quarantined so scans skip (or fail on) the
			// whole record in one place.
			h.pageRecs[i] = 1
			total := int(binary.LittleEndian.Uint32(p[pageHeaderSize:]))
			got := p.payloadEnd() - pageHeaderSize - overflowHeaderSize
			if got > total {
				got = total
			}
			bad := ""
			j := i + 1
			for got < total {
				if j >= np {
					bad = "truncated overflow chain"
					break
				}
				cp, err := h.st.readPage(j)
				if err != nil {
					h.quarantine(j, openReason(err))
					h.pageRecs[j] = 0
					bad = fmt.Sprintf("overflow continuation page %d unreadable", j)
					j++
					break
				}
				if cp.kind() != pageOverflowCont {
					bad = fmt.Sprintf("broken overflow chain (page %d is not a continuation)", j)
					break
				}
				h.pageRecs[j] = 0
				take := total - got
				if m := cp.payloadEnd() - pageHeaderSize; take > m {
					take = m
				}
				got += take
				j++
			}
			if bad != "" {
				h.quarantine(i, bad)
			} else {
				n++
			}
			i = j - 1
		case pageOverflowCont:
			// Not owned by any readable chain start (its start page was
			// quarantined, or truncation ate the start). Scans skip it.
			h.pageRecs[i] = 0
		default:
			h.quarantine(i, fmt.Sprintf("unknown page kind %d", p.kind()))
			h.pageRecs[i] = -1
		}
	}
	h.nrec = n
}

// openReason extracts the human reason from an open-time page failure.
func openReason(err error) string {
	var ce *CorruptPageError
	if errors.As(err, &ce) {
		return ce.Reason
	}
	return err.Error()
}

// filePath returns the backing file path ("" for in-memory heaps).
func (h *Heap) filePath() string {
	if fs, ok := h.st.(*fileStore); ok {
		return fs.path
	}
	return ""
}

// badPage reports whether page i is quarantined.
func (h *Heap) badPage(i int) (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	r, ok := h.quar[i]
	return r, ok
}

// quarantine marks page i corrupt; reports whether it was newly marked.
func (h *Heap) quarantine(i int, reason string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.quar == nil {
		h.quar = map[int]string{}
	}
	if _, ok := h.quar[i]; ok {
		return false
	}
	h.quar[i] = reason
	return true
}

// recsOn returns how many records begin on page i (-1 unknown).
func (h *Heap) recsOn(i int) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if i < 0 || i >= len(h.pageRecs) {
		return -1
	}
	return h.pageRecs[i]
}

// QuarantinedPages returns a copy of the corruption map (nil when clean).
func (h *Heap) QuarantinedPages() map[int]string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.quar) == 0 {
		return nil
	}
	out := make(map[int]string, len(h.quar))
	for k, v := range h.quar {
		out[k] = v
	}
	return out
}

// pageErr builds the typed error for a quarantined or failing page.
func (h *Heap) pageErr(i int, reason string) error {
	return &CorruptPageError{Table: h.table, Path: h.filePath(), Page: i, Reason: reason}
}

// ScrubReport summarizes one integrity pass over a heap.
type ScrubReport struct {
	Table  string
	Pages  int            // flushed pages checked
	NewBad []int          // pages newly quarantined by this pass
	Bad    map[int]string // all quarantined pages after the pass
}

// Clean reports a fully healthy heap.
func (r ScrubReport) Clean() bool { return len(r.Bad) == 0 }

// Scrub re-reads every flushed page fresh from the backing store (cached
// copies are deliberately bypassed — the question is what the DISK holds)
// and quarantines pages whose checksum fails or that no longer read back.
// Quarantine is sticky: a page stays quarantined until the heap is
// rewritten, so scans degrade deterministically instead of flickering with
// the pool's eviction pattern.
func (h *Heap) Scrub() ScrubReport {
	np := h.st.numPages()
	rep := ScrubReport{Pages: np}
	for i := 0; i < np; i++ {
		if err := h.st.checkPage(i); err != nil {
			if h.quarantine(i, openReason(err)) {
				rep.NewBad = append(rep.NewBad, i)
			}
		}
	}
	rep.Bad = h.QuarantinedPages()
	return rep
}

// NumRecords returns the number of readable records appended to the heap.
func (h *Heap) NumRecords() int { return h.nrec }

// NumPages returns the number of flushed pages (excluding the in-memory
// tail page, if any).
func (h *Heap) NumPages() int { return h.st.numPages() }

// Append adds one record to the heap.
func (h *Heap) Append(rec []byte) error {
	if len(rec) > maxInlineRecord {
		if err := h.flushCur(); err != nil {
			return err
		}
		if err := h.appendOverflow(rec); err != nil {
			return err
		}
		h.nrec++
		return nil
	}
	if h.cur == nil {
		h.cur = newPage(pageData)
	}
	if !h.cur.insert(rec) {
		if err := h.flushCur(); err != nil {
			return err
		}
		h.cur = newPage(pageData)
		if !h.cur.insert(rec) {
			return fmt.Errorf("engine: record of %d bytes does not fit in fresh page", len(rec))
		}
	}
	h.nrec++
	return nil
}

// appendTracked appends a flushed page and records how many records begin
// on it, keeping the degraded-read accounting in step with the file.
func (h *Heap) appendTracked(p page, recs int) error {
	if err := h.st.appendPage(p); err != nil {
		return err
	}
	h.mu.Lock()
	h.pageRecs = append(h.pageRecs, recs)
	h.mu.Unlock()
	return nil
}

func (h *Heap) flushCur() error {
	if h.cur == nil {
		return nil
	}
	if err := h.appendTracked(h.cur, h.cur.slotCount()); err != nil {
		return err
	}
	h.cur = nil
	return nil
}

// Flush seals the in-memory tail page so all records live on flushed pages.
// Parallel page-range scans require a flushed heap.
func (h *Heap) Flush() error { return h.flushCur() }

// Sync flushes the tail page and forces every written page to stable
// storage. The shadow-generation swap calls it before its commit point: a
// generation is only publishable once its heap would survive a crash.
func (h *Heap) Sync() error {
	if err := h.flushCur(); err != nil {
		return err
	}
	return h.st.sync()
}

// Abandon releases the underlying store WITHOUT flushing the tail page —
// the crash-simulation teardown for fault-injection tests: a SIGKILLed
// process never gets to write its in-memory tail, and neither must the
// simulated one.
func (h *Heap) Abandon() error { return h.st.close() }

func (h *Heap) appendOverflow(rec []byte) error {
	// First page: kind, then uint32 total length, then data.
	first := newPage(pageOverflowStart)
	binary.LittleEndian.PutUint32(first[pageHeaderSize:], uint32(len(rec)))
	n := copy(first[pageHeaderSize+overflowHeaderSize:first.payloadEnd()], rec)
	if err := h.appendTracked(first, 1); err != nil {
		return err
	}
	rec = rec[n:]
	for len(rec) > 0 {
		cont := newPage(pageOverflowCont)
		n = copy(cont[pageHeaderSize:cont.payloadEnd()], rec)
		if err := h.appendTracked(cont, 0); err != nil {
			return err
		}
		rec = rec[n:]
	}
	return nil
}

// chainPages returns how many pages a v1 overflow chain of `total` payload
// bytes occupies — what lets a degraded scan step over a chain it cannot
// read.
func chainPages(total int) int {
	firstCap := PageSize - pageHeaderSize - overflowHeaderSize - pageTrailerSize
	if total <= firstCap {
		return 1
	}
	contCap := PageSize - pageHeaderSize - pageTrailerSize
	return 1 + (total-firstCap+contCap-1)/contCap
}

// Scan visits every record in storage order. The record slice passed to fn
// is only valid during the call. Scans fail with a *CorruptPageError on a
// quarantined or freshly corrupt page; ScanDegraded skips instead.
func (h *Heap) Scan(fn func(rec []byte) error) error {
	_, err := h.scanPages(0, h.st.numPages(), false, fn)
	return err
}

// ScanDegraded visits every readable record, skipping quarantined and
// freshly corrupt pages, and reports what was skipped. Row counts are a
// lower bound: a page unreadable since open never said how many records it
// held.
func (h *Heap) ScanDegraded(fn func(rec []byte) error) (DegradedStats, error) {
	return h.scanPages(0, h.st.numPages(), true, fn)
}

// ScanPages visits the records whose storage begins in pages [from, to).
// Overflow chains that start in the range are followed past `to`; overflow
// continuation pages at the start of the range are skipped (they belong to
// a chain owned by an earlier range). If to == NumPages, the in-memory tail
// page is scanned as well.
func (h *Heap) ScanPages(from, to int, fn func(rec []byte) error) error {
	_, err := h.scanPages(from, to, false, fn)
	return err
}

// ScanPagesDegraded is ScanDegraded over the page range [from, to).
func (h *Heap) ScanPagesDegraded(from, to int, fn func(rec []byte) error) (DegradedStats, error) {
	return h.scanPages(from, to, true, fn)
}

func (h *Heap) scanPages(from, to int, degraded bool, fn func(rec []byte) error) (DegradedStats, error) {
	var stats DegradedStats
	np := h.st.numPages()
	if from < 0 || to > np || from > to {
		return stats, fmt.Errorf("engine: ScanPages range [%d,%d) out of [0,%d]", from, to, np)
	}
	// skipPage accounts one unreadable page in degraded mode.
	skipPage := func(i int) {
		stats.SkippedPages++
		if n := h.recsOn(i); n > 0 {
			stats.SkippedRows += n
		}
	}
	for i := from; i < to; i++ {
		if reason, bad := h.badPage(i); bad {
			if !degraded {
				return stats, h.pageErr(i, reason)
			}
			skipPage(i)
			continue
		}
		p, err := h.st.readPage(i)
		if err != nil {
			// Fresh corruption (rot since open) is quarantined so every
			// later scan skips or fails this page deterministically; plain
			// I/O errors are not — a transient error must stay retryable.
			var ce *CorruptPageError
			if errors.As(err, &ce) {
				h.quarantine(i, ce.Reason)
				if ce.Table == "" {
					ce.Table = h.table
				}
			}
			if !degraded {
				return stats, err
			}
			skipPage(i)
			continue
		}
		switch p.kind() {
		case pageData:
			for s := 0; s < p.slotCount(); s++ {
				rec, rerr := p.record(s)
				if rerr != nil {
					if !degraded {
						return stats, rerr
					}
					stats.SkippedRows++ // one unreadable slot, page otherwise fine
					continue
				}
				if err := fn(rec); err != nil {
					return stats, err
				}
			}
		case pageOverflowStart:
			total := int(binary.LittleEndian.Uint32(p[pageHeaderSize:]))
			rec := make([]byte, 0, total)
			take := total
			if m := p.payloadEnd() - pageHeaderSize - overflowHeaderSize; take > m {
				take = m
			}
			rec = append(rec, p[pageHeaderSize+overflowHeaderSize:pageHeaderSize+overflowHeaderSize+take]...)
			j := i + 1
			var chainErr error
			for len(rec) < total {
				if j >= np {
					chainErr = fmt.Errorf("engine: truncated overflow chain at page %d", i)
					break
				}
				if reason, bad := h.badPage(j); bad {
					chainErr = h.pageErr(j, reason)
					break
				}
				cp, err := h.st.readPage(j)
				if err != nil {
					var ce *CorruptPageError
					if errors.As(err, &ce) {
						h.quarantine(j, ce.Reason)
						if ce.Table == "" {
							ce.Table = h.table
						}
					}
					chainErr = err
					break
				}
				if cp.kind() != pageOverflowCont {
					chainErr = fmt.Errorf("engine: broken overflow chain at page %d", j)
					break
				}
				take = total - len(rec)
				if m := cp.payloadEnd() - pageHeaderSize; take > m {
					take = m
				}
				rec = append(rec, cp[pageHeaderSize:pageHeaderSize+take]...)
				j++
			}
			if chainErr != nil {
				if !degraded {
					return stats, chainErr
				}
				// Skip the whole chain — it holds exactly one record — and
				// step arithmetically over its remaining pages.
				end := i + chainPages(total)
				if end > np {
					end = np
				}
				stats.SkippedPages += end - i
				stats.SkippedRows++
				i = end - 1
				continue
			}
			if err := fn(rec); err != nil {
				return stats, err
			}
			// Pages i+1..j-1 were consumed as part of this chain; skip them
			// (the loop exits naturally if the chain extended past `to`).
			i = j - 1
		case pageOverflowCont:
			// Owned by a chain that started before `from`; skip.
		default:
			if !degraded {
				return stats, fmt.Errorf("engine: unknown page kind %d at page %d", p.kind(), i)
			}
			skipPage(i)
		}
	}
	if to == np && h.cur != nil {
		for s := 0; s < h.cur.slotCount(); s++ {
			rec, err := h.cur.record(s)
			if err != nil {
				return stats, err
			}
			if err := fn(rec); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// Rewrite replaces the heap contents with the given records, in order. A
// rewrite clears the quarantine: every byte of the old generation is gone.
func (h *Heap) Rewrite(records [][]byte) error {
	if err := h.st.reset(); err != nil {
		return err
	}
	h.cur = nil
	h.nrec = 0
	h.mu.Lock()
	h.quar = map[int]string{}
	h.pageRecs = h.pageRecs[:0]
	h.mu.Unlock()
	for _, r := range records {
		if err := h.Append(r); err != nil {
			return err
		}
	}
	return h.Flush()
}

// materialize reads every record into memory (used by reordering ops).
func (h *Heap) materialize() ([][]byte, error) {
	recs := make([][]byte, 0, h.nrec)
	err := h.Scan(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	return recs, err
}

// Shuffle randomly permutes the heap's records — the engine-level
// implementation of ORDER BY RANDOM() from §3.1 of the paper. It is a full
// table rewrite, which is exactly why shuffle-always is expensive.
func (h *Heap) Shuffle(rng *rand.Rand) error {
	recs, err := h.materialize()
	if err != nil {
		return err
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return h.Rewrite(recs)
}

// Close releases the underlying store.
func (h *Heap) Close() error {
	if err := h.flushCur(); err != nil {
		return err
	}
	return h.st.close()
}
