package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func heapBackends(t *testing.T) map[string]func() *Heap {
	t.Helper()
	dir := t.TempDir()
	n := 0
	return map[string]func() *Heap{
		"mem": NewMemHeap,
		"file": func() *Heap {
			n++
			h, err := OpenFileHeap(filepath.Join(dir, fmt.Sprintf("h%d.heap", n)), 8)
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	}
}

func TestHeapAppendScanOrder(t *testing.T) {
	for name, mk := range heapBackends(t) {
		t.Run(name, func(t *testing.T) {
			h := mk()
			defer h.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := h.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if h.NumRecords() != n {
				t.Fatalf("NumRecords = %d, want %d", h.NumRecords(), n)
			}
			i := 0
			err := h.Scan(func(rec []byte) error {
				want := fmt.Sprintf("record-%04d", i)
				if string(rec) != want {
					return fmt.Errorf("record %d = %q, want %q", i, rec, want)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != n {
				t.Fatalf("scanned %d records, want %d", i, n)
			}
		})
	}
}

func TestHeapLargeRecordsOverflow(t *testing.T) {
	for name, mk := range heapBackends(t) {
		t.Run(name, func(t *testing.T) {
			h := mk()
			defer h.Close()
			sizes := []int{10, maxInlineRecord, maxInlineRecord + 1, 3 * PageSize, 17, PageSize * 2, 5}
			var want [][]byte
			for i, sz := range sizes {
				rec := bytes.Repeat([]byte{byte('a' + i)}, sz)
				want = append(want, rec)
				if err := h.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			var got [][]byte
			err := h.Scan(func(rec []byte) error {
				got = append(got, append([]byte(nil), rec...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("scanned %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch: got %d bytes, want %d", i, len(got[i]), len(want[i]))
				}
			}
		})
	}
}

func TestHeapScanPagesSegmentsCoverAll(t *testing.T) {
	h := NewMemHeap()
	// Mix small and overflow records so chains cross segment boundaries.
	rng := rand.New(rand.NewSource(5))
	const n = 400
	for i := 0; i < n; i++ {
		sz := 20 + rng.Intn(100)
		if i%37 == 0 {
			sz = PageSize + rng.Intn(2*PageSize)
		}
		rec := make([]byte, sz)
		rec[0] = byte(i)
		rec[1] = byte(i >> 8)
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	np := h.NumPages()
	for _, segments := range []int{1, 2, 3, 7, np} {
		seen := make(map[int]int)
		for s := 0; s < segments; s++ {
			from, to := s*np/segments, (s+1)*np/segments
			err := h.ScanPages(from, to, func(rec []byte) error {
				id := int(rec[0]) | int(rec[1])<<8
				seen[id]++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(seen) != n {
			t.Fatalf("segments=%d: saw %d distinct records, want %d", segments, len(seen), n)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("segments=%d: record %d seen %d times", segments, id, c)
			}
		}
	}
}

func TestHeapScanIncludesUnflushedTail(t *testing.T) {
	h := NewMemHeap()
	for i := 0; i < 3; i++ {
		if err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := h.Scan(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("scanned %d, want 3 (tail page must be visible)", n)
	}
}

func TestHeapShufflePreservesMultiset(t *testing.T) {
	h := NewMemHeap()
	const n = 300
	for i := 0; i < n; i++ {
		if err := h.Append([]byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Shuffle(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if h.NumRecords() != n {
		t.Fatalf("NumRecords after shuffle = %d", h.NumRecords())
	}
	seen := make(map[string]bool)
	order := make([]string, 0, n)
	if err := h.Scan(func(rec []byte) error {
		seen[string(rec)] = true
		order = append(order, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("shuffle lost records: %d distinct", len(seen))
	}
	same := true
	for i := range order {
		if order[i] != fmt.Sprintf("%d", i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle produced identity permutation on 300 records (astronomically unlikely)")
	}
}

func TestHeapRewriteReplaces(t *testing.T) {
	h := NewMemHeap()
	for i := 0; i < 10; i++ {
		if err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Rewrite([][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if h.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d, want 2", h.NumRecords())
	}
}

func TestFileHeapReopenCountsRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.heap")
	h, err := OpenFileHeap(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 123; i++ {
		if err := h.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenFileHeap(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.NumRecords() != 123 {
		t.Fatalf("reopened NumRecords = %d, want 123", h2.NumRecords())
	}
}

func TestScanPagesBadRange(t *testing.T) {
	h := NewMemHeap()
	if err := h.ScanPages(-1, 0, func([]byte) error { return nil }); err == nil {
		t.Fatal("expected error for negative from")
	}
	if err := h.ScanPages(0, 5, func([]byte) error { return nil }); err == nil {
		t.Fatal("expected error for to > numPages")
	}
}
