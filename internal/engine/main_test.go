package engine

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRoot is the package-wide scratch directory TestMain owns. Tests that
// exercise file catalogs should get their directories from testCatalogDir
// so the shadow-leak sweep below sees them.
var testRoot string

// TestMain gives every file-catalog test a directory under one root and,
// after the run, fails the package if any test leaked an in-flight
// *__shadow*.heap file: the swap protocol's contract is that shadows are
// either committed (renamed away) or cleaned up (dropped on failure, swept
// on recovery) — a leaked one means a code path forgot its half of that
// contract.
func TestMain(m *testing.M) {
	var err error
	testRoot, err = os.MkdirTemp("", "bismarck-engine-test-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine tests: %v\n", err)
		os.Exit(1)
	}
	code := m.Run()
	if leaks := findShadowLeaks(testRoot); len(leaks) > 0 {
		fmt.Fprintf(os.Stderr, "engine tests leaked in-flight shadow heaps:\n")
		for _, l := range leaks {
			fmt.Fprintf(os.Stderr, "  %s\n", l)
		}
		if code == 0 {
			code = 1
		}
	}
	os.RemoveAll(testRoot)
	os.Exit(code)
}

// findShadowLeaks walks root for files whose name marks an in-flight
// shadow generation.
func findShadowLeaks(root string) []string {
	var leaks []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), ShadowSuffix) && strings.HasSuffix(d.Name(), ".heap") {
			leaks = append(leaks, path)
		}
		return nil
	})
	return leaks
}

// testCatalogDir returns a fresh catalog directory under the swept root.
// Its cleanup ALSO checks for leaked shadow heaps per test, so the failure
// points at the test that leaked rather than only at the package sweep.
func testCatalogDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp(testRoot, strings.ReplaceAll(t.Name(), "/", "_")+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if leaks := findShadowLeaks(dir); len(leaks) > 0 {
			t.Errorf("test leaked in-flight shadow heaps: %v", leaks)
		}
		os.RemoveAll(dir)
	})
	return dir
}
