package engine

import (
	"fmt"
	"math/rand"
)

// This file implements the decoded-row cache of the zero-allocation epoch
// pipeline. Bismarck's epoch loop is a scan-bound aggregation query: the
// seed engine paid a full decode-and-allocate pass per row per epoch, so a
// 20-epoch run allocated ~20x the dataset and burned GC and memory
// bandwidth instead of gradient FLOPs. A Materialized is a columnar,
// immutable, decoded copy of a table built once (epoch 0 touches page
// bytes, later epochs touch only the slabs), keyed to the table's version
// counter so any physical mutation — Insert, Shuffle, ClusterBy, Rewrite —
// invalidates it. Logical reordering (the ShuffleOnce/ShuffleAlways
// strategies when the engine profile does not charge physical-rewrite cost)
// permutes a per-trainer MatView row index instead of rewriting the heap.

// Materialized is an immutable decoded copy of a table in columnar form:
// one contiguous slab per numeric column (all dense-vector components of a
// column share one []float64, all sparse indices one []int32, ...) plus
// per-row Tuple views aliasing the slabs. Rows are stable for the lifetime
// of the cache — unlike the reusable-scratch scan path, callers may retain
// them (the reservoir samplers do).
type Materialized struct {
	version uint64
	rows    []Tuple
}

// NumRows returns the number of cached rows.
func (m *Materialized) NumRows() int { return len(m.rows) }

// Version returns the table version this cache was built against.
func (m *Materialized) Version() uint64 { return m.version }

// Row returns row i in storage order. The tuple aliases the cache's slabs
// and must be treated as read-only.
func (m *Materialized) Row(i int) Tuple { return m.rows[i] }

// Scan visits every cached row in storage order.
func (m *Materialized) Scan(fn func(Tuple) error) error {
	for _, tp := range m.rows {
		if err := fn(tp); err != nil {
			return err
		}
	}
	return nil
}

// ScanSegment visits rows [from, to) in storage order — the row-granular
// analogue of Table.ScanPages.
func (m *Materialized) ScanSegment(from, to int, fn func(Tuple) error) error {
	if from < 0 || to > len(m.rows) || from > to {
		return fmt.Errorf("engine: materialized segment [%d,%d) out of [0,%d]", from, to, len(m.rows))
	}
	for _, tp := range m.rows[from:to] {
		if err := fn(tp); err != nil {
			return err
		}
	}
	return nil
}

// Segments splits the rows into n contiguous ranges of roughly equal size.
func (m *Materialized) Segments(n int) ([][2]int, error) {
	return rowSegments(len(m.rows), n), nil
}

// View returns a fresh logically-ordered view over the cache. Each trainer
// run takes its own view so one run's shuffle cannot leak into another's
// notion of "stored order".
func (m *Materialized) View() *MatView { return &MatView{m: m} }

// MatView is one trainer's ordered view over a materialization: the row
// permutation that logical shuffles mutate. A nil permutation means storage
// order, so an unshuffled view costs nothing. Views are not safe for
// concurrent mutation; trainers permute between epochs only.
type MatView struct {
	m    *Materialized
	perm []int32
}

// NumRows returns the number of rows in the view.
func (v *MatView) NumRows() int { return len(v.m.rows) }

// Permute reshuffles the view's row order in place — the logical equivalent
// of the ORDER BY RANDOM() table rewrite, at the cost of an O(n) index
// shuffle instead of a full decode-sort-encode pass over the heap.
func (v *MatView) Permute(rng *rand.Rand) {
	if v.perm == nil {
		v.perm = make([]int32, len(v.m.rows))
		for i := range v.perm {
			v.perm[i] = int32(i)
		}
	}
	rng.Shuffle(len(v.perm), func(i, j int) { v.perm[i], v.perm[j] = v.perm[j], v.perm[i] })
}

// Scan visits every row in the view's logical order.
func (v *MatView) Scan(fn func(Tuple) error) error {
	if v.perm == nil {
		return v.m.Scan(fn)
	}
	for _, ri := range v.perm {
		if err := fn(v.m.rows[ri]); err != nil {
			return err
		}
	}
	return nil
}

// ScanSegment visits logical positions [from, to) of the view.
func (v *MatView) ScanSegment(from, to int, fn func(Tuple) error) error {
	if v.perm == nil {
		return v.m.ScanSegment(from, to, fn)
	}
	if from < 0 || to > len(v.perm) || from > to {
		return fmt.Errorf("engine: view segment [%d,%d) out of [0,%d]", from, to, len(v.perm))
	}
	for _, ri := range v.perm[from:to] {
		if err := fn(v.m.rows[ri]); err != nil {
			return err
		}
	}
	return nil
}

// Segments splits the view's logical positions into n contiguous ranges.
func (v *MatView) Segments(n int) ([][2]int, error) {
	return rowSegments(len(v.m.rows), n), nil
}

// rowSegments splits [0, rows) into n roughly equal contiguous ranges.
func rowSegments(rows, n int) [][2]int {
	if n < 1 {
		n = 1
	}
	if rows == 0 {
		return [][2]int{{0, 0}}
	}
	if n > rows {
		n = rows
	}
	segs := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		segs = append(segs, [2]int{i * rows / n, (i + 1) * rows / n})
	}
	return segs
}

// MatBuilder accumulates decoded rows into the columnar slabs of a
// Materialized. Table.Materialize drives it from a reusable-scratch scan;
// the spec layer's view projection drives it directly so a freshly
// projected view is born with a primed cache instead of paying an
// insert-encode-decode round trip.
type MatBuilder struct {
	schema Schema
	n      int

	ints  [][]int64   // per TInt64 column
	flts  [][]float64 // per TFloat64 column
	strs  [][]string  // per TString column
	f64s  [][]float64 // per vector column: dense components / sparse values
	i32s  [][]int32   // per vector column: sparse indices / int32 entries
	offs  [][]int32   // per vector column: row offsets into the slabs (len n+1)
	isVec []bool
}

// NewMatBuilder returns a builder for the given schema.
func NewMatBuilder(schema Schema) *MatBuilder {
	b := &MatBuilder{
		schema: schema,
		ints:   make([][]int64, len(schema)),
		flts:   make([][]float64, len(schema)),
		strs:   make([][]string, len(schema)),
		f64s:   make([][]float64, len(schema)),
		i32s:   make([][]int32, len(schema)),
		offs:   make([][]int32, len(schema)),
		isVec:  make([]bool, len(schema)),
	}
	for c, col := range schema {
		switch col.Type {
		case TDenseVec, TSparseVec, TInt32Vec:
			b.isVec[c] = true
			b.offs[c] = append(b.offs[c], 0)
		}
	}
	return b
}

// NumRows returns the number of rows added so far.
func (b *MatBuilder) NumRows() int { return b.n }

// Add copies one row into the slabs, validating it against the schema. The
// tuple may alias reusable scratch; nothing of it is retained.
func (b *MatBuilder) Add(tp Tuple) error {
	if len(tp) != len(b.schema) {
		return corrupt("", "row has %d columns, schema wants %d", len(tp), len(b.schema))
	}
	for c, v := range tp {
		if v.Type != b.schema[c].Type {
			return corrupt("", "column %d has type %s, schema wants %s", c, v.Type, b.schema[c].Type)
		}
		switch v.Type {
		case TInt64:
			b.ints[c] = append(b.ints[c], v.Int)
		case TFloat64:
			b.flts[c] = append(b.flts[c], v.Float)
		case TString:
			b.strs[c] = append(b.strs[c], v.Str)
		case TDenseVec:
			b.f64s[c] = append(b.f64s[c], v.Dense...)
			b.offs[c] = append(b.offs[c], int32(len(b.f64s[c])))
		case TSparseVec:
			if len(v.Sparse.Idx) != len(v.Sparse.Val) {
				return corrupt("", "column %d sparse vec has %d indices, %d values",
					c, len(v.Sparse.Idx), len(v.Sparse.Val))
			}
			b.i32s[c] = append(b.i32s[c], v.Sparse.Idx...)
			b.f64s[c] = append(b.f64s[c], v.Sparse.Val...)
			b.offs[c] = append(b.offs[c], int32(len(b.i32s[c])))
		case TInt32Vec:
			b.i32s[c] = append(b.i32s[c], v.Ints...)
			b.offs[c] = append(b.offs[c], int32(len(b.i32s[c])))
		default:
			return corrupt("", "column %d has unsupported type %s", c, v.Type)
		}
	}
	b.n++
	return nil
}

// Build assembles the per-row tuple views over the slabs and returns the
// finished cache, stamped with the given table version. The builder must
// not be reused afterwards.
func (b *MatBuilder) Build(version uint64) *Materialized {
	nc := len(b.schema)
	rows := make([]Tuple, b.n)
	vals := make([]Value, b.n*nc) // one flat backing array for all row views
	for r := 0; r < b.n; r++ {
		row := vals[r*nc : (r+1)*nc : (r+1)*nc]
		for c, col := range b.schema {
			v := &row[c]
			v.Type = col.Type
			switch col.Type {
			case TInt64:
				v.Int = b.ints[c][r]
			case TFloat64:
				v.Float = b.flts[c][r]
			case TString:
				v.Str = b.strs[c][r]
			case TDenseVec:
				lo, hi := b.offs[c][r], b.offs[c][r+1]
				v.Dense = b.f64s[c][lo:hi:hi]
			case TSparseVec:
				lo, hi := b.offs[c][r], b.offs[c][r+1]
				v.Sparse.Idx = b.i32s[c][lo:hi:hi]
				v.Sparse.Val = b.f64s[c][lo:hi:hi]
			case TInt32Vec:
				lo, hi := b.offs[c][r], b.offs[c][r+1]
				v.Ints = b.i32s[c][lo:hi:hi]
			}
		}
		rows[r] = Tuple(row)
	}
	return &Materialized{version: version, rows: rows}
}
