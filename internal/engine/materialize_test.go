package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"bismarck/internal/vector"
)

func matSchema() Schema {
	return Schema{
		{Name: "id", Type: TInt64},
		{Name: "vec", Type: TDenseVec},
		{Name: "label", Type: TFloat64},
	}
}

func fillMatTable(t *testing.T, tbl *Table, rows, dim int) {
	t.Helper()
	for i := 0; i < rows; i++ {
		v := make(vector.Dense, dim)
		for j := range v {
			v[j] = float64(i*dim + j)
		}
		if err := tbl.Insert(Tuple{I64(int64(i)), DenseV(v), F64(float64(i % 2))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableVersionBumps(t *testing.T) {
	tbl := NewMemTable("v", matSchema())
	v0 := tbl.Version()
	fillMatTable(t, tbl, 4, 3)
	if tbl.Version() == v0 {
		t.Fatal("Insert did not bump the version")
	}
	v1 := tbl.Version()
	if err := tbl.Shuffle(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v1 {
		t.Fatal("Shuffle did not bump the version")
	}
	v2 := tbl.Version()
	if err := tbl.ClusterBy(func(tp Tuple) float64 { return tp[2].Float }); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v2 {
		t.Fatal("ClusterBy did not bump the version")
	}
	dst := NewMemTable("dst", matSchema())
	dv := dst.Version()
	if err := tbl.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
	if dst.Version() == dv {
		t.Fatal("CopyTo did not bump the destination version")
	}
}

func TestMaterializeCacheAndInvalidation(t *testing.T) {
	tbl := NewMemTable("m", matSchema())
	fillMatTable(t, tbl, 10, 4)

	m1, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("unchanged table should return the cached materialization")
	}
	if m1.NumRows() != 10 {
		t.Fatalf("cached %d rows, want 10", m1.NumRows())
	}

	// The cache must agree with the heap, row for row.
	i := 0
	err = tbl.Scan(func(tp Tuple) error {
		row := m1.Row(i)
		if row[0].Int != tp[0].Int || row[2].Float != tp[2].Float ||
			len(row[1].Dense) != len(tp[1].Dense) || row[1].Dense[0] != tp[1].Dense[0] {
			return fmt.Errorf("row %d: cache %v != heap %v", i, row, tp)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Insert invalidates.
	if err := tbl.Insert(Tuple{I64(99), DenseV(vector.Dense{1, 2, 3, 4}), F64(1)}); err != nil {
		t.Fatal(err)
	}
	if tbl.CachedRows() != nil {
		t.Fatal("CachedRows should be nil after Insert")
	}
	m3, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 || m3.NumRows() != 11 {
		t.Fatalf("expected rebuilt cache with 11 rows, got %d (same=%v)", m3.NumRows(), m3 == m1)
	}

	// Shuffle invalidates and the rebuilt cache reflects the new order.
	if err := tbl.Shuffle(rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	if tbl.CachedRows() != nil {
		t.Fatal("CachedRows should be nil after Shuffle")
	}
	m4, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	i = 0
	err = tbl.Scan(func(tp Tuple) error {
		if m4.Row(i)[0].Int != tp[0].Int {
			return fmt.Errorf("row %d: cache order diverged from heap after shuffle", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeAfterDropRecreate(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 8)
	tbl, err := cat.Create("d", matSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillMatTable(t, tbl, 5, 2)
	if _, err := tbl.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("d"); err != nil {
		t.Fatal(err)
	}
	tbl2, err := cat.Create("d", matSchema())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 0 {
		t.Fatalf("recreated table cached %d rows, want 0", m.NumRows())
	}
}

func TestMatViewPermutationIsolation(t *testing.T) {
	tbl := NewMemTable("p", matSchema())
	fillMatTable(t, tbl, 32, 2)
	mat, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := mat.View(), mat.View()
	v1.Permute(rand.New(rand.NewSource(3)))

	// v1 visits every row exactly once, in a changed order.
	seen := make(map[int64]bool)
	order := []int64{}
	if err := v1.Scan(func(tp Tuple) error {
		if seen[tp[0].Int] {
			return fmt.Errorf("row %d visited twice", tp[0].Int)
		}
		seen[tp[0].Int] = true
		order = append(order, tp[0].Int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Fatalf("permuted view visited %d rows, want 32", len(seen))
	}
	sorted := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("permuted view still in storage order (vanishingly unlikely)")
	}

	// v2 and the materialization itself stay in storage order.
	for _, scan := range []func(func(Tuple) error) error{v2.Scan, mat.Scan} {
		i := int64(0)
		if err := scan(func(tp Tuple) error {
			if tp[0].Int != i {
				return fmt.Errorf("storage order disturbed at %d: got %d", i, tp[0].Int)
			}
			i++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaterializeLimit(t *testing.T) {
	old := MaterializeLimitBytes
	defer func() { MaterializeLimitBytes = old }()
	MaterializeLimitBytes = 1 // nothing fits

	tbl := NewMemTable("big", matSchema())
	fillMatTable(t, tbl, 3, 2)
	if _, err := tbl.Materialize(); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("want ErrUncacheable, got %v", err)
	}
	// Rows() must degrade to the reuse relation, not fail.
	n := 0
	if err := tbl.Rows().Scan(func(Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fallback relation scanned %d rows, want 3", n)
	}
}

func TestPrimeCache(t *testing.T) {
	tbl := NewMemTable("pc", matSchema())
	b := NewMatBuilder(matSchema())
	for i := 0; i < 6; i++ {
		tp := Tuple{I64(int64(i)), DenseV(vector.Dense{float64(i)}), F64(1)}
		if err := tbl.Insert(tp); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.PrimeCache(b); err != nil {
		t.Fatal(err)
	}
	mat := tbl.CachedRows()
	if mat == nil || mat.NumRows() != 6 {
		t.Fatal("primed cache missing or wrong size")
	}
	got, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got != mat {
		t.Fatal("Materialize rebuilt despite a fresh primed cache")
	}

	// A row-count mismatch must be rejected.
	short := NewMatBuilder(matSchema())
	if err := tbl.PrimeCache(short); err == nil {
		t.Fatal("PrimeCache accepted a builder with the wrong row count")
	}
}

func TestScanRejectsCorruptRecords(t *testing.T) {
	schema := Schema{{Name: "a", Type: TInt64}, {Name: "b", Type: TFloat64}}
	mk := func() *Table {
		tbl := NewMemTable("c", schema)
		if err := tbl.Insert(Tuple{I64(1), F64(2)}); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	cases := []struct {
		name string
		rec  []byte
	}{
		{"truncated", Tuple{I64(7), F64(8)}.Encode()[:5]},
		{"short-arity", Tuple{I64(7)}.Encode()},
		{"wrong-type", Tuple{I64(7), I64(8)}.Encode()},
		{"extra-column", Tuple{I64(7), F64(8), F64(9)}.Encode()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tbl := mk()
			if err := tbl.heap.Append(c.rec); err != nil {
				t.Fatal(err)
			}
			for _, scan := range []struct {
				name string
				fn   func(func(Tuple) error) error
			}{{"Scan", tbl.Scan}, {"ScanReuse", tbl.ScanReuse}} {
				err := scan.fn(func(Tuple) error { return nil })
				var ce *CorruptRecordError
				if !errors.As(err, &ce) {
					t.Fatalf("%s: want CorruptRecordError, got %v", scan.name, err)
				}
				if ce.Table != "c" {
					t.Fatalf("%s: error lost the table name: %v", scan.name, ce)
				}
			}
		})
	}
}

// TestScanRejectsUnsortedSparse guards the vector kernels' sorted-index
// fast path: a length-consistent but out-of-order sparse record (the shape
// bit corruption produces) must be rejected at decode time, not surface as
// an index panic inside a gradient step.
func TestScanRejectsUnsortedSparse(t *testing.T) {
	schema := Schema{{Name: "sv", Type: TSparseVec}}
	tbl := NewMemTable("us", schema)
	bad := Tuple{{Type: TSparseVec, Sparse: vector.Sparse{
		Idx: []int32{50000, 3}, Val: []float64{1, 2},
	}}}
	if err := tbl.heap.Append(bad.Encode()); err != nil {
		t.Fatal(err)
	}
	for _, scan := range []struct {
		name string
		fn   func(func(Tuple) error) error
	}{{"Scan", tbl.Scan}, {"ScanReuse", tbl.ScanReuse}} {
		err := scan.fn(func(Tuple) error { return nil })
		var ce *CorruptRecordError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want CorruptRecordError for unsorted sparse indices, got %v", scan.name, err)
		}
	}
}

func TestScanReuseMatchesScan(t *testing.T) {
	schema := Schema{
		{Name: "id", Type: TInt64},
		{Name: "sv", Type: TSparseVec},
		{Name: "iv", Type: TInt32Vec},
		{Name: "s", Type: TString},
	}
	tbl := NewMemTable("r", schema)
	for i := 0; i < 20; i++ {
		sv := vector.NewSparse([]int32{int32(i), int32(i + 5)}, []float64{float64(i), -float64(i)})
		tp := Tuple{I64(int64(i)), SparseV(sv), IntsV([]int32{int32(i), 0, 3}), Str(fmt.Sprintf("row%d", i))}
		if err := tbl.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	var want []Tuple
	if err := tbl.Scan(func(tp Tuple) error { want = append(want, tp); return nil }); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := tbl.ScanReuse(func(tp Tuple) error {
		w := want[i]
		if tp[0].Int != w[0].Int || tp[3].Str != w[3].Str ||
			len(tp[1].Sparse.Idx) != len(w[1].Sparse.Idx) ||
			tp[1].Sparse.Val[1] != w[1].Sparse.Val[1] ||
			tp[2].Ints[0] != w[2].Ints[0] {
			return fmt.Errorf("row %d: reuse decode %v != %v", i, tp, w)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 20 {
		t.Fatalf("reuse scan visited %d rows, want 20", i)
	}
}

// TestConcurrentSegmentScans exercises the sharded buffer pool under
// -race: many goroutines scanning disjoint (and overlapping) page ranges
// of one file-backed table concurrently, as the parallel trainers do.
func TestConcurrentSegmentScans(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenFileHeap(filepath.Join(dir, "seg.heap"), 4) // tiny pool: force eviction races
	if err != nil {
		t.Fatal(err)
	}
	tbl := &Table{Name: "seg", Schema: matSchema(), heap: h}
	defer tbl.Close()
	fillMatTable(t, tbl, 500, 8)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := tbl.Segments(8)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	total := make([]int, len(segs)*2)
	errs := make([]error, len(segs)*2)
	for rep := 0; rep < 2; rep++ {
		for i, seg := range segs {
			wg.Add(1)
			go func(slot, from, to int, reuse bool) {
				defer wg.Done()
				n := 0
				count := func(Tuple) error { n++; return nil }
				if reuse {
					errs[slot] = tbl.ScanPagesReuse(from, to, count)
				} else {
					errs[slot] = tbl.ScanPages(from, to, count)
				}
				total[slot] = n
			}(rep*len(segs)+i, seg[0], seg[1], rep == 1)
		}
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	for rep := 0; rep < 2; rep++ {
		sum := 0
		for i := range segs {
			sum += total[rep*len(segs)+i]
		}
		if sum != 500 {
			t.Fatalf("rep %d: segment scans covered %d rows, want 500", rep, sum)
		}
	}
}
