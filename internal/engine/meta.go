package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// catalogMeta is the on-disk description of a file catalog: table names and
// schemas. The heap files themselves live next to it as <name>.heap.
type catalogMeta struct {
	Tables []tableMeta `json:"tables"`
}

type tableMeta struct {
	Name    string       `json:"name"`
	Columns []columnMeta `json:"columns"`
}

type columnMeta struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

const catalogFile = "catalog.json"

// Save writes the catalog's table metadata to dir/catalog.json and flushes
// every table. Only meaningful for file catalogs.
func (c *Catalog) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return fmt.Errorf("engine: Save requires a file catalog")
	}
	var meta catalogMeta
	for _, t := range c.tables {
		if err := t.Flush(); err != nil {
			return err
		}
		tm := tableMeta{Name: t.Name}
		for _, col := range t.Schema {
			tm.Columns = append(tm.Columns, columnMeta{Name: col.Name, Type: uint8(col.Type)})
		}
		meta.Tables = append(meta.Tables, tm)
	}
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.dir, catalogFile), b, 0o644)
}

// OpenFileCatalog loads a catalog previously written with Save, reopening
// every table's heap file. A missing catalog.json yields an empty catalog.
func OpenFileCatalog(dir string, poolPages int) (*Catalog, error) {
	c := NewFileCatalog(dir, poolPages)
	b, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var meta catalogMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, fmt.Errorf("engine: corrupt catalog.json: %w", err)
	}
	for _, tm := range meta.Tables {
		schema := make(Schema, 0, len(tm.Columns))
		for _, cm := range tm.Columns {
			schema = append(schema, Column{Name: cm.Name, Type: Type(cm.Type)})
		}
		if _, err := c.Create(tm.Name, schema); err != nil {
			return nil, err
		}
	}
	return c, nil
}
