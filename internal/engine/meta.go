package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// catalogMeta is the on-disk description of a file catalog: table names and
// schemas. The heap files themselves live next to it as <name>.heap.
type catalogMeta struct {
	Tables []tableMeta `json:"tables"`
}

type tableMeta struct {
	Name    string       `json:"name"`
	Columns []columnMeta `json:"columns"`
}

type columnMeta struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

const catalogFile = "catalog.json"

// FileBacked reports whether the catalog persists tables to disk.
func (c *Catalog) FileBacked() bool { return c.dir != "" }

// Save writes the catalog's table metadata to dir/catalog.json and flushes
// every table. Only meaningful for file catalogs.
func (c *Catalog) Save() error {
	if c.dir == "" {
		return fmt.Errorf("engine: Save requires a file catalog")
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	for _, t := range c.tables {
		if err := t.Flush(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	meta := c.snapshotMetaLocked()
	c.mu.Unlock()
	return c.writeMeta(meta)
}

// SaveMeta writes dir/catalog.json without flushing any table. The
// long-running daemon calls it after each committed statement so a crash
// loses no acknowledged model: the statement paths flush the tables they
// fill themselves, and flushing *other* tables here would race their
// writers. Catalog metadata (names and schemas) is immutable per table,
// so the snapshot needs only a brief hold of the catalog mutex; the disk
// write happens outside it so concurrent sessions' Get/Create/Drop never
// stall behind a checkpoint.
func (c *Catalog) SaveMeta() error {
	if c.dir == "" {
		return fmt.Errorf("engine: SaveMeta requires a file catalog")
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	meta := c.snapshotMetaLocked()
	c.mu.Unlock()
	return c.writeMeta(meta)
}

func (c *Catalog) snapshotMetaLocked() catalogMeta {
	var meta catalogMeta
	for _, t := range c.tables {
		tm := tableMeta{Name: t.Name}
		for _, col := range t.Schema {
			tm.Columns = append(tm.Columns, columnMeta{Name: col.Name, Type: uint8(col.Type)})
		}
		meta.Tables = append(meta.Tables, tm)
	}
	return meta
}

// writeMeta persists the snapshot atomically (temp file + rename): a
// crash mid-write must leave the previous catalog.json intact, not a
// truncated JSON that bricks the next OpenFileCatalog. Callers hold
// saveMu, so concurrent checkpoints cannot interleave on the temp file.
func (c *Catalog) writeMeta(meta catalogMeta) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.dir, catalogFile))
}

// OpenFileCatalog loads a catalog previously written with Save, reopening
// every table's heap file. A missing catalog.json yields an empty catalog.
func OpenFileCatalog(dir string, poolPages int) (*Catalog, error) {
	c := NewFileCatalog(dir, poolPages)
	b, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var meta catalogMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, fmt.Errorf("engine: corrupt catalog.json: %w", err)
	}
	for _, tm := range meta.Tables {
		schema := make(Schema, 0, len(tm.Columns))
		for _, cm := range tm.Columns {
			schema = append(schema, Column{Name: cm.Name, Type: Type(cm.Type)})
		}
		if _, err := c.createTrusted(tm.Name, schema); err != nil {
			return nil, err
		}
	}
	return c, nil
}
