package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// catalogMeta is the on-disk description of a file catalog: table names and
// schemas. The heap files themselves live next to it as <name>.heap.
type catalogMeta struct {
	Tables []tableMeta `json:"tables"`
}

type tableMeta struct {
	Name    string       `json:"name"`
	Columns []columnMeta `json:"columns"`
	// PendingFrom is the swap protocol's generation marker: when set, the
	// table's committed data lives in the heap file of this (shadow) name,
	// awaiting its rename to <Name>.heap. The catalog.json rename that
	// publishes this marker IS the swap's commit point; recovery rolls the
	// file rename forward, so a crash anywhere after the marker lands
	// yields the complete new generation.
	PendingFrom string `json:"pending_from,omitempty"`
}

type columnMeta struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

const catalogFile = "catalog.json"

// FileBacked reports whether the catalog persists tables to disk.
func (c *Catalog) FileBacked() bool { return c.dir != "" }

// Save writes the catalog's table metadata to dir/catalog.json and flushes
// every table. Only meaningful for file catalogs.
func (c *Catalog) Save() error {
	if c.dir == "" {
		return fmt.Errorf("engine: Save requires a file catalog")
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	for _, t := range c.tables {
		if err := t.Flush(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	meta := c.snapshotMetaLocked()
	c.mu.Unlock()
	return c.writeMeta(meta)
}

// SaveMeta writes dir/catalog.json without flushing any table. The
// long-running daemon calls it after each committed statement so a crash
// loses no acknowledged model: the statement paths flush the tables they
// fill themselves, and flushing *other* tables here would race their
// writers. Catalog metadata (names and schemas) is immutable per table,
// so the snapshot needs only a brief hold of the catalog mutex; the disk
// write happens outside it so concurrent sessions' Get/Create/Drop never
// stall behind a checkpoint.
func (c *Catalog) SaveMeta() error {
	if c.dir == "" {
		return fmt.Errorf("engine: SaveMeta requires a file catalog")
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	meta := c.snapshotMetaLocked()
	c.mu.Unlock()
	return c.writeMeta(meta)
}

func (c *Catalog) snapshotMetaLocked() catalogMeta {
	var meta catalogMeta
	for name, t := range c.tables {
		// In-flight shadow generations are not tables yet: checkpointing
		// one would resurrect a half-filled heap after a crash. Their swap
		// commit writes its own snapshot (with generation markers) when the
		// generation is complete and synced.
		if IsShadowName(name) {
			continue
		}
		// A table whose committed swap still owes its heap rename (a live
		// process survived a post-commit failure) keeps its generation
		// marker in every checkpoint until the rename lands — otherwise a
		// later checkpoint would erase the reopened catalog's only clue
		// that the data lives under the shadow heap name.
		tm := tableMeta{Name: t.Name, PendingFrom: c.pending[name]}
		for _, col := range t.Schema {
			tm.Columns = append(tm.Columns, columnMeta{Name: col.Name, Type: uint8(col.Type)})
		}
		meta.Tables = append(meta.Tables, tm)
	}
	return meta
}

// writeMeta persists the snapshot atomically and durably (temp file +
// fsync + rename + directory fsync): a crash mid-write must leave the
// previous catalog.json intact, not a truncated JSON that bricks the next
// OpenFileCatalog — and once writeMeta returns, the rename itself must
// survive a crash, because the swap protocol uses exactly this rename as
// its commit point. Callers hold saveMu, so concurrent checkpoints cannot
// interleave on the temp file.
func (c *Catalog) writeMeta(meta catalogMeta) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, catalogFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, catalogFile)); err != nil {
		return err
	}
	return syncDir(c.dir)
}

// syncDir fsyncs a directory so a just-committed rename in it is durable.
// Filesystems that refuse directory fsync (some CI mounts) don't get to
// fail the commit — the rename is still atomic, just not yet forced out.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// RecoveryReport summarizes what OpenFileCatalog's recovery sweep did, so
// the daemon can log an honest account of what a crash cost (usually:
// nothing).
type RecoveryReport struct {
	// Completed lists tables whose committed-but-unrenamed swap was rolled
	// forward (the crash landed between the commit rename and the heap
	// renames).
	Completed []string
	// Skipped maps table names recorded in catalog.json that were NOT
	// registered to the reason (missing heap, truncated heap, condemned
	// with its model/__meta partner, uncommitted shadow).
	Skipped map[string]string
	// Swept lists orphan files removed or quarantined (uncommitted shadow
	// heaps, heaps of skipped tables moved aside as *.heap.orphaned, stale
	// checkpoint temp files, quarantine files reaped past OrphanRetention).
	Swept []string
	// Quarantined maps registered table names to the pages the open-time
	// scrub quarantined: the table is live but serves strict scans with a
	// *CorruptPageError until rewritten (degraded reads skip the pages).
	// Model/__meta pair members never appear here — corrupt coefficient or
	// metadata pages condemn the pair into Skipped instead.
	Quarantined map[string][]int
	// Repaired maps table names to what the open repaired in place:
	// a pre-checksum heap migrated to the checksummed format, or a torn
	// (non-page-aligned) tail truncated back to the last full page.
	Repaired map[string]string
}

// Clean reports that recovery had nothing to repair.
func (r RecoveryReport) Clean() bool {
	return len(r.Completed) == 0 && len(r.Skipped) == 0 && len(r.Swept) == 0 &&
		len(r.Quarantined) == 0 && len(r.Repaired) == 0
}

// OpenFileCatalog loads a catalog previously written with Save, reopening
// every table's heap file. A missing catalog.json yields an empty catalog.
//
// Opening doubles as crash recovery for the shadow-swap protocol
// (Catalog.Swap), restoring the invariant that every registered table is a
// complete committed generation:
//
//  1. Entries carrying a generation marker (PendingFrom) had committed a
//     swap whose heap renames may not have happened — the shadow heap, if
//     still present, is renamed into place (roll-forward).
//  2. An entry whose heap file is missing — or truncated AND part of a
//     model/__meta pair — is NOT registered: the old behavior of silently
//     resurrecting it as an empty table is exactly the data-loss bug the
//     swap protocol fixes. Its pair partner is condemned with it, so a
//     model can never reopen as a coefficients/metadata mix; left-over
//     heaps are quarantined as *.heap.orphaned rather than reopened. A
//     truncated PLAIN table (no pair partner) is repaired instead: the
//     torn tail is cut back to the last full page and the loss reported.
//  3. Opening each survivor doubles as a scrub: every page is verified,
//     pre-checksum heaps are migrated to the checksummed format, and
//     corrupt pages are quarantined. Model pair members with quarantined
//     pages are condemned (a model is never served degraded); plain
//     tables register with their corruption map surfaced in Quarantined.
//  4. Uncommitted shadow heaps (*__shadow.heap) and stale checkpoint temp
//     files are deleted, and quarantine files beyond OrphanRetention are
//     reaped so crash loops cannot fill the disk.
//
// What recovery found is recorded in the returned catalog's Recovery field.
func OpenFileCatalog(dir string, poolPages int) (*Catalog, error) {
	return OpenFileCatalogIO(dir, poolPages, IOHooks{})
}

// OpenFileCatalogIO is OpenFileCatalog with an I/O fault-injection layer
// installed before any heap is opened, so the recovery scrub's own reads
// run under injected faults — the harness for the corruption matrix.
func OpenFileCatalogIO(dir string, poolPages int, io IOHooks) (*Catalog, error) {
	c := NewFileCatalog(dir, poolPages)
	c.IO = io
	c.Recovery.Skipped = map[string]string{}
	c.Recovery.Quarantined = map[string][]int{}
	c.Recovery.Repaired = map[string]string{}
	b, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if os.IsNotExist(err) {
		c.sweepStrayFiles()
		c.reapOrphans()
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var meta catalogMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		return nil, fmt.Errorf("engine: corrupt catalog.json: %w", err)
	}

	// Phase 1 — roll committed swaps forward: a generation marker means the
	// commit point passed, so the data in the shadow-named heap is THE
	// table; complete the rename the crash interrupted. (If the shadow heap
	// is gone, the rename already happened before the crash.)
	hadMarker := false
	for _, tm := range meta.Tables {
		if tm.PendingFrom == "" || IsShadowName(tm.Name) {
			continue
		}
		hadMarker = true
		if _, err := os.Stat(c.heapPath(tm.PendingFrom)); err == nil {
			if err := os.Rename(c.heapPath(tm.PendingFrom), c.heapPath(tm.Name)); err != nil {
				return nil, fmt.Errorf("engine: completing committed swap of %q: %w", tm.Name, err)
			}
			c.Recovery.Completed = append(c.Recovery.Completed, tm.Name)
		}
	}

	// Phase 2 — decide which entries are registrable on their own merits.
	entries := map[string]bool{}
	badHeap := map[string]string{}
	tornTail := map[string]bool{}
	for _, tm := range meta.Tables {
		if IsShadowName(tm.Name) {
			// A checkpoint raced another session's in-flight fill (older
			// format) — never a committed table.
			c.Recovery.Skipped[tm.Name] = "uncommitted shadow generation"
			continue
		}
		entries[tm.Name] = true
		st, err := os.Stat(c.heapPath(tm.Name))
		switch {
		case os.IsNotExist(err):
			badHeap[tm.Name] = "heap file missing"
		case err != nil:
			return nil, err
		case st.Size()%PageSize != 0:
			tornTail[tm.Name] = true
		}
	}
	// A torn (non-page-aligned) tail condemns a model pair member — a
	// model must never be silently shortened — but a plain table is
	// repaired at open: the partial page is cut and the loss reported.
	// Pair membership needs the full entry set, hence the second pass.
	isPairMember := func(name string) bool {
		return strings.HasSuffix(name, MetaSuffix) || entries[name+MetaSuffix]
	}
	repairTail := map[string]bool{}
	for name := range tornTail {
		if isPairMember(name) {
			badHeap[name] = "heap file truncated"
		} else {
			repairTail[name] = true
		}
	}

	// Phase 3 — condemn model/__meta pairs together: both tables of a model
	// commit in one swap, so registering one half would resurrect exactly
	// the coefficients-without-metadata (or vice versa) mix the protocol
	// exists to prevent. An orphan __meta entry with no base entry at all is
	// condemned too.
	skip := map[string]string{}
	for name, reason := range badHeap {
		skip[name] = reason
	}
	for name := range entries {
		if skip[name] != "" {
			continue
		}
		if base, isMeta := strings.CutSuffix(name, MetaSuffix); isMeta {
			switch {
			case !entries[base]:
				skip[name] = "orphan metadata (no model table entry)"
			case badHeap[base] != "":
				skip[name] = "model table " + base + ": " + badHeap[base]
			}
		} else if entries[name+MetaSuffix] && badHeap[name+MetaSuffix] != "" {
			skip[name] = "metadata side table: " + badHeap[name+MetaSuffix]
		}
	}

	// Phase 4 — register the survivors (each open doubles as a scrub);
	// quarantine the heaps of condemned entries so a later Create of the
	// same name starts empty instead of silently reopening stale rows.
	for _, tm := range meta.Tables {
		if IsShadowName(tm.Name) {
			continue
		}
		if reason, bad := skip[tm.Name]; bad {
			c.Recovery.Skipped[tm.Name] = reason
			c.quarantineHeap(tm.Name)
			continue
		}
		schema := make(Schema, 0, len(tm.Columns))
		for _, cm := range tm.Columns {
			schema = append(schema, Column{Name: cm.Name, Type: Type(cm.Type)})
		}
		t, info, err := c.createTrusted(tm.Name, schema, repairTail[tm.Name])
		if err != nil {
			// The heap cannot be opened at all (unreadable file, failed
			// legacy migration). Same treatment as a missing heap — clean
			// absence, partner condemned below.
			c.Recovery.Skipped[tm.Name] = fmt.Sprintf("heap unreadable: %v", err)
			c.quarantineHeap(tm.Name)
			continue
		}
		var repairs []string
		if info.migrated {
			repairs = append(repairs, "migrated pre-checksum heap to the checksummed page format")
		}
		if info.repairedBytes > 0 {
			repairs = append(repairs, fmt.Sprintf("truncated torn tail (%d bytes past the last full page)", info.repairedBytes))
		}
		if len(repairs) > 0 {
			c.Recovery.Repaired[tm.Name] = strings.Join(repairs, "; ")
		}
		if q := t.QuarantinedPages(); len(q) > 0 {
			if isPairMember(tm.Name) {
				// Corrupt pages in a model's coefficients or metadata
				// condemn the member — a model is never served degraded —
				// and the late partner closure below condemns its other
				// half, keeping PR 4's pair-atomicity.
				c.Recovery.Skipped[tm.Name] = fmt.Sprintf("%d corrupt pages (model pairs are never served degraded)", len(q))
				delete(c.tables, tm.Name)
				_ = t.Close()
				c.quarantineHeap(tm.Name)
				continue
			}
			pages := make([]int, 0, len(q))
			for p := range q {
				pages = append(pages, p)
			}
			sort.Ints(pages)
			c.Recovery.Quarantined[tm.Name] = pages
		}
	}
	// Late partner closure: an open-time scan failure in phase 4 condemns a
	// partner that may already be registered. (Snapshot the skip set first —
	// the loop adds the partners it condemns.)
	skippedNow := make(map[string]string, len(c.Recovery.Skipped))
	for name, reason := range c.Recovery.Skipped {
		skippedNow[name] = reason
	}
	for name, reason := range skippedNow {
		partner := name + MetaSuffix
		if base, isMeta := strings.CutSuffix(name, MetaSuffix); isMeta {
			partner = base
		}
		if _, ok := c.tables[partner]; ok {
			c.Recovery.Skipped[partner] = "partner " + name + ": " + reason
			t := c.tables[partner]
			delete(c.tables, partner)
			_ = t.Close()
			c.quarantineHeap(partner)
		}
	}

	c.sweepStrayFiles()
	c.quarantineUnreferencedHeaps()
	c.reapOrphans()

	// If recovery consumed a generation marker or changed anything, persist
	// a clean marker-free checkpoint NOW: a marker left in catalog.json
	// would, at a later recovery, rename whatever fresh (possibly
	// half-filled, uncommitted) shadow heap happens to exist over the
	// committed generation. Recovery must be once, not latent.
	if hadMarker || !c.Recovery.Clean() {
		if err := c.SaveMeta(); err != nil {
			return nil, fmt.Errorf("engine: persisting recovered catalog: %w", err)
		}
	}
	return c, nil
}

// quarantineUnreferencedHeaps moves aside every *.heap file that no
// catalog entry references. At open time nothing else is live, so such a
// file is garbage from a crash window — a heap retired by a swap's
// dropNames whose os.Remove never ran, or a table created but killed
// before its first checkpoint (lost either way: its entry never reached
// catalog.json). Quarantining rather than reopening keeps a later Create
// of the same name from silently resurrecting stale rows.
func (c *Catalog) quarantineUnreferencedHeaps() {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".heap") {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".heap")
		if _, ok := c.tables[base]; ok || IsShadowName(base) {
			continue // registered, or already handled by the shadow sweep
		}
		if _, skipped := c.Recovery.Skipped[base]; skipped {
			continue // condemned entries were quarantined in their own pass
		}
		c.quarantineHeap(base)
	}
}

// quarantineHeap moves a condemned table's heap file aside (preserving the
// bytes for forensics without letting anything reopen them as a table).
// Each quarantine gets its own numbered file — a crash loop that condemns
// the same table at every open must not overwrite the forensic copy of the
// previous crash; reapOrphans bounds how many accumulate.
func (c *Catalog) quarantineHeap(name string) {
	hp := c.heapPath(name)
	if _, err := os.Stat(hp); err != nil {
		return
	}
	dst := hp + ".orphaned"
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.orphaned.%d", hp, i)
	}
	if os.Rename(hp, dst) == nil {
		c.Recovery.Swept = append(c.Recovery.Swept, name+".heap -> "+filepath.Base(dst))
	}
}

// OrphanRetention bounds how many *.heap.orphaned quarantine files a
// catalog directory retains (newest first by modification time). Repeated
// crash loops would otherwise accumulate one forensic copy per crash until
// the disk fills.
var OrphanRetention = 8

// reapOrphans enforces OrphanRetention, recording what it removed in
// Recovery.Swept.
func (c *Catalog) reapOrphans() {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type orphan struct {
		name string
		mod  time.Time
	}
	var orphans []orphan
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".heap.orphaned") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		orphans = append(orphans, orphan{e.Name(), fi.ModTime()})
	}
	if len(orphans) <= OrphanRetention {
		return
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].mod.After(orphans[j].mod) })
	for _, o := range orphans[OrphanRetention:] {
		if os.Remove(filepath.Join(c.dir, o.name)) == nil {
			c.Recovery.Swept = append(c.Recovery.Swept, "reaped "+o.name)
		}
	}
}

// sweepStrayFiles deletes uncommitted shadow heaps and stale checkpoint
// temp files. By the time it runs, every committed swap has been rolled
// forward, so any remaining *__shadow.heap is an abandoned fill window.
func (c *Catalog) sweepStrayFiles() {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ShadowSuffix+".heap") ||
			// A crash mid-migration leaves <name>.heap.migrate next to the
			// intact legacy file; the next open of that heap replaces it,
			// but a heap nothing references anymore would keep it forever.
			strings.HasSuffix(n, ".heap.migrate") {
			if os.Remove(filepath.Join(c.dir, n)) == nil {
				c.Recovery.Swept = append(c.Recovery.Swept, n)
			}
		}
	}
	os.Remove(filepath.Join(c.dir, catalogFile+".tmp"))
}
