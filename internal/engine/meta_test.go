package engine

import (
	"os"
	"path/filepath"
	"testing"

	"bismarck/internal/vector"
)

func TestFileCatalogSaveAndReopen(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 4)
	schema := Schema{{Name: "id", Type: TInt64}, {Name: "v", Type: TDenseVec}}
	tbl, err := cat.Create("things", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		tbl.MustInsert(Tuple{I64(int64(i)), DenseV(vector.Dense{float64(i)})})
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := OpenFileCatalog(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	tbl2, err := cat2.Get("things")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != 25 {
		t.Fatalf("reopened rows = %d", tbl2.NumRows())
	}
	if len(tbl2.Schema) != 2 || tbl2.Schema[1].Type != TDenseVec {
		t.Fatalf("schema lost: %+v", tbl2.Schema)
	}
	// Data intact.
	sum := 0.0
	tbl2.Scan(func(tp Tuple) error {
		sum += tp[1].Dense[0]
		return nil
	})
	if sum != 300 { // 0+1+...+24
		t.Fatalf("sum = %v", sum)
	}
}

func TestOpenFileCatalogEmptyDir(t *testing.T) {
	cat, err := OpenFileCatalog(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if len(cat.Names()) != 0 {
		t.Fatal("expected empty catalog")
	}
}

func TestSaveRequiresFileCatalog(t *testing.T) {
	if err := NewCatalog().Save(); err == nil {
		t.Fatal("Save on mem catalog should fail")
	}
}

// TestOpenFileCatalogTrustsLegacyNames: names already recorded in a local
// catalog.json (possibly written under laxer rules) must not fail the
// whole catalog open — only new creations are validated.
func TestOpenFileCatalogTrustsLegacyNames(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 0)
	// Simulate a legacy name that today's Create would reject.
	if _, _, err := cat.createTrusted("we\tird", Schema{{Name: "x", Type: TInt64}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("fine", Schema{{Name: "x", Type: TInt64}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatalf("legacy catalog failed to open: %v", err)
	}
	defer re.Close()
	for _, name := range []string{"we\tird", "fine"} {
		if _, err := re.Get(name); err != nil {
			t.Errorf("table %q lost: %v", name, err)
		}
	}
	// New creations still validate.
	if _, err := re.Create("al\tso", Schema{{Name: "x", Type: TInt64}}); err == nil {
		t.Error("Create accepted a control-character name")
	}
}

// TestSaveMetaAtomicAndCrashSafe: the checkpoint goes through temp+rename
// so a torn write can never leave a truncated catalog.json, and a stale
// temp file from a crashed writer is ignored on reopen.
func TestSaveMetaAtomicAndCrashSafe(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 0)
	defer cat.Close()
	if _, err := cat.Create("m", Schema{{Name: "x", Type: TInt64}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "catalog.json.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Simulate a crash mid-write of a later checkpoint: a corrupt temp
	// file must not affect reopening from the committed catalog.json.
	if err := os.WriteFile(filepath.Join(dir, "catalog.json.tmp"), []byte("{tor"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get("m"); err != nil {
		t.Fatal(err)
	}
}
