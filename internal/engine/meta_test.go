package engine

import (
	"testing"

	"bismarck/internal/vector"
)

func TestFileCatalogSaveAndReopen(t *testing.T) {
	dir := t.TempDir()
	cat := NewFileCatalog(dir, 4)
	schema := Schema{{Name: "id", Type: TInt64}, {Name: "v", Type: TDenseVec}}
	tbl, err := cat.Create("things", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		tbl.MustInsert(Tuple{I64(int64(i)), DenseV(vector.Dense{float64(i)})})
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := OpenFileCatalog(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	tbl2, err := cat2.Get("things")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != 25 {
		t.Fatalf("reopened rows = %d", tbl2.NumRows())
	}
	if len(tbl2.Schema) != 2 || tbl2.Schema[1].Type != TDenseVec {
		t.Fatalf("schema lost: %+v", tbl2.Schema)
	}
	// Data intact.
	sum := 0.0
	tbl2.Scan(func(tp Tuple) error {
		sum += tp[1].Dense[0]
		return nil
	})
	if sum != 300 { // 0+1+...+24
		t.Fatalf("sum = %v", sum)
	}
}

func TestOpenFileCatalogEmptyDir(t *testing.T) {
	cat, err := OpenFileCatalog(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if len(cat.Names()) != 0 {
		t.Fatal("expected empty catalog")
	}
}

func TestSaveRequiresFileCatalog(t *testing.T) {
	if err := NewCatalog().Save(); err == nil {
		t.Fatal("Save on mem catalog should fail")
	}
}
