package engine

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page in a heap file, matching the
// 8 KB default of PostgreSQL.
const PageSize = 8192

// Page kinds. Data pages hold slotted records; records larger than a page
// are stored on an overflow chain: one overflowStart page followed by zero
// or more overflowCont pages.
const (
	pageData uint8 = iota + 1
	pageOverflowStart
	pageOverflowCont
)

// Page header layout (8 bytes):
//
//	[0]    kind
//	[1]    reserved
//	[2:4]  slotCount  (data pages)
//	[4:6]  freeLow    (first byte after the slot directory)
//	[6:8]  freeHigh   (first byte of the record area)
//
// The slot directory grows forward from byte 8; each entry is 4 bytes
// (offset uint16, length uint16). Records grow backward from the page end.
const (
	pageHeaderSize = 8
	slotEntrySize  = 4
)

// maxInlineRecord is the largest record that fits in a single data page.
const maxInlineRecord = PageSize - pageHeaderSize - slotEntrySize

// overflowHeaderSize is the payload header of an overflowStart page:
// a uint32 total record length.
const overflowHeaderSize = 4

type page []byte

func newPage(kind uint8) page {
	p := page(make([]byte, PageSize))
	p[0] = kind
	if kind == pageData {
		p.setSlotCount(0)
		p.setFreeLow(pageHeaderSize)
		p.setFreeHigh(PageSize)
	}
	return p
}

func (p page) kind() uint8 { return p[0] }

func (p page) slotCount() int     { return int(binary.LittleEndian.Uint16(p[2:4])) }
func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func (p page) freeLow() int       { return int(binary.LittleEndian.Uint16(p[4:6])) }
func (p page) setFreeLow(v int)   { binary.LittleEndian.PutUint16(p[4:6], uint16(v)) }
func (p page) setFreeHigh(v int) {
	// PageSize itself does not fit in a uint16, so freeHigh is stored as
	// PageSize-v; 0 therefore means "record area empty, starts at end".
	binary.LittleEndian.PutUint16(p[6:8], uint16(PageSize-v))
}

func (p page) getFreeHigh() int { return PageSize - int(binary.LittleEndian.Uint16(p[6:8])) }

// freeSpace returns the bytes available for one more record plus its slot.
func (p page) freeSpace() int { return p.getFreeHigh() - p.freeLow() }

// insert places rec into the page, returning false if it does not fit.
func (p page) insert(rec []byte) bool {
	need := len(rec) + slotEntrySize
	if p.freeSpace() < need {
		return false
	}
	off := p.getFreeHigh() - len(rec)
	copy(p[off:], rec)
	n := p.slotCount()
	slotPos := pageHeaderSize + n*slotEntrySize
	binary.LittleEndian.PutUint16(p[slotPos:], uint16(off))
	binary.LittleEndian.PutUint16(p[slotPos+2:], uint16(len(rec)))
	p.setSlotCount(n + 1)
	p.setFreeLow(slotPos + slotEntrySize)
	p.setFreeHigh(off)
	return true
}

// record returns the bytes of slot i (aliasing the page buffer).
func (p page) record(i int) ([]byte, error) {
	if i < 0 || i >= p.slotCount() {
		return nil, fmt.Errorf("engine: page record %d out of range (%d slots)", i, p.slotCount())
	}
	slotPos := pageHeaderSize + i*slotEntrySize
	off := int(binary.LittleEndian.Uint16(p[slotPos:]))
	ln := int(binary.LittleEndian.Uint16(p[slotPos+2:]))
	if off+ln > PageSize || off < pageHeaderSize {
		return nil, fmt.Errorf("engine: corrupt slot %d (off=%d len=%d)", i, off, ln)
	}
	return p[off : off+ln], nil
}
