package engine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed size of every page in a heap file, matching the
// 8 KB default of PostgreSQL.
const PageSize = 8192

// Page kinds. Data pages hold slotted records; records larger than a page
// are stored on an overflow chain: one overflowStart page followed by zero
// or more overflowCont pages.
const (
	pageData uint8 = iota + 1
	pageOverflowStart
	pageOverflowCont
)

// Page header layout (8 bytes):
//
//	[0]    kind
//	[1]    format version (0 = legacy pre-checksum, 1 = checksummed)
//	[2:4]  slotCount  (data pages)
//	[4:6]  freeLow    (first byte after the slot directory)
//	[6:8]  freeHigh   (first byte of the record area)
//
// The slot directory grows forward from byte 8; each entry is 4 bytes
// (offset uint16, length uint16). Records grow backward from the end of the
// payload area. Version-1 pages reserve their last 4 bytes for a CRC32C
// (Castagnoli) trailer covering everything before it — header, slots,
// records, and padding, so a bit flip anywhere in the page (including the
// version byte itself) fails verification. Version-0 pages have no trailer;
// whole files of them are migrated to version 1 at open.
const (
	pageHeaderSize  = 8
	slotEntrySize   = 4
	pageTrailerSize = 4
	pageFormatV1    = 1
)

// maxInlineRecord is the largest record that fits in a single data page.
const maxInlineRecord = PageSize - pageHeaderSize - slotEntrySize - pageTrailerSize

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum family RocksDB and ext4 metadata use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// overflowHeaderSize is the payload header of an overflowStart page:
// a uint32 total record length.
const overflowHeaderSize = 4

type page []byte

func newPage(kind uint8) page {
	p := page(make([]byte, PageSize))
	p[0] = kind
	p[1] = pageFormatV1
	if kind == pageData {
		p.setSlotCount(0)
		p.setFreeLow(pageHeaderSize)
		p.setFreeHigh(PageSize - pageTrailerSize)
	}
	return p
}

func (p page) kind() uint8    { return p[0] }
func (p page) version() uint8 { return p[1] }

// payloadEnd returns the first byte past the usable payload area: v1 pages
// stop short of the checksum trailer, legacy pages run to the page end.
// Per-page dispatch keeps the scan code able to read a legacy file during
// its one-shot migration.
func (p page) payloadEnd() int {
	if p.version() == 0 {
		return PageSize
	}
	return PageSize - pageTrailerSize
}

// seal computes and stores the checksum trailer. Called once per page as it
// is written to a file store; in-memory stores never verify, so sealing
// their pages would be wasted work.
func (p page) seal() {
	if p.version() == 0 {
		return
	}
	sum := crc32.Checksum(p[:PageSize-pageTrailerSize], castagnoli)
	binary.LittleEndian.PutUint32(p[PageSize-pageTrailerSize:], sum)
}

// checksumOK recomputes the checksum and compares it to the trailer. It is
// format-unconditional on purpose: a v1 file verifies EVERY page this way,
// so rot that flips the version byte to 0 cannot talk a page out of being
// verified (the CRC covers byte 1).
func (p page) checksumOK() bool {
	crcVerifies.Add(1)
	sum := crc32.Checksum(p[:PageSize-pageTrailerSize], castagnoli)
	return binary.LittleEndian.Uint32(p[PageSize-pageTrailerSize:]) == sum
}

func (p page) slotCount() int     { return int(binary.LittleEndian.Uint16(p[2:4])) }
func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p[2:4], uint16(n)) }
func (p page) freeLow() int       { return int(binary.LittleEndian.Uint16(p[4:6])) }
func (p page) setFreeLow(v int)   { binary.LittleEndian.PutUint16(p[4:6], uint16(v)) }
func (p page) setFreeHigh(v int) {
	// PageSize itself does not fit in a uint16, so freeHigh is stored as
	// PageSize-v; 0 therefore means "record area empty, starts at end".
	binary.LittleEndian.PutUint16(p[6:8], uint16(PageSize-v))
}

func (p page) getFreeHigh() int { return PageSize - int(binary.LittleEndian.Uint16(p[6:8])) }

// freeSpace returns the bytes available for one more record plus its slot.
func (p page) freeSpace() int { return p.getFreeHigh() - p.freeLow() }

// insert places rec into the page, returning false if it does not fit.
func (p page) insert(rec []byte) bool {
	need := len(rec) + slotEntrySize
	if p.freeSpace() < need {
		return false
	}
	off := p.getFreeHigh() - len(rec)
	copy(p[off:], rec)
	n := p.slotCount()
	slotPos := pageHeaderSize + n*slotEntrySize
	binary.LittleEndian.PutUint16(p[slotPos:], uint16(off))
	binary.LittleEndian.PutUint16(p[slotPos+2:], uint16(len(rec)))
	p.setSlotCount(n + 1)
	p.setFreeLow(slotPos + slotEntrySize)
	p.setFreeHigh(off)
	return true
}

// record returns the bytes of slot i (aliasing the page buffer).
func (p page) record(i int) ([]byte, error) {
	if i < 0 || i >= p.slotCount() {
		return nil, fmt.Errorf("engine: page record %d out of range (%d slots)", i, p.slotCount())
	}
	slotPos := pageHeaderSize + i*slotEntrySize
	off := int(binary.LittleEndian.Uint16(p[slotPos:]))
	ln := int(binary.LittleEndian.Uint16(p[slotPos+2:]))
	if off+ln > p.payloadEnd() || off < pageHeaderSize {
		return nil, fmt.Errorf("engine: corrupt slot %d (off=%d len=%d)", i, off, ln)
	}
	return p[off : off+ln], nil
}
