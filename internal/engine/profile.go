package engine

import "time"

// Profile emulates the execution characteristics of an RDBMS engine hosting
// the UDA. The paper implements Bismarck on PostgreSQL and two commercial
// systems ("DBMS A", "DBMS B") whose NULL-aggregate baselines differ by two
// orders of magnitude (Table 2): DBMS A pays a heavy per-call function
// overhead (and state serialization in its pure-UDA plan), DBMS B runs
// 8 shared-nothing segments. A profile reproduces those cost structures so
// the overhead experiments have the same shape on our substrate.
type Profile struct {
	Name string
	// Segments is the degree of shared-nothing parallelism for the pure-UDA
	// plan (1 = single-threaded).
	Segments int
	// PerCallOverhead is busy-wait time added to every Transition call,
	// emulating the engine's UDA invocation cost (argument marshalling,
	// memory-context switching, interpreter dispatch, ...).
	PerCallOverhead time.Duration
	// StateCopyPerMerge emulates model passing/serialization overhead at
	// segment boundaries in the pure-UDA plan: when true, states are deep
	// copied through their encoded form at merge time if they support it.
	StateCopyPerMerge bool
	// PhysicalReorder forces the ordering strategies to reorder the table
	// on disk — the paper-faithful ORDER BY RANDOM() full-table rewrite —
	// and the epoch scans to decode page bytes every epoch. The emulated
	// engine profiles set it (a hosted UDA cannot see past the tuple-at-a-
	// time scan interface); the zero-value native profile leaves it false,
	// letting trainers run over the decoded-row cache and express shuffles
	// as O(n) permutations of the cache's row index.
	PhysicalReorder bool
}

// Engine profiles used across the experiments. The overhead constants were
// calibrated so the NULL-aggregate scan rates have the same relative
// spacing as Table 2's NULL columns (PostgreSQL ~0.5 us/tuple, DBMS A ~35
// us/tuple, DBMS B ~PostgreSQL/segment rate on 8 segments).
var (
	ProfilePostgres = Profile{Name: "PostgreSQL", Segments: 1, PerCallOverhead: 0, PhysicalReorder: true}
	ProfileDBMSA    = Profile{Name: "DBMS A", Segments: 1, PerCallOverhead: 12 * time.Microsecond, StateCopyPerMerge: true, PhysicalReorder: true}
	ProfileDBMSB    = Profile{Name: "DBMS B", Segments: 8, PerCallOverhead: 0, PhysicalReorder: true}
)

// Profiles lists the three engines in paper order.
func Profiles() []Profile { return []Profile{ProfilePostgres, ProfileDBMSA, ProfileDBMSB} }

// spin busy-waits for roughly d. Sleeping is useless at microsecond scale;
// a calibrated spin mimics CPU-bound per-call overhead.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
