package engine

import "fmt"

// This file implements horizontal table sharding — the storage half of the
// shared-nothing training mode. A ShardedTable partitions one table's rows
// into K independent shard heaps, each with its own primed decoded-row
// cache, so K epoch workers can each run the zero-allocation cached epoch
// pipeline over a private slice of the data with no shared mutable state
// at all (the scale-out counterpart of the paper's pure-UDA plan, whose
// segments still share one heap and one buffer pool).

// ShardStrategy selects how rows are assigned to shards.
type ShardStrategy int

// Row-to-shard assignment strategies.
const (
	// ShardRoundRobin deals rows out cyclically: shard = row % K. Perfectly
	// balanced (counts differ by at most one) and the default.
	ShardRoundRobin ShardStrategy = iota
	// ShardHash assigns shard = mix64(row) % K, a deterministic hash of the
	// row position. Balanced in expectation; unlike round-robin, a row's
	// shard does not shift when its neighbors are filtered out.
	ShardHash
)

// String implements fmt.Stringer (the names match the shard_by knob).
func (s ShardStrategy) String() string {
	switch s {
	case ShardRoundRobin:
		return "roundrobin"
	case ShardHash:
		return "hash"
	}
	return fmt.Sprintf("ShardStrategy(%d)", int(s))
}

// mix64 is the splitmix64 finalizer: a cheap, allocation-free bijective
// mixer that turns sequential row numbers into well-distributed hash bits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardedTable is a horizontal partitioning of one table into K in-memory
// shard tables. It is a snapshot: built by one scan of the source, it does
// not track later source mutations (exactly like the statement layer's
// projected views, which is where trainers shard). Shard tables are plain
// *Table values, so every scan path — cached epochs, reusable-scratch
// decode, segment scans — works per shard unchanged. Shards never enter a
// catalog and have no on-disk presence, so they are invisible to the
// shadow-swap protocol and the recovery sweep.
type ShardedTable struct {
	Name     string
	Schema   Schema
	Strategy ShardStrategy

	shards []*Table
	rows   []int
}

// ShardCounts computes the per-shard row counts a k-way partition of n
// rows would produce, without building anything: both strategies assign by
// row index alone, so the distribution is a pure function of (n, k). SHOW
// SHARDS reports through this — partitioning a near-limit table twice just
// to print 2×k integers would be a multi-gigabyte diagnostic.
func ShardCounts(n, k int, strategy ShardStrategy) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: shard count must be >= 1, got %d", k)
	}
	counts := make([]int, k)
	switch strategy {
	case ShardRoundRobin:
		for i := range counts {
			counts[i] = n / k
			if i < n%k {
				counts[i]++
			}
		}
	case ShardHash:
		for row := uint64(0); row < uint64(n); row++ {
			counts[mix64(row)%uint64(k)]++
		}
	default:
		return nil, fmt.Errorf("engine: unknown shard strategy %v", strategy)
	}
	return counts, nil
}

// ShardTable partitions src's rows into k shards under the given strategy.
// Each shard's decoded-row cache is primed during the partitioning scan
// (when src is within the materialization budget), so shard workers never
// pay an insert-encode-decode round trip before their first epoch.
func ShardTable(src *Table, k int, strategy ShardStrategy) (*ShardedTable, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: shard count must be >= 1, got %d", k)
	}
	switch strategy {
	case ShardRoundRobin, ShardHash:
	default:
		return nil, fmt.Errorf("engine: unknown shard strategy %v", strategy)
	}
	st := &ShardedTable{Name: src.Name, Schema: src.Schema, Strategy: strategy,
		shards: make([]*Table, k), rows: make([]int, k)}
	// Priming honors the same budget Table.Materialize enforces: the shards
	// jointly hold one decoded copy of the source, so the source's own
	// cache eligibility is the gate. An over-budget source additionally
	// pins its shards out of the cache outright — each shard fits the
	// per-table budget on its own, so without the pin a later lazy
	// Materialize per shard would rebuild, K pieces at a time, the exact
	// decoded copy the source was refused.
	prime := src.Cacheable()
	builders := make([]*MatBuilder, k)
	for i := range st.shards {
		st.shards[i] = NewMemTable(fmt.Sprintf("%s__shard%d", src.Name, i), src.Schema)
		st.shards[i].uncacheable = !prime
		if prime {
			builders[i] = NewMatBuilder(src.Schema)
		}
	}
	row := uint64(0)
	err := src.ScanReuse(func(tp Tuple) error {
		si := row % uint64(k)
		if strategy == ShardHash {
			si = mix64(row) % uint64(k)
		}
		row++
		st.rows[si]++
		if builders[si] != nil {
			if err := builders[si].Add(tp); err != nil {
				return err
			}
		}
		return st.shards[si].Insert(tp)
	})
	if err != nil {
		return nil, err
	}
	for i, t := range st.shards {
		if err := t.Flush(); err != nil {
			return nil, err
		}
		if builders[i] != nil {
			if err := t.PrimeCache(builders[i]); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// ShardChunks streams shard i's rows as chunks of encoded records for
// network shipping: fn receives consecutive batches whose summed record
// bytes stay under maxBytes (a single over-sized record still travels
// alone — the transport's frame cap is the caller's to enforce). The
// record slices are freshly encoded and do not alias heap pages, so fn
// may retain them until it returns.
func (st *ShardedTable) ShardChunks(i int, maxBytes int, fn func(records [][]byte) error) error {
	if maxBytes <= 0 {
		return fmt.Errorf("engine: ShardChunks wants a positive byte budget, got %d", maxBytes)
	}
	var chunk [][]byte
	var size int
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := fn(chunk)
		chunk, size = chunk[:0], 0
		return err
	}
	err := st.shards[i].ScanReuse(func(tp Tuple) error {
		rec := tp.Encode()
		if size+len(rec) > maxBytes {
			if err := flush(); err != nil {
				return err
			}
		}
		chunk = append(chunk, rec)
		size += len(rec)
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// NumShards returns the partition count K.
func (st *ShardedTable) NumShards() int { return len(st.shards) }

// Shard returns shard i as an ordinary table.
func (st *ShardedTable) Shard(i int) *Table { return st.shards[i] }

// RowCounts returns the per-shard row counts (a copy).
func (st *ShardedTable) RowCounts() []int {
	out := make([]int, len(st.rows))
	copy(out, st.rows)
	return out
}

// NumRows returns the total row count across all shards.
func (st *ShardedTable) NumRows() int {
	n := 0
	for _, r := range st.rows {
		n += r
	}
	return n
}

// Close releases every shard's heap.
func (st *ShardedTable) Close() error {
	var first error
	for _, t := range st.shards {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
