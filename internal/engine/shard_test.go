package engine

import (
	"errors"
	"fmt"
	"testing"
)

// shardSrcTable builds an (id, v) table with n rows, id = 0..n-1.
func shardSrcTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := NewMemTable("src", Schema{
		{Name: "id", Type: TInt64},
		{Name: "v", Type: TFloat64},
	})
	for i := 0; i < n; i++ {
		tbl.MustInsert(Tuple{I64(int64(i)), F64(float64(i) * 0.5)})
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// shardIDs collects the id column of one shard in storage order.
func shardIDs(t *testing.T, sh *Table) []int64 {
	t.Helper()
	var ids []int64
	if err := sh.Scan(func(tp Tuple) error {
		ids = append(ids, tp[0].Int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestShardTableRoundRobinBalancedAndComplete(t *testing.T) {
	const n, k = 103, 4
	src := shardSrcTable(t, n)
	sharded, err := ShardTable(src, k, ShardRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if sharded.NumShards() != k || sharded.NumRows() != n {
		t.Fatalf("NumShards=%d NumRows=%d", sharded.NumShards(), sharded.NumRows())
	}
	seen := map[int64]int{}
	for i := 0; i < k; i++ {
		ids := shardIDs(t, sharded.Shard(i))
		if len(ids) != sharded.RowCounts()[i] {
			t.Fatalf("shard %d: %d rows scanned, RowCounts says %d", i, len(ids), sharded.RowCounts()[i])
		}
		// Round-robin balance: counts differ by at most one.
		if len(ids) != n/k && len(ids) != n/k+1 {
			t.Errorf("shard %d has %d rows, want %d or %d", i, len(ids), n/k, n/k+1)
		}
		for _, id := range ids {
			seen[id]++
			// Round-robin assignment is id % k for this table (ids are row
			// numbers).
			if int(id)%k != i {
				t.Errorf("row %d landed in shard %d, want %d", id, i, int(id)%k)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("union covers %d rows, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("row %d appears %d times", id, c)
		}
	}
}

func TestShardTableHashDeterministicAndComplete(t *testing.T) {
	const n, k = 1000, 4
	src := shardSrcTable(t, n)
	build := func() (*ShardedTable, [][]int64) {
		t.Helper()
		sharded, err := ShardTable(src, k, ShardHash)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([][]int64, k)
		for i := 0; i < k; i++ {
			ids[i] = shardIDs(t, sharded.Shard(i))
		}
		return sharded, ids
	}
	a, aIDs := build()
	defer a.Close()
	b, bIDs := build()
	defer b.Close()

	total := 0
	for i := 0; i < k; i++ {
		if fmt.Sprint(aIDs[i]) != fmt.Sprint(bIDs[i]) {
			t.Fatalf("hash partitioning not deterministic on shard %d", i)
		}
		total += len(aIDs[i])
		// Balanced in expectation: no shard pathologically empty or huge.
		if len(aIDs[i]) < n/k/2 || len(aIDs[i]) > n/k*2 {
			t.Errorf("hash shard %d has %d rows (n/k = %d)", i, len(aIDs[i]), n/k)
		}
	}
	if total != n {
		t.Fatalf("hash shards hold %d rows, want %d", total, n)
	}
}

func TestShardTablePrimesShardCaches(t *testing.T) {
	src := shardSrcTable(t, 40)
	sharded, err := ShardTable(src, 3, ShardRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	for i := 0; i < sharded.NumShards(); i++ {
		sh := sharded.Shard(i)
		mat := sh.CachedRows()
		if mat == nil {
			t.Fatalf("shard %d cache not primed", i)
		}
		if mat.NumRows() != sh.NumRows() {
			t.Fatalf("shard %d cache has %d rows, heap %d", i, mat.NumRows(), sh.NumRows())
		}
	}
}

func TestShardTableSingleShardPreservesOrder(t *testing.T) {
	const n = 25
	src := shardSrcTable(t, n)
	sharded, err := ShardTable(src, 1, ShardHash)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	ids := shardIDs(t, sharded.Shard(0))
	if len(ids) != n {
		t.Fatalf("got %d rows, want %d", len(ids), n)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row %d out of order: id %d", i, id)
		}
	}
}

func TestShardTableMoreShardsThanRows(t *testing.T) {
	src := shardSrcTable(t, 3)
	sharded, err := ShardTable(src, 8, ShardRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if sharded.NumRows() != 3 {
		t.Fatalf("NumRows = %d", sharded.NumRows())
	}
	empty := 0
	for _, c := range sharded.RowCounts() {
		if c == 0 {
			empty++
		}
	}
	if empty != 5 {
		t.Fatalf("%d empty shards, want 5 (counts %v)", empty, sharded.RowCounts())
	}
}

func TestShardTableRejectsBadArguments(t *testing.T) {
	src := shardSrcTable(t, 4)
	if _, err := ShardTable(src, 0, ShardRoundRobin); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := ShardTable(src, -2, ShardHash); err == nil {
		t.Fatal("negative k must error")
	}
	if _, err := ShardTable(src, 2, ShardStrategy(9)); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestShardStrategyString(t *testing.T) {
	if ShardRoundRobin.String() != "roundrobin" || ShardHash.String() != "hash" {
		t.Fatalf("strategy names: %s / %s", ShardRoundRobin, ShardHash)
	}
	if ShardStrategy(9).String() != "ShardStrategy(9)" {
		t.Fatal("unknown strategy string")
	}
}

// TestShardCountsMatchShardTable: the count-only path SHOW SHARDS reports
// through must agree exactly with what ShardTable actually builds.
func TestShardCountsMatchShardTable(t *testing.T) {
	src := shardSrcTable(t, 137)
	for _, strat := range []ShardStrategy{ShardRoundRobin, ShardHash} {
		for _, k := range []int{1, 3, 8, 200} {
			counts, err := ShardCounts(src.NumRows(), k, strat)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := ShardTable(src, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			got := sharded.RowCounts()
			sharded.Close()
			if fmt.Sprint(counts) != fmt.Sprint(got) {
				t.Fatalf("%v k=%d: ShardCounts %v != ShardTable %v", strat, k, counts, got)
			}
		}
	}
	if _, err := ShardCounts(10, 0, ShardRoundRobin); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := ShardCounts(10, 2, ShardStrategy(9)); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

// TestShardTableOverBudgetSourceStaysUndecoded reproduces the budget
// bypass: each shard of an over-budget source fits the per-table
// materialization limit on its own, so without the uncacheable pin a lazy
// per-shard Materialize would rebuild — K pieces at a time — the full
// decoded copy the source itself was refused. Shards of such a source
// must refuse the cache and scan through reusable scratch instead.
func TestShardTableOverBudgetSourceStaysUndecoded(t *testing.T) {
	old := MaterializeLimitBytes
	defer func() { MaterializeLimitBytes = old }()

	src := shardSrcTable(t, 200)
	MaterializeLimitBytes = 1 // the source no longer fits
	if src.Cacheable() {
		t.Fatal("source should be over budget")
	}
	sharded, err := ShardTable(src, 4, ShardRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	total := 0
	for i := 0; i < sharded.NumShards(); i++ {
		sh := sharded.Shard(i)
		if sh.CachedRows() != nil {
			t.Fatalf("shard %d primed a cache for an over-budget source", i)
		}
		if sh.Cacheable() {
			t.Fatalf("shard %d reports cacheable", i)
		}
		if _, err := sh.Materialize(); !errors.Is(err, ErrUncacheable) {
			t.Fatalf("shard %d Materialize: %v, want ErrUncacheable", i, err)
		}
		// The reuse-scratch scan path still serves every row.
		rows := 0
		if err := sh.ScanReuse(func(Tuple) error { rows++; return nil }); err != nil {
			t.Fatal(err)
		}
		total += rows
	}
	if total != 200 {
		t.Fatalf("reuse scans covered %d rows, want 200", total)
	}
}
