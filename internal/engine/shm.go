package engine

import (
	"fmt"
	"sync"
)

// SharedMemory mimics the RDBMS shared-memory facility the paper relies on
// ("Shared Memory and LWLocks in PostgreSQL"): named float64 regions that a
// UDA allocates once and that all workers attach to. Within our single
// process this is a registry of slices, but going through it keeps the
// Bismarck trainers written against the same allocate/attach/free API a
// real extension would use.
type SharedMemory struct {
	mu      sync.Mutex
	regions map[string][]float64
}

// NewSharedMemory returns an empty shared-memory manager.
func NewSharedMemory() *SharedMemory {
	return &SharedMemory{regions: make(map[string][]float64)}
}

// Allocate creates a zeroed region of `size` float64s under name. It fails
// if the name is taken.
func (m *SharedMemory) Allocate(name string, size int) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regions[name]; ok {
		return nil, fmt.Errorf("engine: shared region %q already allocated", name)
	}
	r := make([]float64, size)
	m.regions[name] = r
	return r, nil
}

// Attach returns an existing region.
func (m *SharedMemory) Attach(name string) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	if !ok {
		return nil, fmt.Errorf("engine: no shared region %q", name)
	}
	return r, nil
}

// Free releases a region.
func (m *SharedMemory) Free(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regions[name]; !ok {
		return fmt.Errorf("engine: no shared region %q", name)
	}
	delete(m.regions, name)
	return nil
}

// Names returns how many regions are allocated (for tests/diagnostics).
func (m *SharedMemory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regions)
}
