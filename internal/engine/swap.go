package engine

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrInjectedCrash is the sentinel a CatalogHooks hook returns to simulate
// a SIGKILL at that point of the swap protocol: Swap aborts immediately,
// running none of its remaining steps and no cleanup, leaving the on-disk
// state exactly as a dying process would. Callers that normally clean up
// after a failed save must skip cleanup for this error (the "process" is
// dead; recovery at the next open is what gets tested).
var ErrInjectedCrash = errors.New("engine: injected crash (fault-injection hook)")

// CatalogHooks are fault-injection points inside Catalog.Swap, one per
// distinct crash window of the protocol. Each may return ErrInjectedCrash
// to freeze the protocol at that instant. Production code leaves them nil.
type CatalogHooks struct {
	// BeforeShadowSync runs after the shadow generation is filled, before
	// its heaps are fsynced. A crash here loses only the shadow.
	BeforeShadowSync func(finals []string) error
	// AfterShadowSync runs after the shadow heaps are durable, before the
	// catalog.json commit rename. A crash here still loses only the shadow.
	AfterShadowSync func(finals []string) error
	// AfterCommit runs after the catalog.json rename — the commit point —
	// before any heap file is renamed. A crash here must recover to the
	// complete NEW generation (roll-forward).
	AfterCommit func(finals []string) error
	// AfterHeapRename runs after each individual shadow→final heap rename,
	// i.e. inside the window where a model's coefficient heap is renamed
	// but its __meta heap is not yet.
	AfterHeapRename func(final string) error
	// BeforeMarkerClear runs after all heap renames, before the checkpoint
	// that clears the generation markers.
	BeforeMarkerClear func(finals []string) error
}

func runHook(h func([]string) error, finals []string) error {
	if h == nil {
		return nil
	}
	return h(finals)
}

// Swap atomically publishes new table generations: each shadowNames[i]
// (a complete, filled table registered under a reserved *__shadow name)
// replaces finalNames[i], and every dropNames entry that exists is removed,
// all at one commit point. dropNames lets a caller retire a side table the
// new generation does not carry (PREDICT INTO over an old model name drops
// the model's __meta) without a separate non-atomic step.
//
// On file catalogs the protocol is:
//
//	flush + fsync shadow heaps              (new generation is durable)
//	write catalog.json listing the FINAL names with PendingFrom markers
//	    pointing at the shadow heaps        ← COMMIT (one atomic rename)
//	retarget the in-memory catalog entries
//	rename <shadow>.heap → <final>.heap, remove dropped heaps
//	write catalog.json again without markers
//
// A crash before the commit rename leaves the previous generation fully
// intact (the shadow heaps are swept at the next open); a crash anywhere
// after it recovers to the complete new generation (OpenFileCatalog rolls
// the heap renames forward off the markers). There is no window in which a
// reopened catalog sees an empty table or half of a generation.
//
// Callers replacing shared tables must hold the final names' exclusive
// locks across the call — but only across the call: the expensive fill
// happened on the shadow before Swap, which is the point of the protocol.
func (c *Catalog) Swap(finalNames, shadowNames, dropNames []string) error {
	if len(finalNames) != len(shadowNames) {
		return fmt.Errorf("engine: Swap: %d final names vs %d shadow names",
			len(finalNames), len(shadowNames))
	}
	shadows := make([]*Table, len(shadowNames))
	c.mu.Lock()
	for i := range finalNames {
		if finalNames[i] == shadowNames[i] {
			c.mu.Unlock()
			return fmt.Errorf("engine: Swap: %q swaps with itself", finalNames[i])
		}
		sh, ok := c.tables[shadowNames[i]]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("engine: Swap: no shadow table %q", shadowNames[i])
		}
		shadows[i] = sh
		// The backstop for the statement layer's best-effort pre-check: a
		// final name that would collide case-insensitively with a different
		// existing heap file must fail here, before the commit, never by
		// renaming two logical tables onto one file.
		if _, exists := c.tables[finalNames[i]]; !exists && c.dir != "" {
			for existing := range c.tables {
				if existing != finalNames[i] && strings.EqualFold(existing, finalNames[i]) {
					c.mu.Unlock()
					return fmt.Errorf("engine: Swap: %q collides case-insensitively with existing %q",
						finalNames[i], existing)
				}
			}
		}
	}
	c.mu.Unlock()

	// Durability point for the new generation: after this, the shadow heaps
	// survive a crash even though nothing references them yet.
	if err := runHook(c.Hooks.BeforeShadowSync, finalNames); err != nil {
		return err
	}
	for _, sh := range shadows {
		if err := sh.Sync(); err != nil {
			return err
		}
	}
	if err := runHook(c.Hooks.AfterShadowSync, finalNames); err != nil {
		return err
	}

	if c.dir != "" {
		// Hold the checkpoint lock across commit → marker clear so no
		// concurrent SaveMeta can overwrite the marker snapshot with a view
		// of the pre-swap in-memory state.
		c.saveMu.Lock()
		defer c.saveMu.Unlock()
		c.mu.Lock()
		// Record the owed renames BEFORE the commit lands: from here until
		// each rename succeeds, every checkpoint (ours or a later
		// SaveMeta's, should this call die mid-protocol in a process that
		// survives it) re-emits the generation marker, so a reopen always
		// knows the roll-forward is pending.
		for i := range finalNames {
			c.pending[finalNames[i]] = shadowNames[i]
		}
		meta := c.swapMetaLocked(finalNames, shadowNames, dropNames)
		c.mu.Unlock()
		if err := c.writeMeta(meta); err != nil {
			// Commit never landed: nothing is owed.
			c.mu.Lock()
			for _, f := range finalNames {
				delete(c.pending, f)
			}
			c.mu.Unlock()
			return err
		}
		// COMMITTED. Everything below is roll-forward; errors are reported
		// but the new generation is already the one a reopen would load.
		if err := runHook(c.Hooks.AfterCommit, finalNames); err != nil {
			return err
		}
	}

	c.mu.Lock()
	var closeErr error
	for i := range finalNames {
		if old, ok := c.tables[finalNames[i]]; ok {
			if err := old.Close(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
		delete(c.tables, shadowNames[i])
		shadows[i].Name = finalNames[i]
		c.tables[finalNames[i]] = shadows[i]
	}
	for _, dn := range dropNames {
		if t, ok := c.tables[dn]; ok {
			delete(c.tables, dn)
			if err := t.Close(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
	}
	// Generation bumps come strictly after the retarget, while mu is still
	// held: a lock-free snapshot holder that observes the new generation
	// number must find the new table behind the name, never the old one —
	// the bump is the swap's linearization point for generation readers.
	// (Holders that race ahead of the bump briefly serve the previous
	// generation, which is exactly the documented reader semantics.)
	for _, f := range finalNames {
		c.bumpGen(f)
	}
	for _, dn := range dropNames {
		c.bumpGen(dn)
	}
	c.mu.Unlock()

	if c.dir == "" {
		return closeErr
	}
	for i := range finalNames {
		if err := os.Rename(c.heapPath(shadowNames[i]), c.heapPath(finalNames[i])); err != nil {
			return errors.Join(closeErr, err)
		}
		c.mu.Lock()
		delete(c.pending, finalNames[i]) // this rename is no longer owed
		c.mu.Unlock()
		if c.Hooks.AfterHeapRename != nil {
			if err := c.Hooks.AfterHeapRename(finalNames[i]); err != nil {
				return err
			}
		}
	}
	for _, dn := range dropNames {
		if err := os.Remove(c.heapPath(dn)); err != nil && !os.IsNotExist(err) && closeErr == nil {
			closeErr = err
		}
	}
	if err := runHook(c.Hooks.BeforeMarkerClear, finalNames); err != nil {
		return err
	}
	c.mu.Lock()
	meta := c.snapshotMetaLocked()
	c.mu.Unlock()
	if err := c.writeMeta(meta); err != nil {
		return errors.Join(closeErr, err)
	}
	return closeErr
}

// swapMetaLocked builds the commit snapshot: every current table except
// the shadows being published, in-flight shadows of other sessions, and
// the dropped names — plus one entry per final name carrying the new
// generation's schema and its PendingFrom marker. Uninvolved tables keep
// whatever marker c.pending still owes them from an earlier interrupted
// swap.
func (c *Catalog) swapMetaLocked(finalNames, shadowNames, dropNames []string) catalogMeta {
	finalSet := map[string]bool{}
	for _, n := range finalNames {
		finalSet[n] = true
	}
	dropSet := map[string]bool{}
	for _, n := range dropNames {
		dropSet[n] = true
	}
	var meta catalogMeta
	for name, t := range c.tables {
		if IsShadowName(name) || dropSet[name] || finalSet[name] {
			continue
		}
		tm := tableMeta{Name: name, PendingFrom: c.pending[name]}
		for _, col := range t.Schema {
			tm.Columns = append(tm.Columns, columnMeta{Name: col.Name, Type: uint8(col.Type)})
		}
		meta.Tables = append(meta.Tables, tm)
	}
	for i, final := range finalNames {
		sh := c.tables[shadowNames[i]]
		tm := tableMeta{Name: final, PendingFrom: shadowNames[i]}
		for _, col := range sh.Schema {
			tm.Columns = append(tm.Columns, columnMeta{Name: col.Name, Type: uint8(col.Type)})
		}
		meta.Tables = append(meta.Tables, tm)
	}
	return meta
}

// DiscardShadows drops every reserved shadow table still registered — the
// daemon's shutdown calls it after draining jobs so an abandoned fill
// window neither reaches the final catalog save nor leaves an orphan heap
// for the next open to sweep.
func (c *Catalog) DiscardShadows() error {
	c.mu.Lock()
	var names []string
	for n := range c.tables {
		if IsShadowName(n) {
			names = append(names, n)
		}
	}
	c.mu.Unlock()
	var first error
	for _, n := range names {
		if err := c.Drop(n); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abandon releases every table's file handle WITHOUT flushing tail pages —
// the crash-simulation teardown: fault-injection tests "kill" a catalog
// with it before reopening the directory, so nothing a real SIGKILL would
// have lost gets written by the test's cleanup.
func (c *Catalog) Abandon() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.tables {
		_ = t.heap.Abandon()
	}
	c.tables = make(map[string]*Table)
}
