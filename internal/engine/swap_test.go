package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The swap tests model the statement layer's persistence shape: a "model"
// is a coefficient table m plus a metadata side table m__meta that must
// only ever move between generations as a pair.
var (
	coeffSchema = Schema{{Name: "idx", Type: TInt64}, {Name: "value", Type: TFloat64}}
	metaSchema  = Schema{{Name: "key", Type: TString}, {Name: "value", Type: TString}}
)

// fillGen writes generation gen's content into a coefficient/meta pair.
func fillGen(t *testing.T, coeff, meta *Table, gen int) {
	t.Helper()
	for i := 0; i < 3; i++ {
		coeff.MustInsert(Tuple{I64(int64(i)), F64(float64(gen))})
	}
	meta.MustInsert(Tuple{Str("gen"), Str(strconv.Itoa(gen))})
	if err := coeff.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := meta.Flush(); err != nil {
		t.Fatal(err)
	}
}

// seedGen1 builds a committed generation-1 model in dir and returns an
// open catalog positioned to attempt the generation-2 swap.
func seedGen1(t *testing.T, dir string) *Catalog {
	t.Helper()
	cat := NewFileCatalog(dir, 0)
	coeff, err := cat.Create("m", coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := cat.Create("m"+MetaSuffix, metaSchema)
	if err != nil {
		t.Fatal(err)
	}
	fillGen(t, coeff, meta, 1)
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// reopenModelGen reopens dir and reports which complete generation the
// model recovered to: 0 = cleanly absent. It fails the test on any torn
// state — half a model pair registered, an empty resurrected table, or
// coefficients and metadata from different generations.
func reopenModelGen(t *testing.T, dir string) int {
	t.Helper()
	cat, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cat.Close()
	coeff, errC := cat.Get("m")
	meta, errM := cat.Get("m" + MetaSuffix)
	if (errC == nil) != (errM == nil) {
		t.Fatalf("half a model pair registered: coeff err=%v, meta err=%v (recovery: %+v)",
			errC, errM, cat.Recovery)
	}
	if errC != nil {
		return 0
	}
	if coeff.NumRows() == 0 || meta.NumRows() == 0 {
		t.Fatalf("empty model resurrected: %d coeff rows, %d meta rows",
			coeff.NumRows(), meta.NumRows())
	}
	coeffGen := -1
	if err := coeff.Scan(func(tp Tuple) error {
		g := int(tp[1].Float)
		if coeffGen != -1 && coeffGen != g {
			t.Fatalf("mixed generations inside coefficient table: %d and %d", coeffGen, g)
		}
		coeffGen = g
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	metaGen := -1
	if err := meta.Scan(func(tp Tuple) error {
		if tp[0].Str == "gen" {
			metaGen, _ = strconv.Atoi(tp[1].Str)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if coeffGen != metaGen {
		t.Fatalf("torn model: coefficients are generation %d, metadata generation %d", coeffGen, metaGen)
	}
	return coeffGen
}

// crash returns a hook that simulates a SIGKILL at its call site.
func crash(fired *bool) func([]string) error {
	return func([]string) error {
		*fired = true
		return ErrInjectedCrash
	}
}

// TestSwapCrashMatrix is the acceptance-criteria harness: a simulated kill
// at every hook point inside the swap window must reopen to either the
// intact previous generation or the complete new one — never empty, never
// a coefficients/metadata mix — with orphan shadow heaps swept.
func TestSwapCrashMatrix(t *testing.T) {
	cases := []struct {
		name    string
		install func(h *CatalogHooks, fired *bool)
		wantGen int
	}{
		{"before-shadow-sync", func(h *CatalogHooks, fired *bool) {
			h.BeforeShadowSync = crash(fired)
		}, 1},
		{"after-shadow-sync", func(h *CatalogHooks, fired *bool) {
			h.AfterShadowSync = crash(fired)
		}, 1},
		{"after-commit-rename", func(h *CatalogHooks, fired *bool) {
			h.AfterCommit = crash(fired)
		}, 2},
		{"between-heap-renames", func(h *CatalogHooks, fired *bool) {
			h.AfterHeapRename = func(final string) error {
				*fired = true
				return ErrInjectedCrash // dies after the FIRST rename: m.heap new, m__meta.heap old file still shadow-named
			}
		}, 2},
		{"before-marker-clear", func(h *CatalogHooks, fired *bool) {
			h.BeforeMarkerClear = crash(fired)
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := testCatalogDir(t)
			cat := seedGen1(t, dir)
			shCoeff, err := cat.Create("m"+ShadowSuffix, coeffSchema)
			if err != nil {
				t.Fatal(err)
			}
			shMeta, err := cat.Create("m"+MetaSuffix+ShadowSuffix, metaSchema)
			if err != nil {
				t.Fatal(err)
			}
			fillGen(t, shCoeff, shMeta, 2)

			var fired bool
			tc.install(&cat.Hooks, &fired)
			err = cat.Swap(
				[]string{"m", "m" + MetaSuffix},
				[]string{"m" + ShadowSuffix, "m" + MetaSuffix + ShadowSuffix},
				nil)
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("Swap returned %v, want injected crash", err)
			}
			if !fired {
				t.Fatal("hook never fired")
			}
			cat.Abandon() // the process is "dead": close fds without flushing anything

			if got := reopenModelGen(t, dir); got != tc.wantGen {
				t.Fatalf("recovered to generation %d, want %d", got, tc.wantGen)
			}
			// Whatever generation won, no shadow heap may survive recovery.
			if leaks := findShadowLeaks(dir); len(leaks) > 0 {
				t.Fatalf("recovery left shadow heaps: %v", leaks)
			}
		})
	}
}

// TestSwapCrashMidFill: a kill while the shadow pair is still being filled
// (before Swap is ever called) must be a complete no-op for the previous
// generation, with the abandoned shadows swept at the next open.
func TestSwapCrashMidFill(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	shCoeff, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	// Half-filled, never flushed — and a checkpoint races the fill, which
	// must not leak the shadow into catalog.json.
	shCoeff.MustInsert(Tuple{I64(0), F64(2)})
	if err := cat.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	cat.Abandon()

	if got := reopenModelGen(t, dir); got != 1 {
		t.Fatalf("recovered to generation %d, want intact generation 1", got)
	}
	if leaks := findShadowLeaks(dir); len(leaks) > 0 {
		t.Fatalf("abandoned shadow not swept: %v", leaks)
	}
}

// TestSwapFirstGeneration: publishing a model that never existed before
// works through the same protocol (no old tables to retire).
func TestSwapFirstGeneration(t *testing.T) {
	dir := testCatalogDir(t)
	cat := NewFileCatalog(dir, 0)
	shCoeff, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	shMeta, err := cat.Create("m"+MetaSuffix+ShadowSuffix, metaSchema)
	if err != nil {
		t.Fatal(err)
	}
	fillGen(t, shCoeff, shMeta, 1)
	if err := cat.Swap(
		[]string{"m", "m" + MetaSuffix},
		[]string{"m" + ShadowSuffix, "m" + MetaSuffix + ShadowSuffix},
		nil); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenModelGen(t, dir); got != 1 {
		t.Fatalf("generation %d, want 1", got)
	}
}

// TestSwapDropsRetiredNames: the dropNames argument retires a table at the
// same commit (PREDICT INTO over an old model name drops the model's
// __meta side table atomically with the overwrite).
func TestSwapDropsRetiredNames(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	sh, err := cat.Create("m"+ShadowSuffix, Schema{{Name: "id", Type: TInt64}, {Name: "score", Type: TFloat64}})
	if err != nil {
		t.Fatal(err)
	}
	sh.MustInsert(Tuple{I64(0), F64(0.5)})
	if err := sh.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Swap([]string{"m"}, []string{"m" + ShadowSuffix}, []string{"m" + MetaSuffix}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Get("m" + MetaSuffix); err == nil {
		t.Fatal("retired __meta still registered")
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get("m" + MetaSuffix); err == nil {
		t.Fatal("retired __meta resurrected on reopen")
	}
	tbl, err := re.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 || len(tbl.Schema) != 2 || tbl.Schema[1].Name != "score" {
		t.Fatalf("swapped table wrong: rows=%d schema=%+v", tbl.NumRows(), tbl.Schema)
	}
}

// TestSwapMemCatalog: the same primitive on an in-memory catalog (the
// single-session test configuration) — pure entry retargeting.
func TestSwapMemCatalog(t *testing.T) {
	cat := NewCatalog()
	old, err := cat.Create("m", coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	old.MustInsert(Tuple{I64(0), F64(1)})
	sh, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	sh.MustInsert(Tuple{I64(0), F64(2)})
	if err := cat.Swap([]string{"m"}, []string{"m" + ShadowSuffix}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := cat.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "m" {
		t.Fatalf("swapped table kept name %q", got.Name)
	}
	var v float64
	got.Scan(func(tp Tuple) error { v = tp[1].Float; return nil })
	if v != 2 {
		t.Fatalf("swapped table serves value %v, want generation 2", v)
	}
	if _, err := cat.Get("m" + ShadowSuffix); err == nil {
		t.Fatal("shadow entry survived the swap")
	}
	for _, n := range cat.Names() {
		if IsShadowName(n) {
			t.Fatalf("shadow name listed: %v", cat.Names())
		}
	}
}

// TestRecoveryClearsStaleMarkers: recovery must persist a marker-free
// catalog.json once it has consumed a generation marker. A latent marker
// would, at a LATER recovery, rename whatever fresh uncommitted shadow
// heap exists at that moment over the committed generation — turning two
// unrelated crashes into a corruption.
func TestRecoveryClearsStaleMarkers(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	shCoeff, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	shMeta, err := cat.Create("m"+MetaSuffix+ShadowSuffix, metaSchema)
	if err != nil {
		t.Fatal(err)
	}
	fillGen(t, shCoeff, shMeta, 2)
	cat.Hooks.BeforeMarkerClear = func([]string) error { return ErrInjectedCrash }
	if err := cat.Swap(
		[]string{"m", "m" + MetaSuffix},
		[]string{"m" + ShadowSuffix, "m" + MetaSuffix + ShadowSuffix},
		nil); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("Swap: %v", err)
	}
	cat.Abandon()

	// Crash #1 recovery: generation 2, and the markers must be gone from
	// the persisted checkpoint.
	if got := reopenModelGen(t, dir); got != 2 {
		t.Fatalf("generation %d after first recovery, want 2", got)
	}
	b, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "pending_from") {
		t.Fatalf("recovery left a latent generation marker:\n%s", b)
	}

	// Crash #2: a retrain dies mid-fill, leaving a garbage shadow heap. A
	// latent marker would rename it over the committed generation; the
	// cleared checkpoint must instead sweep it.
	garbage := bytes.Repeat([]byte{0xFF}, PageSize)
	if err := os.WriteFile(filepath.Join(dir, "m"+ShadowSuffix+".heap"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reopenModelGen(t, dir); got != 2 {
		t.Fatalf("generation %d after second recovery, want the committed 2", got)
	}
}

// TestPendingMarkerSurvivesLaterCheckpoints: a live process that survives
// a post-commit Swap failure still owes the heap renames; checkpoints
// written after the failure must re-emit the generation markers so a
// restart completes the roll-forward instead of sweeping the committed
// shadow heaps as orphans.
func TestPendingMarkerSurvivesLaterCheckpoints(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	shCoeff, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	shMeta, err := cat.Create("m"+MetaSuffix+ShadowSuffix, metaSchema)
	if err != nil {
		t.Fatal(err)
	}
	fillGen(t, shCoeff, shMeta, 2)
	cat.Hooks.AfterCommit = func([]string) error { return ErrInjectedCrash }
	if err := cat.Swap(
		[]string{"m", "m" + MetaSuffix},
		[]string{"m" + ShadowSuffix, "m" + MetaSuffix + ShadowSuffix},
		nil); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("Swap: %v", err)
	}
	// The "process" survives and some other statement checkpoints. Without
	// the pending map this snapshot would erase the markers while the heap
	// files still sit under their shadow names.
	if err := cat.SaveMeta(); err != nil {
		t.Fatal(err)
	}
	cat.Abandon()
	if got := reopenModelGen(t, dir); got != 2 {
		t.Fatalf("generation %d, want committed 2 rolled forward", got)
	}
}

// TestRecoveryQuarantinesUnreferencedHeaps: a heap file no catalog entry
// references (a swap-retired table whose os.Remove never ran, or a table
// killed before its first checkpoint) is moved aside at open so a later
// Create of the name starts empty instead of resurrecting stale rows.
func TestRecoveryQuarantinesUnreferencedHeaps(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "retired.heap")
	if err := os.WriteFile(stale, bytes.Repeat([]byte{0xAB}, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get("retired"); err == nil {
		t.Fatal("unreferenced heap registered as a table")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("unreferenced heap still in place: %v", err)
	}
	if _, err := os.Stat(stale + ".orphaned"); err != nil {
		t.Fatalf("unreferenced heap not quarantined: %v", err)
	}
	// The model itself is untouched.
	if got := reopenModelGen(t, dir); got != 1 {
		t.Fatalf("generation %d, want 1", got)
	}
}

// TestRecoveryNeverResurrectsEmptyModel reproduces DESIGN.md §6's pre-fix
// data-loss shape: catalog.json lists a model whose heap files are gone
// (the old drop-then-recreate path's window between replaceTable's drop
// and the crash). The old OpenFileCatalog recreated both names as EMPTY
// tables — the silent resurrection. The fixed sweep must register neither
// and report why.
func TestRecoveryNeverResurrectsEmptyModel(t *testing.T) {
	dir := testCatalogDir(t)
	cat := seedGen1(t, dir)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"m.heap", "m" + MetaSuffix + ".heap"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	re, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Recovery.Skipped) != 2 {
		t.Fatalf("recovery report: %+v", re.Recovery)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenModelGen(t, dir); got != 0 {
		t.Fatalf("recovered generation %d from deleted heaps, want clean absence", got)
	}
	// Recovery is once, not latent: having dropped the dead entries from
	// catalog.json, a further reopen finds nothing to repair.
	re2, err := OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if !re2.Recovery.Clean() {
		t.Fatalf("second recovery not clean: %+v", re2.Recovery)
	}
}

// TestRecoveryCondemnsPairTogether: one bad half (missing or truncated)
// condemns the model/__meta pair — the reopened catalog must never pair
// surviving coefficients with missing metadata or vice versa. The intact
// half's heap is quarantined, not reopened.
func TestRecoveryCondemnsPairTogether(t *testing.T) {
	t.Run("coefficients-missing", func(t *testing.T) {
		dir := testCatalogDir(t)
		cat := seedGen1(t, dir)
		if err := cat.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, "m.heap")); err != nil {
			t.Fatal(err)
		}
		if got := reopenModelGen(t, dir); got != 0 {
			t.Fatalf("got generation %d, want clean absence", got)
		}
		if _, err := os.Stat(filepath.Join(dir, "m"+MetaSuffix+".heap.orphaned")); err != nil {
			t.Fatalf("intact half not quarantined: %v", err)
		}
	})
	t.Run("metadata-truncated", func(t *testing.T) {
		dir := testCatalogDir(t)
		cat := seedGen1(t, dir)
		if err := cat.Close(); err != nil {
			t.Fatal(err)
		}
		mp := filepath.Join(dir, "m"+MetaSuffix+".heap")
		f, err := os.OpenFile(mp, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("torn")); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if got := reopenModelGen(t, dir); got != 0 {
			t.Fatalf("got generation %d, want clean absence", got)
		}
	})
}

// TestSwapCaseCollisionBackstop: a final name colliding case-insensitively
// with a different existing table fails before the commit — the engine
// backstop behind the statement layer's best-effort pre-check.
func TestSwapCaseCollisionBackstop(t *testing.T) {
	dir := testCatalogDir(t)
	cat := NewFileCatalog(dir, 0)
	defer cat.Close()
	if _, err := cat.Create("forest", coeffSchema); err != nil {
		t.Fatal(err)
	}
	sh, err := cat.Create("Forest"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	sh.MustInsert(Tuple{I64(0), F64(1)})
	err = cat.Swap([]string{"Forest"}, []string{"Forest" + ShadowSuffix}, nil)
	if err == nil {
		t.Fatal("case-colliding swap committed")
	}
	if err := cat.Drop("Forest" + ShadowSuffix); err != nil {
		t.Fatal(err)
	}
}

// TestDiscardShadows: the daemon-shutdown sweep drops registered shadows
// and their heaps.
func TestDiscardShadows(t *testing.T) {
	dir := testCatalogDir(t)
	cat := NewFileCatalog(dir, 0)
	defer cat.Close()
	if _, err := cat.Create("keep", coeffSchema); err != nil {
		t.Fatal(err)
	}
	sh, err := cat.Create("m"+ShadowSuffix, coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	sh.MustInsert(Tuple{I64(0), F64(1)})
	if err := cat.DiscardShadows(); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Get("m" + ShadowSuffix); err == nil {
		t.Fatal("shadow survived DiscardShadows")
	}
	if _, err := cat.Get("keep"); err != nil {
		t.Fatal("DiscardShadows dropped a real table")
	}
	if leaks := findShadowLeaks(dir); len(leaks) > 0 {
		t.Fatalf("shadow heaps survived: %v", leaks)
	}
}

// TestDropForceCloses pins the satellite fix: Drop always removes the
// entry and the heap file, and reports (not swallows) every failure — a
// second Drop of the same name is "no table", never a retry on a zombie
// handle.
func TestDropForceCloses(t *testing.T) {
	dir := testCatalogDir(t)
	cat := NewFileCatalog(dir, 0)
	defer cat.Close()
	tbl, err := cat.Create("d", coeffSchema)
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(Tuple{I64(0), F64(1)})
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Close the heap out from under the catalog so Drop's internal Close
	// fails; the drop must still retire the entry and delete the file.
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("d"); err == nil {
		t.Fatal("Drop swallowed the double-close failure")
	}
	if _, err := cat.Get("d"); err == nil {
		t.Fatal("entry survived a failed Drop — unreachable zombie handle")
	}
	if _, err := os.Stat(filepath.Join(dir, "d.heap")); !os.IsNotExist(err) {
		t.Fatalf("heap file survived a failed Drop: %v", err)
	}
}

// TestCopyToTypeMismatch pins the satellite fix: copying between
// same-arity tables with different column types fails up front with a
// typed *SchemaMismatchError instead of writing records that decode later
// as *CorruptRecordError.
func TestCopyToTypeMismatch(t *testing.T) {
	src := NewMemTable("src", Schema{{Name: "a", Type: TInt64}, {Name: "b", Type: TFloat64}})
	src.MustInsert(Tuple{I64(1), F64(2)})

	dst := NewMemTable("dst", Schema{{Name: "a", Type: TInt64}, {Name: "b", Type: TString}})
	err := src.CopyTo(dst)
	var sme *SchemaMismatchError
	if !errors.As(err, &sme) {
		t.Fatalf("CopyTo returned %v, want *SchemaMismatchError", err)
	}
	if sme.Col != 1 || sme.SrcType != TFloat64 || sme.DstType != TString {
		t.Fatalf("mismatch details wrong: %+v", sme)
	}
	if dst.NumRows() != 0 {
		t.Fatalf("mis-typed rows written: %d", dst.NumRows())
	}

	// Arity mismatches keep failing too, with Col = -1.
	narrow := NewMemTable("narrow", Schema{{Name: "a", Type: TInt64}})
	err = src.CopyTo(narrow)
	if !errors.As(err, &sme) || sme.Col != -1 {
		t.Fatalf("arity mismatch: %v", err)
	}

	// Renamed columns with identical physical types stay legal.
	renamed := NewMemTable("renamed", Schema{{Name: "x", Type: TInt64}, {Name: "y", Type: TFloat64}})
	if err := src.CopyTo(renamed); err != nil {
		t.Fatal(err)
	}
	if renamed.NumRows() != 1 {
		t.Fatalf("rows = %d", renamed.NumRows())
	}
}
