package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Table is a named, typed heap of tuples.
type Table struct {
	Name   string
	Schema Schema
	heap   *Heap
}

// NewMemTable creates an in-memory table.
func NewMemTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema, heap: NewMemHeap()}
}

// newFileTable creates/opens a file-backed table under dir.
func newFileTable(dir, name string, schema Schema, poolPages int) (*Table, error) {
	h, err := OpenFileHeap(filepath.Join(dir, name+".heap"), poolPages)
	if err != nil {
		return nil, err
	}
	return &Table{Name: name, Schema: schema, heap: h}, nil
}

// Insert appends one tuple, validating it against the schema.
func (t *Table) Insert(tp Tuple) error {
	if !tp.Matches(t.Schema) {
		return fmt.Errorf("engine: tuple does not match schema of %s", t.Name)
	}
	return t.heap.Append(tp.Encode())
}

// MustInsert inserts and panics on error; convenient for generators.
func (t *Table) MustInsert(tp Tuple) {
	if err := t.Insert(tp); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.heap.NumRecords() }

// NumPages returns the flushed page count.
func (t *Table) NumPages() int { return t.heap.NumPages() }

// Flush seals the in-memory tail page (required before parallel scans).
func (t *Table) Flush() error { return t.heap.Flush() }

// Scan visits every tuple in storage order.
func (t *Table) Scan(fn func(Tuple) error) error {
	return t.heap.Scan(func(rec []byte) error {
		tp, err := DecodeTuple(rec)
		if err != nil {
			return err
		}
		return fn(tp)
	})
}

// ScanPages visits tuples stored in pages [from, to) — the unit of
// shared-nothing segmentation.
func (t *Table) ScanPages(from, to int, fn func(Tuple) error) error {
	return t.heap.ScanPages(from, to, func(rec []byte) error {
		tp, err := DecodeTuple(rec)
		if err != nil {
			return err
		}
		return fn(tp)
	})
}

// Segments splits the table's pages into n contiguous ranges of roughly
// equal page count for parallel scanning. It flushes the tail page first.
func (t *Table) Segments(n int) ([][2]int, error) {
	if n < 1 {
		n = 1
	}
	if err := t.heap.Flush(); err != nil {
		return nil, err
	}
	np := t.heap.NumPages()
	if np == 0 {
		return [][2]int{{0, 0}}, nil
	}
	if n > np {
		n = np
	}
	segs := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		from := i * np / n
		to := (i + 1) * np / n
		segs = append(segs, [2]int{from, to})
	}
	return segs, nil
}

// Shuffle randomly permutes the table rows on disk the way ORDER BY
// RANDOM() does: every row is decoded, tagged with a random sort key,
// sorted, re-encoded and written back as a full table rewrite. This is
// deliberately NOT a cheap in-place permutation — the cost of this operator
// is exactly the shuffle overhead §3.2 measures (it dominates the gradient
// work for simple tasks).
func (t *Table) Shuffle(rng *rand.Rand) error {
	type keyed struct {
		k  float64
		tp Tuple
	}
	var rows []keyed
	err := t.heap.Scan(func(rec []byte) error {
		tp, err := DecodeTuple(rec)
		if err != nil {
			return err
		}
		rows = append(rows, keyed{k: rng.Float64(), tp: tp})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	out := make([][]byte, len(rows))
	for i := range rows {
		out[i] = rows[i].tp.Encode()
	}
	return t.heap.Rewrite(out)
}

// ClusterBy physically rewrites the table ordered by the given key — the
// engine operation that produces the paper's pathological "clustered"
// layouts (e.g., all positive labels before all negatives).
func (t *Table) ClusterBy(key func(Tuple) float64) error {
	type rec struct {
		k float64
		b []byte
	}
	var recs []rec
	err := t.heap.Scan(func(b []byte) error {
		tp, err := DecodeTuple(b)
		if err != nil {
			return err
		}
		recs = append(recs, rec{k: key(tp), b: append([]byte(nil), b...)})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
	out := make([][]byte, len(recs))
	for i := range recs {
		out[i] = recs[i].b
	}
	return t.heap.Rewrite(out)
}

// CopyTo appends every row of t into dst (schemas must match).
func (t *Table) CopyTo(dst *Table) error {
	if len(t.Schema) != len(dst.Schema) {
		return fmt.Errorf("engine: CopyTo schema arity mismatch")
	}
	return t.heap.Scan(func(rec []byte) error {
		return dst.heap.Append(append([]byte(nil), rec...))
	})
}

// Close releases the table's heap.
func (t *Table) Close() error { return t.heap.Close() }

// Catalog is a registry of tables, optionally file-backed under a directory.
type Catalog struct {
	mu        sync.Mutex
	dir       string // empty = in-memory tables
	poolPages int
	tables    map[string]*Table
}

// NewCatalog returns an in-memory catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// NewFileCatalog returns a catalog whose tables are file-backed under dir.
func NewFileCatalog(dir string, poolPages int) *Catalog {
	return &Catalog{dir: dir, poolPages: poolPages, tables: make(map[string]*Table)}
}

// Create makes a new table, failing if the name exists.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	var t *Table
	var err error
	if c.dir == "" {
		t = NewMemTable(name, schema)
	} else {
		t, err = newFileTable(c.dir, name, schema, c.poolPages)
		if err != nil {
			return nil, err
		}
	}
	c.tables[name] = t
	return t, nil
}

// Get looks a table up by name.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return t, nil
}

// Drop removes and closes a table, deleting its backing heap file — a
// dropped-then-recreated table must come back empty, not reopen its old
// rows from disk.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("engine: no table %q", name)
	}
	delete(c.tables, name)
	err := t.Close()
	if c.dir != "" {
		if rmErr := os.Remove(filepath.Join(c.dir, name+".heap")); rmErr != nil &&
			!os.IsNotExist(rmErr) && err == nil {
			err = rmErr
		}
	}
	return err
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close closes every table.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, t := range c.tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.tables = make(map[string]*Table)
	return first
}
