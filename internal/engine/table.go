package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Storage-level name conventions. The engine owns them because they are
// what the recovery sweep and the swap protocol key on; the statement
// layer aliases them for its own reservations and lock keys.
const (
	// MetaSuffix marks a model's metadata side table ("<model>__meta").
	// A model and its side table commit and recover as one unit.
	MetaSuffix = "__meta"
	// ShadowSuffix marks an in-flight table generation being built for a
	// Catalog.Swap ("<name>__shadow" heaps). Shadow names are reserved:
	// they never appear in Names() or catalog.json checkpoints, and any
	// shadow heap found on disk at OpenFileCatalog is an uncommitted
	// generation and is swept.
	ShadowSuffix = "__shadow"
)

// IsShadowName reports whether a table name is a reserved shadow name.
func IsShadowName(name string) bool { return strings.HasSuffix(name, ShadowSuffix) }

// Table is a named, typed heap of tuples, with a versioned decoded-row
// cache over it. The version counter is bumped by every physical mutation
// (Insert, Shuffle, ClusterBy, CopyTo-into) so cached materializations can
// tell when they are stale.
type Table struct {
	Name   string
	Schema Schema
	heap   *Heap

	version atomic.Uint64
	matMu   sync.Mutex
	mat     *Materialized
	// uncacheable pins the table out of the decoded-row cache regardless
	// of its own size. ShardTable sets it on the shards of an over-budget
	// source: each shard fits the per-table budget, but materializing all
	// of them would rebuild the full decoded copy the source itself was
	// refused.
	uncacheable bool
}

// NewMemTable creates an in-memory table.
func NewMemTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema, heap: NewMemHeap()}
}

// newFileTable creates/opens a file-backed table under dir, reporting what
// the open had to repair (legacy-format migration, torn-tail truncation).
func newFileTable(dir, name string, schema Schema, poolPages int, io *IOHooks, repairTail bool) (*Table, heapOpenInfo, error) {
	h, info, err := openFileHeap(filepath.Join(dir, name+".heap"), poolPages, io, repairTail)
	if err != nil {
		return nil, info, err
	}
	h.table = name
	return &Table{Name: name, Schema: schema, heap: h}, info, nil
}

// Insert appends one tuple, validating it against the schema.
func (t *Table) Insert(tp Tuple) error {
	if !tp.Matches(t.Schema) {
		return fmt.Errorf("engine: tuple does not match schema of %s", t.Name)
	}
	if err := t.heap.Append(tp.Encode()); err != nil {
		return err
	}
	t.version.Add(1)
	return nil
}

// Version returns the table's mutation counter. Any physical change to the
// stored rows bumps it; equal versions guarantee identical contents.
func (t *Table) Version() uint64 { return t.version.Load() }

// MustInsert inserts and panics on error; convenient for generators.
func (t *Table) MustInsert(tp Tuple) {
	if err := t.Insert(tp); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.heap.NumRecords() }

// NumPages returns the flushed page count.
func (t *Table) NumPages() int { return t.heap.NumPages() }

// Flush seals the in-memory tail page (required before parallel scans).
func (t *Table) Flush() error { return t.heap.Flush() }

// Sync flushes and fsyncs the backing heap — the durability step of the
// shadow-swap protocol (no-op persistence-wise for in-memory tables).
func (t *Table) Sync() error { return t.heap.Sync() }

// Scan visits every tuple in storage order. Each tuple is freshly
// allocated, so callers may retain them; bulk read paths that do not retain
// rows should prefer ScanReuse or the materialized cache.
func (t *Table) Scan(fn func(Tuple) error) error {
	return t.ScanPages(0, t.heap.NumPages(), fn)
}

// ScanPages visits tuples stored in pages [from, to) — the unit of
// shared-nothing segmentation. Records that fail to decode or do not match
// the table schema (a truncated heap record would otherwise surface as an
// index panic deep inside task code) return a *CorruptRecordError.
func (t *Table) ScanPages(from, to int, fn func(Tuple) error) error {
	return t.heap.ScanPages(from, to, func(rec []byte) error {
		tp, err := DecodeTuple(rec)
		if err != nil {
			return corrupt(t.Name, "%v", err)
		}
		if !tp.Matches(t.Schema) {
			return corrupt(t.Name, "decoded %d columns, schema wants %d (or type mismatch)",
				len(tp), len(t.Schema))
		}
		return fn(tp)
	})
}

// ScanSegment makes Table satisfy the Relation scan contract; segments are
// page ranges.
func (t *Table) ScanSegment(from, to int, fn func(Tuple) error) error {
	return t.ScanPages(from, to, fn)
}

// ScanReuse visits every tuple in storage order through one reusable
// decode scratch: the tuple passed to fn (and every slice-typed cell in it)
// is overwritten by the next row and must not be retained. Steady state
// allocates nothing beyond the scratch's high-water mark.
func (t *Table) ScanReuse(fn func(Tuple) error) error {
	return t.ScanPagesReuse(0, t.heap.NumPages(), fn)
}

// ScanPagesReuse is ScanReuse over the page range [from, to). Each call
// owns its own scratch, so concurrent segment scans are safe.
func (t *Table) ScanPagesReuse(from, to int, fn func(Tuple) error) error {
	sc := NewTupleScratch(t.Schema)
	return t.heap.ScanPages(from, to, func(rec []byte) error {
		tp, err := DecodeTupleInto(rec, sc)
		if err != nil {
			var ce *CorruptRecordError
			if errors.As(err, &ce) && ce.Table == "" {
				ce.Table = t.Name
			}
			return err
		}
		return fn(tp)
	})
}

// reuseRelation adapts a table to the Relation contract through the
// reusable-scratch decode path. Tuples are only valid during the callback.
type reuseRelation struct{ t *Table }

func (r reuseRelation) Scan(fn func(Tuple) error) error { return r.t.ScanReuse(fn) }
func (r reuseRelation) ScanSegment(from, to int, fn func(Tuple) error) error {
	return r.t.ScanPagesReuse(from, to, fn)
}
func (r reuseRelation) Segments(n int) ([][2]int, error) { return r.t.Segments(n) }

// Reuse returns a Relation over the table that decodes through reusable
// scratch buffers instead of allocating per row. Safe for consumers that do
// not retain tuples past the callback (every IGD transition function).
func (t *Table) Reuse() Relation { return reuseRelation{t} }

// ScanReuseDegraded is ScanReuse under the degraded-read contract: pages
// that are quarantined (or found corrupt during the scan) are skipped and
// counted instead of failing the scan, and records that no longer decode
// under the schema are skipped and counted as rows. IGD tolerates missing
// rows; the stats keep the loss honest in the statement result.
func (t *Table) ScanReuseDegraded(fn func(Tuple) error) (DegradedStats, error) {
	sc := NewTupleScratch(t.Schema)
	badRecs := 0
	stats, err := t.heap.ScanDegraded(func(rec []byte) error {
		tp, derr := DecodeTupleInto(rec, sc)
		if derr != nil {
			badRecs++
			return nil
		}
		if !tp.Matches(t.Schema) {
			badRecs++
			return nil
		}
		return fn(tp)
	})
	stats.SkippedRows += badRecs
	return stats, err
}

// Scrub re-verifies every flushed page against the backing store and
// quarantines failures — the engine behind CHECK TABLE.
func (t *Table) Scrub() ScrubReport {
	rep := t.heap.Scrub()
	rep.Table = t.Name
	return rep
}

// QuarantinedPages returns the table's corruption map (nil when healthy).
func (t *Table) QuarantinedPages() map[int]string { return t.heap.QuarantinedPages() }

// Degraded reports whether the table carries quarantined pages: strict
// scans over it fail with a *CorruptPageError until it is rewritten.
func (t *Table) Degraded() bool { return len(t.heap.QuarantinedPages()) > 0 }

// MaterializeLimitBytes caps how much heap a table may occupy and still be
// eligible for the decoded-row cache; larger tables fall back to the
// reusable-scratch scan path. The limit is deliberately generous — the
// cache is the whole point of the epoch pipeline — but keeps a pathological
// table from doubling its footprint in decoded form.
var MaterializeLimitBytes = 1 << 30

// ErrUncacheable reports that a table exceeds MaterializeLimitBytes;
// callers fall back to ScanReuse.
var ErrUncacheable = errors.New("engine: table exceeds the materialization limit")

// Cacheable reports whether the table is eligible for the decoded-row
// cache: within the materialization budget and not pinned out of it. The
// one estimate every priming gate shares — Materialize, the spec layer's
// view projection, and ShardTable all decide through it, so "primed" and
// "materializable" cannot drift apart.
func (t *Table) Cacheable() bool {
	if t.uncacheable {
		return false
	}
	return int64(t.heap.NumPages()+1)*PageSize <= int64(MaterializeLimitBytes)
}

// Materialize returns the table's decoded-row cache, building (or
// rebuilding) it when the table version has moved since the last build.
// The returned cache is immutable and shared: callers that reorder rows
// take a View. Only this call touches page bytes; steady-state epochs scan
// the slabs.
func (t *Table) Materialize() (*Materialized, error) {
	t.matMu.Lock()
	defer t.matMu.Unlock()
	v := t.Version()
	if t.mat != nil && t.mat.version == v {
		return t.mat, nil
	}
	if !t.Cacheable() {
		return nil, ErrUncacheable
	}
	b := NewMatBuilder(t.Schema)
	if err := t.ScanReuse(func(tp Tuple) error { return b.Add(tp) }); err != nil {
		return nil, err
	}
	t.mat = b.Build(v)
	return t.mat, nil
}

// CachedRows returns the existing cache when it is still fresh, or nil —
// it never triggers a build. Loss evaluations use it so a physically
// reordered table (whose cache goes stale every epoch) does not pay a
// rebuild per loss pass.
func (t *Table) CachedRows() *Materialized {
	t.matMu.Lock()
	defer t.matMu.Unlock()
	if t.mat != nil && t.mat.version == t.Version() {
		return t.mat
	}
	return nil
}

// PrimeCache installs rows decoded elsewhere as the table's cache — the
// spec layer's view projection builds the slabs while inserting, saving the
// initial decode pass. The builder must hold exactly the table's rows, in
// storage order, under the table's schema.
func (t *Table) PrimeCache(b *MatBuilder) error {
	t.matMu.Lock()
	defer t.matMu.Unlock()
	if b.NumRows() != t.NumRows() {
		return fmt.Errorf("engine: PrimeCache: builder has %d rows, table %s has %d",
			b.NumRows(), t.Name, t.NumRows())
	}
	if len(b.schema) != len(t.Schema) {
		return fmt.Errorf("engine: PrimeCache: schema arity mismatch for %s", t.Name)
	}
	for i, c := range b.schema {
		if c.Type != t.Schema[i].Type {
			return fmt.Errorf("engine: PrimeCache: column %d type mismatch for %s", i, t.Name)
		}
	}
	t.mat = b.Build(t.Version())
	return nil
}

// ScanStable visits every tuple with rows the caller may retain past the
// callback (the rule the reservoir samplers need): the fresh decoded-row
// cache when present — its rows are stable and pinned by the table anyway —
// otherwise freshly allocated tuples via Scan. It never builds a cache, so
// retaining a small sample cannot pin a whole decoded table.
func (t *Table) ScanStable(fn func(Tuple) error) error {
	if mat := t.CachedRows(); mat != nil {
		return mat.Scan(fn)
	}
	return t.Scan(fn)
}

// Rows returns the fastest safe bulk-read path that never builds or pins a
// cache: the materialized cache when one is already fresh (e.g. a primed
// training view), otherwise the reusable-scratch relation — so a one-shot
// scan of a large uncached table does not double its memory footprint.
// Tuples seen through the reuse fallback are only valid during the
// callback, so callers must not retain them (retaining consumers use
// Materialize or Scan explicitly).
func (t *Table) Rows() Relation {
	if mat := t.CachedRows(); mat != nil {
		return mat
	}
	return reuseRelation{t}
}

// Segments splits the table's pages into n contiguous ranges of roughly
// equal page count for parallel scanning. It flushes the tail page first.
func (t *Table) Segments(n int) ([][2]int, error) {
	if n < 1 {
		n = 1
	}
	if err := t.heap.Flush(); err != nil {
		return nil, err
	}
	np := t.heap.NumPages()
	if np == 0 {
		return [][2]int{{0, 0}}, nil
	}
	if n > np {
		n = np
	}
	segs := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		from := i * np / n
		to := (i + 1) * np / n
		segs = append(segs, [2]int{from, to})
	}
	return segs, nil
}

// Shuffle randomly permutes the table rows on disk the way ORDER BY
// RANDOM() does: every row is decoded, tagged with a random sort key,
// sorted, re-encoded and written back as a full table rewrite. This is
// deliberately NOT a cheap in-place permutation — the cost of this operator
// is exactly the shuffle overhead §3.2 measures (it dominates the gradient
// work for simple tasks).
func (t *Table) Shuffle(rng *rand.Rand) error {
	type keyed struct {
		k  float64
		tp Tuple
	}
	var rows []keyed
	err := t.heap.Scan(func(rec []byte) error {
		tp, err := DecodeTuple(rec)
		if err != nil {
			return err
		}
		rows = append(rows, keyed{k: rng.Float64(), tp: tp})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	out := make([][]byte, len(rows))
	for i := range rows {
		out[i] = rows[i].tp.Encode()
	}
	if err := t.heap.Rewrite(out); err != nil {
		return err
	}
	t.version.Add(1)
	return nil
}

// ClusterBy physically rewrites the table ordered by the given key — the
// engine operation that produces the paper's pathological "clustered"
// layouts (e.g., all positive labels before all negatives).
func (t *Table) ClusterBy(key func(Tuple) float64) error {
	type rec struct {
		k float64
		b []byte
	}
	var recs []rec
	err := t.heap.Scan(func(b []byte) error {
		tp, err := DecodeTuple(b)
		if err != nil {
			return err
		}
		recs = append(recs, rec{k: key(tp), b: append([]byte(nil), b...)})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
	out := make([][]byte, len(recs))
	for i := range recs {
		out[i] = recs[i].b
	}
	if err := t.heap.Rewrite(out); err != nil {
		return err
	}
	t.version.Add(1)
	return nil
}

// SchemaMismatchError reports an attempted raw-record copy between tables
// whose physical schemas differ. Col is the first mismatched column index,
// or -1 when the arities differ.
type SchemaMismatchError struct {
	Src, Dst           string
	Col                int
	SrcArity, DstArity int
	SrcType, DstType   Type
}

// Error implements error.
func (e *SchemaMismatchError) Error() string {
	if e.Col < 0 {
		return fmt.Sprintf("engine: schema mismatch copying %s into %s: %d columns vs %d",
			e.Src, e.Dst, e.SrcArity, e.DstArity)
	}
	return fmt.Sprintf("engine: schema mismatch copying %s into %s: column %d is type %d vs %d",
		e.Src, e.Dst, e.Col, e.SrcType, e.DstType)
}

// CopyTo appends every row of t into dst. It copies raw encoded records, so
// the schemas must match in arity AND column type — same-arity tables with
// different types would otherwise accept mis-typed records that only
// surface later as a *CorruptRecordError on decode. Column names may
// differ; only the physical layout matters.
func (t *Table) CopyTo(dst *Table) error {
	if len(t.Schema) != len(dst.Schema) {
		return &SchemaMismatchError{Src: t.Name, Dst: dst.Name, Col: -1,
			SrcArity: len(t.Schema), DstArity: len(dst.Schema)}
	}
	for i := range t.Schema {
		if t.Schema[i].Type != dst.Schema[i].Type {
			return &SchemaMismatchError{Src: t.Name, Dst: dst.Name, Col: i,
				SrcArity: len(t.Schema), DstArity: len(dst.Schema),
				SrcType: t.Schema[i].Type, DstType: dst.Schema[i].Type}
		}
	}
	err := t.heap.Scan(func(rec []byte) error {
		return dst.heap.Append(append([]byte(nil), rec...))
	})
	dst.version.Add(1)
	return err
}

// Close releases the table's heap.
func (t *Table) Close() error { return t.heap.Close() }

// Catalog is a registry of tables, optionally file-backed under a directory.
type Catalog struct {
	mu        sync.Mutex
	saveMu    sync.Mutex // serializes Save/SaveMeta/Swap disk writes, outside mu
	dir       string     // empty = in-memory tables
	poolPages int
	tables    map[string]*Table
	// pending (guarded by mu) maps a final table name to the shadow heap
	// name its committed-but-unrenamed swap data still lives in. Entries
	// are added at a swap's commit point and removed as each heap rename
	// lands, so every checkpoint between the two re-emits the generation
	// marker — a live process surviving a post-commit rename failure can
	// never write a catalog.json that forgets the roll-forward is owed.
	pending map[string]string
	// gens holds the per-name generation counters (name → *atomic.Uint64)
	// behind Generation/GenHandle — see generation.go. A sync.Map because
	// the whole point is that readers poll it without touching mu.
	gens sync.Map

	// Hooks instruments the swap protocol's crash windows for
	// fault-injection tests. Zero value: no instrumentation.
	Hooks CatalogHooks

	// IO instruments the file stores under every table with I/O-level
	// fault injection (OpenFileCatalogIO wires it in before any heap is
	// opened; tests may also fill it in after NewFileCatalog, before the
	// tables under test are created). Zero value: no instrumentation.
	IO IOHooks

	// Recovery records what OpenFileCatalog's recovery sweep found and did.
	Recovery RecoveryReport
}

// NewCatalog returns an in-memory catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), pending: make(map[string]string)}
}

// NewFileCatalog returns a catalog whose tables are file-backed under dir.
func NewFileCatalog(dir string, poolPages int) *Catalog {
	return &Catalog{dir: dir, poolPages: poolPages,
		tables: make(map[string]*Table), pending: make(map[string]string)}
}

// ValidTableName rejects names that could escape the catalog directory
// when used as heap file names (file catalogs store each table at
// dir/<name>.heap, and names arrive from untrusted statements once a
// catalog is served over TCP). Create enforces it; the statement layer
// also checks destinations up front so a long training run cannot fail
// only at save time.
func ValidTableName(name string) error {
	if name == "" {
		return fmt.Errorf("engine: empty table name")
	}
	// Path separators are the only way a name can traverse out of dir:
	// "<name>.heap" with ".." in it is just an odd filename, never a
	// parent reference.
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("engine: invalid table name %q (path separators are not allowed)", name)
	}
	// Filesystem NAME_MAX is typically 255; capping well below leaves room
	// for the ".heap" extension and derived side-table suffixes.
	if len(name) > 128 {
		return fmt.Errorf("engine: invalid table name %q... (longer than 128 bytes)", name[:32])
	}
	// Control bytes (a quoted statement name can carry NUL, newline, ...)
	// make invalid or junk heap filenames — on a file catalog they would
	// surface only at save time, after the training run.
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return fmt.Errorf("engine: invalid table name %q (control characters are not allowed)", name)
		}
	}
	return nil
}

// Create makes a new table, failing if the name exists. On file catalogs
// it also rejects names that collide case-insensitively with an existing
// table: the map keys are case-sensitive but on a case-insensitive
// filesystem (macOS, Windows) "m.heap" and "M.heap" are one file, and two
// tables silently appending into one heap corrupt both.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	if err := ValidTableName(name); err != nil {
		return nil, err
	}
	t, _, err := c.create(name, schema, false, false)
	return t, err
}

// createTrusted is Create without the name checks. OpenFileCatalog uses
// it for names already recorded in the local catalog.json — possibly
// written by an older release with laxer rules — because refusing one
// legacy name would strand every other table in the catalog. repairTail
// additionally truncates a torn (non-page-aligned) heap tail back to the
// last full page; recovery grants it only to tables outside model pairs.
func (c *Catalog) createTrusted(name string, schema Schema, repairTail bool) (*Table, heapOpenInfo, error) {
	return c.create(name, schema, true, repairTail)
}

func (c *Catalog) create(name string, schema Schema, trusted, repairTail bool) (*Table, heapOpenInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var info heapOpenInfo
	if _, ok := c.tables[name]; ok {
		return nil, info, fmt.Errorf("engine: table %q already exists", name)
	}
	if !trusted && c.dir != "" {
		for existing := range c.tables {
			if strings.EqualFold(existing, name) {
				return nil, info, fmt.Errorf("engine: table name %q collides case-insensitively with existing %q", name, existing)
			}
		}
	}
	var t *Table
	var err error
	if c.dir == "" {
		t = NewMemTable(name, schema)
	} else {
		t, info, err = newFileTable(c.dir, name, schema, c.poolPages, &c.IO, repairTail)
		if err != nil {
			return nil, info, err
		}
	}
	c.tables[name] = t
	c.bumpGen(name)
	return t, info, nil
}

// FindCaseConflict returns an existing table name equal to name under
// case folding but not byte-equal — a pair whose heap files would collide
// on a case-insensitive filesystem. Only meaningful for file catalogs
// (returns ""); the statement layer uses it to fail a TRAIN before the
// epochs run rather than at save time.
func (c *Catalog) FindCaseConflict(name string) string {
	if c.dir == "" {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for existing := range c.tables {
		if existing != name && strings.EqualFold(existing, name) {
			return existing
		}
	}
	return ""
}

// Get looks a table up by name.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return t, nil
}

// Drop removes and closes a table, deleting its backing heap file — a
// dropped-then-recreated table must come back empty, not reopen its old
// rows from disk. The drop is a force-close: the entry leaves the catalog
// and the heap file is removed even when Close fails (the alternative —
// keeping the entry — would leave a table the caller can neither use nor
// retry dropping, since the close already tore down the handle). Every
// failure is reported; a Close error no longer swallows a Remove error.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("engine: no table %q", name)
	}
	delete(c.tables, name)
	delete(c.pending, name)
	c.bumpGen(name)
	closeErr := t.Close()
	var rmErr error
	if c.dir != "" {
		if rmErr = os.Remove(c.heapPath(name)); os.IsNotExist(rmErr) {
			rmErr = nil
		}
	}
	return errors.Join(closeErr, rmErr)
}

// heapPath returns the heap file backing a table name (file catalogs).
func (c *Catalog) heapPath(name string) string {
	return filepath.Join(c.dir, name+".heap")
}

// Names returns the sorted table names. Reserved shadow names (in-flight
// generations mid-Swap) are internal and excluded: a shadow is not a table
// until its swap commits.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		if IsShadowName(n) {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close closes every table.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, t := range c.tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.tables = make(map[string]*Table)
	return first
}
