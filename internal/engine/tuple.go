// Package engine is the RDBMS substrate that Bismarck runs on. It provides
// what the paper relies on from PostgreSQL and the two commercial engines:
//
//   - on-disk heap files made of slotted pages, with a buffer pool
//   - a catalog of typed tables and tuple-at-a-time sequential scans
//   - the standard user-defined aggregate (UDA) contract
//     (initialize / transition / merge / terminate) and executors for it:
//     sequential, shared-nothing segmented (pure UDA), and shared-memory
//   - physical reordering operators: ClusterBy and Shuffle
//     (the ORDER BY RANDOM() construct from §3.1)
//   - engine profiles that emulate the per-call overhead characteristics of
//     the three engines in the paper's Tables 2 and 3
//
// The engine is deliberately scan-oriented: Bismarck's whole premise is that
// IGD's data access pattern is that of an SQL aggregation query.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"bismarck/internal/vector"
)

// Type enumerates the column types the engine can store.
type Type uint8

// Column types.
const (
	TInt64 Type = iota + 1
	TFloat64
	TString
	TDenseVec  // vector.Dense
	TSparseVec // vector.Sparse
	TInt32Vec  // []int32, used for label sequences
)

func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TString:
		return "string"
	case TDenseVec:
		return "densevec"
	case TSparseVec:
		return "sparsevec"
	case TInt32Vec:
		return "int32vec"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is a single typed cell. Exactly the field matching Type is valid.
type Value struct {
	Type   Type
	Int    int64
	Float  float64
	Str    string
	Dense  vector.Dense
	Sparse vector.Sparse
	Ints   []int32
}

// I64 wraps an int64 as a Value.
func I64(v int64) Value { return Value{Type: TInt64, Int: v} }

// F64 wraps a float64 as a Value.
func F64(v float64) Value { return Value{Type: TFloat64, Float: v} }

// Str wraps a string as a Value.
func Str(v string) Value { return Value{Type: TString, Str: v} }

// DenseV wraps a dense vector as a Value.
func DenseV(v vector.Dense) Value { return Value{Type: TDenseVec, Dense: v} }

// SparseV wraps a sparse vector as a Value.
func SparseV(v vector.Sparse) Value { return Value{Type: TSparseVec, Sparse: v} }

// IntsV wraps an []int32 as a Value.
func IntsV(v []int32) Value { return Value{Type: TInt32Vec, Ints: v} }

// Tuple is one row: values positionally matching the table schema.
type Tuple []Value

// encodedSize returns the number of bytes Encode will produce for t.
func (t Tuple) encodedSize() int {
	n := 0
	for _, v := range t {
		n++ // type tag
		switch v.Type {
		case TInt64, TFloat64:
			n += 8
		case TString:
			n += 4 + len(v.Str)
		case TDenseVec:
			n += 4 + 8*len(v.Dense)
		case TSparseVec:
			n += 4 + 12*len(v.Sparse.Idx)
		case TInt32Vec:
			n += 4 + 4*len(v.Ints)
		default:
			panic(fmt.Sprintf("engine: encodedSize: bad type %v", v.Type))
		}
	}
	return n
}

// Encode serialises the tuple into a compact binary record.
func (t Tuple) Encode() []byte {
	buf := make([]byte, 0, t.encodedSize())
	for _, v := range t {
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case TInt64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int))
		case TFloat64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case TString:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Str)))
			buf = append(buf, v.Str...)
		case TDenseVec:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Dense)))
			for _, f := range v.Dense {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		case TSparseVec:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Sparse.Idx)))
			for _, ix := range v.Sparse.Idx {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(ix))
			}
			for _, f := range v.Sparse.Val {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		case TInt32Vec:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Ints)))
			for _, ix := range v.Ints {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(ix))
			}
		default:
			panic(fmt.Sprintf("engine: Encode: bad type %v", v.Type))
		}
	}
	return buf
}

// DecodeTuple parses a record produced by Encode. It returns an error rather
// than panicking so corrupt pages surface cleanly.
func DecodeTuple(buf []byte) (Tuple, error) {
	var t Tuple
	for len(buf) > 0 {
		ty := Type(buf[0])
		buf = buf[1:]
		var v Value
		v.Type = ty
		switch ty {
		case TInt64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("engine: decode: short int64")
			}
			v.Int = int64(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case TFloat64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("engine: decode: short float64")
			}
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case TString:
			n, rest, err := readLen(buf)
			if err != nil {
				return nil, err
			}
			if len(rest) < n {
				return nil, fmt.Errorf("engine: decode: short string")
			}
			v.Str = string(rest[:n])
			buf = rest[n:]
		case TDenseVec:
			n, rest, err := readLen(buf)
			if err != nil {
				return nil, err
			}
			if len(rest) < 8*n {
				return nil, fmt.Errorf("engine: decode: short dense vec")
			}
			v.Dense = make(vector.Dense, n)
			for i := 0; i < n; i++ {
				v.Dense[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			}
			buf = rest[8*n:]
		case TSparseVec:
			n, rest, err := readLen(buf)
			if err != nil {
				return nil, err
			}
			if len(rest) < 12*n {
				return nil, fmt.Errorf("engine: decode: short sparse vec")
			}
			v.Sparse.Idx = make([]int32, n)
			v.Sparse.Val = make([]float64, n)
			prev := int32(-1)
			for i := 0; i < n; i++ {
				ix := int32(binary.LittleEndian.Uint32(rest[4*i:]))
				// Sparse indices are strictly ascending and non-negative by
				// construction (vector.NewSparse); a violation means the
				// record bytes are corrupt, and must be rejected here — the
				// sorted-index fast paths of the vector kernels trust the
				// last index to bound all of them.
				if ix <= prev {
					return nil, fmt.Errorf("engine: decode: sparse vec indices not ascending")
				}
				prev = ix
				v.Sparse.Idx[i] = ix
			}
			rest = rest[4*n:]
			for i := 0; i < n; i++ {
				v.Sparse.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			}
			buf = rest[8*n:]
		case TInt32Vec:
			n, rest, err := readLen(buf)
			if err != nil {
				return nil, err
			}
			if len(rest) < 4*n {
				return nil, fmt.Errorf("engine: decode: short int32 vec")
			}
			v.Ints = make([]int32, n)
			for i := 0; i < n; i++ {
				v.Ints[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
			}
			buf = rest[4*n:]
		default:
			return nil, fmt.Errorf("engine: decode: unknown type tag %d", ty)
		}
		t = append(t, v)
	}
	return t, nil
}

func readLen(buf []byte) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("engine: decode: short length prefix")
	}
	return int(binary.LittleEndian.Uint32(buf)), buf[4:], nil
}

// CorruptRecordError reports a heap record that failed to decode or whose
// decoded shape (arity or column types) does not match the table schema.
// Scans return it instead of letting a truncated record surface later as an
// index panic inside task code; callers can errors.As for it to distinguish
// storage corruption from ordinary scan-callback errors.
type CorruptRecordError struct {
	Table  string // table name, when known
	Reason string
}

// Error implements error.
func (e *CorruptRecordError) Error() string {
	if e.Table == "" {
		return "engine: corrupt record: " + e.Reason
	}
	return fmt.Sprintf("engine: corrupt record in table %q: %s", e.Table, e.Reason)
}

// corrupt builds a CorruptRecordError with a formatted reason.
func corrupt(table, format string, args ...any) *CorruptRecordError {
	return &CorruptRecordError{Table: table, Reason: fmt.Sprintf(format, args...)}
}

// TupleScratch holds the reusable buffers of the zero-allocation decode
// path: one Value slice plus per-column numeric backing arrays that grow to
// the high-water mark and are then reused for every subsequent record. One
// scratch serves one sequential scan; it is not safe for concurrent use.
// String cells still allocate (Go strings are immutable), but no schema on
// the training hot path carries strings.
type TupleScratch struct {
	schema Schema
	tup    Tuple
	f64    [][]float64 // per-column float backing (dense components, sparse values)
	i32    [][]int32   // per-column int backing (sparse indices, int32 vectors)
}

// NewTupleScratch returns a scratch sized for the schema's arity.
func NewTupleScratch(s Schema) *TupleScratch {
	return &TupleScratch{
		schema: s,
		tup:    make(Tuple, len(s)),
		f64:    make([][]float64, len(s)),
		i32:    make([][]int32, len(s)),
	}
}

// growF64 returns the column's float buffer resized to n, reusing capacity.
func (sc *TupleScratch) growF64(col, n int) []float64 {
	if cap(sc.f64[col]) < n {
		sc.f64[col] = make([]float64, n)
	}
	sc.f64[col] = sc.f64[col][:n]
	return sc.f64[col]
}

// growI32 returns the column's int32 buffer resized to n, reusing capacity.
func (sc *TupleScratch) growI32(col, n int) []int32 {
	if cap(sc.i32[col]) < n {
		sc.i32[col] = make([]int32, n)
	}
	sc.i32[col] = sc.i32[col][:n]
	return sc.i32[col]
}

// DecodeTupleInto parses a record produced by Encode into the scratch's
// reusable buffers, validating arity and column types against the scratch's
// schema as it goes. The returned tuple (and every slice-typed cell in it)
// aliases the scratch and is only valid until the next call; callers that
// retain rows must use DecodeTuple instead. Steady state allocates nothing.
func DecodeTupleInto(buf []byte, sc *TupleScratch) (Tuple, error) {
	col := 0
	for len(buf) > 0 {
		if col >= len(sc.schema) {
			return nil, corrupt("", "record has more than the schema's %d columns", len(sc.schema))
		}
		ty := Type(buf[0])
		if want := sc.schema[col].Type; ty != want {
			return nil, corrupt("", "column %d has type tag %s, schema wants %s", col, ty, want)
		}
		buf = buf[1:]
		v := &sc.tup[col]
		*v = Value{Type: ty}
		switch ty {
		case TInt64:
			if len(buf) < 8 {
				return nil, corrupt("", "short int64 in column %d", col)
			}
			v.Int = int64(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case TFloat64:
			if len(buf) < 8 {
				return nil, corrupt("", "short float64 in column %d", col)
			}
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case TString:
			n, rest, err := readLen(buf)
			if err != nil || len(rest) < n {
				return nil, corrupt("", "short string in column %d", col)
			}
			v.Str = string(rest[:n])
			buf = rest[n:]
		case TDenseVec:
			n, rest, err := readLen(buf)
			if err != nil || len(rest) < 8*n {
				return nil, corrupt("", "short dense vec in column %d", col)
			}
			dst := sc.growF64(col, n)
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			}
			v.Dense = dst
			buf = rest[8*n:]
		case TSparseVec:
			n, rest, err := readLen(buf)
			if err != nil || len(rest) < 12*n {
				return nil, corrupt("", "short sparse vec in column %d", col)
			}
			idx := sc.growI32(col, n)
			val := sc.growF64(col, n)
			prev := int32(-1)
			for i := 0; i < n; i++ {
				ix := int32(binary.LittleEndian.Uint32(rest[4*i:]))
				// Same ascending-index invariant as DecodeTuple: the vector
				// kernels' fast paths trust the last index to bound all of
				// them, so corrupt orderings must die here, typed.
				if ix <= prev {
					return nil, corrupt("", "sparse vec indices not ascending in column %d", col)
				}
				prev = ix
				idx[i] = ix
			}
			rest = rest[4*n:]
			for i := 0; i < n; i++ {
				val[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			}
			v.Sparse.Idx, v.Sparse.Val = idx, val
			buf = rest[8*n:]
		case TInt32Vec:
			n, rest, err := readLen(buf)
			if err != nil || len(rest) < 4*n {
				return nil, corrupt("", "short int32 vec in column %d", col)
			}
			dst := sc.growI32(col, n)
			for i := 0; i < n; i++ {
				dst[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
			}
			v.Ints = dst
			buf = rest[4*n:]
		default:
			return nil, corrupt("", "unknown type tag %d in column %d", uint8(ty), col)
		}
		col++
	}
	if col != len(sc.schema) {
		return nil, corrupt("", "record has %d columns, schema wants %d", col, len(sc.schema))
	}
	return sc.tup, nil
}

// Matches reports whether the tuple's value types match the schema.
func (t Tuple) Matches(s Schema) bool {
	if len(t) != len(s) {
		return false
	}
	for i, v := range t {
		if v.Type != s[i].Type {
			return false
		}
	}
	return true
}
