package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bismarck/internal/vector"
)

func sampleTuple() Tuple {
	return Tuple{
		I64(42),
		F64(-1.5),
		Str("hello, bismarck"),
		DenseV(vector.Dense{1, 2, 3.5}),
		SparseV(vector.NewSparse([]int32{2, 7}, []float64{0.5, -0.25})),
		IntsV([]int32{9, 8, 7}),
	}
}

func tuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.Type != vb.Type {
			return false
		}
		switch va.Type {
		case TInt64:
			if va.Int != vb.Int {
				return false
			}
		case TFloat64:
			if va.Float != vb.Float && !(math.IsNaN(va.Float) && math.IsNaN(vb.Float)) {
				return false
			}
		case TString:
			if va.Str != vb.Str {
				return false
			}
		case TDenseVec:
			if len(va.Dense) != len(vb.Dense) {
				return false
			}
			for k := range va.Dense {
				if va.Dense[k] != vb.Dense[k] {
					return false
				}
			}
		case TSparseVec:
			if len(va.Sparse.Idx) != len(vb.Sparse.Idx) {
				return false
			}
			for k := range va.Sparse.Idx {
				if va.Sparse.Idx[k] != vb.Sparse.Idx[k] || va.Sparse.Val[k] != vb.Sparse.Val[k] {
					return false
				}
			}
		case TInt32Vec:
			if len(va.Ints) != len(vb.Ints) {
				return false
			}
			for k := range va.Ints {
				if va.Ints[k] != vb.Ints[k] {
					return false
				}
			}
		}
	}
	return true
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	tp := sampleTuple()
	got, err := DecodeTuple(tp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(tp, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", tp, got)
	}
}

func TestTupleEncodeSizeExact(t *testing.T) {
	tp := sampleTuple()
	if got, want := len(tp.Encode()), tp.encodedSize(); got != want {
		t.Fatalf("encoded %d bytes, predicted %d", got, want)
	}
}

func TestDecodeTruncatedFails(t *testing.T) {
	enc := sampleTuple().Encode()
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeTuple(enc[:cut]); err == nil {
			// Truncation at a value boundary legitimately yields a shorter
			// tuple; only fail when the cut is mid-value and decode
			// silently succeeds with the full prefix AND consumed garbage.
			tp, _ := DecodeTuple(enc[:cut])
			if tp == nil {
				t.Fatalf("cut=%d: decode succeeded but returned nil", cut)
			}
		}
	}
}

func TestDecodeUnknownTagFails(t *testing.T) {
	if _, err := DecodeTuple([]byte{0xFF, 1, 2, 3}); err == nil {
		t.Fatal("expected error for unknown type tag")
	}
}

func TestTupleMatches(t *testing.T) {
	s := Schema{{"id", TInt64}, {"vec", TDenseVec}, {"label", TFloat64}}
	good := Tuple{I64(1), DenseV(vector.Dense{1}), F64(1)}
	bad := Tuple{I64(1), F64(1), F64(1)}
	short := Tuple{I64(1)}
	if !good.Matches(s) {
		t.Error("good tuple should match")
	}
	if bad.Matches(s) {
		t.Error("bad tuple should not match")
	}
	if short.Matches(s) {
		t.Error("short tuple should not match")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := Schema{{"id", TInt64}, {"vec", TDenseVec}}
	if s.ColIndex("vec") != 1 {
		t.Error("ColIndex(vec) != 1")
	}
	if s.ColIndex("nope") != -1 {
		t.Error("ColIndex(nope) != -1")
	}
}

func TestTypeString(t *testing.T) {
	for _, ty := range []Type{TInt64, TFloat64, TString, TDenseVec, TSparseVec, TInt32Vec} {
		if ty.String() == "" {
			t.Errorf("empty string for %d", ty)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Errorf("unknown type string = %s", Type(99).String())
	}
}

// Property: encode/decode round trip over random int/float/sparse tuples.
func TestQuickTupleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8, iv int64, fv float64, s string) bool {
		nnz := int(n % 32)
		idx := make([]int32, nnz)
		val := make([]float64, nnz)
		for k := range idx {
			idx[k] = int32(rng.Intn(1000))
			val[k] = rng.NormFloat64()
		}
		dn := make(vector.Dense, int(n%8))
		for k := range dn {
			dn[k] = rng.NormFloat64()
		}
		tp := Tuple{I64(iv), F64(fv), Str(s), SparseV(vector.NewSparse(idx, val)), DenseV(dn)}
		got, err := DecodeTuple(tp.Encode())
		if err != nil {
			return false
		}
		return tuplesEqual(tp, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
