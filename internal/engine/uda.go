package engine

import "fmt"

// State is a UDA aggregation context. For Bismarck it is essentially the
// model plus meta data (number of gradient steps taken, running loss, ...).
type State interface{}

// UDA is the standard user-defined aggregate contract offered by every major
// RDBMS (Figure 3 of the paper): PostgreSQL calls the three functions
// 'initcond', 'sfunc' and 'finalfunc'; the optional Merge enables the
// built-in shared-nothing parallelism of the commercial engines.
type UDA interface {
	// Initialize returns a fresh aggregation state.
	Initialize() State
	// Transition folds one tuple into the state and returns the (possibly
	// same, mutated) state.
	Transition(s State, t Tuple) State
	// Terminate finishes the aggregation and returns the result.
	Terminate(s State) State
}

// Merger is implemented by UDAs that support combining two independently
// computed states — the requirement for the pure-UDA parallel plan.
type Merger interface {
	Merge(a, b State) State
}

// FuncUDA adapts plain functions to the UDA interface; MergeFn may be nil.
type FuncUDA struct {
	Name    string
	InitFn  func() State
	TransFn func(State, Tuple) State
	TermFn  func(State) State
	MergeFn func(State, State) State
}

// Initialize implements UDA.
func (u *FuncUDA) Initialize() State { return u.InitFn() }

// Transition implements UDA.
func (u *FuncUDA) Transition(s State, t Tuple) State { return u.TransFn(s, t) }

// Terminate implements UDA.
func (u *FuncUDA) Terminate(s State) State {
	if u.TermFn == nil {
		return s
	}
	return u.TermFn(s)
}

// Merge implements Merger when MergeFn is set.
func (u *FuncUDA) Merge(a, b State) State {
	if u.MergeFn == nil {
		panic(fmt.Sprintf("engine: UDA %s has no merge function", u.Name))
	}
	return u.MergeFn(a, b)
}

// CanMerge reports whether u supports merging.
func (u *FuncUDA) CanMerge() bool { return u.MergeFn != nil }

// NullUDA is the paper's strawman aggregate: it sees every tuple but
// computes nothing. Tables 2 and 3 measure task overhead against it.
type NullUDA struct{}

// Initialize implements UDA.
func (NullUDA) Initialize() State { return nil }

// Transition implements UDA.
func (NullUDA) Transition(s State, t Tuple) State { return s }

// Terminate implements UDA.
func (NullUDA) Terminate(s State) State { return s }

// Merge implements Merger.
func (NullUDA) Merge(a, b State) State { return nil }

// CountUDA counts tuples; the simplest useful aggregate, used in tests.
type CountUDA struct{}

// Initialize implements UDA.
func (CountUDA) Initialize() State { return int64(0) }

// Transition implements UDA.
func (CountUDA) Transition(s State, t Tuple) State { return s.(int64) + 1 }

// Terminate implements UDA.
func (CountUDA) Terminate(s State) State { return s }

// Merge implements Merger.
func (CountUDA) Merge(a, b State) State { return a.(int64) + b.(int64) }

// SumUDA sums a float64 column, used in tests and loss computations.
type SumUDA struct{ Col int }

// Initialize implements UDA.
func (u SumUDA) Initialize() State { return float64(0) }

// Transition implements UDA.
func (u SumUDA) Transition(s State, t Tuple) State { return s.(float64) + t[u.Col].Float }

// Terminate implements UDA.
func (u SumUDA) Terminate(s State) State { return s }

// Merge implements Merger.
func (u SumUDA) Merge(a, b State) State { return a.(float64) + b.(float64) }
