// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the Go substrate: each Run* function builds the
// workload, runs Bismarck and the relevant baselines, and prints the same
// rows/series the paper reports. DESIGN.md carries the experiment index;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config controls experiment sizing so the same code serves quick test runs
// and full benchmark runs.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 = the repo's default
	// laptop-feasible sizes; the paper's full sizes are larger still).
	Scale float64
	// Workers bounds the thread sweep (Figures 9A/9B); 0 means 8.
	Workers int
	// Budget is the per-tool time budget for the Table 4 scalability grid;
	// 0 means 15 seconds.
	Budget time.Duration
	// Seed drives all data generation and training.
	Seed int64
}

// DefaultConfig is the standard full-run configuration.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Workers: 8, Budget: 15 * time.Second, Seed: 42}
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 8
	}
	return c.Workers
}

func (c Config) budget() time.Duration {
	if c.Budget <= 0 {
		return 15 * time.Second
	}
	return c.Budget
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named curve of an objective-vs-x plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// PrintSeries renders curves as aligned columns (x then one column per
// series; missing points print as "-").
func PrintSeries(w io.Writer, title, xlabel string, series ...Series) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	// Collect the union of x values.
	xset := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	header := append([]string{xlabel}, names(series)...)
	tbl := &Table{Title: title + " (data)", Header: header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			row = append(row, lookup(s, x))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	// Print without the duplicate title banner.
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range tbl.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, row := range tbl.Rows {
		line(row)
	}
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

func lookup(s Series, x float64) string {
	for i, sx := range s.X {
		if sx == x {
			return trimFloat(s.Y[i])
		}
	}
	return "-"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4g", f)
	return s
}

// Downsample keeps at most n points of a series (always keeping the last).
func Downsample(s Series, n int) Series {
	if len(s.X) <= n || n < 2 {
		return s
	}
	out := Series{Name: s.Name}
	step := float64(len(s.X)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		k := int(float64(i) * step)
		out.X = append(out.X, s.X[k])
		out.Y = append(out.Y, s.Y[k])
	}
	return out
}

// Experiment couples an id with a runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(w io.Writer, cfg Config) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Desc: "Dataset statistics (Table 1)", Run: RunTable1},
		{ID: "fig5", Desc: "1-D CA-TX: random vs clustered ordering (Figure 5)", Run: RunFig5},
		{ID: "table2", Desc: "Pure-UDA overhead vs NULL aggregate (Table 2)", Run: RunTable2},
		{ID: "table3", Desc: "Shared-memory UDA overhead vs NULL aggregate (Table 3)", Run: RunTable3},
		{ID: "fig7a", Desc: "End-to-end runtime vs native tools (Figure 7A)", Run: RunFig7A},
		{ID: "fig7b", Desc: "CRF convergence vs CRF++/Mallet stand-ins (Figure 7B)", Run: RunFig7B},
		{ID: "table4", Desc: "Scalability grid on large datasets (Table 4)", Run: RunTable4},
		{ID: "fig8", Desc: "Data ordering: ShuffleAlways/Once/Clustered (Figure 8)", Run: RunFig8},
		{ID: "fig9a", Desc: "Parallel schemes: objective vs epoch (Figure 9A)", Run: RunFig9A},
		{ID: "fig9b", Desc: "Parallel schemes: speed-up vs threads (Figure 9B)", Run: RunFig9B},
		{ID: "fig10a", Desc: "MRS vs Subsampling vs Clustered (Figure 10A)", Run: RunFig10A},
		{ID: "fig10b", Desc: "MRS buffer-size sensitivity (Figure 10B)", Run: RunFig10B},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }

func secs(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }
