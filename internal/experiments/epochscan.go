package experiments

import (
	"fmt"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/parallel"
	"bismarck/internal/tasks"
)

// EpochScanCase is one variant of the epoch-scan microbenchmark family: a
// full pass of gradient steps over a fixed dataset through one of the
// three decode paths of the epoch pipeline —
//
//	decode  per-row DecodeTuple, a fresh Tuple and vector per row
//	        (the seed engine's only path: what every epoch used to cost)
//	reuse   reusable-scratch decode (ScanReuse): page bytes every epoch,
//	        ~zero allocations (the fallback for uncacheable tables)
//	cached  the materialized columnar cache: no page bytes, no decode,
//	        no allocations (the steady-state trainer path)
//
// with 1 worker (sequential DenseModel) or 4 workers (shared-memory NoLock
// segment scans). bench_test.go runs them as BenchmarkEpochScan sub-
// benchmarks; cmd/bench runs the same cases to emit machine-readable
// perf-trajectory numbers.
type EpochScanCase struct {
	Name string // e.g. "dense-lr/cached/1w"
	Rows int    // rows visited per Run, for rows/sec reporting
	Run  func() error
}

// EpochScanCases builds the family over a dense LR workload (Forest-like,
// d=54) and a sparse SVM workload (DBLife-like, d=41000).
func EpochScanCases(denseRows, sparseRows int, seed int64) ([]EpochScanCase, error) {
	type workload struct {
		name string
		tbl  *engine.Table
		task core.Task
		dim  int
		rows int
	}
	denseTbl := data.Forest(denseRows, seed)
	sparseTbl := data.DBLife(sparseRows, 41000, 12, seed+1)
	wls := []workload{
		{name: "dense-lr", tbl: denseTbl, task: tasks.NewLR(54), dim: 54, rows: denseRows},
		{name: "sparse-svm", tbl: sparseTbl, task: tasks.NewSVM(41000), dim: 41000, rows: sparseRows},
	}

	const alpha = 0.01
	var cases []EpochScanCase
	for _, wl := range wls {
		wl := wl
		if err := wl.tbl.Flush(); err != nil {
			return nil, err
		}
		mat, err := wl.tbl.Materialize()
		if err != nil {
			return nil, err
		}

		// Sequential variants share one dense model; its drift across
		// passes is irrelevant to the scan cost being measured.
		dm := core.NewDenseModel(wl.dim)
		seqStep := func(tp engine.Tuple) error {
			wl.task.Step(dm, tp, alpha)
			return nil
		}
		// Parallel variants update a NoLock (Hogwild) atomic model.
		am := parallel.NewAtomicModel(wl.dim, false)
		parStep := func(_ int, tp engine.Tuple) error {
			wl.task.Step(am, tp, alpha)
			return nil
		}

		tbl, reuse := wl.tbl, wl.tbl.Reuse()
		cases = append(cases,
			EpochScanCase{Name: wl.name + "/decode/1w", Rows: wl.rows,
				Run: func() error { return tbl.Scan(seqStep) }},
			EpochScanCase{Name: wl.name + "/reuse/1w", Rows: wl.rows,
				Run: func() error { return tbl.ScanReuse(seqStep) }},
			EpochScanCase{Name: wl.name + "/cached/1w", Rows: wl.rows,
				Run: func() error { return mat.Scan(seqStep) }},
			EpochScanCase{Name: wl.name + "/decode/4w", Rows: wl.rows,
				Run: func() error { return engine.RunSharedScanOn(tbl, 4, engine.Profile{}, parStep) }},
			EpochScanCase{Name: wl.name + "/reuse/4w", Rows: wl.rows,
				Run: func() error { return engine.RunSharedScanOn(reuse, 4, engine.Profile{}, parStep) }},
			EpochScanCase{Name: wl.name + "/cached/4w", Rows: wl.rows,
				Run: func() error { return engine.RunSharedScanOn(mat, 4, engine.Profile{}, parStep) }},
		)
	}
	return cases, nil
}

// EpochScanDefaults are the row counts cmd/bench and the BENCH_n.json
// trajectory use, sized so one pass is milliseconds.
const (
	EpochScanDenseRows  = 20000
	EpochScanSparseRows = 8000
)

// FindEpochScanCase returns the named case from a built family.
func FindEpochScanCase(cases []EpochScanCase, name string) (EpochScanCase, error) {
	for _, c := range cases {
		if c.Name == name {
			return c, nil
		}
	}
	return EpochScanCase{}, fmt.Errorf("experiments: no epoch-scan case %q", name)
}
