package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyCfg keeps every experiment fast enough for the unit test suite.
func tinyCfg() Config {
	return Config{Scale: 0.02, Workers: 2, Budget: 3 * time.Second, Seed: 42}
}

// TestAllExperimentsRun executes every experiment end-to-end at tiny scale:
// this is the integration test of the whole stack (engine + core + tasks +
// parallel + sampling + baselines + data).
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, tinyCfg()); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5"); !ok {
		t.Fatal("fig5 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unexpected experiment")
	}
}

func TestTablePrintAlignment(t *testing.T) {
	tbl := &Table{Title: "t", Header: []string{"a", "bbbb"}, Notes: []string{"n1"}}
	tbl.Add("xxxxx", "y")
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "note: n1") {
		t.Fatalf("bad table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestPrintSeriesUnionOfX(t *testing.T) {
	var buf bytes.Buffer
	PrintSeries(&buf, "s", "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{2, 3}, Y: []float64{200, 300}})
	out := buf.String()
	for _, want := range []string{"a", "b", "10", "300", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDownsample(t *testing.T) {
	s := Series{Name: "s"}
	for i := 0; i < 100; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(i*i))
	}
	d := Downsample(s, 10)
	if len(d.X) != 10 {
		t.Fatalf("downsampled to %d points", len(d.X))
	}
	if d.X[0] != 0 || d.X[len(d.X)-1] != 99 {
		t.Fatalf("endpoints not kept: %v", d.X)
	}
	// Short series pass through unchanged.
	short := Series{X: []float64{1}, Y: []float64{1}}
	if got := Downsample(short, 10); len(got.X) != 1 {
		t.Fatal("short series must pass through")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale(100) != 100 {
		t.Fatalf("zero Scale should mean 1.0, got %d", c.scale(100))
	}
	if c.workers() != 8 || c.budget() != 15*time.Second {
		t.Fatal("defaults wrong")
	}
	c2 := Config{Scale: 0.001}
	if c2.scale(100) != 10 {
		t.Fatalf("scale floor should clamp to 10, got %d", c2.scale(100))
	}
}

func TestTimeToTarget(t *testing.T) {
	losses := []float64{10, 5, 2, 1}
	times := []time.Duration{time.Second, time.Second, time.Second, time.Second}
	if got := timeToTarget(losses, times, 2); !strings.Contains(got, "(3)") {
		t.Fatalf("timeToTarget = %q", got)
	}
	if got := timeToTarget(losses, times, 0.1); got != "-" {
		t.Fatalf("unreachable target = %q", got)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {123456, "123456"}} {
		if got := itoa(c.n); got != c.want {
			t.Fatalf("itoa(%d) = %q", c.n, got)
		}
	}
}
