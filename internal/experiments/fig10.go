package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/ordering"
	"bismarck/internal/sampling"
	"bismarck/internal/tasks"
)

// fig10Data builds the clustered sparse-LR workload of Figure 10 plus the
// reference optimal loss from a long shuffled run.
func fig10Data(cfg Config) (*tasks.LR, func() (*engineTable, error), float64, error) {
	task := tasks.NewLR(41000)
	step := core.GeometricStep{A0: 0.4, Rho: 0.96}
	ref := data.DBLife(cfg.scale(16000), 41000, 12, cfg.Seed+1)
	ref.Shuffle(rand.New(rand.NewSource(cfg.Seed)))
	long, err := (&core.Trainer{Task: task, Step: step, MaxEpochs: 80, Seed: cfg.Seed}).Run(ref)
	if err != nil {
		return nil, nil, 0, err
	}
	build := func() (*engineTable, error) {
		tbl := data.DBLife(cfg.scale(16000), 41000, 12, cfg.Seed+1)
		if err := data.ClusterByLabel(tbl); err != nil {
			return nil, err
		}
		return tbl, nil
	}
	return task, build, long.FinalLoss(), nil
}

// RunFig10A reproduces Figure 10(A): objective vs epoch for Subsampling,
// Clustered (no shuffle, full data) and MRS, with a buffer that is 10% of
// the dataset. Expected shape: MRS converges fastest and reaches a lower
// objective than both.
func RunFig10A(w io.Writer, cfg Config) error {
	task, build, _, err := fig10Data(cfg)
	if err != nil {
		return err
	}
	step := core.GeometricStep{A0: 0.4, Rho: 0.96}
	const epochs = 50
	n := cfg.scale(16000)
	buf := n / 10

	var series []Series
	finals := map[string]float64{}

	// Clustered: plain IGD on the stored (pathological) order.
	{
		tbl, err := build()
		if err != nil {
			return err
		}
		res, err := (&core.Trainer{Task: task, Step: step, MaxEpochs: epochs,
			Order: ordering.Clustered{}, Seed: cfg.Seed}).Run(tbl)
		if err != nil {
			return err
		}
		series = append(series, lossSeries("Clustered", res.Losses))
		finals["Clustered"] = res.FinalLoss()
	}
	// Subsampling: train only on one reservoir sample of size buf.
	{
		tbl, err := build()
		if err != nil {
			return err
		}
		res, err := (&sampling.SubsampleTrainer{Task: task, Step: step, MaxEpochs: epochs,
			BufCap: buf, Seed: cfg.Seed}).Run(tbl)
		if err != nil {
			return err
		}
		series = append(series, lossSeries("Subsampling", res.Losses))
		finals["Subsampling"] = res.FinalLoss()
	}
	// MRS: reservoir + dropped-tuple steps + memory worker.
	{
		tbl, err := build()
		if err != nil {
			return err
		}
		res, err := (&sampling.MRSTrainer{Task: task, Step: step, Passes: epochs,
			BufCap: buf, Seed: cfg.Seed}).Run(tbl)
		if err != nil {
			return err
		}
		series = append(series, lossSeries("MRS", res.Losses))
		finals["MRS"] = res.FinalLoss()
	}

	for i := range series {
		series[i] = Downsample(series[i], 15)
	}
	PrintSeries(w, fmt.Sprintf("Figure 10A: objective vs epoch (sparse LR, buffer = %d tuples = 10%%)", buf),
		"epoch", series...)
	if finals["MRS"] >= finals["Subsampling"] {
		fmt.Fprintln(w, "note: WARNING expected MRS to beat Subsampling")
	}
	return nil
}

// RunFig10B reproduces Figure 10(B): time (and passes) to reach 2× the
// optimal objective value for buffer sizes 800/1600/3200, Subsampling vs
// MRS. Expected shape: MRS reaches the target in less time at every buffer
// size.
func RunFig10B(w io.Writer, cfg Config) error {
	task, build, opt, err := fig10Data(cfg)
	if err != nil {
		return err
	}
	step := core.GeometricStep{A0: 0.4, Rho: 0.96}
	target := 2 * opt
	const maxEpochs = 150

	t := &Table{
		Title:  "Figure 10B: runtime (s) to reach 2x optimal objective (epochs in parens)",
		Header: []string{"Buffer", "Subsampling", "MRS"},
		Notes: []string{
			"Paper (B=800/1600/3200): Subsampling 2.50s(48)/1.37s(26)/0.69s(13); MRS 0.60s(10)/0.36s(6)/0.12s(2).",
			"- means the scheme never reached the target within " + fmt.Sprint(maxEpochs) + " passes.",
		},
	}

	scaleBuf := func(b int) int {
		v := cfg.scale(b)
		if v < 5 {
			v = 5
		}
		return v
	}
	for _, b := range []int{800, 1600, 3200} {
		buf := scaleBuf(b)
		var cells []string
		// Subsampling.
		{
			tbl, err := build()
			if err != nil {
				return err
			}
			res, err := (&sampling.SubsampleTrainer{Task: task, Step: step, MaxEpochs: maxEpochs,
				BufCap: buf, Seed: cfg.Seed}).Run(tbl)
			if err != nil {
				return err
			}
			cells = append(cells, timeToTarget(res.Losses, res.EpochTimes, target))
		}
		// MRS.
		{
			tbl, err := build()
			if err != nil {
				return err
			}
			res, err := (&sampling.MRSTrainer{Task: task, Step: step, Passes: maxEpochs,
				BufCap: buf, Seed: cfg.Seed}).Run(tbl)
			if err != nil {
				return err
			}
			cells = append(cells, timeToTarget(res.Losses, res.EpochTimes, target))
		}
		t.Add(fmt.Sprintf("%d", buf), cells[0], cells[1])
	}
	t.Print(w)
	return nil
}

func lossSeries(name string, losses []float64) Series {
	s := Series{Name: name}
	for i, l := range losses {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, l)
	}
	return s
}
