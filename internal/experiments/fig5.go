package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
)

// RunFig5 reproduces the 1-D CA-TX example (Figure 5): least squares on
// 1000 points (n = 500) with x = 1 and labels +1 then −1 in clustered
// order. Under a diminishing step size, IGD on a random order converges in
// ~18 epochs while the clustered order oscillates between +1 and −1 and
// needs ~48 epochs (convergence = w² < 0.001).
func RunFig5(w io.Writer, cfg Config) error {
	const n = 500
	const maxEpochs = 120
	task := tasks.NewLeastSquares(1)
	// Per-step divergent-series rule alpha_k = a0/k, the classic choice the
	// paper's Appendix C analysis assumes; with per-epoch decay the
	// clustered order's oscillation amplitude never shrinks below the
	// convergence threshold.
	const a0 = 6.0

	run := func(shuffled bool) (Series, int) {
		tbl := data.CATX(n)
		if shuffled {
			tbl.Shuffle(rand.New(rand.NewSource(cfg.Seed)))
		}
		wm := &core.DenseModel{W: []float64{0}}
		series := Series{Name: map[bool]string{true: "Random", false: "Clustered"}[shuffled]}
		k := 0
		epochEnd := make([]float64, 0, maxEpochs)
		for e := 0; e < maxEpochs; e++ {
			tbl.Scan(func(tp engine.Tuple) error {
				task.Step(wm, tp, a0/float64(k+1))
				k++
				if k%100 == 0 {
					series.X = append(series.X, float64(k))
					series.Y = append(series.Y, wm.W[0])
				}
				return nil
			})
			epochEnd = append(epochEnd, wm.W[0])
		}
		// Converged = the first epoch from which w^2 stays below 1e-3 (a
		// single lucky epoch-end sample does not count as convergence).
		converged := maxEpochs
		for e := len(epochEnd) - 1; e >= 0; e-- {
			if epochEnd[e]*epochEnd[e] >= 0.001 {
				break
			}
			converged = e + 1
		}
		return series, converged
	}

	randomSeries, randomEpochs := run(true)
	clusteredSeries, clusteredEpochs := run(false)

	PrintSeries(w, "Figure 5: w vs gradient steps (1-D CA-TX, n=500)", "step",
		Downsample(randomSeries, 25), Downsample(clusteredSeries, 25))

	t := &Table{
		Title:  "Figure 5: epochs to convergence (w^2 < 0.001)",
		Header: []string{"Ordering", "Epochs", "Paper"},
	}
	t.Add("Random", fmt.Sprintf("%d", randomEpochs), "18")
	t.Add("Clustered", fmt.Sprintf("%d", clusteredEpochs), "48")
	if clusteredEpochs <= randomEpochs {
		t.Notes = append(t.Notes, "WARNING: expected Clustered to need more epochs than Random")
	}
	t.Print(w)
	return nil
}
