package experiments

import (
	"errors"

	"io"
	"time"

	"bismarck/internal/baselines"
	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
)

// RunFig7B reproduces Figure 7(B): CRF training progress (fraction of the
// optimal log-likelihood reached) against wall-clock time, comparing
// Bismarck's IGD against two batch-trainer stand-ins: an aggressive
// line-search batch GD ("CRF++-style") and a conservative fixed-step batch
// GD ("Mallet-style").
func RunFig7B(w io.Writer, cfg Config) error {
	tbl := data.CoNLL(cfg.scale(900), 8000, 9, 12, cfg.Seed+3)
	task := tasks.NewCRF(8000, 9)

	// Reference optimum: long IGD run.
	ref, err := (&core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.1, Rho: 0.9},
		MaxEpochs: 40, Seed: cfg.Seed, Order: ordering.ShuffleOnce{}}).Run(tbl)
	if err != nil {
		return err
	}
	opt := ref.FinalLoss()
	base0, err := core.TotalLoss(task, core.InitialModel(task, cfg.Seed), tbl)
	if err != nil {
		return err
	}
	frac := func(loss float64) float64 {
		p := 100 * (base0 - loss) / (base0 - opt)
		if p < 0 {
			p = 0
		}
		return p
	}
	toSeries := func(name string, losses []float64, times []time.Duration) (Series, float64) {
		s := Series{Name: name}
		var reached99 float64 = -1
		var cum float64
		for i, l := range losses {
			if times != nil {
				cum = times[i].Seconds()
			} else {
				cum = float64(i + 1) // fallback: epoch index
			}
			s.X = append(s.X, cum)
			s.Y = append(s.Y, frac(l))
			if reached99 < 0 && frac(l) >= 99 {
				reached99 = cum
			}
		}
		return s, reached99
	}

	// Bismarck IGD (fresh run, recording per-epoch cumulative time).
	bis, err := (&core.Trainer{Task: task, Step: core.GeometricStep{A0: 0.1, Rho: 0.9},
		MaxEpochs: 40, Seed: cfg.Seed, Order: ordering.ShuffleOnce{}}).Run(tbl)
	if err != nil {
		return err
	}
	cumBis := cumulative(bis.EpochTimes)

	crfpp, err := (&baselines.BatchGD{Task: task, Alpha: 8, MaxIters: 60, LineSearch: true,
		Seed: cfg.Seed, Deadline: time.Now().Add(cfg.budget())}).Run(tbl)
	if err != nil && !errors.Is(err, core.ErrDeadline) {
		return err
	}
	mallet, err := (&baselines.BatchGD{Task: task, Alpha: 1.5, MaxIters: 120,
		Seed: cfg.Seed, Deadline: time.Now().Add(cfg.budget())}).Run(tbl)
	if err != nil && !errors.Is(err, core.ErrDeadline) {
		return err
	}

	sb, tb := toSeries("Bismarck", bis.Losses, cumBis)
	sc, tc := toSeries("CRF++-style", crfpp.Losses, cumulative(crfpp.EpochTimes))
	sm, tm := toSeries("Mallet-style", mallet.Losses, cumulative(mallet.EpochTimes))
	PrintSeries(w, "Figure 7B: frac of optimal loglik (%) vs time (s), CRF on CoNLL-like data", "time(s)",
		Downsample(sb, 15), Downsample(sc, 15), Downsample(sm, 15))

	t := &Table{
		Title:  "Figure 7B: time (s) to reach 99% of optimal log-likelihood",
		Header: []string{"Tool", "Time(s)", "Paper shape"},
		Notes:  []string{"-1 means the tool never reached 99% within its iteration budget."},
	}
	t.Add("Bismarck", trimFloat(tb), "399s, fastest")
	t.Add("CRF++-style", trimFloat(tc), "466s, close second")
	t.Add("Mallet-style", trimFloat(tm), "1043s, slowest")
	t.Print(w)
	return nil
}

func cumulative(ds []time.Duration) []time.Duration {
	out := make([]time.Duration, len(ds))
	var c time.Duration
	for i, d := range ds {
		c += d
		out[i] = c
	}
	return out
}
