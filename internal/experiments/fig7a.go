package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"bismarck/internal/baselines"
	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
)

// lmfTask builds the Figure 7A factorization task; a larger random init
// than the default gets the factors to the 1..5 rating scale faster.
func lmfTask(rows, cols int) *tasks.LMF {
	t := tasks.NewLMF(rows, cols, 10)
	t.InitScale = 0.5
	return t
}

// toolRun is one tool's outcome on one workload.
type toolRun struct {
	name string
	run  func() (loss float64, d time.Duration, err error)
}

// RunFig7A reproduces Figure 7(A): end-to-end runtime to convergence for
// Bismarck versus the algorithm classes behind the native tools. Every tool
// trains to its own 0.1% relative-loss-drop convergence (the criterion of
// §3.1/Appendix B); a tool only counts as finished if its final objective is
// within 5% of the best tool's (the paper "verified that all the tools
// compared achieved similar training quality").
func RunFig7A(w io.Writer, cfg Config) error {
	t := &Table{
		Title:  "Figure 7A: runtime (s) to 0.1%-relative-drop convergence, quality-checked",
		Header: []string{"Dataset", "Task", "Tool", "Time", "Final loss", "vs Bismarck"},
		Notes: []string{
			"Tools converge on their own 0.1% relative loss drop; X(quality) = stopped early with a >5% worse objective.",
			"Native-style stand-ins: IRLS (MADlib-style LR), batch GD (gradient-tool LR/SVM/LMF), ALS (matrix factorization).",
			"Paper: Bismarck beats MADlib/native tools 2-12x on LR/SVM and ~3 orders of magnitude on LMF;",
			"our ALS is a stronger baseline than 2012 native LMF tools, so the LMF gap is smaller here.",
		},
	}

	const relTol = 1e-3
	budget := cfg.budget() * 4

	forest := data.Forest(cfg.scale(581000), cfg.Seed)
	dblife := data.DBLife(cfg.scale(16000), 41000, 12, cfg.Seed+1)
	const mRows, mCols = 6040, 3952
	ml := data.MovieLens(mRows, mCols, cfg.scale(1000000), 10, 0.3, cfg.Seed+2)
	for _, tbl := range []*engine.Table{forest, dblife, ml} {
		if err := tbl.Flush(); err != nil {
			return err
		}
	}

	bismarck := func(task core.Task, tbl *engine.Table, step core.StepRule, epochs int) toolRun {
		return toolRun{name: "Bismarck", run: func() (float64, time.Duration, error) {
			tr := &core.Trainer{Task: task, Step: step, MaxEpochs: epochs,
				RelTol: relTol, Seed: cfg.Seed, Order: ordering.ShuffleOnce{}, PiggybackLoss: true}
			start := time.Now()
			res, err := tr.Run(tbl)
			if err != nil {
				return 0, 0, err
			}
			// Report the true objective for the quality check.
			loss, err := core.TotalLoss(task, res.Model, tbl)
			if err != nil {
				return 0, 0, err
			}
			return loss, time.Since(start), nil
		}}
	}
	batch := func(task core.Task, tbl *engine.Table, alpha float64) toolRun {
		return toolRun{name: "Batch GD", run: func() (float64, time.Duration, error) {
			start := time.Now()
			res, err := (&baselines.BatchGD{Task: task, Alpha: alpha, MaxIters: 500, LineSearch: true,
				RelTol: relTol, Seed: cfg.Seed, Deadline: time.Now().Add(budget)}).Run(tbl)
			if err != nil && !errors.Is(err, core.ErrDeadline) {
				return 0, 0, err
			}
			if res == nil || len(res.Losses) == 0 {
				return 0, 0, errors.New("no iterations completed in budget")
			}
			return res.FinalLoss(), time.Since(start), nil
		}}
	}

	type workload struct {
		dataset, task string
		tools         []toolRun
	}
	workloads := []workload{
		{
			dataset: "Forest", task: "LR",
			tools: []toolRun{
				bismarck(&tasks.LR{D: 54, Mu: 1e-4}, forest, core.GeometricStep{A0: 0.1, Rho: 0.7}, 40),
				{name: "IRLS (Newton)", run: func() (float64, time.Duration, error) {
					start := time.Now()
					res, err := (&baselines.IRLS{D: 54, Mu: 1e-4, MaxIters: 30, RelTol: relTol,
						Deadline: time.Now().Add(budget)}).Run(forest)
					if err != nil && !errors.Is(err, core.ErrDeadline) {
						return 0, 0, err
					}
					if len(res.Losses) == 0 {
						return 0, 0, errors.New("no iterations in budget")
					}
					return res.Losses[len(res.Losses)-1], time.Since(start), nil
				}},
			},
		},
		{
			dataset: "Forest", task: "SVM",
			tools: []toolRun{
				bismarck(tasks.NewSVM(54), forest, core.GeometricStep{A0: 0.1, Rho: 0.7}, 40),
				batch(tasks.NewSVM(54), forest, 1),
			},
		},
		{
			dataset: "DBLife", task: "LR",
			tools: []toolRun{
				bismarck(tasks.NewLR(41000), dblife, core.GeometricStep{A0: 0.5, Rho: 0.9}, 60),
				batch(tasks.NewLR(41000), dblife, 5),
			},
		},
		{
			dataset: "DBLife", task: "SVM",
			tools: []toolRun{
				bismarck(tasks.NewSVM(41000), dblife, core.GeometricStep{A0: 0.2, Rho: 0.9}, 60),
				batch(tasks.NewSVM(41000), dblife, 2),
			},
		},
		{
			dataset: "MovieLens", task: "LMF",
			tools: []toolRun{
				bismarck(lmfTask(mRows, mCols), ml, core.GeometricStep{A0: 0.04, Rho: 0.97}, 150),
				{name: "ALS", run: func() (float64, time.Duration, error) {
					start := time.Now()
					res, err := (&baselines.ALS{Rows: mRows, Cols: mCols, Rank: 10, Mu: 0.05,
						MaxSweeps: 60, RelTol: relTol, Seed: cfg.Seed,
						Deadline: time.Now().Add(budget)}).Run(ml)
					if err != nil && !errors.Is(err, core.ErrDeadline) {
						return 0, 0, err
					}
					if len(res.Losses) == 0 {
						return 0, 0, errors.New("no sweeps in budget")
					}
					return res.Losses[len(res.Losses)-1], time.Since(start), nil
				}},
				batch(lmfTask(mRows, mCols), ml, 0.02),
			},
		},
	}

	for _, wl := range workloads {
		type outcome struct {
			name string
			loss float64
			d    time.Duration
			err  error
		}
		outs := make([]outcome, 0, len(wl.tools))
		best := 0.0
		haveBest := false
		for _, tool := range wl.tools {
			loss, d, err := tool.run()
			outs = append(outs, outcome{tool.name, loss, d, err})
			if err == nil && (!haveBest || loss < best) {
				best, haveBest = loss, true
			}
		}
		// Quality band: LMF (non-convex) gets 10%, convex tasks 5%.
		band := 1.05
		if wl.task == "LMF" {
			band = 1.10
		}
		var bisTime time.Duration
		for _, o := range outs {
			if o.name == "Bismarck" && o.err == nil {
				bisTime = o.d
			}
		}
		for _, o := range outs {
			switch {
			case o.err != nil:
				t.Add(wl.dataset, wl.task, o.name, "X ("+o.err.Error()+")", "-", "-")
			case haveBest && o.loss > best*band:
				t.Add(wl.dataset, wl.task, o.name, "X (quality)", trimFloat(o.loss), "-")
			default:
				rel := "-"
				if bisTime > 0 {
					rel = fmt.Sprintf("%.1fx", float64(o.d)/float64(bisTime))
				}
				t.Add(wl.dataset, wl.task, o.name, secs(o.d), trimFloat(o.loss), rel)
			}
		}
	}
	t.Print(w)
	return nil
}
