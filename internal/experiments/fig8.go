package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
)

// RunFig8 reproduces Figure 8: sparse LR on DBLife under the three ordering
// strategies. (A) objective vs epoch — ShuffleAlways converges in the
// fewest epochs, ShuffleOnce needs a few more, Clustered needs several
// times more. (B) objective vs wall-clock time — ShuffleOnce wins because
// it skips the per-epoch table rewrite.
func RunFig8(w io.Writer, cfg Config) error {
	const maxEpochs = 250
	task := tasks.NewLR(41000)
	step := core.GeometricStep{A0: 0.4, Rho: 0.96}

	// Reference optimum from a long shuffled run.
	refTbl := data.DBLife(cfg.scale(16000), 41000, 12, cfg.Seed+1)
	refTbl.Shuffle(rand.New(rand.NewSource(cfg.Seed)))
	ref, err := (&core.Trainer{Task: task, Step: step, MaxEpochs: 80, Seed: cfg.Seed}).Run(refTbl)
	if err != nil {
		return err
	}
	target := ref.FinalLoss() * 1.01

	type outcome struct {
		name      string
		epochSer  Series
		timeSer   Series
		epochs    int
		timeToTgt float64
	}
	var outs []outcome

	for _, strat := range []core.OrderStrategy{ordering.ShuffleAlways{}, ordering.Clustered{}, ordering.ShuffleOnce{}} {
		// Fresh table per strategy, physically clustered by label — the
		// in-RDBMS layout §3.2 warns about.
		tbl := data.DBLife(cfg.scale(16000), 41000, 12, cfg.Seed+1)
		if err := data.ClusterByLabel(tbl); err != nil {
			return err
		}
		// PhysicalReorder keeps the paper-faithful cost model: this figure
		// measures the on-disk ORDER BY RANDOM() rewrite that ShuffleAlways
		// pays per epoch, so the trainers must not swap it for the cached
		// pipeline's O(n) logical permutation.
		tr := &core.Trainer{Task: task, Step: step, MaxEpochs: maxEpochs,
			TargetLoss: target, Order: strat, Seed: cfg.Seed,
			Profile: engine.Profile{Name: "physical", PhysicalReorder: true}}
		res, err := tr.Run(tbl)
		if err != nil {
			return err
		}
		o := outcome{name: strat.Name(), epochs: res.Epochs}
		var cum float64
		for i, l := range res.Losses {
			cum += res.EpochTimes[i].Seconds()
			o.epochSer.X = append(o.epochSer.X, float64(i+1))
			o.epochSer.Y = append(o.epochSer.Y, l)
			o.timeSer.X = append(o.timeSer.X, cum)
			o.timeSer.Y = append(o.timeSer.Y, l)
		}
		o.epochSer.Name, o.timeSer.Name = o.name, o.name
		if res.Converged {
			o.timeToTgt = cum
		} else {
			o.timeToTgt = -1
		}
		outs = append(outs, o)
	}

	var epochSeries, timeSeries []Series
	for _, o := range outs {
		epochSeries = append(epochSeries, Downsample(o.epochSer, 15))
		timeSeries = append(timeSeries, Downsample(o.timeSer, 15))
	}
	PrintSeries(w, "Figure 8A: objective vs epoch (sparse LR on DBLife-like, clustered start)", "epoch", epochSeries...)
	PrintSeries(w, "Figure 8B: objective vs time (s)", "time(s)", timeSeries...)

	t := &Table{
		Title:  "Figure 8: epochs and wall-clock to converge (within 1% of optimal loss)",
		Header: []string{"Strategy", "Epochs", "Time(s)", "Paper epochs", "Paper time"},
		Notes:  []string{"-1 time or epochs == cap means did not converge within the epoch cap."},
	}
	paper := map[string][2]string{
		"ShuffleAlways": {"35", "5.9s"},
		"Clustered":     {"185+", "9.3s"},
		"ShuffleOnce":   {"47", "2.4s"},
	}
	for _, o := range outs {
		p := paper[o.name]
		t.Add(o.name, fmt.Sprintf("%d", o.epochs), trimFloat(o.timeToTgt), p[0], p[1])
	}
	// Shape checks the run should satisfy.
	byName := map[string]outcome{}
	for _, o := range outs {
		byName[o.name] = o
	}
	if byName["ShuffleOnce"].epochs < byName["ShuffleAlways"].epochs {
		t.Notes = append(t.Notes, "WARNING: expected ShuffleAlways <= ShuffleOnce in epochs")
	}
	if byName["Clustered"].epochs <= byName["ShuffleOnce"].epochs {
		t.Notes = append(t.Notes, "WARNING: expected Clustered to need the most epochs")
	}
	t.Print(w)
	return nil
}
