package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/ordering"
	"bismarck/internal/parallel"
	"bismarck/internal/tasks"
)

// RunFig9A reproduces Figure 9(A): objective vs epoch for the four
// parallelization schemes (CRF on CoNLL, cfg.Workers threads). Expected
// shape: Lock ≈ AIG ≈ NoLock, all better per epoch than the pure-UDA model
// averaging.
func RunFig9A(w io.Writer, cfg Config) error {
	const epochs = 12
	task := tasks.NewCRF(8000, 9)
	tbl := data.CoNLL(cfg.scale(900), 8000, 9, 12, cfg.Seed+3)
	ord := ordering.ShuffleOnce{}

	var series []Series
	finals := map[string]float64{}
	for _, mode := range []parallel.Mode{parallel.PureUDA, parallel.Lock, parallel.AIG, parallel.NoLock} {
		tr := &parallel.Trainer{Task: task, Step: core.GeometricStep{A0: 0.1, Rho: 0.9},
			MaxEpochs: epochs, Workers: cfg.workers(), Mode: mode, Seed: cfg.Seed, Order: ord}
		res, err := tr.Run(tbl)
		if err != nil {
			return err
		}
		s := Series{Name: mode.String()}
		for i, l := range res.Losses {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, l)
		}
		series = append(series, s)
		finals[mode.String()] = res.FinalLoss()
	}
	PrintSeries(w, fmt.Sprintf("Figure 9A: objective vs epoch, CRF on CoNLL-like (%d threads)", cfg.workers()),
		"epoch", series...)
	if finals["PureUDA"] <= finals["NoLock"] {
		fmt.Fprintln(w, "note: WARNING expected PureUDA (model averaging) to trail NoLock per epoch")
	}
	return nil
}

// RunFig9B reproduces Figure 9(B): speed-up of the per-epoch gradient
// computation against the number of threads, for all four schemes.
// Expected shape: NoLock and AIG near-linear (NoLock highest), pure UDA
// sub-linear, Lock flat at ~1.
func RunFig9B(w io.Writer, cfg Config) error {
	task := tasks.NewCRF(8000, 9)
	tbl := data.CoNLL(cfg.scale(900), 8000, 9, 12, cfg.Seed+3)
	if err := tbl.Flush(); err != nil {
		return err
	}

	maxWorkers := cfg.workers()
	threadCounts := []int{1, 2, 4}
	if maxWorkers >= 8 {
		threadCounts = append(threadCounts, 8)
	}
	epochTime := func(mode parallel.Mode, workers int) (time.Duration, error) {
		tr := &parallel.Trainer{Task: task, Step: core.ConstantStep{A: 0.05},
			MaxEpochs: 3, Workers: workers, Mode: mode, Seed: cfg.Seed, SkipLoss: true}
		res, err := tr.Run(tbl)
		if err != nil {
			return 0, err
		}
		best := res.EpochTimes[0]
		for _, d := range res.EpochTimes[1:] {
			if d < best {
				best = d
			}
		}
		return best, nil
	}

	var series []Series
	var base1 = map[string]time.Duration{}
	for _, mode := range []parallel.Mode{parallel.PureUDA, parallel.Lock, parallel.AIG, parallel.NoLock} {
		s := Series{Name: mode.String()}
		for _, n := range threadCounts {
			d, err := epochTime(mode, n)
			if err != nil {
				return err
			}
			if n == 1 {
				base1[mode.String()] = d
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(base1[mode.String()])/float64(d))
		}
		series = append(series, s)
	}
	PrintSeries(w, "Figure 9B: per-epoch speed-up vs threads (CRF gradient computation)", "threads", series...)
	fmt.Fprintln(w, "note: paper shape: NoLock/AIG near-linear, PureUDA sub-linear, Lock ~1.")
	if ncpu := runtime.GOMAXPROCS(0); ncpu < maxWorkers {
		fmt.Fprintf(w, "note: HOST LIMIT: only %d usable CPU(s); speed-ups are bounded by the hardware, not the schemes.\n", ncpu)
	}
	return nil
}
