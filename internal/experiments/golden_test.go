package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files under testdata/ from the current
// output:
//
//	go test ./internal/experiments -run Golden -update
//
// The goldens pin the exact text the experiment drivers render — the
// table/figure formatting layer and the one fully deterministic driver
// (Table 1 has no timings; everything it prints derives from seeded
// generators). Timing-bearing drivers are covered by TestAllExperimentsRun
// instead, since their cell values cannot be byte-stable.
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s (intentional? rerun with -update):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenTablePrint pins the aligned-column table renderer every table
// experiment prints through: header/separator alignment, ragged rows,
// trailing-space trimming, notes.
func TestGoldenTablePrint(t *testing.T) {
	tbl := &Table{
		Title:  "Demo table",
		Header: []string{"Dataset", "Bismarck", "Baseline", "Speedup"},
		Notes:  []string{"speedup is wall-clock baseline/bismarck", "second note"},
	}
	tbl.Add("Forest", "1.23s", "4.56s", "3.7x")
	tbl.Add("DBLife-with-a-long-name", "0.9s", "-", "-")
	tbl.Add("MovieLens", "12.0s", "13.5s", "1.1x", "ragged extra cell")
	var buf bytes.Buffer
	tbl.Print(&buf)
	checkGolden(t, "table_print.golden", buf.Bytes())
}

// TestGoldenPrintSeries pins the curve renderer (union of x values,
// missing points as "-", %.4g trimming).
func TestGoldenPrintSeries(t *testing.T) {
	var buf bytes.Buffer
	PrintSeries(&buf, "Demo curves", "epoch",
		Series{Name: "shuffle_once", X: []float64{1, 2, 3}, Y: []float64{10.5, 5.25, 2.125}},
		Series{Name: "clustered", X: []float64{1, 3, 4}, Y: []float64{11, 6.0001, 3.14159}},
		Series{Name: "sparse", X: []float64{2.5}, Y: []float64{100000}},
	)
	checkGolden(t, "print_series.golden", buf.Bytes())
}

// TestGoldenTable1 pins the one timing-free experiment driver end to end:
// dataset statistics derive only from seeded generators, so any byte of
// drift means the generators or the driver changed behavior.
func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("generates ~100k rows")
	}
	var buf bytes.Buffer
	if err := RunTable1(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", buf.Bytes())
}
