package experiments

import (
	"time"

	"bismarck/internal/engine"
)

// engineTable aliases the engine table type for experiment helpers.
type engineTable = engine.Table

// timeToTarget returns "Xs (N)" — cumulative training time and pass count
// until the loss first reaches target — or "-" if it never does. The
// per-epoch times must exclude loss-evaluation overhead so the comparison
// measures training work.
func timeToTarget(losses []float64, times []time.Duration, target float64) string {
	var cum time.Duration
	for i, l := range losses {
		if i < len(times) {
			cum += times[i]
		}
		if l <= target {
			return secs(cum) + " (" + itoa(i+1) + ")"
		}
	}
	return "-"
}
