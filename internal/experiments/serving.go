package experiments

import (
	"fmt"
	"io"
	"sync"

	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/serve"
	"bismarck/internal/sqlish"
)

// ServingCase is one serving-plane throughput measurement: C concurrent
// clients scoring inline point-PREDICT batches against one hot model
// through serve.Plane — admission gate, snapshot cache, zero-alloc
// scoring, the whole steady-state path. Preds is the number of
// predictions one Run makes, for preds/sec reporting.
type ServingCase struct {
	Name  string // e.g. "serve-lr/batch8/4c"
	Preds int
	Run   func() error
}

// ServingRoundsPerClient is how many Predict calls each simulated client
// makes per Run, sized so one op is milliseconds.
const ServingRoundsPerClient = 2000

// ServingCases builds the serving-throughput family over a dense LR model
// (Forest-like, d=54): {single point, 8-point batch} × {1, 4} concurrent
// clients. The model is trained once and the cache warmed before the
// first Run, so every measurement is the steady-state serving path.
func ServingCases(seed int64) ([]ServingCase, error) {
	cat := engine.NewCatalog()
	src := data.Forest(4000, seed)
	tbl, err := cat.Create("papers", src.Schema)
	if err != nil {
		return nil, err
	}
	if err := src.CopyTo(tbl); err != nil {
		return nil, err
	}
	sess := &sqlish.Session{Cat: cat, Out: io.Discard}
	if err := sess.Exec(`SELECT vec, label FROM papers TO TRAIN lr
		WITH alpha=0.1, epochs=3, seed=7 INTO m;`); err != nil {
		return nil, err
	}
	// Queue sized far above the client count: the family measures
	// throughput, not shed policy, so nothing should ever answer busy.
	plane := serve.New(cat, nil, serve.Options{Inflight: 16, MaxQueue: 1 << 16})

	probe := make([]float64, 54)
	for i := range probe {
		probe[i] = float64(i%7) / 7
	}
	single := [][]float64{probe}
	batch8 := make([][]float64, 8)
	for i := range batch8 {
		batch8[i] = probe
	}
	warm := make([]float64, len(batch8))
	if _, err := plane.Predict("m", batch8, warm); err != nil {
		return nil, err
	}

	var cases []ServingCase
	for _, clients := range []int{1, 4} {
		for _, shape := range []struct {
			name   string
			points [][]float64
		}{
			{"point", single},
			{"batch8", batch8},
		} {
			clients, shape := clients, shape
			cases = append(cases, ServingCase{
				Name:  fmt.Sprintf("serve-lr/%s/%dc", shape.name, clients),
				Preds: clients * ServingRoundsPerClient * len(shape.points),
				Run: func() error {
					errs := make([]error, clients)
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							scores := make([]float64, len(shape.points))
							for r := 0; r < ServingRoundsPerClient; r++ {
								if _, err := plane.Predict("m", shape.points, scores); err != nil {
									errs[c] = err
									return
								}
							}
						}(c)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							return err
						}
					}
					return nil
				},
			})
		}
	}
	return cases, nil
}
