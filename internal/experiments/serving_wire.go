package experiments

import (
	"fmt"
	"net"
	"strings"

	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/server"
)

// ServingWireFrames is how many pipelined frames one wire-case Run sends,
// sized so one op is milliseconds.
const ServingWireFrames = 2000

// servingWireWindow is how many frames stay in flight per round.
const servingWireWindow = 50

// ServingWireCases builds the wire-level serving family: the same dense
// LR model as ServingCases, but scored through a real TCP bismarckd
// server with pipelined frames — text "@<id> PREDICT ..." against the
// negotiated binary encoding, at batch 1 and 8. The text/binary pairs
// share shape and window, so their preds/sec ratio is the cost of the
// text encoding itself (statement parse, %.6g formatting, strconv on the
// way back). close stops the server; call it when done with the cases.
func ServingWireCases(seed int64) (cases []ServingCase, close func(), err error) {
	cat := engine.NewCatalog()
	src := data.Forest(4000, seed)
	tbl, err := cat.Create("papers", src.Schema)
	if err != nil {
		return nil, nil, err
	}
	if err := src.CopyTo(tbl); err != nil {
		return nil, nil, err
	}
	// Queue sized far above the pipeline window: the family measures
	// throughput, not shed policy, so nothing should ever answer busy.
	mgr := server.NewManager(cat, server.Options{
		Workers: 1, ServeInflight: 16, ServeQueue: 1 << 16})
	srv := server.NewTCPServer(mgr)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(lis)
	close = func() { srv.Close() }
	defer func() {
		if err != nil {
			close()
		}
	}()

	ctrl, err := server.Dial(lis.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	if _, err := ctrl.Exec(`SELECT vec, label FROM papers TO TRAIN lr
		WITH alpha=0.1, epochs=3, seed=7 INTO m;`); err != nil {
		return nil, nil, err
	}
	ctrl.Close()

	probe := make([]float64, 54)
	for i := range probe {
		probe[i] = float64(i%7) / 7
	}
	shapes := []struct {
		name  string
		batch int
	}{
		{"point", 1},
		{"batch8", 8},
	}
	for _, shape := range shapes {
		points := make([][]float64, shape.batch)
		for i := range points {
			points[i] = probe
		}
		// The text statement is prebuilt: per-frame cost is the wire and
		// the server's parse/format, not client-side fmt.
		var sb strings.Builder
		if shape.batch == 1 {
			sb.WriteString("PREDICT (")
			writeTuple(&sb, probe)
			sb.WriteString(") USING m")
		} else {
			sb.WriteString("PREDICT VALUES ")
			for i := range points {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("(")
				writeTuple(&sb, probe)
				sb.WriteString(")")
			}
			sb.WriteString(" USING m")
		}
		stmt := sb.String()

		for _, enc := range []string{"text", "bin"} {
			enc, shape, points := enc, shape, points
			cl, err := server.Dial(lis.Addr().String())
			if err != nil {
				return nil, nil, err
			}
			if enc == "bin" {
				if err := cl.Binary(); err != nil {
					return nil, nil, err
				}
			}
			cases = append(cases, ServingCase{
				Name:  fmt.Sprintf("wire-%s/%s/1c", enc, shape.name),
				Preds: ServingWireFrames * shape.batch,
				Run: func() error {
					id := uint64(0)
					for sent := 0; sent < ServingWireFrames; sent += servingWireWindow {
						for i := 0; i < servingWireWindow; i++ {
							id++
							var err error
							if enc == "bin" {
								err = cl.SendBinPredict(id, "m", points)
							} else {
								err = cl.SendFrame(id, stmt)
							}
							if err != nil {
								return err
							}
						}
						for i := 0; i < servingWireWindow; i++ {
							var f server.Frame
							var err error
							if enc == "bin" {
								f, err = cl.ReadBinFrame()
							} else {
								f, err = cl.ReadFrame()
							}
							if err != nil {
								return err
							}
							if f.Err != "" {
								return fmt.Errorf("frame %d: %s", f.ID, f.Err)
							}
							if len(f.Scores) != shape.batch {
								return fmt.Errorf("frame %d: %d scores, want %d", f.ID, len(f.Scores), shape.batch)
							}
						}
					}
					return nil
				},
			})
		}
	}
	return cases, close, nil
}

// writeTuple renders a probe as comma-separated values.
func writeTuple(sb *strings.Builder, vals []float64) {
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%g", v)
	}
}
