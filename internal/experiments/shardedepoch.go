package experiments

import (
	"fmt"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/parallel"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// ShardedEpochCases builds the BenchmarkShardedEpoch family: one op = one
// shared-nothing epoch — K shard workers each scanning their shard's
// primed decoded-row cache into a private model replica, then one
// row-weighted model average — over the same dense-LR and sparse-SVM
// workloads as EpochScanCases, at K ∈ {1, 2, 4}. The per-shard state is
// built once (parallel.NewShardedEpoch), so the measured op is exactly the
// trainer's steady state; the K=1 case is the sharded mode's overhead
// floor against the plain cached epoch of EpochScanCases.
func ShardedEpochCases(denseRows, sparseRows int, seed int64) ([]EpochScanCase, error) {
	type workload struct {
		name string
		tbl  *engine.Table
		task core.Task
		dim  int
		rows int
	}
	wls := []workload{
		{name: "dense-lr", tbl: data.Forest(denseRows, seed),
			task: tasks.NewLR(54), dim: 54, rows: denseRows},
		{name: "sparse-svm", tbl: data.DBLife(sparseRows, 41000, 12, seed+1),
			task: tasks.NewSVM(41000), dim: 41000, rows: sparseRows},
	}

	const alpha = 0.01
	var cases []EpochScanCase
	for _, wl := range wls {
		if err := wl.tbl.Flush(); err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 4} {
			sharded, err := engine.ShardTable(wl.tbl, k, engine.ShardRoundRobin)
			if err != nil {
				return nil, err
			}
			se, err := parallel.NewShardedEpoch(wl.task, sharded, core.NoOrder{}, seed)
			if err != nil {
				return nil, err
			}
			// The model drifts across ops; like EpochScanCases, that is
			// irrelevant to the scan-and-merge cost being measured.
			w := vector.NewDense(wl.dim)
			epoch := 0
			cases = append(cases, EpochScanCase{
				Name: fmt.Sprintf("%s/sharded/%dw", wl.name, k),
				Rows: wl.rows,
				Run: func() error {
					epoch++
					return se.Run(epoch, w, alpha)
				},
			})
		}
	}
	return cases, nil
}
