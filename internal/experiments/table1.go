package experiments

import (
	"fmt"
	"io"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

// datasetSizes returns the default (Scale = 1) generated sizes. The paper's
// originals are listed in the comments; the repo default scales the big
// ones down so a full benchmark run finishes on a laptop, preserving
// dimension and sparsity.
type datasetSpec struct {
	name   string
	dim    string
	build  func(cfg Config) *engine.Table
	paperN string
}

func specs() []datasetSpec {
	return []datasetSpec{
		{
			name: "Forest", dim: "54", paperN: "581k",
			build: func(c Config) *engine.Table { return data.Forest(c.scale(58100), c.Seed) },
		},
		{
			name: "DBLife", dim: "41k (sparse)", paperN: "16k",
			build: func(c Config) *engine.Table { return data.DBLife(c.scale(16000), 41000, 12, c.Seed+1) },
		},
		{
			name: "MovieLens", dim: "6k x 4k", paperN: "1M",
			build: func(c Config) *engine.Table {
				return data.MovieLens(6040, 3952, c.scale(100000), 10, 0.3, c.Seed+2)
			},
		},
		{
			name: "CoNLL", dim: "7.4M (sparse)", paperN: "9k",
			build: func(c Config) *engine.Table { return data.CoNLL(c.scale(900), 8000, 9, 12, c.Seed+3) },
		},
		{
			name: "Classify300M", dim: "50", paperN: "300M",
			build: func(c Config) *engine.Table {
				return data.DenseClassification("classify300m", c.scale(300000), 50, 8, c.Seed+4)
			},
		},
		{
			name: "Matrix5B", dim: "706k x 706k", paperN: "5B",
			build: func(c Config) *engine.Table {
				return data.MovieLens(7060, 7060, c.scale(500000), 10, 0.3, c.Seed+5)
			},
		},
		{
			name: "DBLP", dim: "600M (sparse)", paperN: "2.3M",
			build: func(c Config) *engine.Table { return data.CoNLL(c.scale(2300), 20000, 9, 14, c.Seed+6) },
		},
	}
}

// RunTable1 regenerates Table 1: statistics of the (synthetic, scaled)
// datasets.
func RunTable1(w io.Writer, cfg Config) error {
	t := &Table{
		Title:  "Table 1: Dataset statistics (synthetic stand-ins, scaled)",
		Header: []string{"Dataset", "Dimension", "#Examples", "Size", "Paper #Examples"},
		Notes: []string{
			"Generated data matches each dataset's dimension/sparsity; example counts scale with -scale.",
		},
	}
	for _, sp := range specs() {
		tbl := sp.build(cfg)
		st, err := data.Describe(tbl, sp.dim)
		if err != nil {
			return err
		}
		t.Add(sp.name, sp.dim, fmt.Sprintf("%d", st.Rows), data.HumanBytes(st.Bytes), sp.paperN)
	}
	t.Print(w)
	return nil
}
