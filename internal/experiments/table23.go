package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/engine"
	"bismarck/internal/parallel"
	"bismarck/internal/tasks"
)

// overheadWorkload is one (dataset, task) cell of Tables 2 and 3.
type overheadWorkload struct {
	dataset string
	task    core.Task
	build   func(cfg Config) *engine.Table
	a0      float64
}

func overheadWorkloads(cfg Config) []overheadWorkload {
	forest := func(c Config) *engine.Table { return data.Forest(c.scale(58100), c.Seed) }
	dblife := func(c Config) *engine.Table { return data.DBLife(c.scale(16000), 41000, 12, c.Seed+1) }
	movielens := func(c Config) *engine.Table {
		return data.MovieLens(6040, 3952, c.scale(100000), 10, 0.3, c.Seed+2)
	}
	return []overheadWorkload{
		{dataset: "Forest", task: tasks.NewLR(54), build: forest, a0: 0.01},
		{dataset: "Forest", task: tasks.NewSVM(54), build: forest, a0: 0.01},
		{dataset: "DBLife", task: tasks.NewLR(41000), build: dblife, a0: 0.1},
		{dataset: "DBLife", task: tasks.NewSVM(41000), build: dblife, a0: 0.1},
		{dataset: "MovieLens", task: tasks.NewLMF(6040, 3952, 10), build: movielens, a0: 0.005},
	}
}

// timeBest returns the fastest of three runs, matching the paper's
// "average of three warm-cache runs" methodology (min is the conventional
// noise-robust choice for microbenchmarks).
func timeBest(runs int, f func() error) (time.Duration, error) {
	best := time.Duration(1<<62 - 1)
	runtime.GC() // do not charge generation/GC debt to the first run
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// RunTable2 reproduces Table 2: single-epoch runtime of each task under the
// pure-UDA plan against the strawman NULL aggregate, on all three engine
// profiles.
func RunTable2(w io.Writer, cfg Config) error {
	return runOverheadTable(w, cfg, false)
}

// RunTable3 reproduces Table 3: the same grid under the shared-memory UDA.
func RunTable3(w io.Writer, cfg Config) error {
	return runOverheadTable(w, cfg, true)
}

func runOverheadTable(w io.Writer, cfg Config, sharedMem bool) error {
	title := "Table 2: pure-UDA single-epoch runtime vs NULL aggregate"
	if sharedMem {
		title = "Table 3: shared-memory UDA single-epoch runtime vs NULL aggregate"
	}
	t := &Table{
		Title:  title,
		Header: []string{"Engine", "Dataset", "Task", "NULL", "Runtime", "Overhead"},
		Notes: []string{
			"Overhead = runtime/NULL - 1 for one epoch; paper Tables 2-3 report the same quantity.",
		},
	}

	wls := overheadWorkloads(cfg)
	// Build each dataset once and reuse across engines/tasks.
	built := map[string]*engine.Table{}
	for _, wl := range wls {
		if _, ok := built[wl.dataset]; !ok {
			tbl := wl.build(cfg)
			if err := tbl.Flush(); err != nil {
				return err
			}
			built[wl.dataset] = tbl
		}
	}

	for _, prof := range engine.Profiles() {
		for _, wl := range wls {
			tbl := built[wl.dataset]
			var nullTime, taskTime time.Duration
			var err error
			if !sharedMem {
				nullTime, err = timeBest(3, func() error {
					_, e := engine.RunUDA(tbl, engine.NullUDA{}, prof)
					return e
				})
				if err != nil {
					return err
				}
				agg := &core.IGDAggregate{Task: wl.task, Alpha: wl.a0, Init: core.InitialModel(wl.task, cfg.Seed)}
				taskTime, err = timeBest(3, func() error {
					_, e := engine.RunUDA(tbl, agg, prof)
					return e
				})
				if err != nil {
					return err
				}
			} else {
				workers := prof.Segments
				nullTime, err = timeBest(3, func() error {
					return engine.RunSharedScan(tbl, workers, prof, func(int, engine.Tuple) error { return nil })
				})
				if err != nil {
					return err
				}
				model := parallel.NewAtomicModel(wl.task.Dim(), false)
				model.SetFrom(core.InitialModel(wl.task, cfg.Seed))
				taskTime, err = timeBest(3, func() error {
					return engine.RunSharedScan(tbl, workers, prof, func(_ int, tp engine.Tuple) error {
						wl.task.Step(model, tp, wl.a0)
						return nil
					})
				})
				if err != nil {
					return err
				}
			}
			over := float64(taskTime)/float64(nullTime) - 1
			t.Add(prof.Name, wl.dataset, wl.task.Name(), ms(nullTime), ms(taskTime),
				fmt.Sprintf("%.1f%%", 100*over))
		}
	}
	t.Print(w)
	return nil
}
