package experiments

import (
	"errors"
	"io"
	"time"

	"bismarck/internal/baselines"
	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/tasks"
)

// RunTable4 reproduces the scalability grid: on the large datasets
// (Classify300M-, Matrix5B- and DBLP-style, scaled), does each tool finish
// within the time budget? ✓ = completes (reaches its convergence criterion
// in budget), X = exceeds the budget, N/A = the tool does not support the
// task. The paper's 48-hour wall is our cfg.Budget.
func RunTable4(w io.Writer, cfg Config) error {
	budget := cfg.budget()
	t := &Table{
		Title:  "Table 4: scalability within a " + budget.String() + " per-tool budget",
		Header: []string{"Task", "Bismarck(IGD)", "Newton/IRLS", "BatchGD", "ALS", "Notes"},
		Notes: []string{
			"OK = converged within budget; X = budget exceeded / infeasible; N/A = task unsupported by the algorithm.",
			"Generated data is stored in random order, so Bismarck trains as-stored (no shuffle pass needed).",
			"Paper: Bismarck completes all four tasks; native tools and in-memory tools fail on the complex ones.",
		},
	}

	classify := data.DenseClassification("classify", cfg.scale(300000), 50, 8, cfg.Seed+4)
	const mRows, mCols = 7060, 7060
	matrix := data.MovieLens(mRows, mCols, cfg.scale(500000), 10, 0.3, cfg.Seed+5)
	dblp := data.CoNLL(cfg.scale(2300), 20000, 9, 14, cfg.Seed+6)

	mark := func(converged bool, err error) string {
		switch {
		case err == nil && converged:
			return "OK"
		case errors.Is(err, core.ErrDeadline) || (err == nil && !converged):
			return "X"
		default:
			return "X (" + err.Error() + ")"
		}
	}

	deadline := func() time.Time { return time.Now().Add(budget) }

	// --- LR on Classify300M-style ---
	{
		bres, berr := (&core.Trainer{Task: tasks.NewLR(50), Step: core.GeometricStep{A0: 0.05, Rho: 0.8},
			MaxEpochs: 30, RelTol: 1e-3, Seed: cfg.Seed, PiggybackLoss: true,
			Deadline: deadline()}).Run(classify)
		nres, nerr := (&baselines.IRLS{D: 50, Mu: 1e-4, MaxIters: 30, RelTol: 1e-6,
			Deadline: deadline()}).Run(classify)
		gres, gerr := (&baselines.BatchGD{Task: tasks.NewLR(50), Alpha: 1, MaxIters: 500,
			LineSearch: true, RelTol: 1e-4, Seed: cfg.Seed, Deadline: deadline()}).Run(classify)
		t.Add("LR", mark(bres != nil && bres.Converged, berr),
			mark(nres != nil && nres.Converged, nerr),
			mark(gres != nil && gres.Converged, gerr), "N/A",
			"dense d=50, n="+itoa(classify.NumRows()))
	}

	// --- SVM on Classify300M-style ---
	{
		bres, berr := (&core.Trainer{Task: tasks.NewSVM(50), Step: core.GeometricStep{A0: 0.05, Rho: 0.8},
			MaxEpochs: 30, RelTol: 1e-3, Seed: cfg.Seed, PiggybackLoss: true,
			Deadline: deadline()}).Run(classify)
		gres, gerr := (&baselines.BatchGD{Task: tasks.NewSVM(50), Alpha: 0.5, MaxIters: 500,
			RelTol: 1e-5, Seed: cfg.Seed, Deadline: deadline()}).Run(classify)
		t.Add("SVM", mark(bres != nil && bres.Converged, berr), "N/A",
			mark(gres != nil && gres.Converged, gerr), "N/A",
			"hinge loss; batch GD converges slowly without line search")
	}

	// --- LMF on Matrix5B-style ---
	{
		lmf := tasks.NewLMF(mRows, mCols, 10)
		bres, berr := (&core.Trainer{Task: lmf, Step: core.GeometricStep{A0: 0.02, Rho: 0.85},
			MaxEpochs: 25, RelTol: 5e-3, Seed: cfg.Seed, PiggybackLoss: true,
			Deadline: deadline()}).Run(matrix)
		ares, aerr := (&baselines.ALS{Rows: mRows, Cols: mCols, Rank: 10, Mu: 0.05,
			MaxSweeps: 60, RelTol: 5e-3, Seed: cfg.Seed, Deadline: deadline()}).Run(matrix)
		t.Add("LMF", mark(bres != nil && bres.Converged, berr), "N/A", "N/A",
			mark(ares != nil && ares.Converged, aerr),
			"706k x 706k shape (scaled cells), rank 10")
	}

	// --- CRF on DBLP-style ---
	{
		crf := tasks.NewCRF(20000, 9)
		bres, berr := (&core.Trainer{Task: crf, Step: core.GeometricStep{A0: 0.1, Rho: 0.8},
			MaxEpochs: 45, RelTol: 1e-3, Seed: cfg.Seed, PiggybackLoss: true,
			Deadline: deadline()}).Run(dblp)
		gres, gerr := (&baselines.BatchGD{Task: crf, Alpha: 1, MaxIters: 200, RelTol: 1e-5,
			Seed: cfg.Seed, Deadline: deadline()}).Run(dblp)
		t.Add("CRF", mark(bres != nil && bres.Converged, berr), "N/A",
			mark(gres != nil && gres.Converged, gerr), "N/A",
			"sequence labeling; batch trainers need many full scans")
	}

	t.Print(w)
	return nil
}

func itoa(n int) string {
	// small local helper to avoid strconv import noise in the table body
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
