// Package ordering implements the data-ordering strategies of §3.2:
// ShuffleAlways (reshuffle before every epoch, the machine-learning
// convention), ShuffleOnce (Bismarck's strategy: one shuffle before the
// first epoch), and Clustered (train on the data exactly as stored, the
// pathological case for tables clustered by label).
package ordering

import (
	"math/rand"

	"bismarck/internal/core"
	"bismarck/internal/engine"
)

// ShuffleAlways physically reshuffles the table before every epoch. The
// convergence rate per epoch is the best possible, but each epoch pays a
// full table rewrite, which for simple tasks costs several times the
// gradient work itself.
type ShuffleAlways struct{}

// Name implements core.OrderStrategy.
func (ShuffleAlways) Name() string { return "ShuffleAlways" }

// Prepare implements core.OrderStrategy.
func (ShuffleAlways) Prepare(tbl *engine.Table, _ int, rng *rand.Rand) error {
	return tbl.Shuffle(rng)
}

// PrepareLogical implements core.LogicalOrderStrategy: when the engine
// profile does not charge physical-rewrite cost, the per-epoch reshuffle is
// an O(n) permutation of the cache's row index instead of a full heap
// rewrite.
func (ShuffleAlways) PrepareLogical(v *engine.MatView, _ int, rng *rand.Rand) error {
	v.Permute(rng)
	return nil
}

// ShuffleOnce shuffles only before the first epoch — Bismarck's default.
// Convergence per epoch is marginally worse than ShuffleAlways, but without
// the per-epoch rewrite more epochs fit in the same wall-clock time.
type ShuffleOnce struct{}

// Name implements core.OrderStrategy.
func (ShuffleOnce) Name() string { return "ShuffleOnce" }

// Prepare implements core.OrderStrategy.
func (ShuffleOnce) Prepare(tbl *engine.Table, epoch int, rng *rand.Rand) error {
	if epoch == 0 {
		return tbl.Shuffle(rng)
	}
	return nil
}

// PrepareLogical implements core.LogicalOrderStrategy.
func (ShuffleOnce) PrepareLogical(v *engine.MatView, epoch int, rng *rand.Rand) error {
	if epoch == 0 {
		v.Permute(rng)
	}
	return nil
}

// Clustered trains on the stored order without touching it. When the table
// is physically clustered by a value correlated with the labels (as tables
// inside an RDBMS often are), this is the pathological ordering analyzed in
// Example 3.1.
type Clustered struct{}

// Name implements core.OrderStrategy.
func (Clustered) Name() string { return "Clustered" }

// Prepare implements core.OrderStrategy.
func (Clustered) Prepare(*engine.Table, int, *rand.Rand) error { return nil }

// PrepareLogical implements core.LogicalOrderStrategy: training on the
// stored order needs no permutation.
func (Clustered) PrepareLogical(*engine.MatView, int, *rand.Rand) error { return nil }

var (
	_ core.OrderStrategy        = ShuffleAlways{}
	_ core.OrderStrategy        = ShuffleOnce{}
	_ core.OrderStrategy        = Clustered{}
	_ core.LogicalOrderStrategy = ShuffleAlways{}
	_ core.LogicalOrderStrategy = ShuffleOnce{}
	_ core.LogicalOrderStrategy = Clustered{}
)

// All returns the three strategies in the order Figure 8 plots them.
func All() []core.OrderStrategy {
	return []core.OrderStrategy{ShuffleAlways{}, Clustered{}, ShuffleOnce{}}
}
