package ordering

import (
	"math/rand"
	"testing"

	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

func labelTable(t *testing.T, n int) *engine.Table {
	t.Helper()
	schema := engine.Schema{{Name: "id", Type: engine.TInt64}, {Name: "vec", Type: engine.TDenseVec}, {Name: "label", Type: engine.TFloat64}}
	tbl := engine.NewMemTable("t", schema)
	for i := 0; i < n; i++ {
		lbl := float64(1)
		if i >= n/2 {
			lbl = -1
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(vector.Dense{1}), engine.F64(lbl)})
	}
	return tbl
}

func readIDs(t *testing.T, tbl *engine.Table) []int64 {
	t.Helper()
	var ids []int64
	if err := tbl.Scan(func(tp engine.Tuple) error {
		ids = append(ids, tp[0].Int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func isIdentity(ids []int64) bool {
	for i, id := range ids {
		if id != int64(i) {
			return false
		}
	}
	return true
}

func TestClusteredNeverTouchesTable(t *testing.T) {
	tbl := labelTable(t, 100)
	rng := rand.New(rand.NewSource(1))
	for e := 0; e < 3; e++ {
		if err := (Clustered{}).Prepare(tbl, e, rng); err != nil {
			t.Fatal(err)
		}
	}
	if !isIdentity(readIDs(t, tbl)) {
		t.Fatal("Clustered changed the storage order")
	}
}

func TestShuffleOnceOnlyFirstEpoch(t *testing.T) {
	tbl := labelTable(t, 200)
	rng := rand.New(rand.NewSource(2))
	if err := (ShuffleOnce{}).Prepare(tbl, 0, rng); err != nil {
		t.Fatal(err)
	}
	after0 := readIDs(t, tbl)
	if isIdentity(after0) {
		t.Fatal("epoch-0 Prepare did not shuffle")
	}
	for e := 1; e < 4; e++ {
		if err := (ShuffleOnce{}).Prepare(tbl, e, rng); err != nil {
			t.Fatal(err)
		}
	}
	after := readIDs(t, tbl)
	for i := range after0 {
		if after[i] != after0[i] {
			t.Fatal("ShuffleOnce reshuffled after epoch 0")
		}
	}
}

func TestShuffleAlwaysReshufflesEveryEpoch(t *testing.T) {
	tbl := labelTable(t, 200)
	rng := rand.New(rand.NewSource(3))
	prev := readIDs(t, tbl)
	changed := 0
	for e := 0; e < 3; e++ {
		if err := (ShuffleAlways{}).Prepare(tbl, e, rng); err != nil {
			t.Fatal(err)
		}
		cur := readIDs(t, tbl)
		same := true
		for i := range cur {
			if cur[i] != prev[i] {
				same = false
				break
			}
		}
		if !same {
			changed++
		}
		prev = cur
	}
	if changed != 3 {
		t.Fatalf("only %d/3 epochs reshuffled", changed)
	}
}

func TestAllListsThreeStrategies(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() = %d strategies", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name()] = true
	}
	for _, want := range []string{"ShuffleAlways", "ShuffleOnce", "Clustered"} {
		if !names[want] {
			t.Fatalf("missing strategy %s", want)
		}
	}
}
