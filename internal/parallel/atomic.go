// Package parallel implements the §3.3 parallelization schemes for the IGD
// aggregate on a single-node multicore system:
//
//   - ModelAverage: the "pure UDA" plan — shared-nothing segments each train
//     an independent model, merged by averaging (Zinkevich et al.). Near
//     linear speed-up per epoch, but worse convergence per epoch.
//   - Shared-memory workers updating ONE model concurrently, in three
//     flavors: Lock (a global mutex per gradient step), AIG (per-component
//     atomic compare-and-exchange, "Atomic Incremental Gradient"), and
//     NoLock (Hogwild!: unsynchronized read-modify-write, lost updates
//     accepted).
package parallel

import (
	"math"
	"sync/atomic"

	"bismarck/internal/vector"
)

// AtomicModel stores model components as float64 bit patterns in uint64
// cells so they can be updated with sync/atomic. Two update disciplines are
// provided: AddCAS (a compare-and-exchange retry loop = the paper's AIG
// scheme) and AddRacy (atomic load then atomic store with no
// read-modify-write atomicity = NoLock/Hogwild semantics: concurrent
// updates may be lost, which the convergence theory tolerates, while the
// use of atomics keeps each individual read/write untorn).
type AtomicModel struct {
	bits []uint64
	cas  bool // true = AIG, false = NoLock
}

// NewAtomicModel returns a zero model of dimension d; cas selects the AIG
// (true) or NoLock (false) update discipline for Add.
func NewAtomicModel(d int, cas bool) *AtomicModel {
	return &AtomicModel{bits: make([]uint64, d), cas: cas}
}

// SetFrom copies w into the model (not concurrency-safe; call before
// starting workers).
func (m *AtomicModel) SetFrom(w vector.Dense) {
	for i, x := range w {
		m.bits[i] = math.Float64bits(x)
	}
}

// Dim implements core.Model.
func (m *AtomicModel) Dim() int { return len(m.bits) }

// Get implements core.Model with an atomic load.
func (m *AtomicModel) Get(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&m.bits[i]))
}

// Add implements core.Model using the configured discipline.
func (m *AtomicModel) Add(i int, delta float64) {
	if m.cas {
		m.AddCAS(i, delta)
	} else {
		m.AddRacy(i, delta)
	}
}

// AddCAS adds delta to component i with a compare-and-exchange loop —
// per-component locking in the AIG sense: no update is ever lost.
func (m *AtomicModel) AddCAS(i int, delta float64) {
	for {
		old := atomic.LoadUint64(&m.bits[i])
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&m.bits[i], old, nw) {
			return
		}
	}
}

// AddRacy adds delta with a plain load-compute-store. Concurrent writers
// may overwrite each other's additions (lost updates) — exactly the NoLock
// behaviour the Hogwild! analysis shows is harmless for sparse problems.
func (m *AtomicModel) AddRacy(i int, delta float64) {
	old := atomic.LoadUint64(&m.bits[i])
	atomic.StoreUint64(&m.bits[i], math.Float64bits(math.Float64frombits(old)+delta))
}

// Snapshot implements core.Model.
func (m *AtomicModel) Snapshot() vector.Dense {
	w := vector.NewDense(len(m.bits))
	for i := range m.bits {
		w[i] = math.Float64frombits(atomic.LoadUint64(&m.bits[i]))
	}
	return w
}
