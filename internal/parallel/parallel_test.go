package parallel

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

func TestAtomicModelBasics(t *testing.T) {
	m := NewAtomicModel(3, true)
	m.SetFrom(vector.Dense{1, 2, 3})
	if m.Get(1) != 2 || m.Dim() != 3 {
		t.Fatal("SetFrom/Get")
	}
	m.Add(1, 0.5)
	if m.Get(1) != 2.5 {
		t.Fatal("Add")
	}
	s := m.Snapshot()
	if s[0] != 1 || s[1] != 2.5 || s[2] != 3 {
		t.Fatalf("Snapshot = %v", s)
	}
}

func TestAtomicModelCASLosesNoUpdates(t *testing.T) {
	m := NewAtomicModel(1, true)
	const G, N = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				m.AddCAS(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get(0); got != G*N {
		t.Fatalf("CAS lost updates: %v != %v", got, G*N)
	}
}

func TestAtomicModelRacyMayLoseButStaysSane(t *testing.T) {
	m := NewAtomicModel(1, false)
	const G, N = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				m.AddRacy(0, 1)
			}
		}()
	}
	wg.Wait()
	got := m.Get(0)
	// Lost updates are allowed, but the value must be a plausible count:
	// positive, at most the true total, and not torn garbage.
	if got <= 0 || got > G*N || got != math.Trunc(got) {
		t.Fatalf("NoLock result implausible: %v", got)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range Modes() {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
	if Mode(99).String() != "Mode(99)" {
		t.Fatal("unknown mode string")
	}
}

// buildLRTable makes a linearly separable dense dataset.
func buildLRTable(t *testing.T, n, d int, seed int64) (*engine.Table, *tasks.LR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := engine.NewMemTable("d", tasks.DenseExampleSchema)
	truth := make(vector.Dense, d)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		x := make(vector.Dense, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := float64(1)
		if vector.Dot(truth, x) < 0 {
			y = -1
		}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	return tbl, tasks.NewLR(d)
}

func TestAllModesConvergeOnLR(t *testing.T) {
	tbl, task := buildLRTable(t, 500, 8, 1)
	base, err := (&core.Trainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 20, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes() {
		tr := &Trainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 20, Workers: 4, Mode: mode, Seed: 1}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Every scheme must reach a loss in the same ballpark as sequential
		// (model averaging is worse per epoch but not catastrophically).
		limit := base.FinalLoss()*3 + 10
		if res.FinalLoss() > limit {
			t.Fatalf("%v: final loss %g vs sequential %g", mode, res.FinalLoss(), base.FinalLoss())
		}
	}
}

func TestPureUDAWorseThanSharedMemoryPerEpoch(t *testing.T) {
	// The paper's Figure 9(A): with few epochs, model averaging trails the
	// shared-memory schemes in objective value. Use a harder dataset so the
	// gap is visible.
	tbl, task := buildLRTable(t, 1000, 16, 2)
	run := func(mode Mode) float64 {
		tr := &Trainer{Task: task, Step: core.ConstantStep{A: 0.2}, MaxEpochs: 2, Workers: 8, Mode: mode, Seed: 2}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return res.FinalLoss()
	}
	avg := run(PureUDA)
	nolock := run(NoLock)
	if nolock >= avg {
		t.Fatalf("expected NoLock (%g) < PureUDA (%g) after 2 epochs", nolock, avg)
	}
}

func TestTrainerValidation(t *testing.T) {
	tbl, task := buildLRTable(t, 10, 2, 3)
	if _, err := (&Trainer{Task: task, Step: core.ConstantStep{A: 1}}).Run(tbl); err == nil {
		t.Fatal("MaxEpochs=0 must error")
	}
	if _, err := (&Trainer{Task: task, MaxEpochs: 1}).Run(tbl); err == nil {
		t.Fatal("nil Step must error")
	}
	if _, err := (&Trainer{Task: task, Step: core.ConstantStep{A: 1}, MaxEpochs: 1, Mode: Mode(42)}).Run(tbl); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestTrainerSharedMemoryRegion(t *testing.T) {
	tbl, task := buildLRTable(t, 50, 4, 4)
	shm := engine.NewSharedMemory()
	tr := &Trainer{Task: task, Step: core.ConstantStep{A: 0.1}, MaxEpochs: 3, Workers: 2, Mode: NoLock, Seed: 1, Shm: shm}
	if _, err := tr.Run(tbl); err != nil {
		t.Fatal(err)
	}
	if shm.Len() != 0 {
		t.Fatal("shared region leaked")
	}
}

func TestTrainerTargetLossStops(t *testing.T) {
	tbl, task := buildLRTable(t, 300, 4, 5)
	tr := &Trainer{Task: task, Step: core.DefaultStep(0.5), MaxEpochs: 100, Workers: 4, Mode: NoLock,
		TargetLoss: 80, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Epochs >= 100 {
		t.Fatalf("expected early stop, got %d epochs", res.Epochs)
	}
}

func TestLockModeMatchesSequentialWithOneWorker(t *testing.T) {
	tbl, task := buildLRTable(t, 200, 4, 6)
	seq, err := (&core.Trainer{Task: task, Step: core.ConstantStep{A: 0.1}, MaxEpochs: 3, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Trainer{Task: task, Step: core.ConstantStep{A: 0.1}, MaxEpochs: 3, Workers: 1, Mode: Lock, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d := vector.Dist2(seq.Model, par.Model); d > 1e-9 {
		t.Fatalf("1-worker Lock diverges from sequential by %g", d)
	}
}

func TestAIGModeMatchesSequentialWithOneWorker(t *testing.T) {
	tbl, task := buildLRTable(t, 200, 4, 7)
	seq, err := (&core.Trainer{Task: task, Step: core.ConstantStep{A: 0.1}, MaxEpochs: 3, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Trainer{Task: task, Step: core.ConstantStep{A: 0.1}, MaxEpochs: 3, Workers: 1, Mode: AIG, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d := vector.Dist2(seq.Model, par.Model); d > 1e-9 {
		t.Fatalf("1-worker AIG diverges from sequential by %g", d)
	}
}
