package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// This file implements the shared-nothing sharded training mode: partition
// the data into K shard heaps, run one epoch worker per shard against a
// private model replica, and merge the replicas at every epoch boundary by
// row-weighted model averaging (Zinkevich et al. — the same algebra the
// pure-UDA merge uses, applied across shards instead of page segments).
// Unlike the shared-memory modes, workers share no mutable state during an
// epoch: each scans its own shard's decoded-row cache and updates its own
// dense replica, which is what lets the mode scale past one shared model
// and is the seam distributed backends hang off — a ShardRunner does not
// have to scan anything locally; internal/dist implements it with one
// remote round trip per epoch to an executor process.

// ShardRunner is one shard's training endpoint: the per-shard seam of the
// sharded epoch. RunEpoch must leave the shard's post-epoch model replica
// in replica (len == dim), starting from w with step size alpha; LossAt
// returns the shard's summed example loss at w; Rows is the shard's row
// count, the weight of its replica in the merge. Implementations are
// called from one goroutine per shard per pass — a runner never races with
// itself, but runners sharing a resource (a connection to one executor)
// must serialize internally.
type ShardRunner interface {
	RunEpoch(epoch int, w vector.Dense, alpha float64, replica vector.Dense) error
	LossAt(w vector.Dense) (float64, error)
	Rows() int
}

// ShardedEpoch drives one shared-nothing epoch (and the matching loss
// pass) over K shard runners. It is the reusable steady-state core of
// ShardedTrainer (and of dist.Trainer, whose runners are remote executor
// shards), exposed so benchmarks and allocation tests measure the exact
// trainer path: all per-shard state — runners, replicas, partial-loss
// slots — is allocated once at construction, and Run itself allocates
// nothing per row.
type ShardedEpoch struct {
	task     core.Task
	runners  []ShardRunner
	replicas []vector.Dense
	partials []float64
	weights  []float64
	total    float64

	// Per-call state, published to workers before the goroutines spawn.
	cur   vector.Dense // model the epoch starts from / loss is evaluated at
	alpha float64
	epoch int

	errs []error
	wg   sync.WaitGroup
}

// localShard is the in-process ShardRunner: one shard heap's scan source,
// rng stream, and the pre-bound callbacks the scans run — bound once so a
// steady-state epoch creates no closures.
type localShard struct {
	task    core.Task
	src     engine.Relation
	prepare func(epoch int, rng *rand.Rand) error
	rng     *rand.Rand
	rows    int

	// Per-call state, set at the top of RunEpoch / LossAt.
	model   core.DenseModel // replica the epoch steps (aliases the caller's)
	cur     vector.Dense    // model LossAt evaluates
	alpha   float64
	partial float64
	stepFn  func(engine.Tuple) error
	lossFn  func(engine.Tuple) error
}

func (ls *localShard) step(tp engine.Tuple) error {
	ls.task.Step(&ls.model, tp, ls.alpha)
	return nil
}

func (ls *localShard) loss(tp engine.Tuple) error {
	ls.partial += ls.task.Loss(ls.cur, tp)
	return nil
}

// RunEpoch applies the shard's ordering, copies w into replica, and scans
// the shard performing gradient steps with step size alpha.
func (ls *localShard) RunEpoch(epoch int, w vector.Dense, alpha float64, replica vector.Dense) error {
	if err := ls.prepare(epoch, ls.rng); err != nil {
		return err
	}
	copy(replica, w)
	ls.model.W, ls.alpha = replica, alpha
	return ls.src.Scan(ls.stepFn)
}

// LossAt sums the shard's example losses at w.
func (ls *localShard) LossAt(w vector.Dense) (float64, error) {
	ls.cur, ls.partial = w, 0
	if err := ls.src.Scan(ls.lossFn); err != nil {
		return 0, err
	}
	return ls.partial, nil
}

// Rows is the shard's row count (its merge weight).
func (ls *localShard) Rows() int { return ls.rows }

// NewShardedEpoch builds in-process per-shard runners over a partitioned
// table. Shard i's ordering runs off its own rng stream seeded seed+i, so
// shard 0 of a 1-shard partition replays exactly the sequential trainer's
// stream (the determinism the K=1 parity test pins down).
func NewShardedEpoch(task core.Task, st *engine.ShardedTable, order core.OrderStrategy, seed int64) (*ShardedEpoch, error) {
	if order == nil {
		order = core.NoOrder{}
	}
	runners := make([]ShardRunner, st.NumShards())
	for i, rows := range st.RowCounts() {
		src, prepare, err := core.EpochSource(st.Shard(i), order, engine.Profile{})
		if err != nil {
			return nil, err
		}
		ls := &localShard{task: task, src: src, prepare: prepare,
			rng: rand.New(rand.NewSource(seed + int64(i))), rows: rows}
		ls.stepFn = ls.step
		ls.lossFn = ls.loss
		runners[i] = ls
	}
	return NewShardedEpochRunners(task, runners)
}

// NewShardedEpochRunners builds the epoch driver over caller-supplied
// shard runners — the constructor distributed backends use, handing in one
// remote runner per shard. Replica buffers and merge weights (from each
// runner's Rows) are allocated here, once.
func NewShardedEpochRunners(task core.Task, runners []ShardRunner) (*ShardedEpoch, error) {
	if len(runners) == 0 {
		return nil, fmt.Errorf("parallel: sharded epoch needs at least one shard runner")
	}
	k := len(runners)
	se := &ShardedEpoch{
		task:     task,
		runners:  runners,
		replicas: make([]vector.Dense, k),
		partials: make([]float64, k),
		weights:  make([]float64, k),
		errs:     make([]error, k),
	}
	for i, r := range runners {
		se.replicas[i] = vector.NewDense(task.Dim())
		se.weights[i] = float64(r.Rows())
		se.total += se.weights[i]
	}
	return se, nil
}

// resetErrs clears the per-shard error slots before a pass. The slots are
// reused across Run and Loss calls; without the explicit reset, a pass
// whose worker bailed before reaching its slot assignment (a panic path, a
// future early return) could leak a previous pass's failure into this
// one's verdict — a failed Run must never make a later Loss report stale
// errors, and vice versa.
func (se *ShardedEpoch) resetErrs() {
	for i := range se.errs {
		se.errs[i] = nil
	}
}

// Run executes one shared-nothing epoch: every runner starts from w,
// applies its shard's ordering, performs its shard's gradient steps with
// step size alpha, and the replicas are merged back into w by row-weighted
// averaging. A worker error — or panic — fails the epoch (and with it the
// statement), never the process; w is then left unchanged, since the merge
// only runs when every shard finished.
func (se *ShardedEpoch) Run(epoch int, w vector.Dense, alpha float64) error {
	se.resetErrs()
	se.cur, se.alpha, se.epoch = w, alpha, epoch
	for i := range se.runners {
		se.wg.Add(1)
		go se.runWorker(i)
	}
	se.wg.Wait()
	for _, err := range se.errs {
		if err != nil {
			return err
		}
	}
	if se.total == 0 {
		return nil // empty table: nothing trained, w unchanged
	}
	for j := range w {
		w[j] = 0
	}
	for i := range se.runners {
		if se.weights[i] == 0 {
			continue
		}
		vector.Axpy(w, se.replicas[i], se.weights[i]/se.total)
	}
	return nil
}

func (se *ShardedEpoch) runWorker(i int) {
	defer se.wg.Done()
	defer se.recoverInto(i)
	se.errs[i] = se.runners[i].RunEpoch(se.epoch, se.cur, se.alpha, se.replicas[i])
}

// Loss evaluates the total objective of w across all shards in parallel:
// each worker sums its shard's example losses (reading the shared w, which
// no one mutates during the pass) and the partials are reduced in shard
// order, so the sum is deterministic for a fixed partitioning.
func (se *ShardedEpoch) Loss(w vector.Dense) (float64, error) {
	se.resetErrs()
	se.cur = w
	for i := range se.runners {
		se.wg.Add(1)
		go se.lossWorker(i)
	}
	se.wg.Wait()
	var sum float64
	for i, err := range se.errs {
		if err != nil {
			return 0, err
		}
		sum += se.partials[i]
	}
	if r, ok := se.task.(core.Regularized); ok {
		sum += r.RegPenalty(w)
	}
	return sum, nil
}

func (se *ShardedEpoch) lossWorker(i int) {
	defer se.wg.Done()
	defer se.recoverInto(i)
	se.partials[i], se.errs[i] = se.runners[i].LossAt(se.cur)
}

// recoverInto converts a worker panic into that shard's error slot: one
// crashing shard fails the training statement, not the daemon.
func (se *ShardedEpoch) recoverInto(i int) {
	if r := recover(); r != nil {
		se.errs[i] = fmt.Errorf("parallel: shard %d worker panicked: %v", i, r)
	}
}

// DriveConfig is the convergence bookkeeping of one sharded epoch loop,
// shared between the in-process ShardedTrainer and distributed trainers
// built on remote runners. Field meanings mirror core.Trainer.
type DriveConfig struct {
	Task       core.Task
	Step       core.StepRule
	MaxEpochs  int
	RelTol     float64
	TargetLoss float64
	Seed       int64
	InitModel  vector.Dense
	SkipLoss   bool
	Deadline   time.Time
}

// Drive runs the Bismarck epoch loop over a built ShardedEpoch: run an
// epoch, merge, compute the loss, test convergence, repeat — the single
// loop both the in-process and the distributed sharded trainers share.
func Drive(se *ShardedEpoch, cfg DriveConfig) (*core.Result, error) {
	if cfg.MaxEpochs <= 0 {
		return nil, fmt.Errorf("parallel: MaxEpochs must be > 0")
	}
	if cfg.Step == nil {
		return nil, fmt.Errorf("parallel: Step is required")
	}
	w := cfg.InitModel
	if w == nil {
		w = core.InitialModel(cfg.Task, cfg.Seed)
	} else {
		w = w.Clone()
	}

	res := &core.Result{}
	start := time.Now()
	prevLoss := math.NaN()
	for e := 0; e < cfg.MaxEpochs; e++ {
		if !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline) {
			res.Model = w
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		epochStart := time.Now()
		if err := se.Run(e, w, cfg.Step.Alpha(e)); err != nil {
			return nil, err
		}
		res.Epochs = e + 1
		res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))

		if !cfg.SkipLoss {
			loss, err := se.Loss(w)
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
			if cfg.TargetLoss != 0 && loss <= cfg.TargetLoss {
				res.Converged = true
				break
			}
			if cfg.RelTol > 0 && !math.IsNaN(prevLoss) {
				den := math.Abs(prevLoss)
				if den == 0 {
					den = 1
				}
				if math.Abs(prevLoss-loss)/den < cfg.RelTol {
					res.Converged = true
					break
				}
			}
			prevLoss = loss
		}
	}
	res.Model = w
	res.Total = time.Since(start)
	return res, nil
}

// ShardedTrainer runs the Bismarck epoch loop in the shared-nothing
// sharded mode, alongside the shared-memory Trainer: the table is
// partitioned once into Shards shard heaps, every epoch runs one worker
// per shard against a private replica, and the replicas merge by
// row-weighted averaging. Convergence bookkeeping (losses, RelTol,
// TargetLoss, Deadline) mirrors core.Trainer; with Shards=1 the run is
// bit-identical to the sequential trainer.
type ShardedTrainer struct {
	Task      core.Task
	Step      core.StepRule
	MaxEpochs int
	// Shards is the partition count K (>= 1); each shard gets one worker.
	Shards int
	// Strategy selects row-to-shard assignment (round-robin or hash).
	Strategy engine.ShardStrategy
	// RelTol / TargetLoss mirror core.Trainer.
	RelTol     float64
	TargetLoss float64
	Order      core.OrderStrategy
	Seed       int64
	InitModel  vector.Dense
	SkipLoss   bool
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
}

// Run partitions the table and trains the task, reporting the result.
func (tr *ShardedTrainer) Run(tbl *engine.Table) (*core.Result, error) {
	if tr.MaxEpochs <= 0 {
		return nil, fmt.Errorf("parallel: MaxEpochs must be > 0")
	}
	if tr.Step == nil {
		return nil, fmt.Errorf("parallel: Step is required")
	}
	if tr.Shards < 1 {
		return nil, fmt.Errorf("parallel: Shards must be >= 1, got %d", tr.Shards)
	}
	sharded, err := engine.ShardTable(tbl, tr.Shards, tr.Strategy)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()
	se, err := NewShardedEpoch(tr.Task, sharded, tr.Order, tr.Seed)
	if err != nil {
		return nil, err
	}
	return Drive(se, DriveConfig{
		Task: tr.Task, Step: tr.Step, MaxEpochs: tr.MaxEpochs,
		RelTol: tr.RelTol, TargetLoss: tr.TargetLoss, Seed: tr.Seed,
		InitModel: tr.InitModel, SkipLoss: tr.SkipLoss, Deadline: tr.Deadline,
	})
}
