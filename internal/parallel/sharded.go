package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// This file implements the shared-nothing sharded training mode: partition
// the data into K shard heaps, run one epoch worker per shard against a
// private model replica, and merge the replicas at every epoch boundary by
// row-weighted model averaging (Zinkevich et al. — the same algebra the
// pure-UDA merge uses, applied across shards instead of page segments).
// Unlike the shared-memory modes, workers share no mutable state during an
// epoch: each scans its own shard's decoded-row cache and updates its own
// dense replica, which is what lets the mode scale past one shared model
// and is the seam later distributed backends hang off.

// ShardedEpoch drives one shared-nothing epoch (and the matching loss
// pass) over a partitioned table. It is the reusable steady-state core of
// ShardedTrainer, exposed so benchmarks and allocation tests measure the
// exact trainer path: all per-shard state — epoch sources, replicas, step
// closures, partial-loss accumulators — is allocated once at construction,
// and Run itself allocates nothing per row.
type ShardedEpoch struct {
	task     core.Task
	prepares []func(epoch int, rng *rand.Rand) error
	rngs     []*rand.Rand
	workers  []*shardWorker
	weights  []float64
	total    float64

	// Per-call state, published to workers before the goroutines spawn.
	cur   vector.Dense // model the epoch starts from / loss is evaluated at
	alpha float64
	epoch int

	errs []error
	wg   sync.WaitGroup
}

// shardWorker is one shard's private training state: its scan source, its
// model replica, and the pre-bound callbacks the scans run — bound once so
// a steady-state epoch creates no closures.
type shardWorker struct {
	se      *ShardedEpoch
	src     engine.Relation
	model   core.DenseModel // W is this shard's replica
	partial float64         // loss accumulator of the last Loss pass
	stepFn  func(engine.Tuple) error
	lossFn  func(engine.Tuple) error
}

func (sw *shardWorker) step(tp engine.Tuple) error {
	sw.se.task.Step(&sw.model, tp, sw.se.alpha)
	return nil
}

func (sw *shardWorker) loss(tp engine.Tuple) error {
	sw.partial += sw.se.task.Loss(sw.se.cur, tp)
	return nil
}

// NewShardedEpoch builds the per-shard state over a partitioned table.
// Shard i's ordering runs off its own rng stream seeded seed+i, so shard 0
// of a 1-shard partition replays exactly the sequential trainer's stream
// (the determinism the K=1 parity test pins down).
func NewShardedEpoch(task core.Task, st *engine.ShardedTable, order core.OrderStrategy, seed int64) (*ShardedEpoch, error) {
	if order == nil {
		order = core.NoOrder{}
	}
	k := st.NumShards()
	se := &ShardedEpoch{
		task:     task,
		prepares: make([]func(int, *rand.Rand) error, k),
		rngs:     make([]*rand.Rand, k),
		workers:  make([]*shardWorker, k),
		weights:  make([]float64, k),
		errs:     make([]error, k),
	}
	for i, rows := range st.RowCounts() {
		src, prepare, err := core.EpochSource(st.Shard(i), order, engine.Profile{})
		if err != nil {
			return nil, err
		}
		se.prepares[i] = prepare
		se.rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
		sw := &shardWorker{se: se, src: src}
		sw.model.W = vector.NewDense(task.Dim())
		sw.stepFn = sw.step
		sw.lossFn = sw.loss
		se.workers[i] = sw
		se.weights[i] = float64(rows)
		se.total += float64(rows)
	}
	return se, nil
}

// Run executes one shared-nothing epoch: every worker copies w into its
// replica, applies its shard's ordering, scans its shard performing
// gradient steps with step size alpha, and the replicas are merged back
// into w by row-weighted averaging. A worker error — or panic — fails the
// epoch (and with it the statement), never the process; w is then left
// unchanged, since the merge only runs when every shard finished.
func (se *ShardedEpoch) Run(epoch int, w vector.Dense, alpha float64) error {
	se.cur, se.alpha, se.epoch = w, alpha, epoch
	for i := range se.workers {
		se.wg.Add(1)
		go se.runWorker(i)
	}
	se.wg.Wait()
	for _, err := range se.errs {
		if err != nil {
			return err
		}
	}
	if se.total == 0 {
		return nil // empty table: nothing trained, w unchanged
	}
	for j := range w {
		w[j] = 0
	}
	for i, sw := range se.workers {
		if se.weights[i] == 0 {
			continue
		}
		vector.Axpy(w, sw.model.W, se.weights[i]/se.total)
	}
	return nil
}

func (se *ShardedEpoch) runWorker(i int) {
	defer se.wg.Done()
	defer se.recoverInto(i)
	sw := se.workers[i]
	if err := se.prepares[i](se.epoch, se.rngs[i]); err != nil {
		se.errs[i] = err
		return
	}
	copy(sw.model.W, se.cur)
	se.errs[i] = sw.src.Scan(sw.stepFn)
}

// Loss evaluates the total objective of w across all shards in parallel:
// each worker sums its shard's example losses (reading the shared w, which
// no one mutates during the pass) and the partials are reduced in shard
// order, so the sum is deterministic for a fixed partitioning.
func (se *ShardedEpoch) Loss(w vector.Dense) (float64, error) {
	se.cur = w
	for i := range se.workers {
		se.wg.Add(1)
		go se.lossWorker(i)
	}
	se.wg.Wait()
	var sum float64
	for i, err := range se.errs {
		if err != nil {
			return 0, err
		}
		sum += se.workers[i].partial
	}
	if r, ok := se.task.(core.Regularized); ok {
		sum += r.RegPenalty(w)
	}
	return sum, nil
}

func (se *ShardedEpoch) lossWorker(i int) {
	defer se.wg.Done()
	defer se.recoverInto(i)
	sw := se.workers[i]
	sw.partial = 0
	se.errs[i] = sw.src.Scan(sw.lossFn)
}

// recoverInto converts a worker panic into that shard's error slot: one
// crashing shard fails the training statement, not the daemon.
func (se *ShardedEpoch) recoverInto(i int) {
	if r := recover(); r != nil {
		se.errs[i] = fmt.Errorf("parallel: shard %d worker panicked: %v", i, r)
	}
}

// ShardedTrainer runs the Bismarck epoch loop in the shared-nothing
// sharded mode, alongside the shared-memory Trainer: the table is
// partitioned once into Shards shard heaps, every epoch runs one worker
// per shard against a private replica, and the replicas merge by
// row-weighted averaging. Convergence bookkeeping (losses, RelTol,
// TargetLoss, Deadline) mirrors core.Trainer; with Shards=1 the run is
// bit-identical to the sequential trainer.
type ShardedTrainer struct {
	Task      core.Task
	Step      core.StepRule
	MaxEpochs int
	// Shards is the partition count K (>= 1); each shard gets one worker.
	Shards int
	// Strategy selects row-to-shard assignment (round-robin or hash).
	Strategy engine.ShardStrategy
	// RelTol / TargetLoss mirror core.Trainer.
	RelTol     float64
	TargetLoss float64
	Order      core.OrderStrategy
	Seed       int64
	InitModel  vector.Dense
	SkipLoss   bool
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
}

// Run partitions the table and trains the task, reporting the result.
func (tr *ShardedTrainer) Run(tbl *engine.Table) (*core.Result, error) {
	if tr.MaxEpochs <= 0 {
		return nil, fmt.Errorf("parallel: MaxEpochs must be > 0")
	}
	if tr.Step == nil {
		return nil, fmt.Errorf("parallel: Step is required")
	}
	if tr.Shards < 1 {
		return nil, fmt.Errorf("parallel: Shards must be >= 1, got %d", tr.Shards)
	}
	sharded, err := engine.ShardTable(tbl, tr.Shards, tr.Strategy)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()
	se, err := NewShardedEpoch(tr.Task, sharded, tr.Order, tr.Seed)
	if err != nil {
		return nil, err
	}

	w := tr.InitModel
	if w == nil {
		w = core.InitialModel(tr.Task, tr.Seed)
	} else {
		w = w.Clone()
	}

	res := &core.Result{}
	start := time.Now()
	prevLoss := math.NaN()
	for e := 0; e < tr.MaxEpochs; e++ {
		if !tr.Deadline.IsZero() && time.Now().After(tr.Deadline) {
			res.Model = w
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		epochStart := time.Now()
		if err := se.Run(e, w, tr.Step.Alpha(e)); err != nil {
			return nil, err
		}
		res.Epochs = e + 1
		res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))

		if !tr.SkipLoss {
			loss, err := se.Loss(w)
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
			if tr.TargetLoss != 0 && loss <= tr.TargetLoss {
				res.Converged = true
				break
			}
			if tr.RelTol > 0 && !math.IsNaN(prevLoss) {
				den := math.Abs(prevLoss)
				if den == 0 {
					den = 1
				}
				if math.Abs(prevLoss-loss)/den < tr.RelTol {
					res.Converged = true
					break
				}
			}
			prevLoss = loss
		}
	}
	res.Model = w
	res.Total = time.Since(start)
	return res, nil
}
