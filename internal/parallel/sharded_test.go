package parallel

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// buildRegTable makes a dense regression dataset y = truth·x + noise for
// the lasso parity runs (same (id, vec, label) layout as buildLRTable).
func buildRegTable(t *testing.T, n, d int, seed int64) *engine.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := engine.NewMemTable("d", tasks.DenseExampleSchema)
	truth := make(vector.Dense, d)
	for i := 0; i < d; i += 2 { // sparse truth: every other coefficient zero
		truth[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		x := make(vector.Dense, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := vector.Dot(truth, x) + 0.05*rng.NormFloat64()
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	return tbl
}

// TestShardedK1MatchesSequential pins the determinism claim of DESIGN.md
// §7: a 1-shard sharded run is bit-identical to the sequential trainer —
// same rng stream, same step sequence, and a weight-1.0 average that is
// exact in floating point.
func TestShardedK1MatchesSequential(t *testing.T) {
	tbl, task := buildLRTable(t, 300, 8, 1)
	for _, order := range []core.OrderStrategy{nil, ordering.ShuffleOnce{}, ordering.ShuffleAlways{}} {
		seq, err := (&core.Trainer{Task: task, Step: core.DefaultStep(0.3),
			MaxEpochs: 6, Order: order, Seed: 7}).Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := (&ShardedTrainer{Task: task, Step: core.DefaultStep(0.3),
			MaxEpochs: 6, Shards: 1, Order: order, Seed: 7}).Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if d := vector.Dist2(seq.Model, sh.Model); d != 0 {
			name := "AsStored"
			if order != nil {
				name = order.Name()
			}
			t.Fatalf("%s: 1-shard model diverges from sequential by %g", name, d)
		}
	}
}

// shardedParityTol is the documented convergence-parity tolerance (see
// DESIGN.md §7): with a constant step and the gradient budget scaled by K
// (each sharded epoch advances the merged model by roughly alpha/K — the
// row-weighted average divides every shard's contribution by K), the
// sharded loss must land within 1.2× the sequential 20-epoch loss. On the
// fixed-seed datasets below it typically lands at or below it.
const shardedParityTol = 1.2

// shardedParityBaseEpochs is the sequential baseline's epoch count; the
// K-shard run gets K× that, i.e. the same total effective step budget.
const shardedParityBaseEpochs = 20

// TestShardedConvergenceParityMatrix is the convergence test matrix of the
// issue: LR, SVM and lasso at K ∈ {2, 4, 8}, fixed seeds, sharded loss
// within shardedParityTol of the sequential baseline, under both
// partitioning strategies.
func TestShardedConvergenceParityMatrix(t *testing.T) {
	lrTbl, lrTask := buildLRTable(t, 600, 8, 3)
	svmTbl, _ := buildLRTable(t, 600, 8, 4) // ±1 labels fit SVM too
	regTbl := buildRegTable(t, 600, 8, 5)
	cases := []struct {
		name  string
		tbl   *engine.Table
		task  core.Task
		alpha float64
	}{
		{"lr", lrTbl, lrTask, 0.3},
		{"svm", svmTbl, tasks.NewSVM(8), 0.1},
		{"lasso", regTbl, tasks.NewLasso(8, 0.01), 0.05},
	}
	for _, c := range cases {
		base, err := (&core.Trainer{Task: c.task, Step: core.ConstantStep{A: c.alpha},
			MaxEpochs: shardedParityBaseEpochs, Order: ordering.ShuffleOnce{}, Seed: 11}).Run(c.tbl)
		if err != nil {
			t.Fatalf("%s baseline: %v", c.name, err)
		}
		if !(base.FinalLoss() > 0) || math.IsInf(base.FinalLoss(), 0) {
			t.Fatalf("%s baseline loss degenerate: %g", c.name, base.FinalLoss())
		}
		for _, k := range []int{2, 4, 8} {
			for _, strat := range []engine.ShardStrategy{engine.ShardRoundRobin, engine.ShardHash} {
				tr := &ShardedTrainer{Task: c.task, Step: core.ConstantStep{A: c.alpha},
					MaxEpochs: shardedParityBaseEpochs * k, Shards: k, Strategy: strat,
					Order: ordering.ShuffleOnce{}, Seed: 11}
				res, err := tr.Run(c.tbl)
				if err != nil {
					t.Fatalf("%s K=%d %v: %v", c.name, k, strat, err)
				}
				loss := res.FinalLoss()
				if math.IsNaN(loss) || math.IsInf(loss, 0) {
					t.Fatalf("%s K=%d %v: loss %g", c.name, k, strat, loss)
				}
				if loss > base.FinalLoss()*shardedParityTol {
					t.Errorf("%s K=%d %v: sharded loss %g vs sequential %g (tol %.2fx)",
						c.name, k, strat, loss, base.FinalLoss(), shardedParityTol)
				}
				// Training must actually make progress, not just not explode.
				if len(res.Losses) > 1 && loss >= res.Losses[0] {
					t.Errorf("%s K=%d %v: loss did not improve (%g → %g)",
						c.name, k, strat, res.Losses[0], loss)
				}
			}
		}
	}
}

// TestShardedDeterministicAcrossRuns: the same statement-level inputs give
// the same model bit-for-bit, epoch workers notwithstanding — averaging in
// fixed shard order keeps the merge deterministic.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	tbl, task := buildLRTable(t, 400, 8, 6)
	run := func() vector.Dense {
		tr := &ShardedTrainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 8,
			Shards: 4, Order: ordering.ShuffleAlways{}, Seed: 9}
		res, err := tr.Run(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return res.Model
	}
	a, b := run(), run()
	if d := vector.Dist2(a, b); d != 0 {
		t.Fatalf("two identical sharded runs diverge by %g", d)
	}
}

// panicTask panics on the Nth gradient step — the fault the shard workers
// must contain.
type panicTask struct {
	*tasks.LR
	mu    sync.Mutex
	calls int
	at    int
}

func (p *panicTask) Step(m core.Model, tp engine.Tuple, alpha float64) {
	p.mu.Lock()
	p.calls++
	c := p.calls
	p.mu.Unlock()
	if c >= p.at {
		panic("injected shard worker panic")
	}
	p.LR.Step(m, tp, alpha)
}

// TestShardedWorkerPanicFailsRunNotProcess proves panic containment: a
// panicking shard worker surfaces as a trainer error naming the shard, the
// sibling workers finish their epoch, and the process survives.
func TestShardedWorkerPanicFailsRunNotProcess(t *testing.T) {
	tbl, lr := buildLRTable(t, 200, 4, 8)
	task := &panicTask{LR: lr, at: 50}
	tr := &ShardedTrainer{Task: task, Step: core.ConstantStep{A: 0.1},
		MaxEpochs: 3, Shards: 4, Seed: 1}
	_, err := tr.Run(tbl)
	if err == nil {
		t.Fatal("panicking shard worker must fail the run")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not report the panic: %v", err)
	}
}

// TestShardedTrainersRace runs several sharded trainers concurrently over
// one shared source table — the -race proof that partitioning scans and
// shard workers share no unsynchronized state.
func TestShardedTrainersRace(t *testing.T) {
	tbl, task := buildLRTable(t, 400, 8, 10)
	// Materialize once up front so concurrent ShardTable scans exercise the
	// shared cache path, not a build race.
	if _, err := tbl.Materialize(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	models := make([]vector.Dense, 6)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := &ShardedTrainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 5,
				Shards: 1 + g%4, Order: ordering.ShuffleOnce{}, Seed: 21}
			res, err := tr.Run(tbl)
			if err != nil {
				errs[g] = err
				return
			}
			models[g] = res.Model
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("concurrent trainer %d: %v", g, err)
		}
		if len(models[g]) != task.Dim() {
			t.Fatalf("trainer %d returned truncated model", g)
		}
	}
}

func TestShardedTrainerValidation(t *testing.T) {
	tbl, task := buildLRTable(t, 10, 2, 12)
	if _, err := (&ShardedTrainer{Task: task, Step: core.ConstantStep{A: 1}, Shards: 2}).Run(tbl); err == nil {
		t.Fatal("MaxEpochs=0 must error")
	}
	if _, err := (&ShardedTrainer{Task: task, MaxEpochs: 1, Shards: 2}).Run(tbl); err == nil {
		t.Fatal("nil Step must error")
	}
	if _, err := (&ShardedTrainer{Task: task, Step: core.ConstantStep{A: 1}, MaxEpochs: 1}).Run(tbl); err == nil {
		t.Fatal("Shards=0 must error")
	}
	if _, err := (&ShardedTrainer{Task: task, Step: core.ConstantStep{A: 1}, MaxEpochs: 1,
		Shards: 2, Strategy: engine.ShardStrategy(7)}).Run(tbl); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

// TestShardedEmptyTable: zero rows must train to the unchanged initial
// model, not divide by zero in the merge.
func TestShardedEmptyTable(t *testing.T) {
	tbl := engine.NewMemTable("empty", tasks.DenseExampleSchema)
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	task := tasks.NewLR(4)
	init := vector.Dense{1, 2, 3, 4}
	tr := &ShardedTrainer{Task: task, Step: core.ConstantStep{A: 0.1},
		MaxEpochs: 3, Shards: 4, InitModel: init, SkipLoss: true}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d := vector.Dist2(res.Model, init); d != 0 {
		t.Fatalf("empty-table training changed the model by %g", d)
	}
}

// TestShardedMoreShardsThanRows: empty shards carry zero weight and the
// populated ones still converge.
func TestShardedMoreShardsThanRows(t *testing.T) {
	tbl, task := buildLRTable(t, 5, 3, 13)
	tr := &ShardedTrainer{Task: task, Step: core.ConstantStep{A: 0.1},
		MaxEpochs: 4, Shards: 16, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss()) {
		t.Fatal("NaN loss with empty shards")
	}
}

// TestShardedOverBudgetTableTrainsViaReuse: when the source exceeds the
// materialization budget, shard workers must fall back to the
// reuse-scratch epoch path (no shard may build a decoded cache — see the
// engine-level budget-bypass regression test) and still converge.
func TestShardedOverBudgetTableTrainsViaReuse(t *testing.T) {
	old := engine.MaterializeLimitBytes
	defer func() { engine.MaterializeLimitBytes = old }()

	tbl, task := buildLRTable(t, 300, 8, 15)
	engine.MaterializeLimitBytes = 1
	tr := &ShardedTrainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 5,
		Shards: 4, Order: ordering.ShuffleOnce{}, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss()) || res.FinalLoss() <= 0 {
		t.Fatalf("degenerate loss %g", res.FinalLoss())
	}
	if len(res.Losses) > 1 && res.FinalLoss() >= res.Losses[0] {
		t.Fatalf("no progress on the reuse path (%g → %g)", res.Losses[0], res.FinalLoss())
	}
}

// flakyRunner is a ShardRunner whose passes fail on demand — the fixture
// for the stale-error-slot regression tests below.
type flakyRunner struct {
	rows     int
	failRun  bool
	failLoss bool
	loss     float64
}

func (f *flakyRunner) RunEpoch(epoch int, w vector.Dense, alpha float64, replica vector.Dense) error {
	if f.failRun {
		return errFlakyRun
	}
	copy(replica, w)
	return nil
}

func (f *flakyRunner) LossAt(w vector.Dense) (float64, error) {
	if f.failLoss {
		return 0, errFlakyLoss
	}
	return f.loss, nil
}

func (f *flakyRunner) Rows() int { return f.rows }

var (
	errFlakyRun  = errors.New("flaky: run failed")
	errFlakyLoss = errors.New("flaky: loss failed")
)

// TestShardedStaleErrorNeverLeaksAcrossPasses is the error-slot reset
// regression test: ShardedEpoch reuses one errs slice across Run and Loss,
// so each pass must clear the slots before spawning workers. A Run that
// failed must not make a subsequent healthy Loss report the stale Run
// error — and vice versa.
func TestShardedStaleErrorNeverLeaksAcrossPasses(t *testing.T) {
	task := tasks.NewLR(3)
	sick := &flakyRunner{rows: 10, failRun: true, loss: 1.5}
	fine := &flakyRunner{rows: 20, loss: 2.5}
	se, err := NewShardedEpochRunners(task, []ShardRunner{fine, sick})
	if err != nil {
		t.Fatal(err)
	}
	w := vector.Dense{0.1, 0.2, 0.3}

	// Pass 1: Run fails (shard 1's slot holds errFlakyRun afterwards).
	if err := se.Run(0, w, 0.1); !errors.Is(err, errFlakyRun) {
		t.Fatalf("Run: want errFlakyRun, got %v", err)
	}
	// Pass 2: a healthy Loss must succeed — the stale Run error must not
	// leak into its verdict — and report the true sum plus regularization.
	loss, err := se.Loss(w)
	if err != nil {
		t.Fatalf("stale Run error leaked into Loss: %v", err)
	}
	want := 1.5 + 2.5
	if r, ok := core.Task(task).(core.Regularized); ok {
		want += r.RegPenalty(w)
	}
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("Loss = %g, want %g", loss, want)
	}

	// And the mirror image: a failed Loss must not poison a later Run.
	sick.failRun, sick.failLoss = false, true
	if _, err := se.Loss(w); !errors.Is(err, errFlakyLoss) {
		t.Fatalf("Loss: want errFlakyLoss, got %v", err)
	}
	sick.failLoss = false
	if err := se.Run(1, w, 0.1); err != nil {
		t.Fatalf("stale Loss error leaked into Run: %v", err)
	}
}

// TestShardedRunnersMergeIsRowWeighted pins the merge algebra on the
// runner seam directly: replicas combine weighted by each runner's row
// count, the contract remote executors rely on.
func TestShardedRunnersMergeIsRowWeighted(t *testing.T) {
	task := tasks.NewLR(2)
	a := &constRunner{rows: 30, w: vector.Dense{1, 0}}
	b := &constRunner{rows: 10, w: vector.Dense{0, 1}}
	se, err := NewShardedEpochRunners(task, []ShardRunner{a, b})
	if err != nil {
		t.Fatal(err)
	}
	w := vector.NewDense(2)
	if err := se.Run(0, w, 0.1); err != nil {
		t.Fatal(err)
	}
	want := vector.Dense{0.75, 0.25} // 30/40 · e0 + 10/40 · e1
	if d := vector.Dist2(w, want); d > 1e-24 {
		t.Fatalf("merged model %v, want %v", w, want)
	}
}

// constRunner reports a fixed post-epoch replica regardless of input.
type constRunner struct {
	rows int
	w    vector.Dense
}

func (c *constRunner) RunEpoch(epoch int, w vector.Dense, alpha float64, replica vector.Dense) error {
	copy(replica, c.w)
	return nil
}

func (c *constRunner) LossAt(w vector.Dense) (float64, error) { return 0, nil }
func (c *constRunner) Rows() int                              { return c.rows }
