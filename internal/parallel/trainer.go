package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/vector"
)

// Mode selects the parallelization scheme of §3.3.
type Mode int

// Parallelization schemes.
const (
	// PureUDA is the shared-nothing plan: per-segment models merged by
	// averaging through the engine's standard parallel-aggregate machinery.
	PureUDA Mode = iota
	// Lock is shared memory with a global mutex held for every gradient
	// step; it serializes the workers and shows no speed-up.
	Lock
	// AIG is the Atomic Incremental Gradient scheme: per-component
	// compare-and-exchange updates, no lost writes.
	AIG
	// NoLock is Hogwild!: unsynchronized concurrent updates, lost writes
	// tolerated. The paper's choice for Bismarck.
	NoLock
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case PureUDA:
		return "PureUDA"
	case Lock:
		return "Lock"
	case AIG:
		return "AIG"
	case NoLock:
		return "NoLock"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists all four schemes in Figure 9's order.
func Modes() []Mode { return []Mode{PureUDA, NoLock, Lock, AIG} }

// Trainer runs the Bismarck epoch loop with a parallel IGD aggregate.
type Trainer struct {
	Task      core.Task
	Step      core.StepRule
	MaxEpochs int
	Workers   int
	Mode      Mode
	// RelTol / TargetLoss mirror core.Trainer.
	RelTol     float64
	TargetLoss float64
	Order      core.OrderStrategy
	Profile    engine.Profile // per-call overhead emulation; Segments is ignored (Workers wins)
	Seed       int64
	InitModel  vector.Dense
	SkipLoss   bool
	// Deadline mirrors core.Trainer.Deadline.
	Deadline time.Time
	// Shm, when set, allocates the model in the engine's shared-memory
	// facility under the region name "bismarck.model" (mirroring how the
	// real implementation hosts the model in RDBMS shared memory).
	Shm *engine.SharedMemory
}

// Run trains the task and reports the result.
func (tr *Trainer) Run(tbl *engine.Table) (*core.Result, error) {
	if tr.MaxEpochs <= 0 {
		return nil, fmt.Errorf("parallel: MaxEpochs must be > 0")
	}
	if tr.Step == nil {
		return nil, fmt.Errorf("parallel: Step is required")
	}
	workers := tr.Workers
	if workers <= 0 {
		workers = 1
	}

	if tr.Mode == PureUDA {
		// The engine's built-in segmented aggregation plan already is the
		// pure-UDA scheme; reuse the sequential trainer with a segmented
		// profile.
		p := tr.Profile
		p.Segments = workers
		ct := &core.Trainer{
			Task: tr.Task, Step: tr.Step, MaxEpochs: tr.MaxEpochs,
			RelTol: tr.RelTol, TargetLoss: tr.TargetLoss, Order: tr.Order,
			Profile: p, Seed: tr.Seed, InitModel: tr.InitModel, SkipLoss: tr.SkipLoss,
			Deadline: tr.Deadline,
		}
		return ct.Run(tbl)
	}

	rng := rand.New(rand.NewSource(tr.Seed))
	w0 := tr.InitModel
	if w0 == nil {
		w0 = core.InitialModel(tr.Task, tr.Seed)
	} else {
		w0 = w0.Clone()
	}
	order := tr.Order
	if order == nil {
		order = core.NoOrder{}
	}

	var shmRegion []float64
	if tr.Shm != nil {
		r, err := tr.Shm.Allocate("bismarck.model", tr.Task.Dim())
		if err != nil {
			return nil, err
		}
		shmRegion = r
		defer tr.Shm.Free("bismarck.model")
	}

	// Build the shared model once; it persists across epochs.
	var model core.Model
	var lockedStep func(tp engine.Tuple, alpha float64)
	switch tr.Mode {
	case Lock:
		dm := &core.DenseModel{W: w0.Clone()}
		if shmRegion != nil {
			copy(shmRegion, w0)
			dm.W = shmRegion
		}
		var mu sync.Mutex
		model = dm
		lockedStep = func(tp engine.Tuple, alpha float64) {
			mu.Lock()
			tr.Task.Step(dm, tp, alpha)
			mu.Unlock()
		}
	case AIG, NoLock:
		am := NewAtomicModel(tr.Task.Dim(), tr.Mode == AIG)
		am.SetFrom(w0)
		model = am
	default:
		return nil, fmt.Errorf("parallel: unknown mode %v", tr.Mode)
	}

	// The worker segment scans run over whichever epoch pipeline
	// core.EpochSource picks: steady-state cached epochs with logical
	// shuffles, or the paper-faithful physical reorder + reuse-scratch
	// decode.
	src, prepare, err := core.EpochSource(tbl, order, tr.Profile)
	if err != nil {
		return nil, err
	}

	res := &core.Result{}
	start := time.Now()
	prevLoss := math.NaN()
	for e := 0; e < tr.MaxEpochs; e++ {
		if !tr.Deadline.IsZero() && time.Now().After(tr.Deadline) {
			res.Model = model.Snapshot()
			res.Total = time.Since(start)
			return res, core.ErrDeadline
		}
		epochStart := time.Now()
		if err := prepare(e, rng); err != nil {
			return nil, err
		}
		alpha := tr.Step.Alpha(e)
		var err error
		if tr.Mode == Lock {
			err = engine.RunSharedScanOn(src, workers, tr.Profile, func(_ int, tp engine.Tuple) error {
				lockedStep(tp, alpha)
				return nil
			})
		} else {
			err = engine.RunSharedScanOn(src, workers, tr.Profile, func(_ int, tp engine.Tuple) error {
				tr.Task.Step(model, tp, alpha)
				return nil
			})
		}
		if err != nil {
			return nil, err
		}
		res.Epochs = e + 1
		res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))

		if !tr.SkipLoss {
			w := model.Snapshot()
			if shmRegion != nil {
				copy(shmRegion, w)
			}
			loss, err := core.TotalLoss(tr.Task, w, tbl)
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
			if tr.TargetLoss != 0 && loss <= tr.TargetLoss {
				res.Converged = true
				break
			}
			if tr.RelTol > 0 && !math.IsNaN(prevLoss) {
				den := math.Abs(prevLoss)
				if den == 0 {
					den = 1
				}
				if math.Abs(prevLoss-loss)/den < tr.RelTol {
					res.Converged = true
					break
				}
			}
			prevLoss = loss
		}
	}
	res.Model = model.Snapshot()
	res.Total = time.Since(start)
	return res, nil
}
