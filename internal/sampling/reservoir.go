// Package sampling implements §3.4: reservoir sampling (Vitter), the
// subsampling trainer that vendors ship for data that cannot be shuffled,
// and Bismarck's multiplexed reservoir sampling (MRS), which combines
// gradient steps over the reservoir buffer with gradient steps over the
// dropped tuples to beat subsampling without ever shuffling.
package sampling

import (
	"math/rand"

	"bismarck/internal/engine"
)

// Reservoir maintains a uniform without-replacement sample of the tuples
// offered to it, using the classic algorithm: fill the first m slots, then
// replace slot s with probability m/(m+k) for the k-th further item.
type Reservoir struct {
	buf  []engine.Tuple
	cap  int
	seen int
	rng  *rand.Rand
}

// NewReservoir returns a reservoir holding at most capTuples tuples.
func NewReservoir(capTuples int, rng *rand.Rand) *Reservoir {
	if capTuples < 1 {
		capTuples = 1
	}
	return &Reservoir{buf: make([]engine.Tuple, 0, capTuples), cap: capTuples, rng: rng}
}

// Offer presents one tuple. It returns the tuple that was *dropped* by the
// sampler (nil while the reservoir is still filling): either the offered
// tuple itself or the buffer entry it evicted. MRS feeds the dropped tuple
// to the I/O worker's gradient step, so no data is wasted.
func (r *Reservoir) Offer(t engine.Tuple) engine.Tuple {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return nil
	}
	s := r.rng.Intn(r.seen)
	if s < r.cap {
		dropped := r.buf[s]
		r.buf[s] = t
		return dropped
	}
	return t
}

// Items returns the sampled tuples (aliasing the internal buffer).
func (r *Reservoir) Items() []engine.Tuple { return r.buf }

// Len returns the current number of buffered tuples.
func (r *Reservoir) Len() int { return len(r.buf) }

// Seen returns how many tuples have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// SampleTable scans tbl once and returns a uniform sample of up to
// capTuples rows. The reservoir retains tuples past the scan callback, so
// the scan goes through ScanStable — rows from an already-fresh cache or
// freshly allocated tuples, never the reusable-scratch path, and never a
// cache built just for the sample (which would pin a full decoded copy of
// a table this trainer exists to avoid holding).
func SampleTable(tbl *engine.Table, capTuples int, rng *rand.Rand) ([]engine.Tuple, error) {
	r := NewReservoir(capTuples, rng)
	err := tbl.ScanStable(func(tp engine.Tuple) error {
		r.Offer(tp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r.Items(), nil
}
