package sampling

import (
	"math"
	"math/rand"
	"testing"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

func TestReservoirFillsToCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(5, rng)
	for i := 0; i < 3; i++ {
		if d := r.Offer(engine.Tuple{engine.I64(int64(i))}); d != nil {
			t.Fatal("dropped while filling")
		}
	}
	if r.Len() != 3 || r.Seen() != 3 {
		t.Fatalf("Len=%d Seen=%d", r.Len(), r.Seen())
	}
}

func TestReservoirDropsExactlyOnePerOfferWhenFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewReservoir(4, rng)
	for i := 0; i < 4; i++ {
		r.Offer(engine.Tuple{engine.I64(int64(i))})
	}
	for i := 4; i < 100; i++ {
		d := r.Offer(engine.Tuple{engine.I64(int64(i))})
		if d == nil {
			t.Fatalf("offer %d dropped nothing though reservoir is full", i)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d after overflow", r.Len())
	}
}

// Statistical check: every item has (approximately) equal probability of
// ending in the reservoir.
func TestReservoirUniformity(t *testing.T) {
	const n, capN, trials = 20, 5, 6000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(3))
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir(capN, rng)
		for i := 0; i < n; i++ {
			r.Offer(engine.Tuple{engine.I64(int64(i))})
		}
		for _, tp := range r.Items() {
			counts[tp[0].Int]++
		}
	}
	want := float64(trials) * capN / n // expected inclusions per item
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("item %d sampled %d times, want ≈%.0f (±15%%)", i, c, want)
		}
	}
}

func TestReservoirMinimumCapacity(t *testing.T) {
	r := NewReservoir(0, rand.New(rand.NewSource(4)))
	r.Offer(engine.Tuple{engine.I64(1)})
	if r.Len() != 1 {
		t.Fatal("cap<1 should clamp to 1")
	}
}

func TestSampleTable(t *testing.T) {
	tbl := engine.NewMemTable("t", engine.Schema{{Name: "id", Type: engine.TInt64}})
	for i := 0; i < 100; i++ {
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i))})
	}
	got, err := SampleTable(tbl, 10, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("sample size %d", len(got))
	}
	seen := map[int64]bool{}
	for _, tp := range got {
		if seen[tp[0].Int] {
			t.Fatal("duplicate in without-replacement sample")
		}
		seen[tp[0].Int] = true
	}
}

func lrTable(t *testing.T, n int, seed int64) (*engine.Table, *tasks.LR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := engine.NewMemTable("d", tasks.DenseExampleSchema)
	for i := 0; i < n; i++ {
		y, off := 1.0, 1.5
		if i < n/2 {
			y, off = -1.0, -1.5
		}
		x := vector.Dense{off + 0.5*rng.NormFloat64(), rng.NormFloat64()}
		tbl.MustInsert(engine.Tuple{engine.I64(int64(i)), engine.DenseV(x), engine.F64(y)})
	}
	// Clustered by label: the pathological storage order.
	return tbl, tasks.NewLR(2)
}

func TestSubsampleTrainerLearns(t *testing.T) {
	tbl, task := lrTable(t, 400, 1)
	tr := &SubsampleTrainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: 20, BufCap: 40, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0] {
		t.Fatalf("subsampling did not improve: %g -> %g", res.Losses[0], res.FinalLoss())
	}
}

func TestSubsampleTrainerValidation(t *testing.T) {
	tbl, task := lrTable(t, 10, 2)
	if _, err := (&SubsampleTrainer{Task: task, Step: core.ConstantStep{A: 1}, BufCap: 5}).Run(tbl); err == nil {
		t.Fatal("MaxEpochs=0 must error")
	}
	if _, err := (&SubsampleTrainer{Task: task, Step: core.ConstantStep{A: 1}, MaxEpochs: 1}).Run(tbl); err == nil {
		t.Fatal("BufCap=0 must error")
	}
}

func TestMRSTrainerLearns(t *testing.T) {
	tbl, task := lrTable(t, 400, 3)
	tr := &MRSTrainer{Task: task, Step: core.DefaultStep(0.3), Passes: 10, BufCap: 40, Seed: 1}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss() >= res.Losses[0] {
		t.Fatalf("MRS did not improve: %g -> %g", res.Losses[0], res.FinalLoss())
	}
	if res.Epochs != 10 || len(res.Losses) != 10 {
		t.Fatalf("epochs=%d losses=%d", res.Epochs, len(res.Losses))
	}
}

func TestMRSBeatsSubsamplingAtEqualBudget(t *testing.T) {
	// The paper's Figure 10: MRS uses the dropped tuples as well, so at the
	// same buffer size it reaches a lower objective in the same number of
	// passes over the data.
	tbl, task := lrTable(t, 800, 4)
	const buf, passes = 80, 8
	sub, err := (&SubsampleTrainer{Task: task, Step: core.DefaultStep(0.3), MaxEpochs: passes, BufCap: buf, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	mrs, err := (&MRSTrainer{Task: task, Step: core.DefaultStep(0.3), Passes: passes, BufCap: buf, Seed: 1}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if mrs.FinalLoss() >= sub.FinalLoss() {
		t.Fatalf("MRS (%g) should beat Subsampling (%g)", mrs.FinalLoss(), sub.FinalLoss())
	}
}

func TestMRSTrainerValidation(t *testing.T) {
	tbl, task := lrTable(t, 10, 5)
	if _, err := (&MRSTrainer{Task: task, Step: core.ConstantStep{A: 1}, BufCap: 5}).Run(tbl); err == nil {
		t.Fatal("Passes=0 must error")
	}
	if _, err := (&MRSTrainer{Task: task, Step: core.ConstantStep{A: 1}, Passes: 1}).Run(tbl); err == nil {
		t.Fatal("BufCap=0 must error")
	}
}
