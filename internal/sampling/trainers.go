package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/engine"
	"bismarck/internal/parallel"
)

// SubsampleTrainer is the classical vendor approach for data too large to
// shuffle: draw one reservoir sample of BufCap tuples in a single pass,
// then run IGD epochs over the in-memory buffer only. It avoids shuffling
// but discards most of the data, adding estimation variance — the weakness
// MRS fixes.
type SubsampleTrainer struct {
	Task      core.Task
	Step      core.StepRule
	MaxEpochs int // epochs over the buffer
	BufCap    int
	Seed      int64
	// LossEvery > 0 evaluates the full-table loss every that many epochs
	// (loss index i corresponds to epoch (i+1)·LossEvery); 1 by default.
	LossEvery int
}

// Run trains on a single reservoir sample of the table.
func (tr *SubsampleTrainer) Run(tbl *engine.Table) (*core.Result, error) {
	if tr.MaxEpochs <= 0 || tr.BufCap <= 0 {
		return nil, fmt.Errorf("sampling: MaxEpochs and BufCap must be > 0")
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	start := time.Now()
	buf, err := SampleTable(tbl, tr.BufCap, rng)
	if err != nil {
		return nil, err
	}
	w := core.InitialModel(tr.Task, tr.Seed)
	dm := &core.DenseModel{W: w}
	every := tr.LossEvery
	if every <= 0 {
		every = 1
	}
	res := &core.Result{}
	for e := 0; e < tr.MaxEpochs; e++ {
		epochStart := time.Now()
		alpha := tr.Step.Alpha(e)
		for _, tp := range buf {
			tr.Task.Step(dm, tp, alpha)
		}
		res.Epochs = e + 1
		res.EpochTimes = append(res.EpochTimes, time.Since(epochStart))
		if (e+1)%every == 0 {
			loss, err := core.TotalLoss(tr.Task, dm.W, tbl)
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
		}
	}
	res.Model = dm.W
	res.Total = time.Since(start)
	return res, nil
}

// MRSTrainer is multiplexed reservoir sampling (Figure 6): an I/O worker
// scans the table, reservoir-sampling into one buffer while taking gradient
// steps on every dropped tuple; a Memory worker concurrently loops gradient
// steps over the buffer filled by the previous pass. The two buffers swap
// after each pass, and both workers update one shared model with NoLock
// (Hogwild) semantics.
type MRSTrainer struct {
	Task   core.Task
	Step   core.StepRule
	Passes int // I/O passes over the full table
	BufCap int
	Seed   int64
	// SkipLoss disables the full-table loss evaluation after each pass.
	SkipLoss bool
	// MemRatio caps the Memory worker at this multiple of the I/O worker's
	// gradient steps (default 1.0). Without a cap, a fast memory worker
	// loops the small buffer far more often than the I/O worker advances,
	// over-weighting the buffered examples; the paper's setup naturally
	// balances the two because the I/O worker runs at disk speed on its own
	// core.
	MemRatio float64
}

// Run trains with MRS and returns per-pass losses.
func (tr *MRSTrainer) Run(tbl *engine.Table) (*core.Result, error) {
	if tr.Passes <= 0 || tr.BufCap <= 0 {
		return nil, fmt.Errorf("sampling: Passes and BufCap must be > 0")
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	model := parallel.NewAtomicModel(tr.Task.Dim(), false)
	model.SetFrom(core.InitialModel(tr.Task, tr.Seed))

	// The Memory worker polls `memBuf` (an atomically published tuple
	// slice) and `alphaBits`, looping gradient steps until told to stop —
	// the paper's "signaled by polling a common integer".
	var memBuf atomic.Pointer[[]engine.Tuple]
	var alphaBits atomic.Uint64
	var stop atomic.Bool
	var memSteps, ioSteps atomic.Int64
	setAlpha := func(a float64) { alphaBits.Store(uint64FromFloat(a)) }
	setAlpha(tr.Step.Alpha(0))
	ratio := tr.MemRatio
	if ratio <= 0 {
		ratio = 1
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			bp := memBuf.Load()
			if bp == nil || len(*bp) == 0 {
				runtime.Gosched()
				continue
			}
			alpha := floatFromUint64(alphaBits.Load())
			for _, tp := range *bp {
				if stop.Load() {
					return
				}
				if float64(memSteps.Load()) > ratio*float64(ioSteps.Load()) {
					runtime.Gosched()
					continue
				}
				tr.Task.Step(model, tp, alpha)
				memSteps.Add(1)
			}
		}
	}()

	res := &core.Result{}
	start := time.Now()
	for pass := 0; pass < tr.Passes; pass++ {
		passStart := time.Now()
		alpha := tr.Step.Alpha(pass)
		setAlpha(alpha)
		resv := NewReservoir(tr.BufCap, rng)
		// ScanStable: the reservoir retains tuples, and MRS must not build
		// a cache for a table it exists to avoid holding twice.
		err := tbl.ScanStable(func(tp engine.Tuple) error {
			if dropped := resv.Offer(tp); dropped != nil {
				tr.Task.Step(model, dropped, alpha)
				ioSteps.Add(1)
			}
			return nil
		})
		if err != nil {
			stop.Store(true)
			wg.Wait()
			return nil, err
		}
		// Swap: the buffer just filled becomes the Memory worker's input.
		items := resv.Items()
		memBuf.Store(&items)
		res.Epochs = pass + 1
		res.EpochTimes = append(res.EpochTimes, time.Since(passStart))
		if !tr.SkipLoss {
			loss, err := core.TotalLoss(tr.Task, model.Snapshot(), tbl)
			if err != nil {
				stop.Store(true)
				wg.Wait()
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
		}
	}
	stop.Store(true)
	wg.Wait()
	res.Model = model.Snapshot()
	res.Total = time.Since(start)
	return res, nil
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }

func floatFromUint64(u uint64) float64 { return math.Float64frombits(u) }
