package serve

import (
	"fmt"
	"testing"
)

// BenchmarkServingPredict measures the steady-state serving path — gate
// admit, epoch-pointer cache hit, pooled-scratch scoring — at two batch
// shapes, serially and with every P hammering it (the -cpu flag scales
// the parallel variant's concurrency). CI runs one iteration of each as
// a smoke test; cmd/bench -bench-json reports the cross-client
// predictions/sec trajectory from the same plane.
func BenchmarkServingPredict(b *testing.B) {
	r := newRig(b, Options{Inflight: 16, MaxQueue: 1 << 16})
	r.train(b, "pos")

	for _, batch := range []int{1, 8} {
		points := make([][]float64, batch)
		for i := range points {
			points[i] = []float64{1, 1}
		}
		b.Run(fmt.Sprintf("batch%d/serial", batch), func(b *testing.B) {
			scores := make([]float64, batch)
			if _, err := r.plane.Predict("m", points, scores); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.plane.Predict("m", points, scores); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch%d/parallel", batch), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				scores := make([]float64, batch)
				for pb.Next() {
					if _, err := r.plane.Predict("m", points, scores); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
