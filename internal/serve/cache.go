package serve

import (
	"io"
	"sync"
	"sync/atomic"

	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

// entry is one cached model pinned to the catalog generation it was
// decoded under. handle is the name's live generation counter
// (engine.Catalog.GenHandle) — the pointer is stored here, not re-fetched,
// so validity is one atomic load away with no map traffic and no
// string-key interface boxing on the hot path.
type entry struct {
	snap   *sqlish.ModelSnapshot
	gen    uint64
	handle *atomic.Uint64
}

// valid reports whether the entry still matches the catalog: any TRAIN
// (swap-retarget), DROP, or re-CREATE of the name bumps the counter and
// every cached reader notices on its next lookup — invalidation without
// broadcast.
func (e *entry) valid() bool { return e.gen == e.handle.Load() }

// epoch is one immutable published cache state. Fills and evictions build
// a new map and swap the pointer; readers only ever load it.
type epoch map[string]*entry

// fillAttempts bounds how many times one Get re-decodes a model whose
// generation moved between the decode and the publish check. One retry is
// the sweet spot: under a hot retrain loop the second decode almost always
// lands after the swap and publishes, so churn converges to one fill per
// generation instead of serializing every request through the fill mutex;
// a model being retrained faster than it can be decoded is served the
// consistent-but-unpublished snapshot rather than looping.
const fillAttempts = 2

// Cache holds hot decoded models for the serving plane. Readers are
// lock-free (one atomic pointer load, one map lookup, one atomic counter
// compare); only the fill path — a cache miss decoding a model from its
// tables — takes the cache mutex, and it holds it as a single-flight
// guard so a thundering herd on a cold name decodes once.
type Cache struct {
	cat  *engine.Catalog
	fill *sqlish.Session // fill-path decoder; guarded by mu
	mu   sync.Mutex      // serializes fills and epoch publication
	cur  atomic.Pointer[epoch]

	hits  atomic.Uint64
	fills atomic.Uint64

	// afterFill, when set, runs after each LoadSnapshot inside the fill
	// lock, before the generation re-check. Tests use it to force the
	// mutated-between-decode-and-publish window deterministically.
	afterFill func(model string)
}

// NewCache builds an empty cache over the catalog. guard is the shared
// cross-session name-lock registry (may be nil for an exclusively owned
// catalog); the fill path locks model names through it like any scoring
// statement.
func NewCache(cat *engine.Catalog, guard sqlish.Guard) *Cache {
	c := &Cache{
		cat:  cat,
		fill: &sqlish.Session{Cat: cat, Out: io.Discard, Guard: guard},
	}
	c.cur.Store(&epoch{})
	return c
}

// Lookup returns the cached snapshot for the model if one is present and
// still matches the catalog generation. This is the hot path: no locks,
// no allocations.
//
//bismarck:noalloc
func (c *Cache) Lookup(model string) (*sqlish.ModelSnapshot, uint64, bool) {
	e, ok := (*c.cur.Load())[model]
	if !ok || !e.valid() {
		return nil, 0, false
	}
	c.hits.Add(1)
	return e.snap, e.gen, true
}

// Get returns the model's snapshot, filling the cache on a miss. A fill
// decodes the model under its name's read lock (LoadSnapshot) and pins
// the result to the generation observed inside that lock window. Filling
// a name that does not exist evicts any stale entry and returns
// *sqlish.UnknownModelError — a dropped model is never served from cache.
func (c *Cache) Get(model string) (*sqlish.ModelSnapshot, uint64, error) {
	snap, gen, _, err := c.get(model)
	return snap, gen, err
}

// get is Get plus the number of decode passes this call performed (0 on a
// hit) — the serving plane's per-model fill accounting.
func (c *Cache) get(model string) (snap *sqlish.ModelSnapshot, gen uint64, filled int, err error) {
	if snap, gen, ok := c.Lookup(model); ok {
		return snap, gen, 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Double-check under the fill lock: a racing fill may have published.
	if snap, gen, ok := c.Lookup(model); ok {
		return snap, gen, 0, nil
	}
	for attempt := 1; ; attempt++ {
		snap, gen, err := c.fill.LoadSnapshot(model)
		if err != nil {
			c.evictLocked(model)
			return nil, 0, attempt, err
		}
		c.fills.Add(1)
		if c.afterFill != nil {
			c.afterFill(model)
		}
		handle := c.cat.GenHandle(model)
		if handle != nil && handle.Load() == gen {
			c.publishLocked(model, &entry{snap: snap, gen: gen, handle: handle})
			return snap, gen, attempt, nil
		}
		// The name mutated (or vanished) between decode and here. The
		// snapshot is still the consistent read we made under the lock, but
		// publishing it would plant a dead entry — so re-decode: the retry
		// usually lands after the swap and publishes, which is what keeps a
		// hot retrain loop from turning every request into a serialized
		// fill through this mutex. Past the retry budget, serve the
		// consistent snapshot once, unpublished.
		if attempt >= fillAttempts {
			return snap, gen, attempt, nil
		}
	}
}

// Refill forces the model's next-generation snapshot into the cache: the
// post-swap warming path, called after a TRAIN commit so the first request
// against the new generation never pays the decode. The stale entry is
// already invalid (the swap bumped the generation), so this is just a Get
// with the result discarded; errors are returned for logging but leave the
// cache consistent (a failed refill evicts).
func (c *Cache) Refill(model string) error {
	_, _, err := c.Get(model)
	return err
}

// Warm fills the cache for every persisted model in the catalog — the
// daemon-start path. A model is any table with a metadata side table. A
// model that fails to decode (unregistered task, condemned pair) is
// skipped, not fatal: warming is an optimization, and the per-request path
// reports the real error to the client that asks. Returns the names warmed.
func (c *Cache) Warm() []string {
	names := c.cat.Names()
	has := make(map[string]bool, len(names))
	for _, n := range names {
		has[n] = true
	}
	var warmed []string
	for _, n := range names {
		if !has[n+spec.MetaSuffix] {
			continue
		}
		if _, _, err := c.Get(n); err == nil {
			warmed = append(warmed, n)
		}
	}
	return warmed
}

// publishLocked swaps in a new epoch with the entry added (copy-on-write;
// caller holds mu).
func (c *Cache) publishLocked(model string, e *entry) {
	old := *c.cur.Load()
	next := make(epoch, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[model] = e
	c.cur.Store(&next)
}

// evictLocked swaps in a new epoch without the name (caller holds mu).
func (c *Cache) evictLocked(model string) {
	old := *c.cur.Load()
	if _, ok := old[model]; !ok {
		return
	}
	next := make(epoch, len(old))
	for k, v := range old {
		if k != model {
			next[k] = v
		}
	}
	c.cur.Store(&next)
}

// Stats reports cumulative hit and fill counts (monitoring/bench only).
func (c *Cache) Stats() (hits, fills uint64) {
	return c.hits.Load(), c.fills.Load()
}
