package serve

import (
	"io"
	"sync"
	"sync/atomic"

	"bismarck/internal/engine"
	"bismarck/internal/sqlish"
)

// entry is one cached model pinned to the catalog generation it was
// decoded under. handle is the name's live generation counter
// (engine.Catalog.GenHandle) — the pointer is stored here, not re-fetched,
// so validity is one atomic load away with no map traffic and no
// string-key interface boxing on the hot path.
type entry struct {
	snap   *sqlish.ModelSnapshot
	gen    uint64
	handle *atomic.Uint64
}

// valid reports whether the entry still matches the catalog: any TRAIN
// (swap-retarget), DROP, or re-CREATE of the name bumps the counter and
// every cached reader notices on its next lookup — invalidation without
// broadcast.
func (e *entry) valid() bool { return e.gen == e.handle.Load() }

// epoch is one immutable published cache state. Fills and evictions build
// a new map and swap the pointer; readers only ever load it.
type epoch map[string]*entry

// Cache holds hot decoded models for the serving plane. Readers are
// lock-free (one atomic pointer load, one map lookup, one atomic counter
// compare); only the fill path — a cache miss decoding a model from its
// tables — takes the cache mutex, and it holds it as a single-flight
// guard so a thundering herd on a cold name decodes once.
type Cache struct {
	cat  *engine.Catalog
	fill *sqlish.Session // fill-path decoder; guarded by mu
	mu   sync.Mutex      // serializes fills and epoch publication
	cur  atomic.Pointer[epoch]

	hits  atomic.Uint64
	fills atomic.Uint64
}

// NewCache builds an empty cache over the catalog. guard is the shared
// cross-session name-lock registry (may be nil for an exclusively owned
// catalog); the fill path locks model names through it like any scoring
// statement.
func NewCache(cat *engine.Catalog, guard sqlish.Guard) *Cache {
	c := &Cache{
		cat:  cat,
		fill: &sqlish.Session{Cat: cat, Out: io.Discard, Guard: guard},
	}
	c.cur.Store(&epoch{})
	return c
}

// Lookup returns the cached snapshot for the model if one is present and
// still matches the catalog generation. This is the hot path: no locks,
// no allocations.
func (c *Cache) Lookup(model string) (*sqlish.ModelSnapshot, uint64, bool) {
	e, ok := (*c.cur.Load())[model]
	if !ok || !e.valid() {
		return nil, 0, false
	}
	c.hits.Add(1)
	return e.snap, e.gen, true
}

// Get returns the model's snapshot, filling the cache on a miss. A fill
// decodes the model under its name's read lock (LoadSnapshot) and pins
// the result to the generation observed inside that lock window. Filling
// a name that does not exist evicts any stale entry and returns
// *sqlish.UnknownModelError — a dropped model is never served from cache.
func (c *Cache) Get(model string) (*sqlish.ModelSnapshot, uint64, error) {
	if snap, gen, ok := c.Lookup(model); ok {
		return snap, gen, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Double-check under the fill lock: a racing fill may have published.
	if snap, gen, ok := c.Lookup(model); ok {
		return snap, gen, nil
	}
	snap, gen, err := c.fill.LoadSnapshot(model)
	if err != nil {
		c.evictLocked(model)
		return nil, 0, err
	}
	c.fills.Add(1)
	handle := c.cat.GenHandle(model)
	if handle == nil || handle.Load() != gen {
		// The name mutated (or vanished) between decode and here. The
		// snapshot is still the consistent read we made under the lock —
		// serve it once, but do not publish a dead entry.
		return snap, gen, nil
	}
	c.publishLocked(model, &entry{snap: snap, gen: gen, handle: handle})
	return snap, gen, nil
}

// publishLocked swaps in a new epoch with the entry added (copy-on-write;
// caller holds mu).
func (c *Cache) publishLocked(model string, e *entry) {
	old := *c.cur.Load()
	next := make(epoch, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[model] = e
	c.cur.Store(&next)
}

// evictLocked swaps in a new epoch without the name (caller holds mu).
func (c *Cache) evictLocked(model string) {
	old := *c.cur.Load()
	if _, ok := old[model]; !ok {
		return
	}
	next := make(epoch, len(old))
	for k, v := range old {
		if k != model {
			next[k] = v
		}
	}
	c.cur.Store(&next)
}

// Stats reports cumulative hit and fill counts (monitoring/bench only).
func (c *Cache) Stats() (hits, fills uint64) {
	return c.hits.Load(), c.fills.Load()
}
