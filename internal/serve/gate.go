package serve

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// BusyError is the typed load-shedding rejection: the serving queue is
// full. RetryAfterMS is the plane's estimate (from the service-time EWMA
// and current backlog) of when capacity frees up; clients should back off
// at least that long. The server renders it as "ERR busy ..." so clients
// can distinguish shed load from real failures.
type BusyError struct {
	RetryAfterMS int64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("busy: serving queue full, retry_after_ms=%d", e.RetryAfterMS)
}

// Gate is the admission controller: Inflight concurrent scoring slots and
// a bounded count of waiters. Admission is decided synchronously —
// Admit never blocks — so a connection reader can shed load before
// spawning any per-request work; only Wait blocks, and only for requests
// already admitted. This bounds both goroutines and memory under overload.
type Gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64

	// ewmaNS is an exponentially-weighted moving average of observed
	// service times, feeding the retry-after hint. Updated racily on
	// purpose: it is a hint, and a lock here would sit on the hot path.
	ewmaNS atomic.Int64
}

// NewGate builds a gate with the given slot and queue sizes. inflight
// defaults to GOMAXPROCS, maxQueue to 4× inflight.
func NewGate(inflight, maxQueue int) *Gate {
	if inflight <= 0 {
		inflight = runtime.GOMAXPROCS(0)
	}
	if maxQueue <= 0 {
		maxQueue = 4 * inflight
	}
	return &Gate{
		slots:    make(chan struct{}, inflight),
		maxQueue: int64(maxQueue),
	}
}

// Ticket is one admitted request's claim on the gate. Call Wait to block
// until a scoring slot is free, then Release when done. A Ticket is a
// value (no allocation per request) and must not be copied after Wait.
type Ticket struct {
	g      *Gate
	inQ    bool
	booked bool
	start  int64 // nanotime via time.Now().UnixNano(), set by Wait
}

// Admit decides synchronously whether this request may proceed. A free
// slot admits immediately; otherwise the request joins the wait queue if
// it has room, and is rejected with *BusyError when it does not.
func (g *Gate) Admit() (Ticket, error) {
	select {
	case g.slots <- struct{}{}:
		return Ticket{g: g, booked: true}, nil
	default:
	}
	if q := g.queued.Add(1); q > g.maxQueue {
		g.queued.Add(-1)
		return Ticket{}, &BusyError{RetryAfterMS: g.retryAfterMS()}
	}
	return Ticket{g: g, inQ: true}, nil
}

// Wait blocks until the admitted request holds a scoring slot and starts
// its service-time clock.
func (t *Ticket) Wait() {
	if t.inQ {
		t.g.slots <- struct{}{}
		t.g.queued.Add(-1)
		t.inQ = false
		t.booked = true
	}
	t.start = time.Now().UnixNano()
}

// Release frees the slot and feeds the observed service time into the
// EWMA behind the retry-after hint.
func (t *Ticket) Release() {
	if !t.booked {
		return
	}
	t.booked = false
	t.g.observe(time.Now().UnixNano() - t.start)
	<-t.g.slots
}

// observe folds one service time into the EWMA (α = 1/8, integer math).
func (g *Gate) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	old := g.ewmaNS.Load()
	if old == 0 {
		g.ewmaNS.Store(ns)
		return
	}
	g.ewmaNS.Store(old + (ns-old)/8)
}

// retryAfterMS estimates how long a shed client should back off: the
// backlog ahead of it (all slots plus all waiters) times the average
// service time, divided across the slots draining it. At least 1ms so
// clients never busy-loop on a zero hint.
func (g *Gate) retryAfterMS() int64 {
	ewma := g.ewmaNS.Load()
	backlog := g.queued.Load() + int64(cap(g.slots))
	ms := ewma * backlog / int64(cap(g.slots)) / int64(time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Queued reports the current number of admitted waiters (monitoring).
func (g *Gate) Queued() int64 { return g.queued.Load() }
