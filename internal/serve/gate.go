package serve

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// BusyError is the typed load-shedding rejection: the serving queue is
// full. RetryAfterMS is the plane's estimate (from the service-time EWMA
// and current backlog) of when capacity frees up; clients should back off
// at least that long. The server renders it as "ERR busy ..." so clients
// can distinguish shed load from real failures.
type BusyError struct {
	RetryAfterMS int64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("busy: serving queue full, retry_after_ms=%d", e.RetryAfterMS)
}

// Gate is the admission controller: Inflight concurrent scoring slots and
// a bounded count of waiters. Admission is decided synchronously —
// Admit never blocks — so a connection reader can shed load before
// spawning any per-request work; only Wait blocks, and only for requests
// already admitted. This bounds both goroutines and memory under overload.
type Gate struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64

	// ewmaNS is an exponentially-weighted moving average of observed
	// service times, feeding the retry-after hint. samples counts the
	// observations folded in, so an EWMA of zero is distinguishable from
	// "never served anything" and the hint can report honestly on an idle
	// gate; lastNS is the wall-clock of the newest sample, letting the
	// hint decay a stale EWMA instead of quoting service times from hours
	// ago.
	ewmaNS  atomic.Int64
	samples atomic.Uint64
	lastNS  atomic.Int64
}

// NewGate builds a gate with the given slot and queue sizes. inflight
// defaults to GOMAXPROCS, maxQueue to 4× inflight.
func NewGate(inflight, maxQueue int) *Gate {
	if inflight <= 0 {
		inflight = runtime.GOMAXPROCS(0)
	}
	if maxQueue <= 0 {
		maxQueue = 4 * inflight
	}
	return &Gate{
		slots:    make(chan struct{}, inflight),
		maxQueue: int64(maxQueue),
	}
}

// Ticket is one admitted request's claim on the gate. Call Wait (or
// WaitOrCancel) to block until a scoring slot is free, then Release when
// done. A Ticket is a value (no allocation per request) and must not be
// copied after Wait.
type Ticket struct {
	g      *Gate
	inQ    bool
	booked bool
	start  int64 // nanotime via time.Now().UnixNano(), set by Wait
}

// Admit decides synchronously whether this request may proceed. A free
// slot admits immediately; otherwise the request joins the wait queue if
// it has room, and is rejected with *BusyError when it does not.
func (g *Gate) Admit() (Ticket, error) {
	select {
	case g.slots <- struct{}{}:
		return Ticket{g: g, booked: true}, nil
	default:
	}
	if q := g.queued.Add(1); q > g.maxQueue {
		g.queued.Add(-1)
		return Ticket{}, &BusyError{RetryAfterMS: g.retryAfterMS()}
	}
	return Ticket{g: g, inQ: true}, nil
}

// admitQueued admits as a waiter only: it books a queue position (or
// sheds) but never takes a slot, even if one is free — the slot is
// acquired later by Wait. The two-level plane needs this for a request
// whose global admission is queued: taking this gate's slot while not
// holding a global slot would break the global-before-model slot order
// that keeps the two-level protocol deadlock-free.
func (g *Gate) admitQueued() (Ticket, error) {
	if q := g.queued.Add(1); q > g.maxQueue {
		g.queued.Add(-1)
		return Ticket{}, &BusyError{RetryAfterMS: g.retryAfterMS()}
	}
	return Ticket{g: g, inQ: true}, nil
}

// Wait blocks until the admitted request holds a scoring slot and starts
// its service-time clock.
//
// Deprecated: Wait cannot be interrupted, so a caller that also owns a
// teardown channel can strand a queued booking past shutdown. Use
// WaitOrCancel with that channel; keep plain Wait only where no cancel
// signal exists at all. bismarckvet's ticketpair analyzer flags Wait
// calls made while a done channel is in scope.
func (t *Ticket) Wait() { t.WaitOrCancel(nil) }

// WaitOrCancel blocks like Wait but gives up when cancel closes first,
// returning false with the ticket's queue booking released — the caller
// owns no slot and must not Release. A nil cancel never fires (plain
// Wait). This is the teardown path for pipelined connections: a client
// that disconnects while its frames are queued must not keep burning
// scoring slots on answers nobody will read.
func (t *Ticket) WaitOrCancel(cancel <-chan struct{}) bool {
	if t.inQ {
		select {
		case t.g.slots <- struct{}{}:
			t.g.queued.Add(-1)
			t.inQ = false
			t.booked = true
		case <-cancel:
			t.g.queued.Add(-1)
			t.inQ = false
			return false
		}
	}
	t.start = time.Now().UnixNano()
	return true
}

// Abandon returns an admitted-but-unserved ticket to the gate: a queue
// booking is released, a held slot is freed without feeding the EWMA (no
// service happened, so there is no service time to observe). Safe on a
// zero ticket and after WaitOrCancel returned false.
func (t *Ticket) Abandon() {
	if t.inQ {
		t.inQ = false
		t.g.queued.Add(-1)
		return
	}
	if t.booked {
		t.booked = false
		<-t.g.slots
	}
}

// Release frees the slot and feeds the observed service time into the
// EWMA behind the retry-after hint.
func (t *Ticket) Release() {
	if !t.booked {
		return
	}
	t.booked = false
	t.g.observe(time.Now().UnixNano() - t.start)
	<-t.g.slots
}

// observe folds one service time into the EWMA (α = 1/8, integer math).
// The update is a CAS loop — a racy load/store here loses samples when
// releases collide, which under load is exactly when every sample counts.
// The step is floored at ±1ns so a run of fast observations can actually
// walk the EWMA back to zero (plain old+(ns-old)/8 truncates toward zero
// and sticks at small values forever).
func (g *Gate) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	g.lastNS.Store(time.Now().UnixNano())
	if g.samples.Add(1) == 1 {
		g.ewmaNS.Store(ns)
		return
	}
	for {
		old := g.ewmaNS.Load()
		delta := (ns - old) / 8
		if delta == 0 && ns != old {
			if ns < old {
				delta = -1
			} else {
				delta = 1
			}
		}
		if g.ewmaNS.CompareAndSwap(old, old+delta) {
			return
		}
	}
}

// decayedEWMA returns the EWMA with idle decay applied: halved for every
// full second since the last sample, so a gate that served something hours
// ago stops quoting that era's service times. Reads only; the stored EWMA
// is left alone (the next real sample re-anchors it).
func (g *Gate) decayedEWMA(nowNS int64) int64 {
	ewma := g.ewmaNS.Load()
	if ewma <= 0 {
		return 0
	}
	idle := nowNS - g.lastNS.Load()
	if idle < int64(time.Second) {
		return ewma
	}
	halvings := idle / int64(time.Second)
	if halvings > 62 {
		return 0
	}
	return ewma >> uint(halvings)
}

// retryAfterMS estimates how long a shed client should back off: the
// backlog ahead of it (all slots plus all waiters) times the average
// service time, divided across the slots draining it. At least 1ms so
// clients never busy-loop on a zero hint.
func (g *Gate) retryAfterMS() int64 {
	ewma := g.decayedEWMA(time.Now().UnixNano())
	backlog := g.queued.Load() + int64(cap(g.slots))
	ms := ewma * backlog / int64(cap(g.slots)) / int64(time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// RetryHintMS is the monitoring view of the retry-after estimate: the
// same backlog × decayed-EWMA math as the shed hint, but a gate that has
// never observed a single service completes reports 0 — "no data" — not
// the 1ms floor shed responses carry to keep clients from busy-looping.
func (g *Gate) RetryHintMS() int64 {
	if g.samples.Load() == 0 {
		return 0
	}
	return g.retryAfterMS()
}

// Queued reports the current number of admitted waiters (monitoring).
func (g *Gate) Queued() int64 { return g.queued.Load() }

// Inflight reports the number of currently held scoring slots.
func (g *Gate) Inflight() int { return len(g.slots) }

// Caps reports the gate's slot and queue capacities.
func (g *Gate) Caps() (inflight, maxQueue int) {
	return cap(g.slots), int(g.maxQueue)
}

// Samples reports how many service times the EWMA has folded in.
func (g *Gate) Samples() uint64 { return g.samples.Load() }
