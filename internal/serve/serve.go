// Package serve is the high-throughput serving plane: it answers inline
// point-PREDICT statements from hot decoded models instead of re-reading
// coefficient tables per statement.
//
// The plane is three mechanisms stacked so the steady-state path touches
// no locks and allocates nothing:
//
//   - Cache pins decoded model snapshots (sqlish.ModelSnapshot) to the
//     catalog generation observed while loading them. Lookups read an
//     atomic epoch pointer — no per-name read/write locks — and validity
//     is a single atomic compare against the name's generation counter
//     (engine.Catalog.GenHandle), so TRAIN and DROP invalidate by
//     bumping a counter, never by broadcasting to readers.
//   - Gate is admission control: a fixed number of scoring slots plus a
//     bounded wait queue. Beyond the queue the plane sheds load with a
//     typed BusyError carrying a retry-after hint, so an overloaded
//     server degrades into fast rejections instead of goroutine pileups.
//   - Plane ties them together and scores a whole statement batch
//     against ONE snapshot, which is what makes a batched response
//     internally consistent with exactly one model generation even while
//     a concurrent TRAIN swaps the name underneath.
package serve

import (
	"fmt"
	"sync"

	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

// Options sizes the serving plane.
type Options struct {
	// Inflight is the number of concurrent scoring slots (default:
	// number of CPUs via the Gate's own default).
	Inflight int
	// MaxQueue is how many admitted requests may wait for a slot before
	// the plane starts shedding (default: 4× Inflight).
	MaxQueue int
}

// Plane is the serving plane for one catalog. It is safe for concurrent
// use by any number of connections.
type Plane struct {
	cache *Cache
	gate  *Gate
	pool  sync.Pool // *sqlish.PointScratch, one per in-flight scorer
}

// New builds a serving plane over the catalog. guard is the cross-session
// name-lock registry shared with the statement sessions (the cache's fill
// path takes the model's read lock through it, exactly like a PREDICT
// statement would); nil means the caller owns the catalog exclusively.
func New(cat *engine.Catalog, guard sqlish.Guard, opt Options) *Plane {
	p := &Plane{
		cache: NewCache(cat, guard),
		gate:  NewGate(opt.Inflight, opt.MaxQueue),
	}
	p.pool.New = func() any { return new(sqlish.PointScratch) }
	return p
}

// Gate exposes the plane's admission gate (the server reports queue
// pressure from it).
func (p *Plane) Gate() *Gate { return p.gate }

// Cache exposes the plane's snapshot cache.
func (p *Plane) Cache() *Cache { return p.cache }

// Predict scores every tuple of points against the named model and writes
// the raw scores into scores[:len(points)], returning the model generation
// that produced them. The whole batch is scored against one cache entry —
// one generation — looked up once; a TRAIN committing mid-batch changes
// nothing already in flight.
//
// The call admits through the gate first: an overloaded plane returns
// *BusyError (with a retry-after hint) without touching the cache. A
// model that does not exist returns *sqlish.UnknownModelError. On the
// steady-state path — cache hit, warm scratch — Predict takes no
// per-name locks and performs zero heap allocations.
func (p *Plane) Predict(model string, points [][]float64, scores []float64) (uint64, error) {
	tk, err := p.gate.Admit()
	if err != nil {
		return 0, err
	}
	tk.Wait()
	defer tk.Release()
	return p.Score(model, points, scores)
}

// Score is Predict without the admission step: the caller already holds a
// gate Ticket between Wait and Release. The pipelined server path admits
// synchronously in its connection reader — shed requests answer "busy"
// without spawning anything — and only admitted frames reach Score from a
// worker goroutine.
func (p *Plane) Score(model string, points [][]float64, scores []float64) (uint64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("serve: empty point batch")
	}
	if len(scores) < len(points) {
		return 0, fmt.Errorf("serve: scores buffer holds %d, batch has %d", len(scores), len(points))
	}
	if err := spec.ValidatePoints(points); err != nil {
		return 0, err
	}
	snap, gen, err := p.cache.Get(model)
	if err != nil {
		return 0, err
	}
	sc := p.pool.Get().(*sqlish.PointScratch)
	defer p.pool.Put(sc)
	for i, vals := range points {
		s, err := sc.Score(snap, vals)
		if err != nil {
			return 0, err
		}
		scores[i] = s
	}
	return gen, nil
}
