// Package serve is the high-throughput serving plane: it answers inline
// point-PREDICT statements from hot decoded models instead of re-reading
// coefficient tables per statement.
//
// The plane is three mechanisms stacked so the steady-state path touches
// no locks and allocates nothing:
//
//   - Cache pins decoded model snapshots (sqlish.ModelSnapshot) to the
//     catalog generation observed while loading them. Lookups read an
//     atomic epoch pointer — no per-name read/write locks — and validity
//     is a single atomic compare against the name's generation counter
//     (engine.Catalog.GenHandle), so TRAIN and DROP invalidate by
//     bumping a counter, never by broadcasting to readers.
//   - Gate is admission control: a fixed number of scoring slots plus a
//     bounded wait queue. Beyond the queue the plane sheds load with a
//     typed BusyError carrying a retry-after hint, so an overloaded
//     server degrades into fast rejections instead of goroutine pileups.
//     Admission is two-level: the global gate bounds the whole plane, and
//     a per-model gate bounds each model's share of it, so one hot model
//     cannot occupy the entire queue and starve the rest of the catalog.
//   - Plane ties them together and scores a whole statement batch
//     against ONE snapshot, which is what makes a batched response
//     internally consistent with exactly one model generation even while
//     a concurrent TRAIN swaps the name underneath.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bismarck/internal/engine"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

// Options sizes the serving plane.
type Options struct {
	// Inflight is the number of concurrent scoring slots (default:
	// number of CPUs via the Gate's own default).
	Inflight int
	// MaxQueue is how many admitted requests may wait for a slot before
	// the plane starts shedding (default: 4× Inflight).
	MaxQueue int
	// ModelInflight bounds one model's concurrent scoring slots (default:
	// the global Inflight — a lone hot model may still use the whole
	// plane).
	ModelInflight int
	// ModelQueue bounds one model's waiters (default: half the global
	// queue, min 1) so a single hot model cannot book every queue
	// position and starve the rest of the catalog.
	ModelQueue int
}

// maxModelPlanes bounds the per-model gate registry: past it, requests for
// never-seen names share one overflow bucket instead of growing the map
// without limit (a client probing random model names must not OOM the
// daemon's admission state).
const maxModelPlanes = 1024

// modelPlane is one model's slice of the serving plane: its admission
// gate and its serving counters. Entries are created lazily on first
// request and never removed — a model's counters survive retrains and
// drops, which is what SHOW SERVING wants.
type modelPlane struct {
	name  string
	gate  *Gate
	hits  atomic.Uint64
	fills atomic.Uint64
	sheds atomic.Uint64
}

// Plane is the serving plane for one catalog. It is safe for concurrent
// use by any number of connections.
type Plane struct {
	cache *Cache
	gate  *Gate
	pool  sync.Pool // *sqlish.PointScratch, one per in-flight scorer

	modelInflight int
	modelQueue    int
	models        sync.Map // string → *modelPlane
	modelCount    atomic.Int64
	overflow      *modelPlane // shared bucket past maxModelPlanes
}

// New builds a serving plane over the catalog. guard is the cross-session
// name-lock registry shared with the statement sessions (the cache's fill
// path takes the model's read lock through it, exactly like a PREDICT
// statement would); nil means the caller owns the catalog exclusively.
func New(cat *engine.Catalog, guard sqlish.Guard, opt Options) *Plane {
	p := &Plane{
		cache: NewCache(cat, guard),
		gate:  NewGate(opt.Inflight, opt.MaxQueue),
	}
	inflight, queue := p.gate.Caps()
	p.modelInflight = opt.ModelInflight
	if p.modelInflight <= 0 {
		p.modelInflight = inflight
	}
	p.modelQueue = opt.ModelQueue
	if p.modelQueue <= 0 {
		p.modelQueue = queue / 2
		if p.modelQueue < 1 {
			p.modelQueue = 1
		}
	}
	p.overflow = &modelPlane{name: "(overflow)",
		gate: NewGate(p.modelInflight, p.modelQueue)}
	p.pool.New = func() any { return new(sqlish.PointScratch) }
	return p
}

// Gate exposes the plane's global admission gate (the server reports
// queue pressure from it).
func (p *Plane) Gate() *Gate { return p.gate }

// Cache exposes the plane's snapshot cache.
func (p *Plane) Cache() *Cache { return p.cache }

// model resolves (lazily creating) the per-model plane state. The hot
// path for a known name is one sync.Map load; creation allocates once per
// name. Past maxModelPlanes new names share the overflow bucket.
func (p *Plane) model(name string) *modelPlane {
	if v, ok := p.models.Load(name); ok {
		return v.(*modelPlane)
	}
	if p.modelCount.Load() >= maxModelPlanes {
		return p.overflow
	}
	mp := &modelPlane{name: name, gate: NewGate(p.modelInflight, p.modelQueue)}
	if v, loaded := p.models.LoadOrStore(name, mp); loaded {
		return v.(*modelPlane)
	}
	p.modelCount.Add(1)
	return mp
}

// Admission is one request's claimed passage through both admission
// levels: the global gate (the plane-wide bound) and the model's gate
// (its share of the plane). It is a value — no allocation per request —
// and must not be copied after Wait.
type Admission struct {
	p      *Plane
	mp     *modelPlane
	global Ticket
	model  Ticket
}

// Admit decides synchronously whether a request against the model may
// proceed. Shedding at either level returns *BusyError — with the retry
// hint of the gate that shed — and counts against the model's shed
// counter; nothing is spawned or queued for a shed request.
//
// The slot-order invariant lives here: a model slot is only ever taken
// by a holder of a global slot. When the global admission is queued, the
// model admission books a queue position only (admitQueued) — taking the
// model's slot while waiting for a global one would let two requests
// hold one slot each of the two gates and wait for the other's, and
// with both gates' remaining slots held the same way the plane deadlocks
// (TestQueuedGlobalAdmissionHoldsNoModelSlot is the regression).
func (p *Plane) Admit(model string) (Admission, error) {
	mp := p.model(model)
	global, err := p.gate.Admit()
	if err != nil {
		mp.sheds.Add(1)
		return Admission{}, err
	}
	var mtk Ticket
	if global.booked {
		mtk, err = mp.gate.Admit()
	} else {
		mtk, err = mp.gate.admitQueued()
	}
	if err != nil {
		global.Abandon()
		mp.sheds.Add(1)
		return Admission{}, err
	}
	return Admission{p: p, mp: mp, global: global, model: mtk}, nil
}

// Wait blocks until the admission holds both scoring slots, or cancel
// closes first — then every booking is returned to its gate and Wait
// reports false: the caller owns nothing and must not Release. Slot
// order is fixed (global, then model) so a model-slot holder is always
// actively scoring, never blocked on the global gate — which is what
// makes the two-level protocol deadlock-free.
func (a *Admission) Wait(cancel <-chan struct{}) bool {
	if !a.global.WaitOrCancel(cancel) {
		a.model.Abandon()
		return false
	}
	if !a.model.WaitOrCancel(cancel) {
		a.global.Abandon()
		return false
	}
	return true
}

// Release frees both slots, feeding the observed service time into both
// gates' retry-hint EWMAs.
func (a *Admission) Release() {
	a.model.Release()
	a.global.Release()
}

// Score scores the batch through this admission (the caller holds both
// slots between Wait and Release). The whole batch is scored against one
// cache entry — one generation — looked up once; a TRAIN committing
// mid-batch changes nothing already in flight.
func (a *Admission) Score(model string, points [][]float64, scores []float64) (uint64, error) {
	return a.p.score(a.mp, model, points, scores)
}

// Predict scores every tuple of points against the named model and writes
// the raw scores into scores[:len(points)], returning the model generation
// that produced them.
//
// The call admits through both gates first: an overloaded plane returns
// *BusyError (with a retry-after hint) without touching the cache. A
// model that does not exist returns *sqlish.UnknownModelError. On the
// steady-state path — cache hit, warm scratch — Predict takes no
// per-name locks and performs zero heap allocations.
func (p *Plane) Predict(model string, points [][]float64, scores []float64) (uint64, error) {
	ad, err := p.Admit(model)
	if err != nil {
		return 0, err
	}
	ad.Wait(nil)
	defer ad.Release()
	return ad.Score(model, points, scores)
}

// score is the shared scoring tail: validate, snapshot, pooled scratch.
func (p *Plane) score(mp *modelPlane, model string, points [][]float64, scores []float64) (uint64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("serve: empty point batch")
	}
	if len(scores) < len(points) {
		return 0, fmt.Errorf("serve: scores buffer holds %d, batch has %d", len(scores), len(points))
	}
	if err := spec.ValidatePoints(points); err != nil {
		return 0, err
	}
	snap, gen, filled, err := p.cache.get(model)
	if filled > 0 {
		mp.fills.Add(uint64(filled))
	} else if err == nil {
		mp.hits.Add(1)
	}
	if err != nil {
		return 0, err
	}
	sc := p.pool.Get().(*sqlish.PointScratch)
	defer p.pool.Put(sc)
	for i, vals := range points {
		s, err := sc.Score(snap, vals)
		if err != nil {
			return 0, err
		}
		scores[i] = s
	}
	return gen, nil
}

// Warm pre-fills the snapshot cache for every persisted model in the
// catalog (daemon start) and returns the names warmed. Fills count into
// the per-model counters like any other fill.
func (p *Plane) Warm() []string {
	warmed := p.cache.Warm()
	for _, name := range warmed {
		p.model(name).fills.Add(1)
	}
	return warmed
}

// Refill re-decodes one model into the cache — the post-TRAIN-commit
// warming path, so the first request against the new generation never
// pays the decode. Errors are the caller's to log; the cache stays
// consistent either way.
func (p *Plane) Refill(model string) error {
	mp := p.model(model)
	err := p.cache.Refill(model)
	if err == nil {
		mp.fills.Add(1)
	}
	return err
}

// GateStats is the plane-wide admission picture.
type GateStats struct {
	Inflight    int   // slots currently held
	InflightCap int   // total scoring slots
	Queued      int64 // admitted waiters right now
	QueueCap    int   // waiters before shedding starts
	Models      int   // per-model planes registered
}

// ModelStats is one model's serving counters for SHOW SERVING.
type ModelStats struct {
	Model        string
	Hits         uint64 // cache hits (requests served from a hot snapshot)
	Fills        uint64 // snapshot decodes (cold, post-retrain, warming)
	Sheds        uint64 // requests rejected busy at either admission level
	Queued       int64  // waiters parked on this model's gate right now
	RetryAfterMS int64  // current retry hint (0 = never served anything)
}

// Stats snapshots the plane for SHOW SERVING: the global gate and every
// model's counters, sorted by name.
func (p *Plane) Stats() (GateStats, []ModelStats) {
	inflight, queueCap := p.gate.Caps()
	gs := GateStats{
		Inflight:    p.gate.Inflight(),
		InflightCap: inflight,
		Queued:      p.gate.Queued(),
		QueueCap:    queueCap,
		Models:      int(p.modelCount.Load()),
	}
	var ms []ModelStats
	collect := func(mp *modelPlane) {
		ms = append(ms, ModelStats{
			Model:        mp.name,
			Hits:         mp.hits.Load(),
			Fills:        mp.fills.Load(),
			Sheds:        mp.sheds.Load(),
			Queued:       mp.gate.Queued(),
			RetryAfterMS: mp.gate.RetryHintMS(),
		})
	}
	p.models.Range(func(_, v any) bool {
		collect(v.(*modelPlane))
		return true
	})
	if o := p.overflow; o.hits.Load()+o.fills.Load()+o.sheds.Load() > 0 {
		collect(o)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Model < ms[j].Model })
	return gs, ms
}
