package serve

import (
	"errors"
	"testing"
	"time"
)

// TestTicketCancelReleasesQueueAccounting is the slot-leak regression at
// the gate level: a queued ticket whose waiter gives up (client
// disconnect) must return its queue booking immediately, and the gate
// must keep admitting afterwards.
func TestTicketCancelReleasesQueueAccounting(t *testing.T) {
	g := NewGate(1, 2)
	holder, err := g.Admit()
	if err != nil {
		t.Fatal(err)
	}
	holder.Wait()

	// Two waiters fill the queue.
	w1, err := g.Admit()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := g.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if g.Queued() != 2 {
		t.Fatalf("queued=%d, want 2", g.Queued())
	}

	// Cancel one mid-wait: the booking must come back synchronously.
	cancel := make(chan struct{})
	close(cancel)
	if w1.WaitOrCancel(cancel) {
		t.Fatal("WaitOrCancel on a closed cancel channel with no free slot should report false")
	}
	if g.Queued() != 1 {
		t.Fatalf("canceled waiter left queue accounting at %d, want 1", g.Queued())
	}
	// Abandon after a failed wait is a no-op, not a double release.
	w1.Abandon()
	if g.Queued() != 1 {
		t.Fatalf("Abandon after canceled wait changed queue to %d", g.Queued())
	}

	// Abandon the other waiter outright (admitted, never waited).
	w2.Abandon()
	if g.Queued() != 0 {
		t.Fatalf("abandoned waiter left queue accounting at %d, want 0", g.Queued())
	}

	// Abandon a held slot: freed without feeding the EWMA.
	holder.Abandon()
	if g.Samples() != 0 {
		t.Fatalf("Abandon fed the EWMA: samples=%d", g.Samples())
	}
	tk, err := g.Admit()
	if err != nil {
		t.Fatalf("gate did not recover after cancels: %v", err)
	}
	tk.Wait()
	tk.Release()
	if g.Samples() != 1 {
		t.Fatalf("Release did not feed the EWMA: samples=%d", g.Samples())
	}
}

// TestGateEWMAHonesty pins the observe/hint bugfix: no samples means a
// zero hint (not a stale-EWMA 1ms), the EWMA can actually walk back to
// zero under fast observations, and an idle gate's hint decays instead of
// quoting service times from long ago.
func TestGateEWMAHonesty(t *testing.T) {
	g := NewGate(1, 1)
	if g.RetryHintMS() != 0 {
		t.Fatalf("gate that never served reports hint %dms, want 0", g.RetryHintMS())
	}

	// First sample anchors the EWMA directly.
	g.observe(int64(8 * time.Millisecond))
	if got := g.ewmaNS.Load(); got != int64(8*time.Millisecond) {
		t.Fatalf("first sample set EWMA to %d, want %d", got, int64(8*time.Millisecond))
	}
	if g.RetryHintMS() < 1 {
		t.Fatalf("served gate reports hint %dms, want >= 1", g.RetryHintMS())
	}

	// A run of zero-cost observations must converge the EWMA all the way
	// to zero — the old old==0-means-uninitialized encoding got stuck.
	for i := 0; i < 100_000 && g.ewmaNS.Load() != 0; i++ {
		g.observe(0)
	}
	if got := g.ewmaNS.Load(); got != 0 {
		t.Fatalf("EWMA stuck at %dns after fast observations, want 0", got)
	}
	// And a zero EWMA with samples still answers (the 1ms shed floor).
	if g.RetryHintMS() != 1 {
		t.Fatalf("hint after convergence %dms, want the 1ms floor", g.RetryHintMS())
	}

	// Idle decay: a big EWMA halves per idle second.
	g.ewmaNS.Store(int64(64 * time.Millisecond))
	now := g.lastNS.Load()
	if got := g.decayedEWMA(now); got != int64(64*time.Millisecond) {
		t.Fatalf("fresh EWMA decayed immediately: %d", got)
	}
	if got := g.decayedEWMA(now + int64(3*time.Second)); got != int64(8*time.Millisecond) {
		t.Fatalf("3s idle decay gave %dns, want %dns", got, int64(8*time.Millisecond))
	}
	if got := g.decayedEWMA(now + int64(120*time.Second)); got != 0 {
		t.Fatalf("2min idle decay gave %dns, want 0", got)
	}
}

// TestCacheChurnConverges is the fill-churn regression: a retrain landing
// between a fill's decode and its publish check used to leave the entry
// unpublished, so every subsequent request re-filled through the cache
// mutex. With the retry, the second decode lands after the swap and
// publishes — requests after the churn window are cache hits.
func TestCacheChurnConverges(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")
	c := r.plane.Cache()

	// Force the race deterministically: the first decode is immediately
	// invalidated by a retrain; the retry's decode is left alone.
	churned := false
	c.afterFill = func(string) {
		if !churned {
			churned = true
			r.train(t, "neg")
		}
	}
	points := [][]float64{{1, 1}}
	scores := make([]float64, 1)
	if _, err := r.plane.Predict("m", points, scores); err != nil {
		t.Fatal(err)
	}
	if scores[0] > -5 {
		t.Fatalf("churned fill served the pre-retrain generation: %v", scores)
	}
	_, fills := c.Stats()
	if fills != 2 {
		t.Fatalf("churned fill decoded %d times, want exactly 2 (original + retry)", fills)
	}

	// Converged: the retry published, so the storm after the churn window
	// is all hits — the pre-fix behavior re-filled on every call here.
	for i := 0; i < 50; i++ {
		if _, err := r.plane.Predict("m", points, scores); err != nil {
			t.Fatal(err)
		}
	}
	if _, after := c.Stats(); after != fills {
		t.Fatalf("fills grew %d -> %d after churn settled; cache never converged", fills, after)
	}
}

// TestCacheChurnBounded: when the model is retrained faster than it can be
// decoded (every decode invalidated), one Get performs at most
// fillAttempts decodes and still serves a consistent snapshot.
func TestCacheChurnBounded(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")
	c := r.plane.Cache()

	srcs := []string{"neg", "pos"}
	n := 0
	c.afterFill = func(string) {
		r.train(t, srcs[n%2])
		n++
	}
	points := [][]float64{{1, 1}}
	scores := make([]float64, 1)
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := r.plane.Predict("m", points, scores); err != nil {
			t.Fatal(err)
		}
		if scores[0] > -5 == (scores[0] < 5) {
			t.Fatalf("churned serve returned non-generation score %v", scores)
		}
	}
	if _, fills := c.Stats(); fills != calls*fillAttempts {
		t.Fatalf("perpetual churn: %d fills for %d calls, want exactly %d (bounded at %d per call)",
			fills, calls, calls*fillAttempts, fillAttempts)
	}
}

// TestPerModelAdmission: one model saturating its own gate is shed while
// the global gate still has room for other models.
func TestPerModelAdmission(t *testing.T) {
	r := newRig(t, Options{Inflight: 4, MaxQueue: 8, ModelInflight: 1, ModelQueue: 1})
	r.train(t, "pos")

	// Hold hot's only model slot.
	holder, err := r.plane.Admit("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Wait(nil) {
		t.Fatal("uncontended Wait reported canceled")
	}
	// One waiter fits hot's queue; the next is shed at the model level.
	waiter, err := r.plane.Admit("hot")
	if err != nil {
		t.Fatalf("hot's queue slot should admit: %v", err)
	}
	_, err = r.plane.Admit("hot")
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError for saturated model, got %T: %v", err, err)
	}

	// The global gate is far from full: a different model still admits and
	// scores end to end.
	scores := make([]float64, 1)
	if _, err := r.plane.Predict("m", [][]float64{{1, 1}}, scores); err != nil {
		t.Fatalf("other model starved by hot model: %v", err)
	}

	// The shed landed on hot's counters, not m's.
	waiter.model.Abandon()
	waiter.global.Abandon()
	holder.model.Abandon()
	holder.global.Abandon()
	_, models := r.plane.Stats()
	byName := map[string]ModelStats{}
	for _, ms := range models {
		byName[ms.Model] = ms
	}
	if byName["hot"].Sheds != 1 {
		t.Fatalf("hot sheds=%d, want 1 (stats: %+v)", byName["hot"].Sheds, models)
	}
	if byName["m"].Sheds != 0 || byName["m"].Hits+byName["m"].Fills == 0 {
		t.Fatalf("m counters off: %+v", byName["m"])
	}
}

// TestAdmissionCancelDuringModelWait: cancellation between the two
// admission levels gives back both bookings.
func TestAdmissionCancelDuringModelWait(t *testing.T) {
	r := newRig(t, Options{Inflight: 4, MaxQueue: 8, ModelInflight: 1, ModelQueue: 2})

	holder, err := r.plane.Admit("hot")
	if err != nil {
		t.Fatal(err)
	}
	holder.Wait(nil)
	queued, err := r.plane.Admit("hot")
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	close(cancel)
	if queued.Wait(cancel) {
		t.Fatal("Wait with closed cancel and an occupied model slot should report false")
	}
	gs, _ := r.plane.Stats()
	if gs.Queued != 0 {
		t.Fatalf("global queue accounting leaked: %d", gs.Queued)
	}
	if q := r.plane.model("hot").gate.Queued(); q != 0 {
		t.Fatalf("model queue accounting leaked: %d", q)
	}
	holder.Release()
	// Both levels recovered: a full Predict admits and completes (it fails
	// only at scoring, since "hot" was never trained).
	scores := make([]float64, 1)
	if _, err := r.plane.Predict("hot", [][]float64{{1, 1}}, scores); err == nil {
		t.Fatal("predict on an untrained model should fail at scoring")
	} else if errors.As(err, new(*BusyError)) {
		t.Fatalf("gates did not recover after cancel: %v", err)
	}
}

// TestQueuedGlobalAdmissionHoldsNoModelSlot is the two-level deadlock
// regression: an admission whose global ticket is queued must not take
// the model's scoring slot. If it did, it would wait for a global slot
// while holding the model slot, and a global-slot holder queued at the
// same model gate would wait for it — one slot of each gate held, each
// waiting on the other, and with both gates at capacity held that way
// the plane wedges for good (pipelined clients hammering one model hit
// exactly this interleaving).
func TestQueuedGlobalAdmissionHoldsNoModelSlot(t *testing.T) {
	r := newRig(t, Options{Inflight: 1, MaxQueue: 2, ModelInflight: 1, ModelQueue: 2})
	r.train(t, "pos")

	// Occupy the only global slot directly — the state of a request caught
	// between its global and model admissions.
	mid, err := r.plane.gate.Admit()
	if err != nil {
		t.Fatal(err)
	}
	mid.Wait()

	// A globally-queued admission for m must book m's queue, not m's slot.
	ad, err := r.plane.Admit("m")
	if err != nil {
		t.Fatal(err)
	}
	mg := r.plane.model("m").gate
	if got := mg.Inflight(); got != 0 {
		t.Fatalf("globally-queued admission holds %d model slot(s): the two-level cycle is live", got)
	}
	if mg.Queued() != 1 {
		t.Fatalf("model queued=%d, want 1", mg.Queued())
	}

	// The mid-admission global holder can therefore still pass the model
	// gate and finish — under the bug m's slot is gone and this wedges.
	mtk, err := mg.Admit()
	if err != nil {
		t.Fatal(err)
	}
	mtk.Wait()
	mtk.Release()
	mid.Release()

	// ...which unblocks the queued admission end to end.
	done := make(chan error, 1)
	go func() {
		if !ad.Wait(nil) {
			done <- errors.New("Wait(nil) reported canceled")
			return
		}
		defer ad.Release()
		scores := make([]float64, 1)
		_, err := ad.Score("m", [][]float64{{1, 1}}, scores)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued admission never completed: two-level deadlock")
	}
}

// TestWarmStart: a fresh plane over a catalog with persisted models warms
// them into the cache, so the first request is a pure hit.
func TestWarmStart(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")

	fresh := New(r.cat, nil, Options{})
	warmed := fresh.Warm()
	if len(warmed) != 1 || warmed[0] != "m" {
		t.Fatalf("warmed %v, want [m]", warmed)
	}
	if _, _, ok := fresh.Cache().Lookup("m"); !ok {
		t.Fatal("warm-start did not populate the cache")
	}
	scores := make([]float64, 1)
	if _, err := fresh.Predict("m", [][]float64{{1, 1}}, scores); err != nil {
		t.Fatal(err)
	}
	_, fills := fresh.Cache().Stats()
	if fills != 1 {
		t.Fatalf("first predict after warm paid a decode: fills=%d, want 1", fills)
	}

	// Refill after a retrain pre-decodes the new generation: the next
	// predict is a hit on the fresh snapshot.
	r.train(t, "neg")
	if err := fresh.Refill("m"); err != nil {
		t.Fatal(err)
	}
	hitsBefore, fillsBefore := fresh.Cache().Stats()
	if _, err := fresh.Predict("m", [][]float64{{1, 1}}, scores); err != nil {
		t.Fatal(err)
	}
	if scores[0] > -5 {
		t.Fatalf("refill served stale generation: %v", scores)
	}
	hits, fills := fresh.Cache().Stats()
	if fills != fillsBefore || hits != hitsBefore+1 {
		t.Fatalf("predict after refill: hits %d->%d fills %d->%d, want one hit and no fill",
			hitsBefore, hits, fillsBefore, fills)
	}
}

// TestShowServingStats: the per-model counters add up against a known
// workload.
func TestShowServingStats(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")

	scores := make([]float64, 1)
	const n = 7
	for i := 0; i < n; i++ {
		if _, err := r.plane.Predict("m", [][]float64{{1, 1}}, scores); err != nil {
			t.Fatal(err)
		}
	}
	gs, models := r.plane.Stats()
	if gs.Models != 1 || gs.Inflight != 0 || gs.Queued != 0 {
		t.Fatalf("gate stats %+v", gs)
	}
	if len(models) != 1 || models[0].Model != "m" {
		t.Fatalf("model stats %+v", models)
	}
	ms := models[0]
	if ms.Fills != 1 || ms.Hits != n-1 || ms.Sheds != 0 {
		t.Fatalf("m counters hits=%d fills=%d sheds=%d, want %d/1/0", ms.Hits, ms.Fills, ms.Sheds, n-1)
	}
	if ms.RetryAfterMS < 1 {
		t.Fatalf("served model reports hint %dms, want >= 1", ms.RetryAfterMS)
	}
}
