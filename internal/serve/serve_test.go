package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"bismarck/internal/engine"
	"bismarck/internal/sqlish"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// mapGuard is a minimal sqlish.Guard for tests (the real server installs
// its refcounted NameLocks; the serving plane only needs the interface).
type mapGuard struct {
	mu sync.Mutex
	m  map[string]*sync.RWMutex
}

func newMapGuard() *mapGuard { return &mapGuard{m: make(map[string]*sync.RWMutex)} }

func (g *mapGuard) get(name string) *sync.RWMutex {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.m[name]
	if !ok {
		l = &sync.RWMutex{}
		g.m[name] = l
	}
	return l
}

func (g *mapGuard) Lock(name string) func()  { l := g.get(name); l.Lock(); return l.Unlock }
func (g *mapGuard) RLock(name string) func() { l := g.get(name); l.RLock(); return l.RUnlock }

// servingRig is a catalog with two constant-label training sets (+10 and
// -10 over the same features), a statement session, and a plane sharing
// the session's guard — enough to train, retrain, and serve one model.
type servingRig struct {
	cat   *engine.Catalog
	sess  *sqlish.Session
	plane *Plane
}

func newRig(t testing.TB, opt Options) *servingRig {
	t.Helper()
	cat := engine.NewCatalog()
	for name, label := range map[string]float64{"pos": 10, "neg": -10} {
		tbl, err := cat.Create(name, tasks.DenseExampleSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			tbl.MustInsert(engine.Tuple{
				engine.I64(int64(i)),
				engine.DenseV(vector.Dense{1, 1}),
				engine.F64(label),
			})
		}
	}
	guard := newMapGuard()
	return &servingRig{
		cat:   cat,
		sess:  &sqlish.Session{Cat: cat, Out: io.Discard, Guard: guard},
		plane: New(cat, guard, opt),
	}
}

// train fits lsq on the +10 or -10 set into model m: the model's score
// for (1, 1) lands near ±10, so the served sign identifies the
// generation — the signal every consistency assertion below reads.
func (r *servingRig) train(t testing.TB, src string) {
	t.Helper()
	stmt := fmt.Sprintf(`SELECT vec, label FROM %s TO TRAIN lsq
		WITH alpha=0.1, epochs=6, dim=2, seed=1 INTO m;`, src)
	if err := r.sess.Exec(stmt); err != nil {
		t.Fatalf("train from %s: %v", src, err)
	}
}

func TestPlanePredictCacheLifecycle(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")

	points := [][]float64{{1, 1}, {2, 2}}
	scores := make([]float64, 2)
	gen1, err := r.plane.Predict("m", points, scores)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 == 0 || scores[0] < 5 || scores[1] < 10 {
		t.Fatalf("gen=%d scores=%v, want positive regression outputs", gen1, scores)
	}

	// Second call is a pure cache hit at the same generation.
	gen2, err := r.plane.Predict("m", points, scores)
	if err != nil {
		t.Fatal(err)
	}
	hits, fills := r.plane.Cache().Stats()
	if gen2 != gen1 || fills != 1 || hits == 0 {
		t.Fatalf("gen %d->%d, hits=%d fills=%d; want one fill then hits", gen1, gen2, hits, fills)
	}

	// Retrain with flipped labels: the generation bump invalidates the
	// entry without any notification, and the refilled snapshot flips
	// the served sign.
	r.train(t, "neg")
	gen3, err := r.plane.Predict("m", points, scores)
	if err != nil {
		t.Fatal(err)
	}
	if gen3 <= gen1 {
		t.Fatalf("retrain did not advance served generation: %d -> %d", gen1, gen3)
	}
	if scores[0] > -5 {
		t.Fatalf("retrained model still serves old sign: %v", scores)
	}
}

// TestDroppedModelEvicted is the staleness regression: after a model is
// dropped, the plane must fail with the typed unknown-model error and the
// cache must not retain (let alone serve) the dead entry — even though no
// eviction message was ever sent.
func TestDroppedModelEvicted(t *testing.T) {
	r := newRig(t, Options{})
	r.train(t, "pos")

	points := [][]float64{{1, 1}}
	scores := make([]float64, 1)
	if _, err := r.plane.Predict("m", points, scores); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.plane.Cache().Lookup("m"); !ok {
		t.Fatal("expected a cached entry after first predict")
	}

	for _, n := range []string{"m", "m__meta"} {
		if err := r.cat.Drop(n); err != nil {
			t.Fatal(err)
		}
	}
	// The drop bumped the generation: the entry is invalid immediately.
	if _, _, ok := r.plane.Cache().Lookup("m"); ok {
		t.Fatal("dropped model still served from cache")
	}
	_, err := r.plane.Predict("m", points, scores)
	var unk *sqlish.UnknownModelError
	if !errors.As(err, &unk) || unk.Model != "m" {
		t.Fatalf("want *UnknownModelError for m, got %T: %v", err, err)
	}
	// The failed fill evicted the dead entry from the epoch map itself.
	if _, ok := (*r.plane.Cache().cur.Load())["m"]; ok {
		t.Fatal("dead entry still present in the published epoch")
	}

	// A retrain under the same name serves again.
	r.train(t, "neg")
	if _, err := r.plane.Predict("m", points, scores); err != nil {
		t.Fatal(err)
	}
	if scores[0] > -5 {
		t.Fatalf("revived model serves wrong coefficients: %v", scores)
	}
}

func TestGateShedding(t *testing.T) {
	g := NewGate(1, 1)

	// Occupy the single slot.
	holder, err := g.Admit()
	if err != nil {
		t.Fatal(err)
	}
	holder.Wait()

	// One waiter fits in the queue.
	waiter, err := g.Admit()
	if err != nil {
		t.Fatalf("queue slot should admit: %v", err)
	}
	if g.Queued() != 1 {
		t.Fatalf("queued=%d, want 1", g.Queued())
	}

	// The next request is shed with a typed, hinted rejection.
	_, err = g.Admit()
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError, got %T: %v", err, err)
	}
	if busy.RetryAfterMS < 1 {
		t.Fatalf("retry hint %dms, want >= 1", busy.RetryAfterMS)
	}
	if g.Queued() != 1 {
		t.Fatalf("shed request leaked into queue: queued=%d", g.Queued())
	}

	// Drain: the waiter gets the slot when the holder releases.
	done := make(chan struct{})
	go func() {
		waiter.Wait()
		waiter.Release()
		close(done)
	}()
	holder.Release()
	<-done
	if g.Queued() != 0 {
		t.Fatalf("queue not drained: %d", g.Queued())
	}
	if tk, err := g.Admit(); err != nil {
		t.Fatalf("gate did not recover: %v", err)
	} else {
		tk.Wait()
		tk.Release()
	}
}

// TestPredictZeroAlloc pins the acceptance contract: the steady-state
// serving path — gate admit, cache hit, warm scratch, score — performs
// zero heap allocations per request.
func TestPredictZeroAlloc(t *testing.T) {
	r := newRig(t, Options{Inflight: 2, MaxQueue: 4})
	r.train(t, "pos")

	points := [][]float64{{1, 1}, {2, 2}, {0.5, 0.25}}
	scores := make([]float64, len(points))
	if _, err := r.plane.Predict("m", points, scores); err != nil { // warm fill + scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.plane.Predict("m", points, scores); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Predict allocates %v/op, want 0", allocs)
	}
}

// TestPredictDuringRetrainRace hammers the plane from many goroutines
// while the model is retrained back and forth between the +10 and -10
// sets. Every response must be internally consistent with exactly one
// generation: within a batch of proportional probes, all scores carry the
// same sign and keep their ratio — a torn batch (old snapshot for one
// tuple, new for another) would break both.
func TestPredictDuringRetrainRace(t *testing.T) {
	r := newRig(t, Options{Inflight: 4, MaxQueue: 64})
	r.train(t, "pos")

	const clients = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			points := [][]float64{{1, 1}, {3, 3}}
			scores := make([]float64, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen, err := r.plane.Predict("m", points, scores)
				if err != nil {
					var busy *BusyError
					if errors.As(err, &busy) {
						continue // shed load is a valid answer under hammering
					}
					errc <- err
					return
				}
				if gen == 0 {
					errc <- fmt.Errorf("served generation 0")
					return
				}
				if (scores[0] > 0) != (scores[1] > 0) {
					errc <- fmt.Errorf("torn batch: signs differ %v", scores)
					return
				}
				ratio := scores[1] / scores[0]
				if ratio < 2.999 || ratio > 3.001 {
					errc <- fmt.Errorf("torn batch: ratio %v for %v", ratio, scores)
					return
				}
			}
		}()
	}
	srcs := []string{"neg", "pos", "neg", "pos"}
	for _, src := range srcs {
		r.train(t, src)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
