package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"bismarck/internal/dist"
	"bismarck/internal/serve"
	"bismarck/internal/spec"
)

// Binary frames are the negotiated high-rate encoding for pipelined
// point-PREDICT (see proto.go for the "@bin" handshake). After the
// handshake the connection carries length-prefixed frames exclusively,
// both directions:
//
//	u32 LE payload length | payload
//
// Request payload (client → server):
//
//	u8  opcode        — 1 = predict
//	u64 LE id         — client-chosen, >= 1 (0 reserved, as in text frames)
//	u16 LE model len  | model name bytes (UTF-8)
//	u16 LE npoints    | u16 LE arity
//	f64 LE × npoints×arity — point values, row-major
//
// Response payload (server → client):
//
//	u8  status        — 0 = OK, 1 = ERR
//	u64 LE id
//	OK:  u16 LE n | f64 LE × n scores
//	ERR: u16 LE len | message bytes
//
// Batches are rectangular by construction (one arity for the whole
// frame), which is also what the text grammar accepts for a single
// model. The encoding exists to kill the per-request strconv/Sprintf
// and %.6g formatting of the text frames: the server's steady-state
// binary path — decode, admit, score, encode — performs zero heap
// allocations per request, reusing one set of buffers per connection.
const (
	binOpPredict  = 1
	binStatusOK   = 0
	binStatusErr  = 1
	binReqHeader  = 1 + 8 + 2 // opcode, id, model length
	binRespHeader = 1 + 8     // status, id

	// maxBinFrameBytes caps one frame's payload, mirroring the text
	// protocol's line cap: a peer announcing a huge length must not make
	// us allocate it.
	maxBinFrameBytes = 1 << 20
)

// appendBinRequest encodes one predict request frame (length prefix
// included) onto buf. The batch must be rectangular and inside the spec
// caps — the same limits the parser enforces on text frames.
func appendBinRequest(buf []byte, id uint64, model string, points [][]float64) ([]byte, error) {
	if id == 0 {
		return buf, fmt.Errorf("server: frame ids start at 1 (0 is the server's unattributable-error id)")
	}
	if len(model) == 0 || len(model) > math.MaxUint16 {
		return buf, fmt.Errorf("server: binary frame model name length %d out of range", len(model))
	}
	if len(points) == 0 || len(points) > spec.MaxPointBatch {
		return buf, fmt.Errorf("server: binary frame batch of %d points (want 1..%d)", len(points), spec.MaxPointBatch)
	}
	arity := len(points[0])
	if arity == 0 || arity > spec.MaxPointValues {
		return buf, fmt.Errorf("server: binary frame arity %d (want 1..%d)", arity, spec.MaxPointValues)
	}
	for i, row := range points {
		if len(row) != arity {
			return buf, fmt.Errorf("server: binary frames are rectangular: point %d has %d values, point 0 has %d", i, len(row), arity)
		}
	}
	payload := binReqHeader + len(model) + 4 + 8*len(points)*arity
	if payload > maxBinFrameBytes {
		return buf, fmt.Errorf("server: binary frame payload %d exceeds %d bytes", payload, maxBinFrameBytes)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = append(buf, binOpPredict)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(model)))
	buf = append(buf, model...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(points)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(arity))
	for _, row := range points {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// binRequest is one decoded predict request. Its slices view or reuse
// per-connection backing arrays: the model bytes alias the read buffer
// (valid only until the next frame is read), and flat/points grow to the
// largest batch seen then stay — the zero-allocation steady state.
type binRequest struct {
	id     uint64
	model  []byte
	flat   []float64
	points [][]float64
}

// decode parses payload into r, reusing r's backing arrays. r.id is set
// as soon as the header parses so the caller can attribute errors from
// the rest of the payload to the client's id.
//
//bismarck:noalloc
func (r *binRequest) decode(payload []byte) error {
	r.id = 0
	if len(payload) < binReqHeader {
		return fmt.Errorf("server: binary frame payload %d bytes, header alone is %d", len(payload), binReqHeader)
	}
	op := payload[0]
	r.id = binary.LittleEndian.Uint64(payload[1:9])
	mlen := int(binary.LittleEndian.Uint16(payload[9:11]))
	if op != binOpPredict {
		return fmt.Errorf("server: unknown binary frame opcode %d", op)
	}
	if r.id == 0 {
		return fmt.Errorf("server: frame id 0 is reserved for unattributable errors; use ids >= 1")
	}
	rest := payload[binReqHeader:]
	if len(rest) < mlen+4 {
		return fmt.Errorf("server: binary frame truncated inside model name")
	}
	r.model = rest[:mlen]
	npoints := int(binary.LittleEndian.Uint16(rest[mlen:]))
	arity := int(binary.LittleEndian.Uint16(rest[mlen+2:]))
	if npoints == 0 || npoints > spec.MaxPointBatch {
		return fmt.Errorf("server: binary frame batch of %d points (want 1..%d)", npoints, spec.MaxPointBatch)
	}
	if arity == 0 || arity > spec.MaxPointValues {
		return fmt.Errorf("server: binary frame arity %d (want 1..%d)", arity, spec.MaxPointValues)
	}
	vals := rest[mlen+4:]
	if len(vals) != 8*npoints*arity {
		return fmt.Errorf("server: binary frame carries %d value bytes, %d×%d points need %d", len(vals), npoints, arity, 8*npoints*arity)
	}
	need := npoints * arity
	if cap(r.flat) < need {
		r.flat = make([]float64, need)
	}
	r.flat = r.flat[:need]
	for i := range r.flat {
		r.flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:]))
	}
	if cap(r.points) < npoints {
		r.points = make([][]float64, npoints)
	}
	r.points = r.points[:npoints]
	for i := range r.points {
		r.points[i] = r.flat[i*arity : (i+1)*arity]
	}
	return nil
}

// appendBinOK encodes a success response frame (length prefix included).
//
//bismarck:noalloc
func appendBinOK(buf []byte, id uint64, scores []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(binRespHeader+2+8*len(scores)))
	buf = append(buf, binStatusOK)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(scores)))
	for _, v := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// appendBinErr encodes an error response frame (length prefix included).
// Long messages are truncated to the u16 length field.
//
//bismarck:noalloc
func appendBinErr(buf []byte, id uint64, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(binRespHeader+2+len(msg)))
	buf = append(buf, binStatusErr)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	return buf
}

// readBinFrame reads one length-prefixed frame, reusing *buf as the
// payload buffer (grown as needed). The returned slice aliases *buf and
// is valid until the next call.
//
//bismarck:noalloc
func readBinFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxBinFrameBytes {
		return nil, fmt.Errorf("server: binary frame length %d (want 1..%d)", n, maxBinFrameBytes)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	*buf = (*buf)[:n]
	if _, err := io.ReadFull(r, *buf); err != nil {
		return nil, err
	}
	return *buf, nil
}

// decodeBinResponse parses a response payload into the client's Frame
// shape (scores allocated fresh — the client side is not the hot path).
func decodeBinResponse(payload []byte) (Frame, error) {
	if len(payload) < binRespHeader+2 {
		return Frame{}, fmt.Errorf("server: binary response payload %d bytes, header alone is %d", len(payload), binRespHeader+2)
	}
	status := payload[0]
	f := Frame{ID: binary.LittleEndian.Uint64(payload[1:9])}
	n := int(binary.LittleEndian.Uint16(payload[9:11]))
	rest := payload[11:]
	switch status {
	case binStatusOK:
		if len(rest) != 8*n {
			return Frame{}, fmt.Errorf("server: binary response carries %d score bytes, header says %d scores", len(rest), n)
		}
		f.Scores = make([]float64, n)
		for i := range f.Scores {
			f.Scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	case binStatusErr:
		if len(rest) != n {
			return Frame{}, fmt.Errorf("server: binary response carries %d message bytes, header says %d", len(rest), n)
		}
		f.Err = string(rest)
		if f.Err == "" {
			f.Err = "unspecified server error"
		}
	default:
		return Frame{}, fmt.Errorf("server: unknown binary response status %d", status)
	}
	return f, nil
}

// binSession is one binary-mode connection's serving state: the decoded
// request, the scores and output buffers, and the memoized model name.
// All of it is reused frame to frame — after warm-up, handling a request
// allocates nothing.
type binSession struct {
	plane  *serve.Plane
	req    binRequest
	scores []float64
	out    []byte
	model  string // memoized: re-made only when the frame's model changes
}

// handle serves one request payload, leaving the response frame in
// b.out. cancel aborts a queued admission wait (connection/server
// teardown); handle reports false only then — every other failure is an
// error frame for the client.
//
//bismarck:noalloc
func (b *binSession) handle(payload []byte, cancel <-chan struct{}) bool {
	if err := b.req.decode(payload); err != nil {
		b.out = appendBinErr(b.out[:0], b.req.id, oneLine(err.Error()))
		return true
	}
	// Scoring wants a string key; pipelining clients hammer one model, so
	// memoize the conversion instead of allocating it per frame (the
	// comparison form below is alloc-free; only a model switch converts).
	if string(b.req.model) != b.model {
		b.model = string(b.req.model) //bismarck:allowalloc model switches are rare; steady state takes the comparison above
	}
	ad, err := b.plane.Admit(b.model)
	if err != nil {
		b.out = appendBinErr(b.out[:0], b.req.id, oneLine(err.Error()))
		return true
	}
	if !ad.Wait(cancel) {
		return false
	}
	if cap(b.scores) < len(b.req.points) {
		b.scores = make([]float64, len(b.req.points))
	}
	b.scores = b.scores[:len(b.req.points)]
	_, serr := ad.Score(b.model, b.req.points, b.scores)
	ad.Release()
	if serr != nil {
		b.out = appendBinErr(b.out[:0], b.req.id, oneLine(serr.Error()))
		return true
	}
	b.out = appendBinOK(b.out[:0], b.req.id, b.scores)
	return true
}

// serveBinary runs the post-handshake binary loop: read a frame, score it
// synchronously, write the response. Synchronous is deliberate — binary
// mode exists for throughput, where per-request goroutines buy reordering
// nobody asked for at the cost of the zero-allocation path; a client
// wanting server-side overlap opens connections. Requests parked on a
// full admission queue abandon their booking when the server closes
// (s.closing), and write failures close the connection so the read side
// unblocks — the same teardown discipline as the text loop.
//
// Executor opcodes (distributed training, internal/dist) share the
// framing and are routed by the opcode byte before the predict path's
// zero-allocation decode; their shard state is per-connection and is
// released when the loop exits, so a lost coordinator can never leak
// shard heaps past its TCP session.
func (s *TCPServer) serveBinary(conn net.Conn, w *bufio.Writer, wmu *sync.Mutex) {
	br := bufio.NewReaderSize(conn, 1<<16)
	b := binSession{plane: s.m.plane}
	var ex *dist.Executor // lazily built on the first executor frame
	defer func() {
		if ex != nil {
			ex.Close()
			s.m.execConns.Add(-1)
		}
	}()
	var payload []byte
	for {
		p, err := readBinFrame(br, &payload)
		if err != nil {
			return
		}
		var out []byte
		if isExecOp(p[0]) {
			if ex == nil {
				ex = dist.NewExecutor(buildRegistryTask,
					execGate{g: s.m.execGate, closing: s.closing})
				ex.Hooks = s.execHooks
				s.m.execConns.Add(1)
			}
			resp, ok := ex.Handle(p)
			if !ok {
				return
			}
			out = resp
		} else {
			if !b.handle(p, s.closing) {
				return
			}
			out = b.out
		}
		wmu.Lock()
		_, werr := w.Write(out)
		if ferr := w.Flush(); werr == nil {
			werr = ferr
		}
		wmu.Unlock()
		if werr != nil {
			conn.Close()
			return
		}
	}
}
