package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"bismarck/internal/engine"
)

// TestBinFrameCodecRoundTrip: every request field survives
// encode → decode, and responses survive both shapes.
func TestBinFrameCodecRoundTrip(t *testing.T) {
	points := [][]float64{{1.5, -2.25}, {0, math.MaxFloat64}}
	frame, err := appendBinRequest(nil, 42, "my model", points)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(frame); int(got) != len(frame)-4 {
		t.Fatalf("length prefix %d, payload is %d", got, len(frame)-4)
	}
	var req binRequest
	if err := req.decode(frame[4:]); err != nil {
		t.Fatal(err)
	}
	if req.id != 42 || string(req.model) != "my model" || len(req.points) != 2 {
		t.Fatalf("decoded %+v", req)
	}
	for i := range points {
		for j := range points[i] {
			if req.points[i][j] != points[i][j] {
				t.Fatalf("point[%d][%d] = %v, want %v", i, j, req.points[i][j], points[i][j])
			}
		}
	}

	ok := appendBinOK(nil, 7, []float64{3.5, -0.125})
	f, err := decodeBinResponse(ok[4:])
	if err != nil || f.ID != 7 || f.Err != "" || len(f.Scores) != 2 || f.Scores[0] != 3.5 || f.Scores[1] != -0.125 {
		t.Fatalf("OK response: %+v, %v", f, err)
	}
	er := appendBinErr(nil, 9, "it broke")
	f, err = decodeBinResponse(er[4:])
	if err != nil || f.ID != 9 || f.Err != "it broke" || f.Scores != nil {
		t.Fatalf("ERR response: %+v, %v", f, err)
	}
}

// TestBinFrameDecodeRejectsMalformed: corrupted payloads error instead of
// panicking or mis-slicing, and the id is attributed whenever the header
// parsed.
func TestBinFrameDecodeRejectsMalformed(t *testing.T) {
	good, err := appendBinRequest(nil, 5, "m", [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]

	var req binRequest
	for name, corrupt := range map[string][]byte{
		"empty":            {},
		"short header":     payload[:5],
		"bad opcode":       append([]byte{99}, payload[1:]...),
		"truncated model":  payload[:binReqHeader],
		"truncated values": payload[:len(payload)-3],
		"id zero": func() []byte {
			p := bytes.Clone(payload)
			binary.LittleEndian.PutUint64(p[1:9], 0)
			return p
		}(),
		"zero points": func() []byte {
			p := bytes.Clone(payload)
			binary.LittleEndian.PutUint16(p[binReqHeader+1:], 0)
			return p
		}(),
	} {
		if err := req.decode(corrupt); err == nil {
			t.Errorf("%s: decode accepted %v", name, corrupt)
		}
	}
	// Header-parsed corruption attributes the client's id.
	if err := req.decode(payload[:len(payload)-3]); err == nil || req.id != 5 {
		t.Fatalf("truncated payload should keep id 5 for attribution, got id=%d err=%v", req.id, err)
	}

	// A frame length outside the cap is refused before any allocation.
	var buf []byte
	huge := binary.LittleEndian.AppendUint32(nil, maxBinFrameBytes+1)
	if _, err := readBinFrame(bytes.NewReader(huge), &buf); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	if _, err := readBinFrame(bytes.NewReader(binary.LittleEndian.AppendUint32(nil, 0)), &buf); err == nil {
		t.Fatal("zero frame length accepted")
	}
}

// TestBinSessionErrorFrames: a malformed payload reaching the serving
// loop answers an attributed error frame, and the session keeps serving
// valid frames afterwards.
func TestBinSessionErrorFrames(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedSignSets(t, m)
	sess := m.NewSession(discard{})
	if err := sess.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	good, err := appendBinRequest(nil, 6, "m", [][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	b := binSession{plane: m.Plane()}

	// Truncated values, but a parseable header: error frame on id 6.
	if !b.handle(good[4:len(good)-3], nil) {
		t.Fatal("handle reported teardown on a malformed payload")
	}
	if f, err := decodeBinResponse(b.out[4:]); err != nil || f.ID != 6 || f.Err == "" {
		t.Fatalf("malformed payload response: %+v, %v", f, err)
	}

	// The session still serves.
	if !b.handle(good[4:], nil) {
		t.Fatal("handle reported teardown on a valid payload")
	}
	if f, err := decodeBinResponse(b.out[4:]); err != nil || f.ID != 6 || f.Err != "" || len(f.Scores) != 1 || f.Scores[0] < 5 {
		t.Fatalf("valid payload response: %+v, %v", f, err)
	}
}
