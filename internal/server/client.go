package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"bismarck/internal/spec"
)

// Client speaks the bismarckd wire protocol: one statement out, one
// framed response back. It is what `bismarck -connect` and the e2e tests
// drive; any line-oriented tool (nc) works just as well.
//
// Pipelining clients send frames from whatever goroutine produced them,
// so the write side (Send, SendFrame, SendBinPredict) is mutex-
// serialized: without it, two in-flight SendFrames could interleave
// their bytes mid-line and desync the connection's framing for good —
// and the binary path's reused encode buffer would race outright. The
// read side stays single-reader (one goroutine drains responses), which
// is the only arrangement id-matched pipelining supports anyway.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner

	// wmu serializes writes; see the type comment.
	wmu sync.Mutex

	// Binary-mode state, nil/empty until Binary() negotiates the switch.
	br      *bufio.Reader
	sendBuf []byte
	recvBuf []byte
}

// Dial connects and consumes the server banner.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, sc: bufio.NewScanner(conn)}
	c.sc.Buffer(make([]byte, 1<<20), 1<<20)
	if _, err := c.ReadResponse(nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: bad banner: %w", err)
	}
	return c, nil
}

// Exec sends one statement (';' appended when missing) and returns the
// response body. A server-side statement failure comes back as an error.
// Exactly one statement per call: the server answers once per statement
// and Exec reads one response, so passing several would desync every
// later call on this client — multi-statement input is rejected instead
// (split it with spec.SplitStatements and Exec each piece).
func (c *Client) Exec(stmt string) (string, error) {
	s := strings.TrimSpace(stmt)
	if spec.Incomplete(s) {
		// The server would wait for the string literal to close and never
		// respond; fail fast instead of hanging the connection.
		return "", fmt.Errorf("server: statement has an %v", spec.ErrUnterminatedString)
	}
	if !spec.Terminated(s) {
		// Terminate on a fresh line: appending to the current line could
		// land the ';' inside a trailing -- comment.
		s += "\n;"
	}
	switch pieces := spec.SplitStatements(s); len(pieces) {
	case 1:
	case 0:
		// Comment-only/blank input would make the server execute zero
		// statements and send zero responses — blocking the read below
		// forever.
		return "", fmt.Errorf("server: Exec got no statement (blank or comment-only input)")
	default:
		return "", fmt.Errorf("server: Exec takes one statement, got %d — send each separately", len(pieces))
	}
	if err := c.Send(s); err != nil {
		return "", err
	}
	var body strings.Builder
	if _, err := c.ReadResponse(&body); err != nil {
		return body.String(), err
	}
	return body.String(), nil
}

// Send writes raw statement text (the caller owns ';' placement — the
// server only executes once a line ends with one).
func (c *Client) Send(text string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := fmt.Fprintln(c.conn, text)
	return err
}

// ReadResponse consumes one framed response, appending unprefixed body
// lines to body (when non-nil). It returns the number of body lines; an
// ERR terminator surfaces as an error carrying the server message.
func (c *Client) ReadResponse(body *strings.Builder) (int, error) {
	n := 0
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case line == TermOK:
			return n, nil
		case strings.HasPrefix(line, TermErr+" "):
			return n, fmt.Errorf("%s", strings.TrimPrefix(line, TermErr+" "))
		case strings.HasPrefix(line, BodyPrefix):
			if body != nil {
				body.WriteString(strings.TrimPrefix(line, BodyPrefix))
				body.WriteByte('\n')
			}
			n++
		default:
			return n, fmt.Errorf("server: malformed response line %q", line)
		}
	}
	if err := c.sc.Err(); err != nil {
		return n, err
	}
	return n, fmt.Errorf("server: connection closed mid-response")
}

// Frame is one pipelined point-PREDICT response: the echoing id plus
// either the batch's scores or the server's error line (Err != "").
type Frame struct {
	ID     uint64
	Scores []float64
	Err    string
}

// SendFrame pipelines one inline point-PREDICT without waiting for the
// response; any number may be in flight, matched back by id via
// ReadFrame. The statement must be a single line (frames have no
// continuation form) and ids must be >= 1. Do not interleave Exec with
// unread frames on one client — frame responses arriving inside Exec's
// response window would desync it; pipelining clients dedicate the
// connection to frames (or drain frames first).
func (c *Client) SendFrame(id uint64, stmt string) error {
	if id == 0 {
		return fmt.Errorf("server: frame ids start at 1 (0 is the server's unattributable-error id)")
	}
	s := oneLine(stmt)
	if s == "" {
		return fmt.Errorf("server: empty frame statement")
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := fmt.Fprintf(c.conn, "%s%d %s\n", FramePrefix, id, s)
	return err
}

// ReadFrame consumes one pipelined response line. Responses arrive in
// completion order, not send order — match by Frame.ID. A server-reported
// failure is returned in Frame.Err (not as a Go error, so the caller can
// still attribute it to its id); the error return is for transport or
// framing problems only.
func (c *Client) ReadFrame() (Frame, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Frame{}, err
		}
		return Frame{}, fmt.Errorf("server: connection closed before frame response")
	}
	line := c.sc.Text()
	rest, ok := strings.CutPrefix(line, FramePrefix)
	if !ok {
		return Frame{}, fmt.Errorf("server: expected a frame response, got %q", line)
	}
	idStr, payload, ok := strings.Cut(rest, " ")
	if !ok {
		return Frame{}, fmt.Errorf("server: malformed frame response %q", line)
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return Frame{}, fmt.Errorf("server: malformed frame response id in %q: %v", line, err)
	}
	f := Frame{ID: id}
	switch {
	case payload == TermOK:
	case strings.HasPrefix(payload, TermOK+" "):
		for _, field := range strings.Fields(strings.TrimPrefix(payload, TermOK+" ")) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return Frame{}, fmt.Errorf("server: non-numeric score %q in frame %d", field, id)
			}
			f.Scores = append(f.Scores, v)
		}
	case strings.HasPrefix(payload, TermErr+" "):
		f.Err = strings.TrimPrefix(payload, TermErr+" ")
	default:
		return Frame{}, fmt.Errorf("server: malformed frame payload %q", line)
	}
	return f, nil
}

// Binary negotiates the length-prefixed binary frame encoding for this
// connection (see binframe.go for the layout): it sends the "@bin" line,
// waits for the server's ack, and switches the client to binary-only
// I/O — after a successful Binary only SendBinPredict/ReadBinFrame may be
// used. Call it with no text frames in flight (the server answers those
// before acking, and the responses would be misread as the ack).
func (c *Client) Binary() error {
	if c.br != nil {
		return fmt.Errorf("server: connection already in binary mode")
	}
	if err := c.Send(BinHello); err != nil {
		return err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("server: connection closed during binary negotiation")
	}
	if line := c.sc.Text(); line != BinHelloOK {
		return fmt.Errorf("server: binary negotiation failed: got %q, want %q", line, BinHelloOK)
	}
	// The server sends nothing after the ack until our first binary
	// frame, so a fresh reader on the raw connection misses no bytes.
	c.br = bufio.NewReader(c.conn)
	return nil
}

// SendBinPredict pipelines one binary predict frame (requires Binary()
// first). Batches must be rectangular; ids must be >= 1 and are matched
// back by ReadBinFrame like their text counterparts.
func (c *Client) SendBinPredict(id uint64, model string, points [][]float64) error {
	if c.br == nil {
		return fmt.Errorf("server: SendBinPredict before Binary() negotiated binary mode")
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := appendBinRequest(c.sendBuf[:0], id, model, points)
	c.sendBuf = buf
	if err != nil {
		return err
	}
	_, err = c.conn.Write(buf)
	return err
}

// ReadBinFrame consumes one binary response frame (requires Binary()
// first). Like ReadFrame, a server-reported failure lands in Frame.Err
// and the error return is transport/framing trouble only.
func (c *Client) ReadBinFrame() (Frame, error) {
	if c.br == nil {
		return Frame{}, fmt.Errorf("server: ReadBinFrame before Binary() negotiated binary mode")
	}
	payload, err := readBinFrame(c.br, &c.recvBuf)
	if err != nil {
		return Frame{}, err
	}
	return decodeBinResponse(payload)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
