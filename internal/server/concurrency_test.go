package server

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/engine"
)

var jobIDRe = regexp.MustCompile(`job (\d+) queued`)

// TestEightClientConcurrentSessions is the race-proof e2e of the issue:
// an in-process TCP server with 8 concurrent clients running interleaved
// TRAIN ASYNC / PREDICT / EVALUATE / SHOW JOBS over one shared model and
// per-client disjoint models. Every PREDICT must score the full table (a
// torn model read would change the row count or error), every EVALUATE
// must succeed, and after the final WAITs every submitted job must sit in
// a terminal state. Run under -race this also proves the session layer
// free of data races.
func TestEightClientConcurrentSessions(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 4})
	seedPapers(t, m, 300)
	addr := startTCP(t, m)

	// Generation zero of the shared model, so mid-train PREDICTs always
	// have a snapshot to serve.
	boot, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO shared"); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*4)
	var mu sync.Mutex
	var jobs []string // job ids seen by any client

	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", ci, err)
				return
			}
			defer c.Close()

			task := "lr"
			if ci%2 == 1 {
				task = "svm"
			}
			own := fmt.Sprintf("own_%d", ci)
			var waits []string

			submit := func(stmt string) {
				body, err := c.Exec(stmt)
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", ci, stmt, err)
					return
				}
				match := jobIDRe.FindStringSubmatch(body)
				if match == nil {
					errs <- fmt.Errorf("client %d: submit gave no job id: %q", ci, body)
					return
				}
				waits = append(waits, match[1])
			}

			for r := 0; r < rounds; r++ {
				// Disjoint-model training: nobody else touches own_i.
				submit(fmt.Sprintf(
					"SELECT vec, label FROM papers TO TRAIN %s WITH epochs=2, seed=%d INTO %s ASYNC",
					task, ci*10+r, own))
				// Shared-model churn: half the clients keep retraining
				// "shared" while everyone scores against it.
				if ci%2 == 0 {
					submit(fmt.Sprintf(
						"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=%d INTO shared ASYNC",
						100+ci*10+r))
				}
				body, err := c.Exec("SELECT * FROM papers TO PREDICT USING shared")
				if err != nil {
					errs <- fmt.Errorf("client %d predict: %w", ci, err)
					return
				}
				if !strings.Contains(body, "predicted 300 rows") {
					errs <- fmt.Errorf("client %d: torn predict: %q", ci, body)
					return
				}
				if _, err := c.Exec("SELECT * FROM papers TO EVALUATE USING shared"); err != nil {
					errs <- fmt.Errorf("client %d evaluate: %w", ci, err)
					return
				}
				if _, err := c.Exec("SHOW JOBS"); err != nil {
					errs <- fmt.Errorf("client %d show jobs: %w", ci, err)
					return
				}
			}
			// Every job this client submitted must reach a terminal state.
			for _, id := range waits {
				if _, err := c.Exec("WAIT JOB " + id); err != nil {
					errs <- fmt.Errorf("client %d wait %s: %w", ci, id, err)
					return
				}
			}
			mu.Lock()
			jobs = append(jobs, waits...)
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	wantJobs := clients*rounds + (clients/2)*rounds
	if len(jobs) != wantJobs {
		t.Fatalf("collected %d job ids, want %d", len(jobs), wantJobs)
	}

	// Final ledger: every job terminal, none stuck queued/running.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body, err := c.Exec("SHOW JOBS")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != wantJobs {
		t.Fatalf("SHOW JOBS lists %d jobs, want %d:\n%s", len(lines), wantJobs, body)
	}
	for _, line := range lines {
		if !strings.Contains(line, "done") {
			t.Errorf("non-terminal or failed job after drain: %s", line)
		}
	}

	// Disjoint models all persisted; the shared model survived the churn.
	for ci := 0; ci < clients; ci++ {
		if w := readModel(t, m.Catalog(), fmt.Sprintf("own_%d", ci)); len(w) == 0 {
			t.Errorf("own_%d model empty", ci)
		}
	}
	if w := readModel(t, m.Catalog(), "shared"); len(w) == 0 {
		t.Error("shared model empty")
	}
}
