package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bismarck/internal/engine"
)

// TestKillMidAsyncRetrainRecovers is the server half of the crash-recovery
// acceptance test, run under -race in CI: 8 TCP clients hammer a
// file-backed daemon with ASYNC retrains of one shared model plus disjoint
// per-client models while predicting against the shared one; partway
// through, an engine fault-injection hook "SIGKILLs" one shared-model swap
// right after its commit point. The affected job fails over the wire (its
// client tolerates exactly that error), every other job commits, and after
// abandoning the catalog un-flushed — a hard kill, no shutdown save — the
// reopened directory must hold every model as a complete
// coefficients+metadata generation, with all shadow heaps swept.
func TestKillMidAsyncRetrainRecovers(t *testing.T) {
	dir := testCatalogDir(t)
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat, Options{Workers: 4})
	seedPapers(t, m, 200)

	// Crash the 3rd commit of the shared model's swap window. Exactly one
	// job dies; the daemon (unlike a real SIGKILL victim) keeps serving,
	// which is fine — what the test kills for real is the catalog, below.
	var sharedCommits atomic.Int32
	cat.Hooks.AfterCommit = func(finals []string) error {
		for _, f := range finals {
			if f == "shared" && sharedCommits.Add(1) == 3 {
				return engine.ErrInjectedCrash
			}
		}
		return nil
	}

	addr := startTCP(t, m)
	boot, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO shared"); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*4)
	var injected atomic.Int32

	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", ci, err)
				return
			}
			defer c.Close()
			own := fmt.Sprintf("own_%d", ci)
			var waits []string
			submit := func(stmt string) {
				body, err := c.Exec(stmt)
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", ci, stmt, err)
					return
				}
				if match := jobIDRe.FindStringSubmatch(body); match != nil {
					waits = append(waits, match[1])
				}
			}
			for r := 0; r < rounds; r++ {
				submit(fmt.Sprintf(
					"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=%d INTO %s ASYNC",
					ci*10+r, own))
				if ci%2 == 0 {
					submit(fmt.Sprintf(
						"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=%d INTO shared ASYNC",
						100+ci*10+r))
				}
				if body, err := c.Exec("SELECT * FROM papers TO PREDICT USING shared"); err != nil {
					errs <- fmt.Errorf("client %d predict: %w", ci, err)
					return
				} else if !strings.Contains(body, "predicted 200 rows") {
					errs <- fmt.Errorf("client %d: torn predict: %q", ci, body)
					return
				}
			}
			for _, id := range waits {
				if _, err := c.Exec("WAIT JOB " + id); err != nil {
					// The one injected kill surfaces as a failed job; that
					// exact failure is expected exactly once.
					if strings.Contains(err.Error(), "injected crash") {
						injected.Add(1)
						continue
					}
					errs <- fmt.Errorf("client %d wait %s: %w", ci, id, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if got := injected.Load(); got != 1 {
		t.Fatalf("injected crash surfaced %d times, want exactly 1", got)
	}

	m.Drain()
	cat.Abandon() // hard kill: no shutdown save, tail pages lost, fds dropped

	// Restart. Every model must recover as a complete generation.
	re, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if leaks := findShadowLeaks(dir); len(leaks) > 0 {
		t.Fatalf("recovery left shadow heaps: %v", leaks)
	}
	m2 := NewManager(re, Options{Workers: 1})
	defer m2.Drain()
	var out strings.Builder
	s := m2.NewSession(&out)
	models := []string{"shared"}
	for ci := 0; ci < clients; ci++ {
		models = append(models, fmt.Sprintf("own_%d", ci))
	}
	for _, model := range models {
		if w := readModel(t, re, model); len(w) == 0 {
			t.Errorf("model %q recovered empty", model)
		}
		if _, err := re.Get(model + engine.MetaSuffix); err != nil {
			t.Errorf("model %q recovered without metadata: %v", model, err)
		}
		out.Reset()
		if err := s.Exec(fmt.Sprintf("SELECT * FROM papers TO PREDICT USING %s", model)); err != nil {
			t.Errorf("recovered model %q does not score: %v", model, err)
		}
	}
}

// TestDrainDiscardShadowsKeepsCatalogServable: an injected crash leaves
// shadow tables registered in the live catalog (the dead save's cleanup
// never ran); the daemon shutdown path must discard them so the final
// Save writes a servable catalog, not one whose next open needs a sweep.
func TestDrainDiscardShadows(t *testing.T) {
	dir := testCatalogDir(t)
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat, Options{Workers: 1})
	seedPapers(t, m, 100)
	var out strings.Builder
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=1 INTO m;`)

	crash := errors.New("fill never finished")
	cat.Hooks.BeforeShadowSync = func([]string) error { return engine.ErrInjectedCrash }
	if err := s.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=2 INTO m;`); err == nil {
		t.Fatal(crash)
	}
	cat.Hooks.BeforeShadowSync = nil

	// The daemon's teardown order: drain, discard shadows, save, close.
	m.Drain()
	if err := cat.DiscardShadows(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovery.Clean() {
		t.Fatalf("clean shutdown still needed recovery: %+v", re.Recovery)
	}
	if w := readModel(t, re, "m"); len(w) == 0 {
		t.Fatal("model lost across shutdown")
	}
}
