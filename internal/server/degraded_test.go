package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

// TestTrainWhileDegradedReads is the end-to-end corruption drill (run it
// under -race): one client trains repeatedly from a clean table while a
// second hammers a quarantined table with degraded reads, CHECK TABLE and
// SHOW SCRUB over the wire. Strict reads of the bad table keep failing,
// degraded reads keep succeeding with a skip report, and the trainer
// never notices.
func TestTrainWhileDegradedReads(t *testing.T) {
	dir := testCatalogDir(t)
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"papers", "logs"} {
		src := data.Forest(2000, 5)
		dst, err := cat.Create(name, src.Schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.CopyTo(dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot one page of logs on disk; recovery at reopen quarantines it.
	path := filepath.Join(dir, "logs.heap")
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], engine.PageSize+64); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], engine.PageSize+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cat2, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat2.Recovery.Quarantined["logs"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("Quarantined[logs] = %v, want [1]", got)
	}
	m := NewManager(cat2, Options{Workers: 2})
	defer func() {
		m.Drain()
		if err := cat2.Save(); err != nil {
			t.Fatal(err)
		}
		if err := cat2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	addr := startTCP(t, m)

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*8)

	// Trainer: clean-table statements must be completely unaffected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for r := 0; r < rounds; r++ {
			body, err := c.Exec(fmt.Sprintf(
				"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=%d INTO m", r))
			if err != nil {
				errs <- fmt.Errorf("train round %d: %w", r, err)
				return
			}
			if !strings.Contains(body, "LR trained") {
				errs <- fmt.Errorf("train round %d: %q", r, body)
				return
			}
		}
	}()

	// Degraded reader: the quarantined table serves only with the opt-in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for r := 0; r < rounds; r++ {
			if _, err := c.Exec(fmt.Sprintf(
				"SELECT vec, label FROM logs TO TRAIN lr WITH epochs=1, seed=%d INTO mlogs", r)); err == nil {
				errs <- fmt.Errorf("strict read of quarantined logs succeeded (round %d)", r)
				return
			} else if !strings.Contains(err.Error(), "corrupt page") {
				errs <- fmt.Errorf("strict read: %w", err)
				return
			}
			body, err := c.Exec(fmt.Sprintf(
				"SELECT vec, label FROM logs TO TRAIN lr WITH epochs=1, seed=%d, degraded=true INTO mlogs", r))
			if err != nil {
				errs <- fmt.Errorf("degraded read round %d: %w", r, err)
				return
			}
			if !strings.Contains(body, "degraded scan: skipped 1 corrupt pages") {
				errs <- fmt.Errorf("degraded read round %d missing skip report: %q", r, body)
				return
			}
			if body, err := c.Exec("CHECK TABLE logs"); err != nil {
				errs <- fmt.Errorf("CHECK TABLE: %w", err)
				return
			} else if !strings.Contains(body, "quarantined") {
				errs <- fmt.Errorf("CHECK TABLE lost the quarantine: %q", body)
				return
			}
			if body, err := c.Exec("SHOW SCRUB"); err != nil {
				errs <- fmt.Errorf("SHOW SCRUB: %w", err)
				return
			} else if !strings.Contains(body, "logs") {
				errs <- fmt.Errorf("SHOW SCRUB missing logs: %q", body)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
