package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bismarck/internal/core"
	"bismarck/internal/data"
	"bismarck/internal/dist"
	"bismarck/internal/engine"
	"bismarck/internal/ordering"
	"bismarck/internal/parallel"
	"bismarck/internal/serve"
	"bismarck/internal/spec"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// These tests drive the distributed training plane end to end against
// real TCP executors (in-process TCPServers in -executor shape): the
// handshake, the shard shipping, the per-epoch STEP round trips, and the
// lost-executor requeue path. Because they dial the genuine server, they
// also pin the handshake and busy-rejection tokens the dist package
// duplicates (it cannot import this package) — a drift in either set
// fails the handshake or the backoff parsing here.

// trackingListener records accepted connections so a test can sever them
// at an exact protocol point — the deterministic stand-in for an
// executor process dying mid-run.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) sever() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// execNode is one in-process executor daemon. kill severs every accepted
// connection exactly once — from the coordinator's point of view the
// node is gone mid-conversation, like a SIGKILLed process.
type execNode struct {
	addr   string
	m      *Manager
	srv    *TCPServer
	kill   func()
	killed atomic.Bool
}

// startExecNode starts an executor-shaped server (in-memory catalog) on
// a loopback port. hooks, when non-nil, builds the executor-side crash
// instrumentation with the node in scope — set before Serve, so handler
// goroutines observe it without racing.
func startExecNode(t *testing.T, hooks func(n *execNode) dist.ExecutorHooks) *execNode {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := &trackingListener{Listener: raw}
	m := NewManager(engine.NewCatalog(), Options{})
	srv := NewTCPServer(m)
	n := &execNode{addr: raw.Addr().String(), m: m, srv: srv}
	var once sync.Once
	n.kill = func() {
		once.Do(func() {
			n.killed.Store(true)
			lis.sever()
		})
	}
	if hooks != nil {
		srv.execHooks = hooks(n)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
		m.Drain()
	})
	return n
}

// drained asserts the node holds no leaked admission tickets and no
// lingering executor connections. Close first: it waits for the in-flight
// connection handlers, so a mid-scan victim has released its ticket.
func (n *execNode) drained(t *testing.T, name string) {
	t.Helper()
	n.srv.Close()
	if in := n.m.execGate.Inflight(); in != 0 {
		t.Errorf("%s: %d executor gate tickets still inflight", name, in)
	}
	if q := n.m.execGate.Queued(); q != 0 {
		t.Errorf("%s: %d executor gate tickets still queued", name, q)
	}
	if c := n.m.execConns.Load(); c != 0 {
		t.Errorf("%s: %d executor connections still registered", name, c)
	}
}

// TestDistributedTrainMatchesInProcessSharded is the convergence-parity
// matrix over the full statement path: the same TRAIN with shards=K run
// in-process and with executors=... must produce bit-identical models —
// the distributed runners slot into the same ShardedEpoch merge, ship
// the same rows, and replay the same per-shard rng streams.
func TestDistributedTrainMatchesInProcessSharded(t *testing.T) {
	a := startExecNode(t, nil)
	b := startExecNode(t, nil)
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	seedPapers(t, m, 240)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, tc := range []struct {
		task string
		k    int
	}{{"lr", 2}, {"lr", 4}, {"svm", 2}, {"svm", 4}} {
		name := fmt.Sprintf("%s_k%d", tc.task, tc.k)
		if _, err := c.Exec(fmt.Sprintf(
			"SELECT vec, label FROM papers TO TRAIN %s WITH epochs=3, shards=%d, seed=7 INTO local_%s",
			tc.task, tc.k, name)); err != nil {
			t.Fatalf("%s in-process: %v", name, err)
		}
		if _, err := c.Exec(fmt.Sprintf(
			"SELECT vec, label FROM papers TO TRAIN %s WITH epochs=3, shards=%d, seed=7, executors='%s,%s' INTO dist_%s",
			tc.task, tc.k, a.addr, b.addr, name)); err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		local := readModel(t, m.Catalog(), "local_"+name)
		remote := readModel(t, m.Catalog(), "dist_"+name)
		if !sameModel(local, remote) {
			t.Errorf("%s: distributed model diverges from the in-process sharded model", name)
		}
	}

	// No explicit shards knob: the adaptive K still trains.
	if _, err := c.Exec(fmt.Sprintf(
		"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, seed=7, executors='%s,%s' INTO dist_adaptive",
		a.addr, b.addr)); err != nil {
		t.Fatalf("adaptive: %v", err)
	}
	if w := readModel(t, m.Catalog(), "dist_adaptive"); len(w) == 0 {
		t.Error("adaptive distributed model is empty")
	}

	// SHOW SERVING on an executor reports its executor-plane counters,
	// back to zero connections once the coordinators hung up.
	ec, err := Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err := ec.Exec("SHOW SERVING")
		if err != nil {
			t.Fatalf("SHOW SERVING on executor: %v", err)
		}
		if !strings.Contains(body, "executor conns=") {
			t.Fatalf("SHOW SERVING misses the executor line: %q", body)
		}
		if strings.Contains(body, "executor conns=0") {
			break
		}
		// The coordinator's sockets are closed, but the handler goroutines
		// may not have observed EOF yet.
		if time.Now().After(deadline) {
			t.Fatalf("executor connections never drained: %q", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	a.drained(t, "executor a")
	b.drained(t, "executor b")
}

// distLRFixture builds the crash-matrix workload: a Forest table, the
// registry LR task over its 54 features, and the snapshot params the
// executors rebuild it from.
func distLRFixture(t *testing.T, rows int) (*engine.Table, *tasks.LR, map[string]string) {
	t.Helper()
	tbl := data.Forest(rows, 5)
	ts, err := spec.Lookup("lr")
	if err != nil {
		t.Fatal(err)
	}
	task := &tasks.LR{D: 54}
	return tbl, task, ts.Snapshot(task)
}

// TestDistributedExecutorLossCrashMatrix kills one of two executors at
// each point of the STEP protocol — before the request, mid-scan on the
// executor, and after a successful reply — and requires, for every
// point: the statement succeeds, the final model is bit-identical to the
// in-process sharded run (requeued shards replay their ordering
// streams), the victim's death was actually observed as a transport
// fault, and neither node leaks an admission ticket.
func TestDistributedExecutorLossCrashMatrix(t *testing.T) {
	const (
		shards = 4
		epochs = 4
		seed   = int64(3)
	)
	tbl, task, params := distLRFixture(t, 200)
	ref, err := (&parallel.ShardedTrainer{
		Task: task, Step: core.DefaultStep(0.1), MaxEpochs: epochs, Shards: shards,
		Order: ordering.ShuffleOnce{}, Seed: seed,
	}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}

	type arm struct {
		name string
		// victimHooks builds the executor-side kill (mid-step); nil for
		// coordinator-side arms.
		victimHooks func(n *execNode) dist.ExecutorHooks
		// coordHooks installs the coordinator-side kill; may be nil.
		coordHooks func(victim *execNode, tr *dist.Trainer)
	}
	arms := []arm{
		{
			name: "before-step",
			coordHooks: func(victim *execNode, tr *dist.Trainer) {
				tr.Hooks.BeforeStep = func(shard, epoch int) {
					if epoch == 1 {
						victim.kill()
					}
				}
			},
		},
		{
			name: "mid-step",
			victimHooks: func(n *execNode) dist.ExecutorHooks {
				return dist.ExecutorHooks{MidStep: func(shard uint32, epoch int) {
					if epoch == 1 {
						n.kill()
					}
				}}
			},
		},
		{
			name: "after-reply",
			coordHooks: func(victim *execNode, tr *dist.Trainer) {
				tr.Hooks.AfterStep = func(shard, epoch int, err error) {
					if epoch == 1 && err == nil {
						victim.kill()
					}
				}
			},
		},
	}

	for _, a := range arms {
		t.Run(a.name, func(t *testing.T) {
			victim := startExecNode(t, a.victimHooks)
			survivor := startExecNode(t, nil)

			tr := &dist.Trainer{
				Executors:  []string{victim.addr, survivor.addr},
				TaskName:   "lr",
				TaskParams: params,
				Task:       task,
				Step:       core.DefaultStep(0.1),
				OrderName:  "shuffle_once",
				MaxEpochs:  epochs,
				Shards:     shards,
				Seed:       seed,
				Timeout:    10 * time.Second,
			}
			if a.coordHooks != nil {
				a.coordHooks(victim, tr)
			}
			var faults atomic.Int32
			after := tr.Hooks.AfterStep
			tr.Hooks.AfterStep = func(shard, epoch int, err error) {
				if err != nil {
					faults.Add(1)
				}
				if after != nil {
					after(shard, epoch, err)
				}
			}

			res, err := tr.Run(tbl)
			if err != nil {
				t.Fatalf("losing one executor failed the statement: %v", err)
			}
			if !victim.killed.Load() {
				t.Fatal("kill point never fired — the matrix arm tested nothing")
			}
			if d := vector.Dist2(res.Model, ref.Model); d != 0 {
				t.Errorf("model after requeue diverges from the in-process run by %g", d)
			}
			if res.Epochs != ref.Epochs {
				t.Errorf("ran %d epochs, in-process ran %d", res.Epochs, ref.Epochs)
			}
			for i := range ref.Losses {
				if i < len(res.Losses) && res.Losses[i] != ref.Losses[i] {
					t.Errorf("epoch %d loss %g, in-process %g", i, res.Losses[i], ref.Losses[i])
				}
			}
			// The before/mid arms sever during epoch 1's STEPs, so a STEP
			// must have failed; after-reply may race its kill into the loss
			// pass instead (requeued there, no STEP hook), so only the
			// model parity above proves the requeue for it.
			if a.name != "after-reply" && faults.Load() == 0 {
				t.Error("no STEP observed the executor loss")
			}

			victim.drained(t, "victim")
			survivor.drained(t, "survivor")
		})
	}
}

// TestDistributedBusyExecutorBacksOff pins the shed-load contract end to
// end: an executor whose gate sheds two admissions with a real
// *serve.BusyError (the exact rendering the daemon sends) must slow the
// coordinator down, never fail it — and the result must still be
// bit-identical to the in-process run. Admission #3 is shard 0's SEAL
// (shipping is sequential, so that index is deterministic), exercising
// the free-partial-state-and-reship path; #17 lands inside the epoch
// loop, exercising the STEP/LOSS hint backoff.
func TestDistributedBusyExecutorBacksOff(t *testing.T) {
	tbl, task, params := distLRFixture(t, 120)
	gate := &busyAtGate{shedAt: map[int64]bool{3: true, 17: true}}
	addr := startFakeExecutor(t, gate)

	tr := &dist.Trainer{
		Executors:  []string{addr},
		TaskName:   "lr",
		TaskParams: params,
		Task:       task,
		Step:       core.DefaultStep(0.1),
		OrderName:  "shuffle_once",
		MaxEpochs:  3,
		Shards:     2,
		Seed:       5,
		Timeout:    10 * time.Second,
	}
	res, err := tr.Run(tbl)
	if err != nil {
		t.Fatalf("busy shedding failed the statement: %v", err)
	}
	if gate.rejections.Load() == 0 {
		t.Fatal("gate never shed — the backoff path was not exercised")
	}
	ref, err := (&parallel.ShardedTrainer{
		Task: task, Step: core.DefaultStep(0.1), MaxEpochs: 3, Shards: 2,
		Order: ordering.ShuffleOnce{}, Seed: 5,
	}).Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d := vector.Dist2(res.Model, ref.Model); d != 0 {
		t.Errorf("model under busy shedding diverges from the in-process run by %g", d)
	}
}

// busyAtGate sheds the admissions whose 1-based index is in shedAt with a
// genuine *serve.BusyError — so the coordinator parses the same message
// the production gate emits. shedAt is read-only after construction.
type busyAtGate struct {
	shedAt     map[int64]bool
	n          atomic.Int64
	rejections atomic.Int64
}

func (g *busyAtGate) Admit() (func(), bool, error) {
	if g.shedAt[g.n.Add(1)] {
		g.rejections.Add(1)
		return nil, true, &serve.BusyError{RetryAfterMS: 1}
	}
	return func() {}, true, nil
}

// startFakeExecutor serves the executor wire protocol by hand — banner,
// "@bin" handshake, then length-prefixed frames into a dist.Executor —
// with an arbitrary admission gate, which the real server shape does not
// allow injecting.
func startFakeExecutor(t *testing.T, gate dist.Gate) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := io.WriteString(conn, "| fake executor\nOK\n"); err != nil {
					return
				}
				line, err := br.ReadString('\n')
				if err != nil || strings.TrimSpace(line) != BinHello {
					return
				}
				if _, err := io.WriteString(conn, BinHelloOK+"\n"); err != nil {
					return
				}
				ex := dist.NewExecutor(buildRegistryTask, gate)
				defer ex.Close()
				var payload []byte
				for {
					p, err := readBinFrame(br, &payload)
					if err != nil {
						return
					}
					resp, ok := ex.Handle(p)
					if !ok {
						return
					}
					if _, err := conn.Write(resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// TestClientConcurrentSendFrameRace is the write-mutex regression test:
// many goroutines pipelining binary predicts on one Client share its
// encode buffer and socket, which raced (and interleaved frames) before
// Send/SendFrame/SendBinPredict serialized on wmu. Run under -race.
func TestClientConcurrentSendFrameRace(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}
	if err := c.Binary(); err != nil {
		t.Fatal(err)
	}

	const senders, perSender = 6, 30
	var wg sync.WaitGroup
	sendErrs := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := uint64(g*1000 + i + 1)
				if err := c.SendBinPredict(id, "m", [][]float64{{1, 1}}); err != nil {
					sendErrs <- fmt.Errorf("sender %d: %w", g, err)
					return
				}
			}
		}(g)
	}

	seen := make(map[uint64]bool, senders*perSender)
	for i := 0; i < senders*perSender; i++ {
		f, err := c.ReadBinFrame()
		if err != nil {
			t.Fatalf("frame %d: transport desync: %v", i, err)
		}
		if f.Err != "" {
			t.Fatalf("frame id %d: %s", f.ID, f.Err)
		}
		if seen[f.ID] {
			t.Fatalf("frame id %d answered twice", f.ID)
		}
		seen[f.ID] = true
	}
	wg.Wait()
	close(sendErrs)
	for err := range sendErrs {
		t.Error(err)
	}
	if len(seen) != senders*perSender {
		t.Fatalf("answered %d distinct frames, sent %d", len(seen), senders*perSender)
	}
}
