package server

import (
	"bismarck/internal/core"
	"bismarck/internal/dist"
	"bismarck/internal/serve"
	"bismarck/internal/spec"
)

// This file is the daemon side of distributed training (internal/dist):
// binary connections carrying executor opcodes are served by a
// per-connection dist.Executor whose tasks rebuild from the spec registry
// — the exact metadata-only path model snapshots use — and whose requests
// pass through a dedicated admission gate, so a storm of STEP frames
// sheds with the same "busy: ... retry_after_ms" contract as point
// predicts instead of oversubscribing the daemon.

// buildRegistryTask rebuilds a training task from its registry name and
// fully-resolved parameters — the dist.BuildTask the executors use. No
// data view is available, mirroring LoadSnapshot: a coordinator ships a
// TaskSpec.Snapshot of its built task, which carries every parameter, so
// Build never reaches dimension inference.
func buildRegistryTask(name string, params map[string]string) (core.Task, error) {
	ts, err := spec.Lookup(name)
	if err != nil {
		return nil, err
	}
	p, err := spec.RebindStrings(ts.Params, params)
	if err != nil {
		return nil, err
	}
	return ts.Build(spec.BuildInput{Params: p})
}

// execGate adapts a serve.Gate (plus the server's closing channel) to
// dist.Gate: synchronous shed with the retry-after hint the coordinator
// parses, a cancellable wait for a slot, and ok=false at shutdown so the
// binary loop tears the connection down instead of answering.
type execGate struct {
	g       *serve.Gate
	closing <-chan struct{}
}

// Admit implements dist.Gate.
func (e execGate) Admit() (func(), bool, error) {
	t, err := e.g.Admit()
	if err != nil {
		return nil, true, err
	}
	if !t.WaitOrCancel(e.closing) {
		return nil, false, nil
	}
	return t.Release, true, nil
}

// isExecOp reports whether a binary frame opcode belongs to the executor
// protocol (dist ops continue the numbering after predict).
func isExecOp(op byte) bool {
	return op >= dist.OpShardLoad && op <= dist.OpShardFree
}
