package server

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bismarck/internal/spec"
)

// JobState is the lifecycle of a background training job. Every submitted
// job reaches exactly one of the terminal states (done, failed, canceled).
type JobState int

// Job lifecycle states.
const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = iota
	// JobRunning: a worker is training.
	JobRunning
	// JobDone: trained and persisted.
	JobDone
	// JobFailed: the statement errored; Job.Err carries the message.
	JobFailed
	// JobCanceled: canceled before it started, or at the save boundary.
	JobCanceled
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// errCanceled aborts a canceled job at the save boundary (via the session
// PreSave hook), leaving the previous model generation untouched.
var errCanceled = errors.New("server: job canceled")

// Job is one asynchronous TRAIN statement.
type Job struct {
	// ID is the daemon-wide job number (WAIT JOB <id>).
	ID int64
	// Model is the statement's INTO destination.
	Model string
	// Statement is the submitted statement, rendered one-line.
	Statement string

	mu        sync.Mutex
	state     JobState
	err       string
	output    string // captured session output (the training summary line)
	cancel    bool
	submitted time.Time
	finished  time.Time

	// done closes when the job reaches a terminal state.
	done chan struct{}

	st *spec.Statement
}

// JobView is an immutable snapshot of a job for listings.
type JobView struct {
	ID        int64
	Model     string
	Statement string
	State     JobState
	Err       string
	Output    string
	Elapsed   time.Duration
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, Model: j.Model, Statement: j.Statement,
		State: j.state, Err: j.err, Output: j.output}
	end := j.finished
	if !j.state.Terminal() {
		end = time.Now()
	}
	v.Elapsed = end.Sub(j.submitted)
	return v
}

// Done returns the channel closed at the job's terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// begin moves queued → running; it fails when the job was canceled while
// still queued (requestCancel already settled it terminal).
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = JobRunning
	return true
}

// settle records the run's outcome and closes done.
func (j *Job) settle(err error, output string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.output = output
	j.finished = time.Now()
	switch {
	case errors.Is(err, errCanceled):
		j.state = JobCanceled
	case err != nil:
		j.state = JobFailed
		j.err = err.Error()
	default:
		j.state = JobDone
	}
	close(j.done)
}

// requestCancel cancels the job: a queued job settles terminal on the
// spot (workers skip settled jobs at pickup), a running job is flagged
// and stopped at its save boundary. Returns the state the request landed
// in.
func (j *Job) requestCancel() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	was := j.state
	if was.Terminal() {
		return was
	}
	j.cancel = true
	if was == JobQueued {
		j.state = JobCanceled
		j.finished = time.Now()
		close(j.done)
	}
	return was
}

// canceled reads the cancel flag (the PreSave hook's check).
func (j *Job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// cancelIfQueued settles a still-queued job as canceled; running jobs are
// left alone (the shutdown path lets them finish and commit).
func (j *Job) cancelIfQueued() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobQueued {
		j.cancel = true
		j.state = JobCanceled
		j.finished = time.Now()
		close(j.done)
	}
}

// scheduler runs submitted TRAIN jobs on a fixed worker pool.
type scheduler struct {
	m       *Manager
	queue   chan *Job
	history int
	wg      sync.WaitGroup
	mu      sync.Mutex
	next    int64
	jobs    map[int64]*Job
	order   []int64 // submission order, for bounded retention
	closing bool
}

func newScheduler(m *Manager, workers, depth, history int) *scheduler {
	s := &scheduler{m: m, queue: make(chan *Job, depth), history: history,
		jobs: make(map[int64]*Job)}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.run(job)
			}
		}()
	}
	return s
}

// submit registers and enqueues an async TRAIN statement. The enqueue
// happens under the scheduler mutex so drain cannot close the queue
// between the closing check and the send.
func (s *scheduler) submit(st *spec.Statement, text string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, fmt.Errorf("server: shutting down, not accepting jobs")
	}
	job := &Job{ID: s.next + 1, Model: st.Into, Statement: ledgerText(text),
		submitted: time.Now(), done: make(chan struct{}), st: st}
	select {
	case s.queue <- job:
	default:
		return nil, fmt.Errorf("server: job queue full (%d pending)", cap(s.queue))
	}
	s.next++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Bounded retention: a daemon runs for weeks, and terminal jobs carry
	// their statement and captured output. Evict the oldest terminal jobs
	// past the history limit, skipping (never evicting) live ones — a
	// single long-running job must not shield the terminal jobs completing
	// behind it from eviction, or the ledger would grow past the limit for
	// the job's whole duration. Live jobs themselves are bounded by the
	// queue depth.
	if excess := len(s.order) - s.history; excess > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			j, ok := s.jobs[id]
			if ok && excess > 0 {
				j.mu.Lock()
				terminal := j.state.Terminal()
				j.mu.Unlock()
				if terminal {
					delete(s.jobs, id)
					excess--
					continue
				}
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	return job, nil
}

// run executes one job on a private session that shares the manager's
// catalog and locks. The ASYNC flag is cleared so the statement trains
// synchronously inside the worker.
func (s *scheduler) run(job *Job) {
	if !job.begin() {
		return
	}
	var out bytes.Buffer
	sess := s.m.newSQLSession(&out)
	sess.PreSave = func(model string) error {
		if hook := s.m.Hooks.BeforeSave; hook != nil {
			hook(job.ID, model)
		}
		if job.canceled() {
			return errCanceled
		}
		return nil
	}
	st := *job.st
	st.Async = false
	err := sess.Run(&st)
	if err == nil {
		// Same checkpoint as synchronous statements: an acknowledged async
		// model must survive an ungraceful death.
		err = s.m.persistMeta()
	}
	if err == nil {
		// Post-commit cache warming, same as a synchronous TRAIN: the first
		// PREDICT against the new generation should not pay the decode.
		// Best-effort — the per-request path reports real problems itself.
		s.m.plane.Refill(job.Model)
	}
	job.settle(err, out.String())
}

// ledgerText bounds the statement rendering kept for SHOW JOBS: the
// server accepts statements up to the 1 MB line cap, and a full-length
// one echoed as a single SHOW JOBS body line would overflow the client's
// own line scanner mid-response.
func ledgerText(text string) string {
	const max = 512
	if len(text) > max {
		return strings.ToValidUTF8(text[:max], "") + " …[truncated]"
	}
	return text
}

// get resolves a job id.
func (s *scheduler) get(id int64) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("server: no job %d (SHOW JOBS lists submitted jobs)", id)
	}
	return job, nil
}

// list snapshots every job, oldest first.
func (s *scheduler) list() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// drain stops intake and waits until every accepted job is terminal.
// Running jobs finish and commit; still-queued jobs settle canceled
// immediately — a shutdown must not first train a 200-deep backlog.
func (s *scheduler) drain() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closing = true
	pending := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.cancelIfQueued()
	}
	close(s.queue)
	s.wg.Wait()
}
