package server

import "sync"

// NameLocks is the per-model (more generally, per-table-name) reader/writer
// lock registry of the session manager: TRAIN persists a model under the
// name's write lock, PREDICT / EVALUATE load it under the read lock, so
// scoring statements see a stable model snapshot while a TRAIN on the same
// name is running — they serve the previous generation until the save
// commits, and never a half-written one.
//
// Entries are refcounted and evicted as soon as the last holder releases:
// names arrive from untrusted network statements once a catalog is served
// over TCP, so an attacker looping over random model names must not be
// able to grow the registry without bound. NameLocks implements
// sqlish.Guard.
type NameLocks struct {
	mu    sync.Mutex
	locks map[string]*nameLock
}

type nameLock struct {
	mu   sync.RWMutex
	refs int
}

// NewNameLocks returns an empty registry.
func NewNameLocks() *NameLocks {
	return &NameLocks{locks: make(map[string]*nameLock)}
}

// acquire resolves the name's lock entry and pins it. This is the
// manager-level lock of the documented order (manager → model → catalog):
// it is only ever held for the map access, never while blocking on a
// model lock.
func (nl *NameLocks) acquire(name string) *nameLock {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	l, ok := nl.locks[name]
	if !ok {
		l = &nameLock{}
		nl.locks[name] = l
	}
	l.refs++
	return l
}

// release unpins the entry, evicting it once nobody holds or waits on it.
// The pin spans the whole hold, so a name in use always resolves to the
// same RWMutex — eviction can only happen when no holder exists.
func (nl *NameLocks) release(name string, l *nameLock) {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	l.refs--
	if l.refs == 0 {
		delete(nl.locks, name)
	}
}

// Lock takes the name's exclusive lock and returns its release (call it
// exactly once).
func (nl *NameLocks) Lock(name string) func() {
	l := nl.acquire(name)
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		nl.release(name, l)
	}
}

// RLock takes the name's shared lock and returns its release (call it
// exactly once).
func (nl *NameLocks) RLock(name string) func() {
	l := nl.acquire(name)
	l.mu.RLock()
	return func() {
		l.mu.RUnlock()
		nl.release(name, l)
	}
}
