package server

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"bismarck/internal/engine"
)

// execBannerRe pins the executor-mode startup banner — the multi-process
// harness scrapes the bound address out of it, so a reworded banner must
// fail here, not silently hang the CI step.
var execBannerRe = regexp.MustCompile(`bismarckd: shard executor on (\S+) \(in-memory`)

// execProc is one real bismarckd -executor OS process.
type execProc struct {
	cmd  *exec.Cmd
	addr string
}

// startExecProc launches the built daemon in executor mode on an
// ephemeral port and waits for the banner to learn the address.
func startExecProc(t *testing.T, bin string) *execProc {
	t.Helper()
	cmd := exec.Command(bin, "-executor", "-listen", "127.0.0.1:0")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting executor daemon: %v", err)
	}
	p := &execProc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if m := execBannerRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("executor daemon never printed its banner")
	}
	return p
}

// TestMultiProcessDistributedTrainSurvivesKill is the out-of-process
// rehearsal of the crash matrix: two real bismarckd -executor processes,
// an in-process coordinator running an ASYNC distributed TRAIN against
// them, and a SIGKILL of one executor mid-run. The statement must requeue
// onto the survivor and commit a model. Costs a `go build` and real
// process churn, so it only runs when BISMARCK_MULTIPROC_E2E=1 (the CI
// distributed step sets it).
func TestMultiProcessDistributedTrainSurvivesKill(t *testing.T) {
	if os.Getenv("BISMARCK_MULTIPROC_E2E") != "1" {
		t.Skip("set BISMARCK_MULTIPROC_E2E=1 to run the multi-process e2e")
	}
	bin := filepath.Join(t.TempDir(), "bismarckd")
	build := exec.Command("go", "build", "-o", bin, "bismarck/cmd/bismarckd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building bismarckd: %v\n%s", err, out)
	}
	victim := startExecProc(t, bin)
	survivor := startExecProc(t, bin)

	cat := engine.NewCatalog()
	m := NewManager(cat, Options{Workers: 2})
	defer m.Drain()
	seedPapers(t, m, 600)
	var out strings.Builder
	s := m.NewSession(&out)

	// Enough epochs that the SIGKILL lands while STEP round trips are
	// still in flight; the run stays correct either way.
	if err := s.Exec(fmt.Sprintf(
		"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=40, shards=4, seed=7, executors='%s,%s' INTO dm ASYNC",
		victim.addr, survivor.addr)); err != nil {
		t.Fatalf("submitting distributed train: %v", err)
	}
	match := jobIDRe.FindStringSubmatch(out.String())
	if match == nil {
		t.Fatalf("submit gave no job id: %q", out.String())
	}
	time.Sleep(100 * time.Millisecond)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing victim executor: %v", err)
	}
	_ = victim.cmd.Wait()

	out.Reset()
	if err := s.Exec("WAIT JOB " + match[1]); err != nil {
		t.Fatalf("distributed train did not survive the executor kill: %v", err)
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("job did not finish done: %q", out.String())
	}
	if model := readModel(t, cat, "dm"); len(model) == 0 {
		t.Fatal("committed model is empty")
	}
}
