package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/engine"
	"bismarck/internal/tasks"
	"bismarck/internal/vector"
)

// seedSignSets creates two constant-label training sets over the same
// feature point: lsq trained on "pos" scores (1,1) near +10, on "neg"
// near -10 — the served sign identifies the model generation.
func seedSignSets(t testing.TB, m *Manager) {
	t.Helper()
	for name, label := range map[string]float64{"pos": 10, "neg": -10} {
		tbl, err := m.Catalog().Create(name, tasks.DenseExampleSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			tbl.MustInsert(engine.Tuple{
				engine.I64(int64(i)),
				engine.DenseV(vector.Dense{1, 1}),
				engine.F64(label),
			})
		}
	}
}

const trainSignFmt = `SELECT vec, label FROM %s TO TRAIN lsq
	WITH alpha=0.1, epochs=6, dim=2, seed=1 INTO m%s;`

// TestFrameRoundTrip drives the pipelined frame protocol over TCP:
// out-of-order ids, batched scoring, error frames, and the rule that '@'
// mid-statement is payload, not a frame.
func TestFrameRoundTrip(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	// Pipeline three frames before reading anything; responses come back
	// keyed by id, whatever their order.
	if err := c.SendFrame(7, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendFrame(3, "PREDICT VALUES (1, 1), (3, 3) USING m;"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendFrame(9, "PREDICT (2, 2) USING nosuch"); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Frame{}
	for i := 0; i < 3; i++ {
		f, err := c.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		got[f.ID] = f
	}
	if f := got[7]; f.Err != "" || len(f.Scores) != 1 || f.Scores[0] < 5 {
		t.Fatalf("frame 7: %+v", f)
	}
	if f := got[3]; f.Err != "" || len(f.Scores) != 2 || f.Scores[0] < 5 || f.Scores[1] < 15 {
		t.Fatalf("frame 3: %+v", f)
	}
	if f := got[9]; f.Err == "" || !strings.Contains(f.Err, "SHOW MODELS") {
		t.Fatalf("frame 9 should carry the unknown-model hint: %+v", f)
	}

	// Non-point statements are refused on frames; malformed ids answer
	// on the reserved id 0.
	if err := c.SendFrame(4, "SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFrame(); err != nil || f.ID != 4 || !strings.Contains(f.Err, "point-PREDICT only") {
		t.Fatalf("frame 4: %+v, %v", f, err)
	}
	if err := c.Send("@nope PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFrame(); err != nil || f.ID != 0 || !strings.Contains(f.Err, "malformed frame") {
		t.Fatalf("malformed frame: %+v, %v", f, err)
	}
	if err := c.Send("@0 PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFrame(); err != nil || f.ID != 0 || !strings.Contains(f.Err, "reserved") {
		t.Fatalf("id-0 frame: %+v, %v", f, err)
	}

	// '@' while a statement is buffered is statement payload: the two
	// lines below form ONE (invalid) statement and draw one line-protocol
	// ERR — not a frame response, and not an executed frame.
	if err := c.Send("SELECT * FROM pos TO PREDICT"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("@1 USING m;"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadResponse(nil); err == nil {
		t.Fatal("payload '@' line should have broken the statement parse")
	}
}

// TestFrameBusyShedding occupies the gate (slot and queue) and checks an
// incoming frame is shed synchronously with the typed busy error and a
// usable retry hint.
func TestFrameBusyShedding(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1, ServeInflight: 1, ServeQueue: 1})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	// Fill the slot and the queue from inside, so the next frame sheds.
	hold, err := m.Plane().Gate().Admit()
	if err != nil {
		t.Fatal(err)
	}
	hold.Wait()
	queued, err := m.Plane().Gate().Admit()
	if err != nil {
		t.Fatal(err)
	}

	if err := c.SendFrame(1, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil || f.ID != 1 {
		t.Fatalf("busy frame: %+v, %v", f, err)
	}
	if !strings.Contains(f.Err, "busy") || !strings.Contains(f.Err, "retry_after_ms=") {
		t.Fatalf("want typed busy + retry hint, got %q", f.Err)
	}

	// Release capacity: the plane serves again.
	go func() { queued.Wait(); queued.Release() }()
	hold.Release()
	if err := c.SendFrame(2, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	f, err = c.ReadFrame()
	if err != nil || f.Err != "" || len(f.Scores) != 1 {
		t.Fatalf("post-shed frame: %+v, %v", f, err)
	}
}

// TestPipelinedPredictDuringAsyncTrain is the serving-plane race proof at
// the wire level: several connections keep many frames in flight against
// model m while the control connection retrains m back and forth with
// TRAIN ... ASYNC. Every frame response must be internally consistent
// with exactly one generation — its two proportional probes (1,1) and
// (3,3) must agree in sign and keep their 3× ratio; a response mixing
// generations would break both. Run under -race this also proves the
// lock-free snapshot path clean.
func TestPipelinedPredictDuringAsyncTrain(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	ctrl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	const window = 8 // frames in flight per client per round
	stop := make(chan struct{})
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for n := 0; n < clients; n++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			id := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < window; i++ {
					id++
					if err := cl.SendFrame(id, "PREDICT VALUES (1, 1), (3, 3) USING m"); err != nil {
						errc <- err
						return
					}
				}
				for i := 0; i < window; i++ {
					f, err := cl.ReadFrame()
					if err != nil {
						errc <- err
						return
					}
					if f.Err != "" {
						if strings.Contains(f.Err, "busy") {
							continue // shed load is a legal answer under hammering
						}
						errc <- fmt.Errorf("frame %d: %s", f.ID, f.Err)
						return
					}
					if len(f.Scores) != 2 {
						errc <- fmt.Errorf("frame %d: %d scores", f.ID, len(f.Scores))
						return
					}
					if (f.Scores[0] > 0) != (f.Scores[1] > 0) {
						errc <- fmt.Errorf("torn batch: signs differ %v", f.Scores)
						return
					}
					if ratio := f.Scores[1] / f.Scores[0]; ratio < 2.99 || ratio > 3.01 {
						errc <- fmt.Errorf("torn batch: ratio %v for %v", ratio, f.Scores)
						return
					}
				}
			}
		}(cl)
	}

	// Retrain with alternating labels while the hammering runs. Jobs are
	// the only async submissions on this manager, so ids count up from 1.
	for job, src := 1, 0; job <= 4; job++ {
		name := []string{"neg", "pos"}[src]
		src = 1 - src
		if _, err := ctrl.Exec(fmt.Sprintf(trainSignFmt, name, " ASYNC")); err != nil {
			t.Fatal(err)
		}
		if _, err := ctrl.Exec(fmt.Sprintf("WAIT JOB %d;", job)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
