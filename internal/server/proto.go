package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"

	"bismarck/internal/spec"
)

// The wire protocol is line-oriented and human-usable over nc:
//
//	C: SELECT vec, label FROM papers TO TRAIN svm INTO m ASYNC;
//	S: | job 1 queued: TRAIN svm INTO "m" (SHOW JOBS / WAIT JOB 1)
//	S: OK
//	C: WAIT JOB 99;
//	S: ERR server: no job 99 (SHOW JOBS lists submitted jobs)
//
// Clients send statements terminated by ';' (multi-line statements are
// fine: the server executes once a line ends with ';', splitting the
// buffer on statement boundaries with the lexer). For every statement the
// server streams zero or more body lines, each prefixed "| ", then exactly
// one terminator line: "OK" or "ERR <one-line message>". The prefix makes
// the framing unambiguous no matter what a statement prints. On connect
// the server sends a banner body line and an OK before reading anything.

// maxStatementBytes caps one connection's accumulated statement buffer.
const maxStatementBytes = 1 << 20

// Protocol framing tokens.
const (
	// BodyPrefix starts every response body line.
	BodyPrefix = "| "
	// TermOK terminates a successful statement response.
	TermOK = "OK"
	// TermErr (plus a space and the message) terminates a failed one.
	TermErr = "ERR"
)

// TCPServer serves a Manager over a listener, one session per connection.
type TCPServer struct {
	m *Manager

	mu      sync.Mutex
	lis     net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	closing chan struct{} // closed in Close; unblocks WAIT JOB handlers
	wg      sync.WaitGroup
}

// NewTCPServer wraps the manager for serving.
func NewTCPServer(m *Manager) *TCPServer {
	return &TCPServer{m: m, conns: make(map[net.Conn]struct{}),
		closing: make(chan struct{})}
}

// Serve accepts connections until Close (returning nil then) or a fatal
// listener error.
func (s *TCPServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain. It does not drain the job scheduler — that is the
// manager's (i.e. the daemon shutdown path's) decision.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.closing) // wake handlers parked in WAIT JOB before waiting on them
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// handle speaks the protocol on one connection.
func (s *TCPServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	var body bytes.Buffer
	sess := s.m.NewSession(&body)
	sess.Shutdown = s.closing

	respond := func(err error) bool {
		// Body first (prefixed), then the terminator, then flush: the
		// client reads to the terminator and never guesses at boundaries.
		if body.Len() > 0 {
			for _, line := range strings.Split(strings.TrimRight(body.String(), "\n"), "\n") {
				if _, werr := fmt.Fprintf(w, "%s%s\n", BodyPrefix, line); werr != nil {
					return false
				}
			}
		}
		body.Reset()
		if err != nil {
			if _, werr := fmt.Fprintf(w, "%s %s\n", TermErr, oneLine(err.Error())); werr != nil {
				return false
			}
		} else if _, werr := fmt.Fprintln(w, TermOK); werr != nil {
			return false
		}
		return w.Flush() == nil
	}

	fmt.Fprintf(&body, "bismarckd ready — statements end with ';'\n")
	if !respond(nil) {
		return
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	var term spec.TermScanner
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		term.Write(line)
		term.Write("\n")
		// Network-facing bound: a client refusing to terminate must not
		// grow the buffer without limit.
		if buf.Len() > maxStatementBytes {
			respond(fmt.Errorf("server: statement exceeds %d bytes", maxStatementBytes))
			return
		}
		// Execute only on a ';' that really terminates a statement — one
		// inside an open string literal or behind a -- comment is payload
		// and keeps accumulating. The incremental scanner decides in
		// O(line), so the response count always matches the client's own
		// statement count and the framing stays in sync.
		if !term.Terminated() {
			continue
		}
		text := buf.String()
		buf.Reset()
		term.Reset()
		for _, stmt := range spec.SplitStatements(text) {
			if !respond(sess.Exec(stmt)) {
				return
			}
		}
	}
	// A scanner error (oversized line, broken read) may have truncated the
	// buffered statement — report it rather than executing a partial
	// statement, which could parse into something the client never sent.
	if err := sc.Err(); err != nil {
		respond(fmt.Errorf("server: reading statement: %v", err))
		return
	}
	// Leftover buffer at EOF: run the ';'-terminated statements (they were
	// deliberately sent in full) but refuse the unterminated tail — unlike
	// Ctrl-D at the local REPL, a socket EOF is not a submit gesture, and
	// the tail may be the truncation artifact of a client that died
	// mid-send (executing "CANCEL JOB 1" cut from "CANCEL JOB 12;" would
	// act on the wrong target). When the leftover does not lex,
	// SplitStatements falls back to one unterminated piece and everything
	// is refused — with the buffer unsplittable there is no safe way to
	// salvage complete statements out of it.
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		for _, stmt := range spec.SplitStatements(rest) {
			if !spec.Terminated(stmt) {
				respond(fmt.Errorf("server: dropping unterminated statement at connection end (missing ';')"))
				return
			}
			if !respond(sess.Exec(stmt)) {
				return
			}
		}
	}
}
