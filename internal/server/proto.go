package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"bismarck/internal/dist"
	"bismarck/internal/spec"
)

// The wire protocol is line-oriented and human-usable over nc:
//
//	C: SELECT vec, label FROM papers TO TRAIN svm INTO m ASYNC;
//	S: | job 1 queued: TRAIN svm INTO "m" (SHOW JOBS / WAIT JOB 1)
//	S: OK
//	C: WAIT JOB 99;
//	S: ERR server: no job 99 (SHOW JOBS lists submitted jobs)
//
// Clients send statements terminated by ';' (multi-line statements are
// fine: the server executes once a line ends with ';', splitting the
// buffer on statement boundaries with the lexer). For every statement the
// server streams zero or more body lines, each prefixed "| ", then exactly
// one terminator line: "OK" or "ERR <one-line message>". The prefix makes
// the framing unambiguous no matter what a statement prints. On connect
// the server sends a banner body line and an OK before reading anything.
//
// Pipelined frames multiplex inline point-PREDICT over the same
// connection: a line "@<id> PREDICT (1.5, 2) USING m" — recognized only
// while no statement is buffered, so a '@' inside a multi-line statement
// stays payload — is answered out of order by exactly one line,
// "@<id> OK <score> <score> ..." or "@<id> ERR <message>". Ids are
// client-chosen (>= 1; the server answers "@0 ERR ..." to frames it
// cannot attribute) and clients keep any number in flight:
//
//	C: @1 PREDICT (0.5, 1.5) USING m
//	C: @2 PREDICT VALUES (1, 2), (3, 4) USING m
//	S: @2 OK 4.97 11.2
//	S: @1 OK 3.12
//
// Frames carry point-PREDICT only (anything else belongs on the line
// protocol), are admission-controlled — an overloaded server answers
// "@<id> ERR busy: ... retry_after_ms=<hint>" synchronously instead of
// queueing unboundedly — and a batched frame is always scored against a
// single model generation.
//
// Binary frames are the negotiated high-rate encoding: a client sends the
// line "@bin" (where a statement could start) and, after the server
// answers "@bin OK", the connection speaks length-prefixed binary frames
// exclusively — see binframe.go for the layout. The handshake is
// request/response: the client must not send binary bytes until the ack
// arrives, and any text frames still in flight are answered before it.

// maxStatementBytes caps one connection's accumulated statement buffer.
const maxStatementBytes = 1 << 20

// Protocol framing tokens.
const (
	// BodyPrefix starts every response body line.
	BodyPrefix = "| "
	// TermOK terminates a successful statement response.
	TermOK = "OK"
	// TermErr (plus a space and the message) terminates a failed one.
	TermErr = "ERR"
	// FramePrefix starts a pipelined request or response frame.
	FramePrefix = "@"
	// BinHello is the binary-encoding negotiation line; the server
	// acknowledges with BinHelloOK and switches the connection to
	// length-prefixed binary frames.
	BinHello = "@bin"
	// BinHelloOK acknowledges BinHello.
	BinHelloOK = "@bin OK"
)

// TCPServer serves a Manager over a listener, one session per connection.
type TCPServer struct {
	m *Manager

	// execHooks instruments per-connection distributed executors
	// (deterministic crash tests); set before Serve.
	execHooks dist.ExecutorHooks

	mu      sync.Mutex
	lis     net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	closing chan struct{} // closed in Close; unblocks WAIT JOB handlers
	wg      sync.WaitGroup
}

// NewTCPServer wraps the manager for serving.
func NewTCPServer(m *Manager) *TCPServer {
	return &TCPServer{m: m, conns: make(map[net.Conn]struct{}),
		closing: make(chan struct{})}
}

// Serve accepts connections until Close (returning nil then) or a fatal
// listener error.
func (s *TCPServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain. It does not drain the job scheduler — that is the
// manager's (i.e. the daemon shutdown path's) decision.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.closing) // wake handlers parked in WAIT JOB before waiting on them
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// handle speaks the protocol on one connection.
func (s *TCPServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	var body bytes.Buffer
	sess := s.m.NewSession(&body)
	sess.Shutdown = s.closing

	// wmu serializes whole responses onto the connection: a statement
	// response (body + terminator + flush) is written in one critical
	// section, a frame response in another, so concurrent frame workers
	// interleave with the line protocol only at response granularity and
	// the client-side framing never tears.
	var wmu sync.Mutex
	// cwg tracks this connection's in-flight frame workers; the handler
	// waits them out before the deferred close so no worker writes to a
	// freed connection. done closes first (defers run LIFO): a frame
	// worker still parked on the admission queue gives its booking back
	// instead of burning a scoring slot on an answer nobody will read —
	// the dead-client slot-leak fix.
	var cwg sync.WaitGroup
	done := make(chan struct{})
	defer cwg.Wait()
	defer close(done)

	respond := func(err error) bool {
		wmu.Lock()
		defer wmu.Unlock()
		// Body first (prefixed), then the terminator, then flush: the
		// client reads to the terminator and never guesses at boundaries.
		if body.Len() > 0 {
			for _, line := range strings.Split(strings.TrimRight(body.String(), "\n"), "\n") {
				if _, werr := fmt.Fprintf(w, "%s%s\n", BodyPrefix, line); werr != nil {
					return false
				}
			}
		}
		body.Reset()
		if err != nil {
			if _, werr := fmt.Fprintf(w, "%s %s\n", TermErr, oneLine(err.Error())); werr != nil {
				return false
			}
		} else if _, werr := fmt.Fprintln(w, TermOK); werr != nil {
			return false
		}
		return w.Flush() == nil
	}
	// writeFrame surfaces write failures by closing the connection: a
	// frame worker discovering a half-closed peer this way makes the
	// reader's next Scan fail, so the connection tears down promptly
	// instead of scoring frames it can never answer.
	writeFrame := func(id uint64, payload string) {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := fmt.Fprintf(w, "%s%d %s\n", FramePrefix, id, payload); err != nil {
			conn.Close()
			return
		}
		if w.Flush() != nil {
			conn.Close()
		}
	}

	fmt.Fprintf(&body, "bismarckd ready — statements end with ';'\n")
	if !respond(nil) {
		return
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	var term spec.TermScanner
	for sc.Scan() {
		line := sc.Text()
		// A pipelined frame is only a frame while no statement is being
		// accumulated: mid-statement, a leading '@' is statement payload.
		if buf.Len() == 0 && strings.HasPrefix(line, FramePrefix) {
			if strings.TrimSpace(line) == BinHello {
				// Binary negotiation: drain in-flight text frame workers
				// first so nothing textual can interleave after the ack,
				// then hand the connection to the binary loop for good.
				cwg.Wait()
				wmu.Lock()
				_, werr := fmt.Fprintln(w, BinHelloOK)
				if ferr := w.Flush(); werr == nil {
					werr = ferr
				}
				wmu.Unlock()
				if werr != nil {
					return
				}
				s.serveBinary(conn, w, &wmu)
				return
			}
			s.serveFrame(line, writeFrame, &cwg, done)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		term.Write(line)
		term.Write("\n")
		// Network-facing bound: a client refusing to terminate must not
		// grow the buffer without limit.
		if buf.Len() > maxStatementBytes {
			respond(fmt.Errorf("server: statement exceeds %d bytes", maxStatementBytes))
			return
		}
		// Execute only on a ';' that really terminates a statement — one
		// inside an open string literal or behind a -- comment is payload
		// and keeps accumulating. The incremental scanner decides in
		// O(line), so the response count always matches the client's own
		// statement count and the framing stays in sync.
		if !term.Terminated() {
			continue
		}
		text := buf.String()
		buf.Reset()
		term.Reset()
		for _, stmt := range spec.SplitStatements(text) {
			if !respond(sess.Exec(stmt)) {
				return
			}
		}
	}
	// A scanner error (oversized line, broken read) may have truncated the
	// buffered statement — report it rather than executing a partial
	// statement, which could parse into something the client never sent.
	if err := sc.Err(); err != nil {
		respond(fmt.Errorf("server: reading statement: %v", err))
		return
	}
	// Leftover buffer at EOF: run the ';'-terminated statements (they were
	// deliberately sent in full) but refuse the unterminated tail — unlike
	// Ctrl-D at the local REPL, a socket EOF is not a submit gesture, and
	// the tail may be the truncation artifact of a client that died
	// mid-send (executing "CANCEL JOB 1" cut from "CANCEL JOB 12;" would
	// act on the wrong target). When the leftover does not lex,
	// SplitStatements falls back to one unterminated piece and everything
	// is refused — with the buffer unsplittable there is no safe way to
	// salvage complete statements out of it.
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		for _, stmt := range spec.SplitStatements(rest) {
			if !spec.Terminated(stmt) {
				respond(fmt.Errorf("server: dropping unterminated statement at connection end (missing ';')"))
				return
			}
			if !respond(sess.Exec(stmt)) {
				return
			}
		}
	}
}

// serveFrame handles one pipelined request line "@<id> <stmt>". Parsing
// and admission happen synchronously in the connection's reader — a shed
// or malformed frame is answered without spawning anything, which bounds
// the per-connection goroutine count by the gate's inflight+queue budget
// no matter how fast a client pipelines. done closes at connection
// teardown: a worker still queued for a slot then abandons its booking
// (releasing the queue accounting) instead of scoring for a dead client.
func (s *TCPServer) serveFrame(line string, write func(id uint64, payload string), cwg *sync.WaitGroup, done <-chan struct{}) {
	id, stmt, err := parseFrameRequest(line)
	if err != nil {
		// id 0 is reserved for exactly this: a frame the server cannot
		// attribute to a client-chosen id.
		write(0, TermErr+" "+oneLine(err.Error()))
		return
	}
	st, err := spec.Parse(stmt)
	if err != nil {
		write(id, TermErr+" "+oneLine(err.Error()))
		return
	}
	if st.Kind != spec.KindPointPredict {
		write(id, fmt.Sprintf("%s frames carry inline point-PREDICT only, not %v — use the line protocol for other statements", TermErr, st.Kind))
		return
	}
	ad, err := s.m.plane.Admit(st.Model)
	if err != nil {
		write(id, TermErr+" "+oneLine(err.Error()))
		return
	}
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		if !ad.Wait(done) {
			return // connection torn down while queued; booking released
		}
		defer ad.Release()
		select {
		case <-done:
			return // client left while we waited; don't score for nobody
		default:
		}
		scores := make([]float64, len(st.Points))
		if _, err := ad.Score(st.Model, st.Points, scores); err != nil {
			write(id, TermErr+" "+oneLine(err.Error()))
			return
		}
		var b strings.Builder
		b.WriteString(TermOK)
		for _, v := range scores {
			fmt.Fprintf(&b, " %.6g", v)
		}
		write(id, b.String())
	}()
}

// parseFrameRequest splits "@<id> <stmt>" into its id and statement text.
// Ids are client-chosen and must be >= 1; the statement must fit the one
// line (frames have no continuation form).
func parseFrameRequest(line string) (uint64, string, error) {
	rest := strings.TrimPrefix(line, FramePrefix)
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, "", fmt.Errorf("server: malformed frame: want %s<id> <point-PREDICT statement>", FramePrefix)
	}
	id, err := strconv.ParseUint(rest[:sp], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("server: malformed frame id %q: %v", rest[:sp], err)
	}
	if id == 0 {
		return 0, "", fmt.Errorf("server: frame id 0 is reserved for unattributable errors; use ids >= 1")
	}
	stmt := strings.TrimSpace(rest[sp+1:])
	if stmt == "" {
		return 0, "", fmt.Errorf("server: empty frame %d: want %s<id> <point-PREDICT statement>", id, FramePrefix)
	}
	return id, stmt, nil
}
