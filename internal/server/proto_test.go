package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bismarck/internal/engine"
)

// startTCP spins a served manager on a loopback port.
func startTCP(t *testing.T, m *Manager) (addr string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(m)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		m.Drain()
	})
	return lis.Addr().String()
}

// TestProtocolRoundTrip drives the wire protocol end to end: banner,
// statement responses, ERR framing, multi-line and multi-statement sends,
// and the async-job grammar over TCP.
func TestProtocolRoundTrip(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	seedPapers(t, m, 150)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	body, err := c.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(body) != "papers" {
		t.Fatalf("SHOW TABLES: %q", body)
	}

	// Statement errors come back on the ERR terminator, connection stays up.
	if _, err := c.Exec("SELECT * FROM papers TO PREDICT USING ghost"); err == nil ||
		!strings.Contains(err.Error(), "SHOW MODELS") {
		t.Fatalf("want unknown-model hint, got %v", err)
	}

	// Multi-line statement, then async round trip over the wire.
	if err := c.Send("SELECT vec, label FROM papers"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("TO TRAIN lr WITH epochs=3 INTO m ASYNC;"); err != nil {
		t.Fatal(err)
	}
	var submit strings.Builder
	if _, err := c.ReadResponse(&submit); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(submit.String(), "job 1 queued") {
		t.Fatalf("submit: %q", submit.String())
	}
	body, err = c.Exec("WAIT JOB 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "LR trained") || !strings.Contains(body, "job 1 done") {
		t.Fatalf("wait: %q", body)
	}
	if _, err := c.Exec("SELECT * FROM nowhere TO PREDICT USING m"); err == nil ||
		!strings.Contains(err.Error(), `no table "nowhere"`) {
		t.Fatalf("want table error, got %v", err)
	}

	// Exec enforces its one-statement contract (a second response would
	// desync every later call on this client).
	if _, err := c.Exec("SHOW MODELS; SHOW JOBS;"); err == nil ||
		!strings.Contains(err.Error(), "one statement") {
		t.Fatalf("multi-statement Exec not rejected: %v", err)
	}

	// Two statements in one send yield two framed responses, in order.
	if err := c.Send("SHOW MODELS; SHOW JOBS;"); err != nil {
		t.Fatal(err)
	}
	var models, jobs strings.Builder
	if _, err := c.ReadResponse(&models); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadResponse(&jobs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(models.String(), "task=lr") {
		t.Fatalf("models: %q", models.String())
	}
	if !strings.Contains(jobs.String(), "done") {
		t.Fatalf("jobs: %q", jobs.String())
	}

	// A second client shares catalog and jobs.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	body, err = c2.Exec("SHOW JOBS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "job 1") {
		t.Fatalf("second client jobs: %q", body)
	}
}

// TestProtocolParseErrorKeepsSession: a parse error must not kill the
// connection or poison the next statement.
func TestProtocolParseErrorKeepsSession(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	seedPapers(t, m, 50)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("GIBBERISH HERE"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	body, err := c.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "papers") {
		t.Fatalf("session dead after parse error: %q", body)
	}
}

// TestClientExecEmptyInputDoesNotHang: comment-only/blank input lexes to
// zero statements; Exec must reject it instead of waiting forever for a
// response the server will never send.
func TestClientExecEmptyInputDoesNotHang(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	addr := startTCP(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, in := range []string{"", ";", "-- just a comment"} {
		if _, err := c.Exec(in); err == nil || !strings.Contains(err.Error(), "no statement") {
			t.Fatalf("Exec(%q): %v", in, err)
		}
	}
	// The connection is still usable.
	if _, err := c.Exec("SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolSemicolonInsideStringLiteral: a ';' inside a quoted string
// spanning lines is payload, not a terminator — the server must produce
// exactly one framed response for the statement, keeping the stream in
// sync, and a genuinely unterminated string is rejected client-side
// instead of hanging.
func TestProtocolSemicolonInsideStringLiteral(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	seedPapers(t, m, 60)
	addr := startTCP(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Model name contains ';' and a newline: two physical lines, the
	// first ending in ';' inside the open literal. The server must treat
	// it as ONE statement — a single framed response (here an ERR, since
	// control characters are invalid table names) — instead of splitting
	// at the embedded ';'.
	_, err = c.Exec("SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO 'm;\nx'")
	if err == nil || !strings.Contains(err.Error(), "invalid table name") {
		t.Fatalf("multi-line literal name: %v", err)
	}
	// Stream still in sync: the next statement gets its own response. A
	// same-line ';' inside a literal is valid name payload end to end.
	body, err := c.Exec("SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO 'm;x'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "LR trained") {
		t.Fatalf("train: %q", body)
	}
	body, err = c.Exec("SHOW MODELS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "m;x") || !strings.Contains(body, "task=lr") {
		t.Fatalf("models after literal-';' name: %q", body)
	}

	if _, err := c.Exec("SELECT * FROM papers TO TRAIN lr INTO 'oops"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("unterminated string not rejected: %v", err)
	}
	// A lexical error ahead of the open quote must not mask it — this
	// input used to slip past the guard and hang in ReadResponse forever.
	if _, err := c.Exec("SELECT ? 'abc"); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("lex-error-then-open-string not rejected: %v", err)
	}
	// The connection is still usable.
	if _, err := c.Exec("SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolSemicolonInsideComment: a ';' at the end of a -- comment is
// payload; the statement spanning the comment line must yield exactly one
// framed response and leave the stream in sync (regression for the raw
// suffix-';' terminator check).
func TestProtocolSemicolonInsideComment(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	seedPapers(t, m, 50)
	addr := startTCP(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	body, err := c.Exec("SHOW -- note;\nTABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "papers") {
		t.Fatalf("comment-split statement: %q", body)
	}
	// In sync: the next statement gets its own, correct response.
	body, err = c.Exec("SHOW MODELS")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body, "papers") {
		t.Fatalf("stream desynced after comment statement: %q", body)
	}
	// A statement ending in a trailing comment still terminates (the
	// client adds the ';' on a fresh line, not inside the comment).
	if _, err := c.Exec("SHOW TABLES -- done"); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolEOFTailSplits: a connection closed after 'complete;
// incomplete' must still execute the complete statement (split like the
// in-loop path) and report the dangling tail separately.
func TestProtocolEOFTailSplits(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	seedPapers(t, m, 50)
	addr := startTCP(t, m)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "SHOW TABLES; SHOW MODELS")
	if cw, ok := conn.(*net.TCPConn); ok {
		cw.CloseWrite()
	}
	data, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	// Banner OK + SHOW TABLES response (papers + OK); the unterminated
	// "SHOW MODELS" tail is refused (it could be a truncation artifact of
	// a client that died mid-send), yielding one ERR.
	if !strings.Contains(out, BodyPrefix+"papers") {
		t.Fatalf("complete statement before EOF tail not executed:\n%s", out)
	}
	if strings.Count(out, TermOK+"\n") != 2 ||
		!strings.Contains(out, TermErr+" server: dropping unterminated statement") {
		t.Fatalf("want 2 OK frames and the dropped-tail ERR:\n%s", out)
	}
}

// TestProtocolOversizedStatementRejected: the per-connection buffer is
// capped; a never-terminating client gets one ERR and the connection is
// closed instead of unbounded growth.
func TestProtocolOversizedStatementRejected(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	addr := startTCP(t, m)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chunk := strings.Repeat("x", 64<<10)
	w := bufio.NewWriter(conn)
	for i := 0; i < 20; i++ { // 20 * 64KB > 1MB cap
		fmt.Fprintln(w, chunk)
	}
	w.Flush()
	data, _ := io.ReadAll(conn) // server closes after the ERR
	if !strings.Contains(string(data), TermErr+" server: statement exceeds") {
		t.Fatalf("oversized statement not rejected:\n%.200s", data)
	}
}

// TestProtocolRejectsPathTraversalNames: a remote client must not be able
// to point a heap file outside the daemon's catalog directory via quoted
// table/model names (engine-level name validation, reachable over TCP).
func TestProtocolRejectsPathTraversalNames(t *testing.T) {
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat, Options{})
	seedPapers(t, m, 60)
	addr := startTCP(t, m)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(
		"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO '../evil'"); err == nil ||
		!strings.Contains(err.Error(), "invalid table name") {
		t.Fatalf("traversal name not rejected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "evil.heap")); !os.IsNotExist(err) {
		t.Fatalf("heap file escaped the catalog directory: %v", err)
	}
}
