// Package server turns the single-session declarative layer into a
// concurrent multi-session service: one Manager shares one engine catalog
// across N client sessions behind per-model reader/writer locks, schedules
// `TO TRAIN ... ASYNC` statements as background jobs (SHOW JOBS / WAIT JOB
// / CANCEL JOB), and serves a line-oriented TCP protocol for the bismarckd
// daemon.
//
// Locking protocol (documented in DESIGN.md): lock order is manager →
// model → catalog. The manager level is NameLocks' registry mutex (held
// only to resolve a name to its RWMutex), the model level is the per-name
// RWMutex (write-held across a model's replace-and-fill window, read-held
// across metadata+coefficient loads), and the catalog level is
// engine.Catalog's own mutex (held only inside single create/get/drop
// calls). A session never holds two model-level locks at once, which makes
// the protocol deadlock-free by construction: PREDICT and EVALUATE on a
// model being retrained simply serve the previous persisted snapshot until
// the TRAIN's save commits.
package server

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"bismarck/internal/engine"
	"bismarck/internal/serve"
	"bismarck/internal/spec"
	"bismarck/internal/sqlish"
)

// Options tunes a Manager.
type Options struct {
	// Workers is the async-TRAIN worker pool size (0 = NumCPU, capped at 8).
	Workers int
	// QueueDepth bounds pending jobs (0 = 256).
	QueueDepth int
	// JobHistory bounds retained terminal jobs: the oldest finished jobs
	// are evicted past it, so a long-running daemon's job ledger (and its
	// captured training output) stays bounded (0 = 1024). An evicted job
	// id is no longer WAITable — clients learn "no job N".
	JobHistory int
	// Epochs / Alpha are the session-level defaults handed to every client
	// session (same meaning as the bismarck CLI flags).
	Epochs int
	Alpha  float64
	// ServeInflight / ServeQueue size the point-PREDICT serving plane:
	// concurrent scoring slots and the bounded wait queue beyond which
	// the plane sheds load with "ERR busy" (0 = the plane's defaults,
	// GOMAXPROCS and 4× that).
	ServeInflight int
	ServeQueue    int
	// ServeModelInflight / ServeModelQueue bound one model's share of the
	// plane (0 = the plane's defaults: the global inflight, and half the
	// global queue).
	ServeModelInflight int
	ServeModelQueue    int
	// ExecInflight / ExecQueue size the distributed-executor admission
	// gate: concurrent shard-op slots and the bounded wait queue beyond
	// which executor frames shed with "ERR busy" (0 = the gate's
	// defaults, GOMAXPROCS and 4× that).
	ExecInflight int
	ExecQueue    int
}

// Hooks instruments the manager for deterministic concurrency tests.
type Hooks struct {
	// BeforeSave runs in the job worker after training succeeds, right
	// before the model's write lock is taken for persisting. Tests use it
	// to hold a job at the save boundary while probing reads.
	BeforeSave func(jobID int64, model string)
}

// Manager shares one catalog across many client sessions: it owns the
// per-name lock registry every session locks through and the background
// job scheduler behind the ASYNC grammar.
type Manager struct {
	cat   *engine.Catalog
	locks *NameLocks
	sched *scheduler
	plane *serve.Plane
	opts  Options

	// execGate admission-controls distributed-executor shard ops;
	// execConns counts live executor-serving binary connections (SHOW
	// SERVING reports both).
	execGate  *serve.Gate
	execConns atomic.Int64

	// Hooks must be set before the first session runs a statement.
	Hooks Hooks
}

// NewManager wraps a catalog for multi-session use.
func NewManager(cat *engine.Catalog, opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
		if opts.Workers > 8 {
			opts.Workers = 8
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.JobHistory <= 0 {
		opts.JobHistory = 1024
	}
	m := &Manager{cat: cat, locks: NewNameLocks(), opts: opts}
	m.sched = newScheduler(m, opts.Workers, opts.QueueDepth, opts.JobHistory)
	// The plane shares the manager's lock registry: its cache fills take a
	// model's read lock exactly like a PREDICT statement, so a TRAIN
	// holding the write lock across its save window is still decisive.
	m.plane = serve.New(cat, m.locks, serve.Options{
		Inflight: opts.ServeInflight, MaxQueue: opts.ServeQueue,
		ModelInflight: opts.ServeModelInflight, ModelQueue: opts.ServeModelQueue})
	m.execGate = serve.NewGate(opts.ExecInflight, opts.ExecQueue)
	return m
}

// Plane exposes the serving plane (the TCP layer's pipelined frames score
// through it directly).
func (m *Manager) Plane() *serve.Plane { return m.plane }

// Catalog exposes the shared catalog (the daemon saves it at shutdown).
func (m *Manager) Catalog() *engine.Catalog { return m.cat }

// newSQLSession builds a sqlish session wired into the shared catalog and
// lock registry; every client session and every job worker gets its own.
func (m *Manager) newSQLSession(out io.Writer) *sqlish.Session {
	return &sqlish.Session{Cat: m.cat, Out: out, Guard: m.locks,
		Epochs: m.opts.Epochs, Alpha: m.opts.Alpha}
}

// Drain stops job intake and blocks until every accepted job is terminal.
// Call before saving/closing the catalog at shutdown.
func (m *Manager) Drain() { m.sched.drain() }

// persistMeta checkpoints catalog.json after a committed statement. It
// runs strictly after the statement's swap commit: the shadow-generation
// protocol (engine.Catalog.Swap, DESIGN.md §6) already made the model
// itself durable at its own atomic commit point, so this checkpoint only
// exists to pick up anything else the statement changed — ordering it
// after the swap rename means it can never publish a pre-commit view over
// a committed one. A kill anywhere in the save window now recovers to
// either the intact previous generation or the complete new one, never an
// empty resurrection. No-op on in-memory catalogs.
func (m *Manager) persistMeta() error {
	if !m.cat.FileBacked() {
		return nil
	}
	if err := m.cat.SaveMeta(); err != nil {
		return fmt.Errorf("server: statement committed but catalog checkpoint failed: %w", err)
	}
	return nil
}

// NewSession opens a client session writing its results to out.
// Each session serves one client serially; sessions are safe against each
// other through the shared lock registry.
func (m *Manager) NewSession(out io.Writer) *Session {
	return &Session{m: m, out: out, sq: m.newSQLSession(out)}
}

// Session is one client's view of the manager: a sqlish session for the
// data statements plus the job statements only a server can run.
type Session struct {
	m   *Manager
	out io.Writer
	sq  *sqlish.Session

	// Shutdown, when non-nil, aborts blocking statements (WAIT JOB) once
	// closed — the TCP server installs its closing channel so a draining
	// daemon is never deadlocked behind a handler parked on a queued job.
	Shutdown <-chan struct{}
}

// Exec parses and runs one statement.
func (s *Session) Exec(text string) error {
	st, err := spec.Parse(text)
	if err != nil {
		return err
	}
	return s.Run(st, text)
}

// Run executes a parsed statement; text is the source rendering kept for
// job listings (pass "" to rebuild nothing fancier than the kind).
func (s *Session) Run(st *spec.Statement, text string) error {
	switch {
	case st.Kind == spec.KindTrain && st.Async:
		job, err := s.m.sched.submit(st, oneLine(text))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "job %d queued: TRAIN %s INTO %q (SHOW JOBS / WAIT JOB %d)\n",
			job.ID, st.Task, st.Into, job.ID)
		return nil
	case st.Kind == spec.KindShowJobs:
		for _, v := range s.m.sched.list() {
			line := fmt.Sprintf("job %-3d %-9s model=%-12s %7s  %s",
				v.ID, v.State, v.Model, roundMS(v.Elapsed), v.Statement)
			if v.Err != "" {
				line += "  [" + oneLine(v.Err) + "]"
			}
			fmt.Fprintln(s.out, strings.TrimRight(line, " "))
		}
		return nil
	case st.Kind == spec.KindWaitJob:
		job, err := s.m.sched.get(st.JobID)
		if err != nil {
			return err
		}
		if s.Shutdown != nil {
			select {
			case <-job.Done():
			case <-s.Shutdown:
				return fmt.Errorf("server: shutting down; job %d keeps its state (reconnect to inspect)", st.JobID)
			}
		} else {
			<-job.Done()
		}
		v := job.View()
		if out := strings.TrimSpace(v.Output); out != "" {
			fmt.Fprintln(s.out, out)
		}
		if v.State != JobDone {
			if v.Err != "" {
				return fmt.Errorf("server: job %d %s: %s", v.ID, v.State, v.Err)
			}
			return fmt.Errorf("server: job %d %s", v.ID, v.State)
		}
		fmt.Fprintf(s.out, "job %d done in %s\n", v.ID, roundMS(v.Elapsed))
		return nil
	case st.Kind == spec.KindCancelJob:
		job, err := s.m.sched.get(st.JobID)
		if err != nil {
			return err
		}
		switch state := job.requestCancel(); {
		case state.Terminal():
			fmt.Fprintf(s.out, "job %d already %s\n", job.ID, state)
		case state == JobRunning:
			fmt.Fprintf(s.out, "job %d cancel requested; a running job stops at its save boundary (WAIT JOB %d to confirm)\n",
				job.ID, job.ID)
		default:
			fmt.Fprintf(s.out, "job %d canceled\n", job.ID)
		}
		return nil
	case st.Kind == spec.KindShowServing:
		gs, models := s.m.plane.Stats()
		fmt.Fprintf(s.out, "gate inflight=%d/%d queued=%d/%d models=%d\n",
			gs.Inflight, gs.InflightCap, gs.Queued, gs.QueueCap, gs.Models)
		eIn, eQ := s.m.execGate.Caps()
		fmt.Fprintf(s.out, "executor conns=%d inflight=%d/%d queued=%d/%d retry_after_ms=%d\n",
			s.m.execConns.Load(), s.m.execGate.Inflight(), eIn,
			s.m.execGate.Queued(), eQ, s.m.execGate.RetryHintMS())
		for _, ms := range models {
			fmt.Fprintf(s.out, "model %-12s hits=%-6d fills=%-4d sheds=%-4d queued=%-3d retry_after_ms=%d\n",
				ms.Model, ms.Hits, ms.Fills, ms.Sheds, ms.Queued, ms.RetryAfterMS)
		}
		return nil
	case st.Kind == spec.KindPointPredict:
		// Inline scoring goes through the serving plane: hot cached
		// snapshots under admission control, instead of sqlish's per-
		// statement model reload. Read-only — no catalog checkpoint.
		scores := make([]float64, len(st.Points))
		if _, err := s.m.plane.Predict(st.Model, st.Points, scores); err != nil {
			return err
		}
		for _, v := range scores {
			fmt.Fprintf(s.out, "%.6g\n", v)
		}
		return nil
	}
	if err := s.sq.Run(st); err != nil {
		return err
	}
	// Catalog-mutating statements are checkpointed so their tables survive
	// an ungraceful daemon death.
	if st.Kind == spec.KindTrain || st.Kind == spec.KindPredict && st.Into != "" {
		if err := s.m.persistMeta(); err != nil {
			return err
		}
		// Post-commit cache warming: decode the fresh generation into the
		// serving cache now, so the first PREDICT after the swap never pays
		// the decode. Best-effort — a refill failure (e.g. PREDICT INTO a
		// plain table that is not a model) leaves the cache consistent and
		// the per-request path reports any real problem itself.
		if st.Kind == spec.KindTrain {
			s.m.plane.Refill(st.Into)
		}
	}
	return nil
}

// oneLine collapses a statement's whitespace for log-style listings.
func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// roundMS renders a duration at millisecond precision.
func roundMS(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
