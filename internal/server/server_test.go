package server

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bismarck/internal/data"
	"bismarck/internal/engine"
)

// seedPapers copies a Forest classification table into the manager's
// catalog.
func seedPapers(t *testing.T, m *Manager, n int) {
	t.Helper()
	src := data.Forest(n, 5)
	dst, err := m.Catalog().Create("papers", src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyTo(dst); err != nil {
		t.Fatal(err)
	}
}

// readModel snapshots a persisted model's (idx, value) rows.
func readModel(t *testing.T, cat *engine.Catalog, name string) map[int64]float64 {
	t.Helper()
	tbl, err := cat.Get(name)
	if err != nil {
		t.Fatalf("model %q: %v", name, err)
	}
	out := map[int64]float64{}
	if err := tbl.Scan(func(tp engine.Tuple) error {
		out[tp[0].Int] = tp[1].Float
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameModel(a, b map[int64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func mustExec(t *testing.T, s *Session, stmt string) {
	t.Helper()
	if err := s.Exec(stmt); err != nil {
		t.Fatalf("%s\n=> %v", stmt, err)
	}
}

// TestNameLocksExcludeWriters sanity-checks the lock registry: distinct
// names are independent, same-name writers exclude readers.
func TestNameLocksExcludeWriters(t *testing.T) {
	nl := NewNameLocks()
	unlockA := nl.Lock("a")
	unlockB := nl.Lock("b") // distinct name: must not block
	unlockB()

	acquired := make(chan struct{})
	go func() {
		defer nl.RLock("a")()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired a write-held name lock")
	default:
	}
	unlockA()
	<-acquired

	// Concurrent readers share.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer nl.RLock("a")()
		}()
	}
	wg.Wait()
}

// TestAsyncTrainJobLifecycle drives the happy path end to end in process:
// submit returns a job id immediately, WAIT JOB observes completion, the
// model is persisted, and SHOW JOBS reports the terminal state.
func TestAsyncTrainJobLifecycle(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	defer m.Drain()
	seedPapers(t, m, 200)
	var out bytes.Buffer
	s := m.NewSession(&out)

	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=3 INTO m ASYNC;`)
	if !strings.Contains(out.String(), "job 1 queued") {
		t.Fatalf("submit output: %s", out.String())
	}

	out.Reset()
	mustExec(t, s, `WAIT JOB 1;`)
	if !strings.Contains(out.String(), "LR trained") || !strings.Contains(out.String(), "job 1 done") {
		t.Fatalf("wait output: %s", out.String())
	}
	if w := readModel(t, m.Catalog(), "m"); len(w) == 0 {
		t.Fatal("async train persisted an empty model")
	}

	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	if !strings.Contains(out.String(), "job 1") || !strings.Contains(out.String(), "done") {
		t.Fatalf("SHOW JOBS: %s", out.String())
	}

	// Unknown jobs are typed errors, failed statements reach WAIT.
	if err := s.Exec(`WAIT JOB 99;`); err == nil || !strings.Contains(err.Error(), "no job 99") {
		t.Fatalf("wait unknown: %v", err)
	}
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1, alpha=bogus INTO x ASYNC;`)
	if err := s.Exec(`WAIT JOB 2;`); err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("wait failed job: %v", err)
	}
}

// TestPredictMidTrainServesPreviousSnapshot is the acceptance scenario,
// made deterministic with the BeforeSave hook: an async re-TRAIN of model
// m is parked at its save boundary while a PREDICT on m runs — the
// PREDICT must succeed against the previous persisted generation, and the
// new generation only becomes visible after the job commits.
func TestPredictMidTrainServesPreviousSnapshot(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	defer m.Drain()
	seedPapers(t, m, 200)

	entered := make(chan int64, 1)
	release := make(chan struct{})
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		entered <- jobID
		<-release
	}

	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=3, seed=1 INTO m;`)
	gen1 := readModel(t, m.Catalog(), "m")

	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=6, seed=9 INTO m ASYNC;`)
	jobID := <-entered // trained, parked right before taking m's write lock

	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	if !strings.Contains(out.String(), "running") {
		t.Fatalf("job not running mid-train: %s", out.String())
	}

	// The acceptance read: PREDICT mid-training, same model name.
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO PREDICT USING m;`)
	if !strings.Contains(out.String(), "predicted 200 rows") {
		t.Fatalf("mid-train predict: %s", out.String())
	}
	if !sameModel(gen1, readModel(t, m.Catalog(), "m")) {
		t.Fatal("model mutated while the job was parked before its save")
	}

	close(release)
	out.Reset()
	mustExec(t, s, `WAIT JOB 1;`)
	if jobID != 1 || !strings.Contains(out.String(), "job 1 done") {
		t.Fatalf("wait: job=%d out=%s", jobID, out.String())
	}
	if sameModel(gen1, readModel(t, m.Catalog(), "m")) {
		t.Fatal("committed job did not replace the model generation")
	}
}

// TestCancelRunningJobStopsAtSaveBoundary: a CANCEL landing while the job
// trains discards the result — the job terminates canceled and the
// previous model generation stays untouched.
func TestCancelRunningJobStopsAtSaveBoundary(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	defer m.Drain()
	seedPapers(t, m, 150)

	entered := make(chan int64, 1)
	release := make(chan struct{})
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		entered <- jobID
		<-release
	}

	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=3, seed=1 INTO m;`)
	gen1 := readModel(t, m.Catalog(), "m")

	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=5, seed=4 INTO m ASYNC;`)
	<-entered

	out.Reset()
	mustExec(t, s, `CANCEL JOB 1;`)
	if !strings.Contains(out.String(), "cancel requested") {
		t.Fatalf("cancel output: %s", out.String())
	}
	close(release)

	if err := s.Exec(`WAIT JOB 1;`); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("wait canceled job: %v", err)
	}
	if !sameModel(gen1, readModel(t, m.Catalog(), "m")) {
		t.Fatal("canceled job overwrote the model")
	}
}

// TestCancelQueuedJobNeverRuns: with one worker busy, a queued job
// canceled before pickup settles canceled without training at all.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	defer m.Drain()
	seedPapers(t, m, 150)

	var mu sync.Mutex
	saves := map[int64]int{}
	release := make(chan struct{})
	entered := make(chan int64, 2)
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		mu.Lock()
		saves[jobID]++
		mu.Unlock()
		entered <- jobID
		<-release
	}

	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO a ASYNC;`)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO b ASYNC;`)
	<-entered // job 1 holds the only worker

	out.Reset()
	mustExec(t, s, `CANCEL JOB 2;`)
	if !strings.Contains(out.String(), "job 2 canceled") {
		t.Fatalf("cancel queued: %s", out.String())
	}
	// The canceled queued job settles terminal immediately — SHOW JOBS
	// agrees and WAIT returns without waiting for the busy worker.
	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	if !strings.Contains(out.String(), "canceled") {
		t.Fatalf("canceled queued job not terminal in SHOW JOBS: %s", out.String())
	}
	if err := s.Exec(`WAIT JOB 2;`); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("wait job 2: %v", err)
	}
	close(release)
	mustExec(t, s, `WAIT JOB 1;`)

	mu.Lock()
	defer mu.Unlock()
	if saves[2] != 0 {
		t.Fatal("canceled queued job reached its save boundary")
	}
	if _, err := m.Catalog().Get("b"); err == nil {
		t.Fatal("canceled queued job persisted a model")
	}
}

// TestSyncStatementsStillWork: the server session passes non-job
// statements through to the sqlish layer (SHOW MODELS included).
func TestSyncStatementsStillWork(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{})
	defer m.Drain()
	seedPapers(t, m, 120)
	var out bytes.Buffer
	s := m.NewSession(&out)

	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN svm WITH epochs=3 INTO m;`)
	out.Reset()
	mustExec(t, s, `SHOW MODELS;`)
	if !strings.Contains(out.String(), "task=svm") {
		t.Fatalf("SHOW MODELS: %s", out.String())
	}
	out.Reset()
	mustExec(t, s, `SELECT * FROM papers TO EVALUATE USING m;`)
	if !strings.Contains(out.String(), "svm") {
		t.Fatalf("EVALUATE: %s", out.String())
	}
}

// TestJobHistoryEviction: terminal jobs past the retention limit are
// evicted (a week-long daemon must not hoard every job's output), while
// WAIT/SHOW keep working for the retained tail.
func TestJobHistoryEviction(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1, JobHistory: 2})
	defer m.Drain()
	seedPapers(t, m, 100)
	var out bytes.Buffer
	s := m.NewSession(&out)

	for i := 1; i <= 4; i++ {
		mustExec(t, s, fmt.Sprintf(
			`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO h%d ASYNC;`, i))
		mustExec(t, s, fmt.Sprintf(`WAIT JOB %d;`, i))
	}

	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) > 2 {
		t.Fatalf("history not bounded, %d jobs listed:\n%s", len(lines), out.String())
	}
	if !strings.Contains(out.String(), "job 4") {
		t.Fatalf("newest job evicted:\n%s", out.String())
	}
	if err := s.Exec(`WAIT JOB 1;`); err == nil || !strings.Contains(err.Error(), "no job 1") {
		t.Fatalf("evicted job still WAITable: %v", err)
	}
}

// TestNameLocksEvictIdleEntries: the registry must not retain a mutex per
// name ever mentioned — an attacker looping over random model names would
// otherwise grow daemon memory without bound.
func TestNameLocksEvictIdleEntries(t *testing.T) {
	nl := NewNameLocks()
	for i := 0; i < 1000; i++ {
		nl.Lock(fmt.Sprintf("w%d", i))()
		nl.RLock(fmt.Sprintf("r%d", i))()
	}
	// Contended entries survive until the last holder releases.
	unlockA := nl.RLock("a")
	unlockB := nl.RLock("a")
	nl.mu.Lock()
	n := len(nl.locks)
	nl.mu.Unlock()
	if n != 1 {
		t.Fatalf("registry holds %d entries, want 1 (only the held name)", n)
	}
	unlockA()
	unlockB()
	nl.mu.Lock()
	n = len(nl.locks)
	nl.mu.Unlock()
	if n != 0 {
		t.Fatalf("registry holds %d entries after release, want 0", n)
	}
}

// TestJobHistoryEvictionSkipsLiveJobs: a long-running job must not shield
// the terminal jobs completing behind it — eviction skips live entries
// instead of stopping at them.
func TestJobHistoryEvictionSkipsLiveJobs(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2, JobHistory: 2})
	defer m.Drain()
	seedPapers(t, m, 100)

	entered := make(chan int64, 1)
	release := make(chan struct{})
	var gateOnce sync.Once
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		if jobID == 1 {
			gateOnce.Do(func() { entered <- jobID })
			<-release
		}
	}

	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO long ASYNC;`)
	<-entered // job 1 parked at its save boundary
	for i := 2; i <= 5; i++ {
		mustExec(t, s, fmt.Sprintf(
			`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO s%d ASYNC;`, i))
		mustExec(t, s, fmt.Sprintf(`WAIT JOB %d;`, i))
	}
	// This submit triggers eviction: terminal jobs 2..5 are evictable even
	// though live job 1 is older.
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO s6 ASYNC;`)

	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) > 3 {
		t.Fatalf("live job shielded terminal jobs from eviction (%d listed):\n%s",
			len(lines), out.String())
	}
	if !strings.Contains(out.String(), "job 1") {
		t.Fatalf("live job evicted:\n%s", out.String())
	}

	close(release)
	mustExec(t, s, `WAIT JOB 1;`)
	mustExec(t, s, `WAIT JOB 6;`)
}

// TestDrainCancelsQueuedJobs: shutdown lets the running job finish but
// settles the queued backlog as canceled — a Ctrl-C must not first train
// a deep queue.
func TestDrainCancelsQueuedJobs(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedPapers(t, m, 100)

	entered := make(chan int64, 1)
	release := make(chan struct{})
	var once sync.Once
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		once.Do(func() { entered <- jobID })
		<-release
	}

	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO running ASYNC;`)
	<-entered // job 1 occupies the only worker
	for i := 2; i <= 4; i++ {
		mustExec(t, s, fmt.Sprintf(
			`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO q%d ASYNC;`, i))
	}

	done := make(chan struct{})
	go func() { m.Drain(); close(done) }()
	// Drain cancels the queued backlog before waiting on workers: the
	// WAITs below unblock from that cancellation while the running job is
	// still parked at its save boundary, proving the queued jobs never
	// train. Only then is the running job released.
	for i := 2; i <= 4; i++ {
		if err := s.Exec(fmt.Sprintf(`WAIT JOB %d;`, i)); err == nil ||
			!strings.Contains(err.Error(), "canceled") {
			t.Fatalf("queued job %d not canceled by drain: %v", i, err)
		}
	}
	close(release)
	<-done

	out.Reset()
	mustExec(t, s, `SHOW JOBS;`)
	got := out.String()
	if !strings.Contains(got, "job 1") || !strings.Contains(got, "done") {
		t.Fatalf("running job did not commit:\n%s", got)
	}
	if strings.Count(got, "canceled") != 3 {
		t.Fatalf("queued jobs not canceled at drain:\n%s", got)
	}
	for i := 2; i <= 4; i++ {
		if _, err := m.Catalog().Get(fmt.Sprintf("q%d", i)); err == nil {
			t.Fatalf("queued job %d trained during drain", i)
		}
	}
}

// TestCheckpointSurvivesUngracefulDeath: a committed statement must reach
// catalog.json immediately — a daemon killed without the graceful
// shutdown path (SIGKILL, OOM) must not lose acknowledged models.
func TestCheckpointSurvivesUngracefulDeath(t *testing.T) {
	dir := t.TempDir()
	cat, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat, Options{Workers: 1})
	seedPapers(t, m, 80)
	var out bytes.Buffer
	s := m.NewSession(&out)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2 INTO syncm;`)
	mustExec(t, s, `SELECT vec, label FROM papers TO TRAIN svm WITH epochs=2 INTO asyncm ASYNC;`)
	mustExec(t, s, `WAIT JOB 1;`)
	m.Drain()
	// No cat.Save(), no Close — simulate the process dying here.

	re, err := engine.OpenFileCatalog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, name := range []string{"syncm", "syncm__meta", "asyncm", "asyncm__meta"} {
		tbl, err := re.Get(name)
		if err != nil {
			t.Fatalf("table %q lost after ungraceful death: %v", name, err)
		}
		if tbl.NumRows() == 0 {
			t.Fatalf("table %q reopened empty", name)
		}
	}
}

// TestWaitJobUnblocksOnServerClose: a handler parked in WAIT JOB must not
// deadlock TCPServer.Close — shutdown wakes it with an error and the
// close completes while the job is still running.
func TestWaitJobUnblocksOnServerClose(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedPapers(t, m, 100)

	entered := make(chan int64, 1)
	release := make(chan struct{})
	var once sync.Once
	m.Hooks.BeforeSave = func(jobID int64, model string) {
		once.Do(func() { entered <- jobID })
		<-release
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(m)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`SELECT vec, label FROM papers TO TRAIN lr WITH epochs=1 INTO m ASYNC`); err != nil {
		t.Fatal(err)
	}
	<-entered // job running, parked at its save boundary

	waitErr := make(chan error, 1)
	go func() {
		_, err := c.Exec("WAIT JOB 1")
		waitErr <- err
	}()
	// Give the WAIT a moment to reach the server, then close: Close must
	// return even though the job is not terminal.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("TCPServer.Close deadlocked behind a WAIT JOB handler")
	}
	if err := <-waitErr; err == nil {
		t.Fatal("WAIT JOB should fail when the server shuts down mid-wait")
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	close(release)
	m.Drain()
}
