package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bismarck/internal/engine"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFrameDisconnectReleasesQueuedSlots is the dead-client slot-leak
// regression: a client that fills the admission queue with pipelined
// frames and then disconnects must give every queue booking back, so a
// second live client is admitted immediately instead of being shed (or
// served only after the dead frames burned the scoring slot).
func TestFrameDisconnectReleasesQueuedSlots(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1,
		ServeInflight: 1, ServeQueue: 4, ServeModelQueue: 4})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	ctrl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	// Occupy the only scoring slot from inside so frames can only queue.
	hold, err := m.Plane().Gate().Admit()
	if err != nil {
		t.Fatal(err)
	}
	hold.Wait()

	// Client A books the entire queue with pipelined frames...
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := a.SendFrame(id, "PREDICT (1, 1) USING m"); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "4 frames queued", func() bool { return m.Plane().Gate().Queued() == 4 })

	// ...so its 5th frame sheds (sanity: the queue really is full)...
	if err := a.SendFrame(5, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	if f, err := a.ReadFrame(); err != nil || !strings.Contains(f.Err, "busy") {
		t.Fatalf("5th frame should shed busy, got %+v, %v", f, err)
	}

	// ...and then A dies with all 4 frames still parked.
	a.Close()
	waitUntil(t, "dead client's queue bookings released", func() bool {
		return m.Plane().Gate().Queued() == 0
	})

	// A live client is admitted into the freed queue (pre-fix its frame
	// was shed: the dead bookings still counted)...
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.SendFrame(1, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "live client's frame queued", func() bool {
		return m.Plane().Gate().Queued() == 1
	})

	// ...and when the slot frees, B is served directly — none of A's dead
	// frames burns the slot first.
	hold.Release()
	f, err := b.ReadFrame()
	if err != nil || f.ID != 1 || f.Err != "" || len(f.Scores) != 1 || f.Scores[0] < 5 {
		t.Fatalf("live client's frame after release: %+v, %v", f, err)
	}
}

// TestBinaryFrameRoundTrip drives the negotiated binary encoding over
// TCP: the handshake, batched scoring, pipelining, error frames, and the
// rule that text frames sent before the handshake are answered before it.
func TestBinaryFrameRoundTrip(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	// A text frame still in flight is answered before the handshake ack.
	if err := c.SendFrame(42, "PREDICT (1, 1) USING m"); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFrame(); err != nil || f.ID != 42 || f.Err != "" {
		t.Fatalf("pre-handshake text frame: %+v, %v", f, err)
	}
	if err := c.Binary(); err != nil {
		t.Fatal(err)
	}

	// Pipeline binary frames; responses come back keyed by id.
	if err := c.SendBinPredict(7, "m", [][]float64{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBinPredict(3, "m", [][]float64{{1, 1}, {3, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBinPredict(9, "nosuch", [][]float64{{2, 2}}); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Frame{}
	for i := 0; i < 3; i++ {
		f, err := c.ReadBinFrame()
		if err != nil {
			t.Fatal(err)
		}
		got[f.ID] = f
	}
	if f := got[7]; f.Err != "" || len(f.Scores) != 1 || f.Scores[0] < 5 {
		t.Fatalf("bin frame 7: %+v", f)
	}
	if f := got[3]; f.Err != "" || len(f.Scores) != 2 || f.Scores[0] < 5 || f.Scores[1] < 15 {
		t.Fatalf("bin frame 3: %+v", f)
	}
	if f := got[9]; f.Err == "" || !strings.Contains(f.Err, "SHOW MODELS") {
		t.Fatalf("bin frame 9 should carry the unknown-model hint: %+v", f)
	}

	// Client-side validation refuses what the wire format cannot carry.
	if err := c.SendBinPredict(0, "m", [][]float64{{1, 1}}); err == nil {
		t.Fatal("id 0 should be refused client-side")
	}
	if err := c.SendBinPredict(12, "m", [][]float64{{1, 1}, {2}}); err == nil {
		t.Fatal("ragged batch should be refused client-side")
	}
	if err := c.SendBinPredict(13, "m", nil); err == nil {
		t.Fatal("empty batch should be refused client-side")
	}

	// The connection still serves after every error above.
	if err := c.SendBinPredict(14, "m", [][]float64{{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadBinFrame(); err != nil || f.ID != 14 || f.Err != "" || len(f.Scores) != 1 {
		t.Fatalf("bin frame after errors: %+v, %v", f, err)
	}
}

// TestBinaryFrameChurnBounded is the fill-churn regression at the wire
// level: a tight retrain loop while binary frames hammer the model must
// leave the fill count bounded by the number of generations, not the
// number of requests — each response still internally consistent with
// one generation.
func TestBinaryFrameChurnBounded(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 2})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	ctrl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	const clients = 3
	const window = 8
	stop := make(chan struct{})
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for n := 0; n < clients; n++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Binary(); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			id := uint64(0)
			points := [][]float64{{1, 1}, {3, 3}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < window; i++ {
					id++
					if err := cl.SendBinPredict(id, "m", points); err != nil {
						errc <- err
						return
					}
				}
				for i := 0; i < window; i++ {
					f, err := cl.ReadBinFrame()
					if err != nil {
						errc <- err
						return
					}
					if f.Err != "" {
						if strings.Contains(f.Err, "busy") {
							continue
						}
						errc <- fmt.Errorf("frame %d: %s", f.ID, f.Err)
						return
					}
					if (f.Scores[0] > 0) != (f.Scores[1] > 0) {
						errc <- fmt.Errorf("torn batch: signs differ %v", f.Scores)
						return
					}
					if ratio := f.Scores[1] / f.Scores[0]; ratio < 2.99 || ratio > 3.01 {
						errc <- fmt.Errorf("torn batch: ratio %v for %v", ratio, f.Scores)
						return
					}
				}
			}
		}(cl)
	}

	// Tight synchronous retrain loop: every commit bumps the generation
	// under the hammering clients.
	const retrains = 10
	for i := 0; i < retrains; i++ {
		name := []string{"neg", "pos"}[i%2]
		if _, err := ctrl.Exec(fmt.Sprintf(trainSignFmt, name, "")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Fill accounting: one initial fill, then per retrain at most the
	// post-commit refill plus a churned request's decode+retry. Pre-fix,
	// every request racing a retrain re-filled through the mutex and this
	// count tracked the request rate instead.
	_, fills := m.Plane().Cache().Stats()
	if max := uint64(1 + retrains*(1+fillAttemptsWire)); fills > max {
		t.Fatalf("fill churn did not converge: %d fills for %d retrains (want <= %d)", fills, retrains, max)
	}
}

// fillAttemptsWire mirrors serve's fillAttempts bound for the churn math
// above without exporting it.
const fillAttemptsWire = 2

// TestShowServingE2E checks SHOW SERVING's counters against a workload
// the test itself drove.
func TestShowServingE2E(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedSignSets(t, m)
	addr := startTCP(t, m)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	// The TRAIN commit refilled the cache (1 fill); 5 predicts are hits.
	const preds = 5
	for id := uint64(1); id <= preds; id++ {
		if err := c.SendFrame(id, "PREDICT (1, 1) USING m"); err != nil {
			t.Fatal(err)
		}
		if f, err := c.ReadFrame(); err != nil || f.Err != "" {
			t.Fatalf("frame %d: %+v, %v", id, f, err)
		}
	}
	// And one shed against a saturated fake model name.
	holdA, err := m.Plane().Admit("ghost")
	if err != nil {
		t.Fatal(err)
	}
	holdA.Wait(nil)
	for i := 0; ; i++ {
		_, err := m.Plane().Admit("ghost")
		if err != nil {
			break // saturated: this admission shed
		}
		if i > 1024 {
			t.Fatal("could not saturate ghost's gate")
		}
	}

	body, err := c.Exec("SHOW SERVING;")
	if err != nil {
		t.Fatal(err)
	}
	var mLine, ghostLine string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "model m ") {
			mLine = line
		}
		if strings.HasPrefix(line, "model ghost") {
			ghostLine = line
		}
	}
	if mLine == "" || ghostLine == "" {
		t.Fatalf("SHOW SERVING missing model lines:\n%s", body)
	}
	if !strings.Contains(mLine, fmt.Sprintf("hits=%-6d", preds)) ||
		!strings.Contains(mLine, "fills=1") || !strings.Contains(mLine, "sheds=0") {
		t.Fatalf("m line counters: %q (want hits=%d fills=1 sheds=0)", mLine, preds)
	}
	if !strings.Contains(ghostLine, "sheds=1") {
		t.Fatalf("ghost line counters: %q (want sheds=1)", ghostLine)
	}
	if !strings.Contains(body, "gate inflight=") {
		t.Fatalf("SHOW SERVING missing gate summary:\n%s", body)
	}
}

// TestBinFrameZeroAlloc pins the acceptance contract for the binary
// encoding: the steady-state request path — decode, admit, score, encode
// — performs zero heap allocations.
func TestBinFrameZeroAlloc(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 1})
	seedSignSets(t, m)
	sess := m.NewSession(discard{})
	if err := sess.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
		t.Fatal(err)
	}

	req, err := appendBinRequest(nil, 1, "m", [][]float64{{1, 1}, {3, 3}, {0.5, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	payload := req[4:] // handle takes the payload, the loop strips the length
	b := binSession{plane: m.Plane()}
	if !b.handle(payload, nil) { // warm: fill, scratch, buffers, model memo
		t.Fatal("handle reported teardown")
	}
	if f, err := decodeBinResponse(b.out[4:]); err != nil || f.Err != "" || len(f.Scores) != 3 {
		t.Fatalf("warm-up response: %+v, %v", f, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !b.handle(payload, nil) {
			t.Fatal("handle reported teardown")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state binary frame path allocates %v/op, want 0", allocs)
	}
}

// discard is an io.Writer for sessions whose output nobody reads.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkServingPredictBinary measures the server-side binary frame
// path (decode → admit → score → encode) without TCP, batch sizes 1 and
// 8. Allocations are reported; the CI bench smoke asserts 0 allocs/op.
func BenchmarkServingPredictBinary(b *testing.B) {
	for _, batch := range []int{1, 8} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			m := NewManager(engine.NewCatalog(), Options{Workers: 1})
			seedSignSets(b, m)
			sess := m.NewSession(discard{})
			if err := sess.Exec(fmt.Sprintf(trainSignFmt, "pos", "")); err != nil {
				b.Fatal(err)
			}
			points := make([][]float64, batch)
			for i := range points {
				points[i] = []float64{1, 1}
			}
			req, err := appendBinRequest(nil, 1, "m", points)
			if err != nil {
				b.Fatal(err)
			}
			payload := req[4:]
			bs := binSession{plane: m.Plane()}
			bs.handle(payload, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !bs.handle(payload, nil) {
					b.Fatal("handle reported teardown")
				}
			}
		})
	}
}
