package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"bismarck/internal/engine"
)

// TestConcurrentShardedTrainJobs reuses the 8-client TCP harness for the
// sharded mode: every client keeps submitting `WITH shards=K` ASYNC
// retrains of its own model plus a shared model, interleaved with SHOW
// SHARDS diagnostics and PREDICTs against the shared model. Under -race
// this proves the partitioning scan, the per-shard epoch workers, and the
// epoch-boundary averaging free of data races across concurrent sharded
// jobs; the final ledger and model tables prove no job and no model was
// lost.
func TestConcurrentShardedTrainJobs(t *testing.T) {
	m := NewManager(engine.NewCatalog(), Options{Workers: 4})
	seedPapers(t, m, 300)
	addr := startTCP(t, m)

	// Generation zero of the shared model, itself trained sharded.
	boot, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, shards=2, seed=1 INTO shared"); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	const clients = 8
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*4)

	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", ci, err)
				return
			}
			defer c.Close()

			task := "lr"
			if ci%2 == 1 {
				task = "svm"
			}
			shardBy := "roundrobin"
			if ci%2 == 1 {
				shardBy = "hash"
			}
			own := fmt.Sprintf("own_%d", ci)
			var waits []string

			submit := func(stmt string) {
				body, err := c.Exec(stmt)
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", ci, stmt, err)
					return
				}
				match := jobIDRe.FindStringSubmatch(body)
				if match == nil {
					errs <- fmt.Errorf("client %d: submit gave no job id: %q", ci, body)
					return
				}
				waits = append(waits, match[1])
			}

			for r := 0; r < rounds; r++ {
				k := 2 + 2*(ci%2) // shards=2 or shards=4
				submit(fmt.Sprintf(
					"SELECT vec, label FROM papers TO TRAIN %s WITH epochs=2, shards=%d, shard_by=%s, seed=%d INTO %s ASYNC",
					task, k, shardBy, ci*10+r, own))
				if ci%2 == 0 {
					submit(fmt.Sprintf(
						"SELECT vec, label FROM papers TO TRAIN lr WITH epochs=2, shards=4, seed=%d INTO shared ASYNC",
						100+ci*10+r))
				}
				// SHOW SHARDS is a concurrent read of the shared table while
				// the sharded retrains churn.
				body, err := c.Exec("SHOW SHARDS papers 4")
				if err != nil {
					errs <- fmt.Errorf("client %d show shards: %w", ci, err)
					return
				}
				if !strings.Contains(body, "300 rows over 4 shards") {
					errs <- fmt.Errorf("client %d: bad SHOW SHARDS: %q", ci, body)
					return
				}
				body, err = c.Exec("SELECT * FROM papers TO PREDICT USING shared")
				if err != nil {
					errs <- fmt.Errorf("client %d predict: %w", ci, err)
					return
				}
				if !strings.Contains(body, "predicted 300 rows") {
					errs <- fmt.Errorf("client %d: torn predict: %q", ci, body)
					return
				}
			}
			for _, id := range waits {
				if _, err := c.Exec("WAIT JOB " + id); err != nil {
					errs <- fmt.Errorf("client %d wait %s: %w", ci, id, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Final ledger: every sharded job terminal and done.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body, err := c.Exec("SHOW JOBS")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if !strings.Contains(line, "done") {
			t.Errorf("non-terminal or failed sharded job: %s", line)
		}
	}
	for ci := 0; ci < clients; ci++ {
		if w := readModel(t, m.Catalog(), fmt.Sprintf("own_%d", ci)); len(w) == 0 {
			t.Errorf("own_%d model empty", ci)
		}
	}
	if w := readModel(t, m.Catalog(), "shared"); len(w) == 0 {
		t.Error("shared model empty")
	}
}
