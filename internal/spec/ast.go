// Package spec is the declarative statement layer of Bismarck: a
// hand-written lexer and recursive-descent parser for the SQLFlow-style
// extended-SQL grammar
//
//	SELECT cols FROM table [WHERE ...]
//	TO TRAIN <task> [WITH k=v, ...] [COLUMN ...] [LABEL ...] INTO model;
//
// (plus TO PREDICT / TO EVALUATE forms and the legacy
// SELECT SVMTrain('m','t','vec','label') calls, which lower into the same
// AST), a registry where every task self-describes its constructor, data
// layout, and tunable WITH-parameters, and one trainer-dispatch path that
// maps the uniform WITH knobs — step rule, ordering, parallelism,
// sampling — onto the sequential, parallel, and sampling trainers.
//
// The paper's thesis is that the user-facing interface is a thin,
// orthogonal layer over one unified IGD architecture; this package is that
// layer. Nothing in it knows about any concrete task: tasks plug in by
// calling Register from their own package.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"bismarck/internal/engine"
)

// MetaSuffix marks a model's metadata side table ("<model>__meta"). The
// parser reserves names ending in it and the session layer derives side
// table names and lock keys from it; the constant itself lives in the
// engine (which pairs the tables during crash recovery) — sharing it keeps
// the reservation, the lock aliasing, and the recovery pairing in
// lockstep. ShadowSuffix is the engine's reserved in-flight generation
// suffix, reserved here for the same reason: a user table named like a
// shadow would collide with the crash-atomic save protocol's work files.
const (
	MetaSuffix   = engine.MetaSuffix
	ShadowSuffix = engine.ShadowSuffix
)

// Kind discriminates the statement forms of the grammar.
type Kind int

// Statement kinds.
const (
	// KindTrain is SELECT ... TO TRAIN task ... INTO model.
	KindTrain Kind = iota + 1
	// KindPredict is SELECT ... TO PREDICT ... USING model.
	KindPredict
	// KindEvaluate is SELECT ... TO EVALUATE ... USING model.
	KindEvaluate
	// KindShowTables is SHOW TABLES (or the legacy SELECT Tables()).
	KindShowTables
	// KindShowTasks is SHOW TASKS: list the registered task specs.
	KindShowTasks
	// KindShowModels is SHOW MODELS: list persisted models (tables with a
	// metadata side table).
	KindShowModels
	// KindShowJobs is SHOW JOBS: list background training jobs.
	KindShowJobs
	// KindWaitJob is WAIT JOB <id>: block until the job is terminal.
	KindWaitJob
	// KindCancelJob is CANCEL JOB <id>: cancel a queued/running job.
	KindCancelJob
	// KindShowShards is SHOW SHARDS <table> [k]: report how the table's
	// rows would partition across k shards under each strategy.
	KindShowShards
	// KindPointPredict is the inline scoring form: PREDICT (v1, v2, ...)
	// USING model, or the batched PREDICT VALUES (...), (...) USING model.
	// No FROM table, no view — the feature tuples are in the statement.
	KindPointPredict
	// KindCheckTable is CHECK TABLE <table>: scrub every page of the
	// table's heap on demand, quarantining checksum failures.
	KindCheckTable
	// KindShowScrub is SHOW SCRUB: report per-table page counts and
	// quarantined page ranges from past scrubs and recovery.
	KindShowScrub
	// KindShowServing is SHOW SERVING: the serving plane's admission and
	// cache picture — global gate occupancy plus per-model
	// hits/fills/sheds/queued and the retry-after hint.
	KindShowServing
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTrain:
		return "TRAIN"
	case KindPredict:
		return "PREDICT"
	case KindEvaluate:
		return "EVALUATE"
	case KindShowTables:
		return "SHOW TABLES"
	case KindShowTasks:
		return "SHOW TASKS"
	case KindShowModels:
		return "SHOW MODELS"
	case KindShowJobs:
		return "SHOW JOBS"
	case KindWaitJob:
		return "WAIT JOB"
	case KindCancelJob:
		return "CANCEL JOB"
	case KindShowShards:
		return "SHOW SHARDS"
	case KindPointPredict:
		return "PREDICT"
	case KindCheckTable:
		return "CHECK TABLE"
	case KindShowScrub:
		return "SHOW SCRUB"
	case KindShowServing:
		return "SHOW SERVING"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LitKind discriminates literal values in WITH and WHERE clauses.
type LitKind int

// Literal kinds.
const (
	// LitString is a single-quoted string.
	LitString LitKind = iota + 1
	// LitNumber is an integer or float literal.
	LitNumber
	// LitIdent is a bare word (enum values like shuffle_once).
	LitIdent
)

// Literal is one literal value from the statement text.
type Literal struct {
	Kind  LitKind
	Str   string  // LitString / LitIdent payload
	Num   float64 // LitNumber payload
	IsInt bool    // LitNumber only: the text had no fraction/exponent
	Int   int64   // LitNumber && IsInt payload
}

// StringLit wraps a string as a Literal.
func StringLit(s string) Literal { return Literal{Kind: LitString, Str: s} }

// IntLit wraps an int64 as a Literal.
func IntLit(v int64) Literal {
	return Literal{Kind: LitNumber, Num: float64(v), IsInt: true, Int: v}
}

// FloatLit wraps a float64 as a Literal.
func FloatLit(v float64) Literal { return Literal{Kind: LitNumber, Num: v} }

// IdentLit wraps a bare word as a Literal.
func IdentLit(s string) Literal { return Literal{Kind: LitIdent, Str: s} }

// String renders the literal roughly as it appeared in the source.
func (l Literal) String() string {
	switch l.Kind {
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case LitNumber:
		if l.IsInt {
			return strconv.FormatInt(l.Int, 10)
		}
		return strconv.FormatFloat(l.Num, 'g', -1, 64)
	case LitIdent:
		return l.Str
	}
	return "<nil>"
}

// Text returns the payload of a string-ish literal (string or bare word).
func (l Literal) Text() (string, bool) {
	if l.Kind == LitString || l.Kind == LitIdent {
		return l.Str, true
	}
	return "", false
}

// Param is one key=value pair of a WITH clause.
type Param struct {
	Key string
	Val Literal
}

// Predicate is one `col op literal` comparison of a WHERE clause; the
// clause is the conjunction of its predicates.
type Predicate struct {
	Col string
	Op  string // = != < <= > >=
	Val Literal
}

// Statement is the parsed form of one declarative statement. Both the new
// grammar and the legacy SELECT Func(...) calls produce this AST.
type Statement struct {
	Kind Kind

	// Select clause: projected column names, or ["*"] / empty for all.
	Select []string
	// From is the source table.
	From string
	// Where is the ANDed row filter (empty = all rows).
	Where []Predicate

	// Task is the registry name after TO TRAIN.
	Task string
	// With is the ordered key=value parameter list.
	With []Param
	// Columns is the COLUMN clause: feature/data columns in layout order.
	Columns []string
	// Label is the LABEL clause: the target column.
	Label string
	// Model is the USING model of PREDICT / EVALUATE.
	Model string
	// Into is the destination: the model table for TRAIN, the optional
	// output table for PREDICT.
	Into string
	// Async marks a TRAIN statement submitted as a background job
	// (... INTO model ASYNC); only the server front end can run one.
	Async bool
	// JobID is the job of WAIT JOB / CANCEL JOB.
	JobID int64
	// ShardCount is the optional shard count of SHOW SHARDS (0 = the
	// session's default, typically the core count).
	ShardCount int64
	// Points are the inline feature tuples of KindPointPredict, one slice
	// per scored tuple, all the same arity (ValidatePoints enforces it).
	Points [][]float64
}

// WithValue returns the value of a WITH key, if present.
func (st *Statement) WithValue(key string) (Literal, bool) {
	for _, p := range st.With {
		if p.Key == key {
			return p.Val, true
		}
	}
	return Literal{}, false
}
