package spec

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// seedStatements covers every statement form of the grammar — the extended
// SELECT ... TO forms (with every tail clause), the legacy function calls,
// the SHOW family, and the async-job grammar — plus a handful of
// near-miss inputs that must error without panicking.
var seedStatements = []string{
	// Extended grammar, every clause.
	"SELECT vec, label FROM papers TO TRAIN svm WITH alpha=0.1, epochs=5 COLUMN vec LABEL label INTO m;",
	"SELECT * FROM papers TO TRAIN lr INTO m",
	"select a, b, c from t where x >= 1.5 and y != 'z' to train lasso with mu=0.01 into 'my model';",
	"SELECT * FROM ratings TO TRAIN lmf WITH rows=100, cols=200, rank=10, solver=als INTO f;",
	"SELECT * FROM t TO TRAIN svm WITH order=shuffle_always, parallel=nolock, workers=4 INTO m;",
	"SELECT * FROM t TO TRAIN svm WITH mrs=1000, seed=-3, alpha=1e-2 INTO m;",
	"SELECT * FROM t TO PREDICT USING m;",
	"SELECT * FROM t TO PREDICT WITH threshold=0.25 INTO scored USING m;",
	"SELECT * FROM t TO EVALUATE USING 'm';",
	// Async-job grammar.
	"SELECT vec, label FROM papers TO TRAIN svm WITH epochs=50 INTO m ASYNC;",
	"SELECT * FROM t TO TRAIN lr INTO m ASYNC",
	"SHOW JOBS;",
	"WAIT JOB 1;",
	"WAIT JOB 0;",
	"CANCEL JOB 42;",
	// SHOW family.
	"SHOW TABLES;",
	"SHOW TASKS;",
	"SHOW MODELS;",
	// Sharded-training grammar.
	"SELECT vec, label FROM papers TO TRAIN lr WITH shards=4, epochs=5 INTO m;",
	"SELECT * FROM t TO TRAIN svm WITH shards=2, shard_by=hash INTO m ASYNC;",
	"SHOW SHARDS forest;",
	"SHOW SHARDS 'my table' 8;",
	// Distributed-executor grammar (the address list is a quoted string;
	// knob-level validation runs at bind time, so these only parse here).
	"SELECT vec, label FROM papers TO TRAIN lr WITH executors='127.0.0.1:4053,127.0.0.1:4054', epochs=5 INTO m;",
	"SELECT * FROM t TO TRAIN svm WITH executors='h1:1234', shards=4, shard_by=hash INTO m ASYNC;",
	"SELECT * FROM t TO TRAIN svm WITH executors='no-port' INTO m;",
	// Inline point-PREDICT grammar.
	"PREDICT (1.5, 2.5) USING m;",
	"PREDICT (1) USING 'my model';",
	"predict (-0.5, +3, 1e-2) using m",
	"PREDICT VALUES (1, 2), (3, 4), (5, 6) USING m;",
	"PREDICT VALUES (0.5) USING m;",
	// Point-PREDICT near-misses that must error cleanly.
	"PREDICT () USING m;",
	"PREDICT VALUES () USING m;",
	"PREDICT VALUES (1, 2), (3) USING m;",
	"PREDICT (1, 2);",
	"PREDICT USING m;",
	"PREDICT ('a', 'b') USING m;",
	"PREDICT (1, 2) USING m__meta;",
	"SELECT * FROM t TO PREDICT VALUES (1, 2) USING m;",
	// Legacy calls.
	"SELECT SVMTrain('m', 'papers', 'vec', 'label');",
	"SELECT LRTrain('m', 'papers', 'vec', 'label');",
	"SELECT LMFTrain('m', 'ratings', 100, 200, 10);",
	"SELECT CRFTrain('m', 'conll', 8000, 9);",
	"SELECT Predict('m', 'papers', 'vec');",
	"SELECT Tables();",
	// Lexical corners: comments, escapes, '' quoting, signed numbers.
	"-- just a comment\nSHOW TABLES;",
	"SELECT * FROM t TO TRAIN svm WITH alpha=+0.5 INTO 'it''s';",
	"SELECT * FROM t TO TRAIN svm WITH alpha=-.5 INTO 'a\\'b';",
	"SHOW SERVING;",
	// Near-misses that must error cleanly.
	"SHOW SHARDS;",
	"SHOW SHARDS forest 0;",
	"SHOW SHARDS forest 2.5;",
	"SHOW SHARDS forest -1;",
	"SHOW SHARDS forest 1025;",
	"SHOW SHARDS forest 99999999;",
	"SELECT * FROM t TO PREDICT USING m ASYNC;",
	"WAIT JOB -1;",
	"WAIT JOB x;",
	"CANCEL 3;",
	"SELECT * FROM t TO TRAIN svm;",
	"SELECT * FROM",
	"SELECT * FROM t TO TRAIN svm INTO m INTO n;",
	"SHOW NOTHING;",
	"'unterminated",
	"SELECT 1e999999 FROM t;",
	";;;",
	"",
}

// FuzzParseStatement asserts the lexer+parser never panic and uphold two
// invariants on any input: a nil error implies a non-nil statement with a
// known kind, and SplitStatements always yields pieces the parser can be
// pointed back at without crashing.
func FuzzParseStatement(f *testing.F) {
	for _, s := range seedStatements {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil {
			if st == nil {
				t.Fatalf("Parse(%q) returned nil statement and nil error", src)
			}
			if strings.Contains(st.Kind.String(), "Kind(") {
				t.Fatalf("Parse(%q) produced unknown kind %v", src, st.Kind)
			}
		}
		// Splitting must never panic either, and every piece must be
		// re-parseable (successfully or with a clean error).
		if utf8.ValidString(src) {
			for _, piece := range SplitStatements(src) {
				_, _ = Parse(piece)
			}
		}
	})
}

// TestFuzzSeedsRoundTrip pins the intended verdict of every seed: the
// grammar forms parse, the near-misses error. This keeps the corpus honest
// when the grammar evolves (a seed silently flipping category would weaken
// the fuzz target).
func TestFuzzSeedsRoundTrip(t *testing.T) {
	wantErr := map[string]bool{
		"SHOW SHARDS;":                                true,
		"SHOW SHARDS forest 0;":                       true,
		"SHOW SHARDS forest 2.5;":                     true,
		"SHOW SHARDS forest -1;":                      true,
		"SHOW SHARDS forest 1025;":                    true,
		"SHOW SHARDS forest 99999999;":                true,
		"SELECT * FROM t TO PREDICT USING m ASYNC;":   true,
		"WAIT JOB -1;":                                true,
		"WAIT JOB x;":                                 true,
		"CANCEL 3;":                                   true,
		"SELECT * FROM t TO TRAIN svm;":               true,
		"SELECT * FROM":                               true,
		"SELECT * FROM t TO TRAIN svm INTO m INTO n;": true,
		"SHOW NOTHING;":                               true,
		"'unterminated":                               true,
		"SELECT 1e999999 FROM t;":                     true,
		";;;":                                         true,
		"":                                            true,
		// Point-PREDICT rejections: empty tuple, arity mismatch across a
		// VALUES batch, missing clauses, non-numeric values, reserved
		// names, and VALUES grafted onto the table form.
		"PREDICT () USING m;":                               true,
		"PREDICT VALUES () USING m;":                        true,
		"PREDICT VALUES (1, 2), (3) USING m;":               true,
		"PREDICT (1, 2);":                                   true,
		"PREDICT USING m;":                                  true,
		"PREDICT ('a', 'b') USING m;":                       true,
		"PREDICT (1, 2) USING m__meta;":                     true,
		"SELECT * FROM t TO PREDICT VALUES (1, 2) USING m;": true,
	}
	for _, s := range seedStatements {
		_, err := Parse(s)
		if wantErr[s] && err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
		if !wantErr[s] && err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}
