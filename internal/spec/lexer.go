package spec

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // ( ) , ; * = != < <= > >=
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind  tokKind
	text  string  // ident (as written), symbol, or raw number text
	str   string  // decoded string payload for tokString
	num   float64 // tokNumber payload
	isInt bool
	ival  int64
	pos   int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes one statement. Strings are single-quoted with ” (SQL
// style) or \' as the escaped quote; -- comments run to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n && src[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // '' escape
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("spec: unterminated string starting at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: src[start:i], str: b.String(), pos: start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				(src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E')) {
				i++
			}
			text := src[start:i]
			tk := token{kind: tokNumber, text: text, pos: start}
			if iv, err := strconv.ParseInt(text, 10, 64); err == nil {
				tk.isInt = true
				tk.ival = iv
				tk.num = float64(iv)
			} else if fv, err := strconv.ParseFloat(text, 64); err == nil {
				tk.num = fv
			} else {
				return nil, fmt.Errorf("spec: bad number %q at offset %d", text, start)
			}
			toks = append(toks, tk)
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], pos: start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := src[i : i+2]
				if two == "!=" || two == "<=" || two == ">=" || two == "<>" {
					if two == "<>" {
						two = "!="
					}
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '*', '=', '<', '>', '-', '+':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("spec: unexpected character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// SplitStatements cuts a multi-statement text buffer at ';' boundaries
// using the lexer itself, so semicolons inside quoted strings or behind
// "--" comments never split, and pieces holding no statement text (blank
// or comment-only) are dropped. On a lexical error the whole buffer is
// returned as one piece for Parse to diagnose.
func SplitStatements(text string) []string {
	toks, err := lex(text)
	if err != nil {
		if strings.TrimSpace(text) == "" {
			return nil
		}
		return []string{strings.TrimSpace(text)}
	}
	var out []string
	start := 0
	content := false
	for _, t := range toks {
		switch {
		case t.kind == tokEOF:
			if content {
				out = append(out, strings.TrimSpace(text[start:]))
			}
		case t.kind == tokSymbol && t.text == ";":
			if content {
				out = append(out, strings.TrimSpace(text[start:t.pos+1]))
			}
			start = t.pos + 1
			content = false
		default:
			content = true
		}
	}
	return out
}
