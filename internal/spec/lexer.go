package spec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrUnterminatedString marks the one lexical error where more input can
// still complete the statement: the text ends inside an open string
// literal. Line-based front ends (the REPL, the wire protocol) use it via
// Incomplete to keep reading instead of executing a half-received
// statement.
var ErrUnterminatedString = errors.New("unterminated string literal")

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // ( ) , ; * = != < <= > >=
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind  tokKind
	text  string  // ident (as written), symbol, or raw number text
	str   string  // decoded string payload for tokString
	num   float64 // tokNumber payload
	isInt bool
	ival  int64
	pos   int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes one statement. Strings are single-quoted with ” (SQL
// style) or \' as the escaped quote; -- comments run to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n && src[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // '' escape
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("spec: %w starting at offset %d", ErrUnterminatedString, start)
			}
			toks = append(toks, token{kind: tokString, text: src[start:i], str: b.String(), pos: start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				(src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E')) {
				i++
			}
			text := src[start:i]
			tk := token{kind: tokNumber, text: text, pos: start}
			if iv, err := strconv.ParseInt(text, 10, 64); err == nil {
				tk.isInt = true
				tk.ival = iv
				tk.num = float64(iv)
			} else if fv, err := strconv.ParseFloat(text, 64); err == nil {
				tk.num = fv
			} else {
				return nil, fmt.Errorf("spec: bad number %q at offset %d", text, start)
			}
			toks = append(toks, tk)
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], pos: start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := src[i : i+2]
				if two == "!=" || two == "<=" || two == ">=" || two == "<>" {
					if two == "<>" {
						two = "!="
					}
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '*', '=', '<', '>', '-', '+':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("spec: unexpected character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Incomplete reports whether text ends inside an open string literal —
// i.e. a trailing ';' cannot be a statement terminator yet and the reader
// should keep accumulating lines (or refuse the input outright, as the
// wire client does). Any other state counts as complete: no amount of
// further input repairs a bad character, so executing and reporting the
// error is the right move. The raw string-state scanner decides, not the
// lexer, so an earlier lexical error (which aborts lex before it reaches
// the quote) cannot mask an open string.
func Incomplete(text string) bool {
	var ts TermScanner
	ts.Write(text)
	return ts.inString
}

// Terminated reports whether text ends with a real statement terminator:
// a ';' outside string literals and -- comments, followed only by
// whitespace/comments. Line-based front ends (the REPL, the wire
// protocol, the client) use this instead of a raw suffix check so they
// never cut a statement at a fake boundary (';' as string payload or at
// the end of a comment).
func Terminated(text string) bool {
	var ts TermScanner
	ts.Write(text)
	return ts.Terminated()
}

// TermScanner is the incremental form of Terminated: it tracks
// terminator state across appended chunks in O(chunk) so a line-based
// reader never re-scans its accumulated buffer (a network-facing daemon
// cannot afford a per-line re-lex an attacker controls the length of).
//
// Feed it exactly the bytes appended to the statement buffer, at line
// granularity (including each newline): the lexer's multi-character forms
// (” and \' string escapes, the -- comment opener) never span a line
// break, so per-line scanning matches lexing the whole buffer.
type TermScanner struct {
	inString   bool
	terminated bool
}

// Write feeds one appended chunk (a line plus its newline).
func (t *TermScanner) Write(chunk string) {
	for i := 0; i < len(chunk); i++ {
		c := chunk[i]
		switch {
		case t.inString:
			if c == '\\' && i+1 < len(chunk) && chunk[i+1] == '\'' {
				i++ // \' escape
			} else if c == '\'' {
				if i+1 < len(chunk) && chunk[i+1] == '\'' {
					i++ // '' escape stays inside the string
				} else {
					t.inString = false
				}
			}
		case c == '-' && i+1 < len(chunk) && chunk[i+1] == '-':
			for i < len(chunk) && chunk[i] != '\n' {
				i++ // comment runs to end of line
			}
		case c == '\'':
			t.inString = true
			t.terminated = false
		case c == ';':
			t.terminated = true
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			// whitespace after a ';' keeps it terminal
		default:
			t.terminated = false
		}
	}
}

// Terminated reports whether everything fed so far ends at a statement
// terminator.
func (t *TermScanner) Terminated() bool { return !t.inString && t.terminated }

// Reset clears the scanner for the next statement buffer.
func (t *TermScanner) Reset() { *t = TermScanner{} }

// SplitStatements cuts a multi-statement text buffer at ';' boundaries
// using the lexer itself, so semicolons inside quoted strings or behind
// "--" comments never split, and pieces holding no statement text (blank
// or comment-only) are dropped. On a lexical error the whole buffer is
// returned as one piece for Parse to diagnose.
func SplitStatements(text string) []string {
	toks, err := lex(text)
	if err != nil {
		if strings.TrimSpace(text) == "" {
			return nil
		}
		return []string{strings.TrimSpace(text)}
	}
	var out []string
	start := 0
	content := false
	for _, t := range toks {
		switch {
		case t.kind == tokEOF:
			if content {
				out = append(out, strings.TrimSpace(text[start:]))
			}
		case t.kind == tokSymbol && t.text == ";":
			if content {
				out = append(out, strings.TrimSpace(text[start:t.pos+1]))
			}
			start = t.pos + 1
			content = false
		default:
			content = true
		}
	}
	return out
}
