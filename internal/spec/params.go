package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParamKind types a WITH parameter.
type ParamKind int

// Parameter kinds.
const (
	// PInt is an integer parameter.
	PInt ParamKind = iota + 1
	// PFloat is a float parameter (integer literals are accepted).
	PFloat
	// PString is a free-form string parameter.
	PString
	// PEnum is a string parameter restricted to Enum values.
	PEnum
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case PInt:
		return "int"
	case PFloat:
		return "float"
	case PString:
		return "string"
	case PEnum:
		return "enum"
	}
	return fmt.Sprintf("ParamKind(%d)", int(k))
}

// ParamSpec declares one tunable WITH parameter: its key, type, optional
// default, and (for enums) the allowed values.
type ParamSpec struct {
	Key  string
	Kind ParamKind
	// Default, when non-nil, is bound when the statement omits the key.
	Default *Literal
	// Enum lists the allowed values of a PEnum parameter.
	Enum []string
	// Help is a one-line description shown by SHOW TASKS.
	Help string
}

// IntDefault builds an int ParamSpec with a default value.
func IntDefault(key string, def int64, help string) ParamSpec {
	d := IntLit(def)
	return ParamSpec{Key: key, Kind: PInt, Default: &d, Help: help}
}

// IntParam builds a required-or-inferred int ParamSpec (no default).
func IntParam(key, help string) ParamSpec {
	return ParamSpec{Key: key, Kind: PInt, Help: help}
}

// FloatDefault builds a float ParamSpec with a default value.
func FloatDefault(key string, def float64, help string) ParamSpec {
	d := FloatLit(def)
	return ParamSpec{Key: key, Kind: PFloat, Default: &d, Help: help}
}

// FloatParam builds a float ParamSpec without a default.
func FloatParam(key, help string) ParamSpec {
	return ParamSpec{Key: key, Kind: PFloat, Help: help}
}

// StringParam builds a free-form string ParamSpec without a default
// (absent binds to ""). For values an identifier cannot spell — host:port
// lists, paths — written as quoted strings in the WITH clause.
func StringParam(key, help string) ParamSpec {
	return ParamSpec{Key: key, Kind: PString, Help: help}
}

// EnumParam builds a PEnum ParamSpec whose default is the first value.
func EnumParam(key string, values []string, help string) ParamSpec {
	d := IdentLit(values[0])
	return ParamSpec{Key: key, Kind: PEnum, Default: &d, Enum: values, Help: help}
}

// Params holds the bound, type-checked WITH parameters of one statement.
type Params map[string]Literal

// Has reports whether the key was bound (explicitly or by default).
func (p Params) Has(key string) bool { _, ok := p[key]; return ok }

// Int returns the key's integer value (0 when absent).
func (p Params) Int(key string) int { return int(p[key].Int) }

// Float returns the key's float value (0 when absent).
func (p Params) Float(key string) float64 { return p[key].Num }

// Str returns the key's string value ("" when absent).
func (p Params) Str(key string) string { return p[key].Str }

// Strings renders the bound params as a sorted, canonical key=value map,
// used to persist model metadata.
func (p Params) Strings() map[string]string {
	out := make(map[string]string, len(p))
	for k, v := range p {
		switch v.Kind {
		case LitNumber:
			if v.IsInt {
				out[k] = strconv.FormatInt(v.Int, 10)
			} else {
				out[k] = strconv.FormatFloat(v.Num, 'g', -1, 64)
			}
		default:
			out[k] = v.Str
		}
	}
	return out
}

// checkLiteral type-checks one literal against a spec, normalizing enum /
// string idents.
func checkLiteral(s ParamSpec, v Literal) (Literal, error) {
	switch s.Kind {
	case PInt:
		if v.Kind != LitNumber || !v.IsInt {
			return v, fmt.Errorf("spec: parameter %q wants an integer, got %s", s.Key, v)
		}
		return v, nil
	case PFloat:
		if v.Kind != LitNumber {
			return v, fmt.Errorf("spec: parameter %q wants a number, got %s", s.Key, v)
		}
		return v, nil
	case PString:
		if _, ok := v.Text(); !ok {
			return v, fmt.Errorf("spec: parameter %q wants a string, got %s", s.Key, v)
		}
		return v, nil
	case PEnum:
		txt, ok := v.Text()
		if !ok {
			return v, fmt.Errorf("spec: parameter %q wants one of %s, got %s",
				s.Key, strings.Join(s.Enum, "|"), v)
		}
		txt = strings.ToLower(txt)
		for _, e := range s.Enum {
			if txt == e {
				return IdentLit(txt), nil
			}
		}
		return v, fmt.Errorf("spec: parameter %q wants one of %s, got %q",
			s.Key, strings.Join(s.Enum, "|"), txt)
	}
	return v, fmt.Errorf("spec: parameter %q has unknown kind", s.Key)
}

// BindParams type-checks the given WITH pairs against the specs and fills
// defaults. Unknown keys are an error listing the valid ones.
func BindParams(specs []ParamSpec, with []Param) (Params, error) {
	byKey := make(map[string]ParamSpec, len(specs))
	for _, s := range specs {
		byKey[s.Key] = s
	}
	out := make(Params, len(specs))
	for _, pr := range with {
		s, ok := byKey[pr.Key]
		if !ok {
			return nil, fmt.Errorf("spec: unknown parameter %q (valid: %s)",
				pr.Key, strings.Join(paramKeys(specs), ", "))
		}
		v, err := checkLiteral(s, pr.Val)
		if err != nil {
			return nil, err
		}
		out[pr.Key] = v
	}
	for _, s := range specs {
		if _, ok := out[s.Key]; !ok && s.Default != nil {
			out[s.Key] = *s.Default
		}
	}
	return out, nil
}

// RebindStrings re-binds persisted key=value strings (model metadata)
// against the specs, recovering typed Params.
func RebindStrings(specs []ParamSpec, kv map[string]string) (Params, error) {
	with := make([]Param, 0, len(kv))
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		raw := kv[k]
		var lit Literal
		if iv, err := strconv.ParseInt(raw, 10, 64); err == nil {
			lit = IntLit(iv)
		} else if fv, err := strconv.ParseFloat(raw, 64); err == nil {
			lit = FloatLit(fv)
		} else {
			lit = IdentLit(raw)
		}
		with = append(with, Param{Key: k, Val: lit})
	}
	return BindParams(specs, with)
}

func paramKeys(specs []ParamSpec) []string {
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	sort.Strings(keys)
	return keys
}
