package spec

import (
	"fmt"
	"strings"
	"testing"
)

func lrLikeSpecs() []ParamSpec {
	return []ParamSpec{
		IntParam("dim", "feature dimension"),
		FloatDefault("mu", 0.5, "regularization"),
		EnumParam("kernel", []string{"linear", "poly"}, "kernel"),
	}
}

func TestBindParamsDefaultsAndTypes(t *testing.T) {
	p, err := BindParams(lrLikeSpecs(), []Param{{Key: "dim", Val: IntLit(54)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("dim") != 54 {
		t.Fatalf("dim: %d", p.Int("dim"))
	}
	if p.Float("mu") != 0.5 {
		t.Fatalf("mu default: %g", p.Float("mu"))
	}
	if p.Str("kernel") != "linear" {
		t.Fatalf("kernel default: %q", p.Str("kernel"))
	}
	// Floats accept integer literals.
	p, err = BindParams(lrLikeSpecs(), []Param{{Key: "mu", Val: IntLit(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Float("mu") != 2 {
		t.Fatalf("mu: %g", p.Float("mu"))
	}
}

func TestBindParamsErrors(t *testing.T) {
	cases := []struct {
		with []Param
		want string
	}{
		{[]Param{{Key: "nope", Val: IntLit(1)}}, "unknown parameter"},
		{[]Param{{Key: "dim", Val: FloatLit(1.5)}}, "wants an integer"},
		{[]Param{{Key: "dim", Val: StringLit("ten")}}, "wants an integer"},
		{[]Param{{Key: "mu", Val: StringLit("a lot")}}, "wants a number"},
		{[]Param{{Key: "kernel", Val: IdentLit("rbf")}}, "wants one of linear|poly"},
		{[]Param{{Key: "kernel", Val: IntLit(3)}}, "wants one of"},
	}
	for _, c := range cases {
		if _, err := BindParams(lrLikeSpecs(), c.with); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Fatalf("%+v: error %v does not mention %q", c.with, err, c.want)
		}
	}
}

func TestRebindStringsRoundTrip(t *testing.T) {
	p, err := BindParams(lrLikeSpecs(), []Param{
		{Key: "dim", Val: IntLit(7)},
		{Key: "mu", Val: FloatLit(0.25)},
		{Key: "kernel", Val: IdentLit("poly")},
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := RebindStrings(lrLikeSpecs(), p.Strings())
	if err != nil {
		t.Fatal(err)
	}
	if back.Int("dim") != 7 || back.Float("mu") != 0.25 || back.Str("kernel") != "poly" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestSplitKnobsConflicts(t *testing.T) {
	conflicts := [][]Param{
		{{Key: KnobMRS, Val: IntLit(10)}, {Key: KnobReservoir, Val: IntLit(10)}},
		{{Key: KnobMRS, Val: IntLit(10)}, {Key: KnobParallel, Val: IdentLit("nolock")}},
		{{Key: KnobSolver, Val: IdentLit("irls")}, {Key: KnobParallel, Val: IdentLit("lock")}},
	}
	for _, with := range conflicts {
		if _, _, err := SplitKnobs(with); err == nil {
			t.Fatalf("%+v: expected a conflict error", with)
		}
	}
	// Task-specific keys pass through untouched.
	k, rest, err := SplitKnobs([]Param{
		{Key: KnobAlpha, Val: FloatLit(0.3)},
		{Key: "rank", Val: IntLit(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Alpha != 0.3 {
		t.Fatalf("alpha: %g", k.Alpha)
	}
	if len(rest) != 1 || rest[0].Key != "rank" {
		t.Fatalf("rest: %+v", rest)
	}
}

// TestSplitKnobsExecutors covers the distributed-training knob: address
// list parsing, composition with shards=K, and the conflict/reject rules
// it shares with the in-process sharded mode.
func TestSplitKnobsExecutors(t *testing.T) {
	k, _, err := SplitKnobs([]Param{
		{Key: KnobExecutors, Val: StringLit("127.0.0.1:4053, 127.0.0.1:4054")},
		{Key: KnobShards, Val: IntLit(4)},
		{Key: KnobShardBy, Val: IdentLit("hash")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Executors) != 2 || k.Executors[0] != "127.0.0.1:4053" || k.Executors[1] != "127.0.0.1:4054" {
		t.Fatalf("executors: %v", k.Executors)
	}
	if k.Shards != 4 {
		t.Fatalf("shards: %d", k.Shards)
	}

	// shard_by with executors alone is legal (the coordinator still
	// partitions locally before shipping).
	if _, _, err := SplitKnobs([]Param{
		{Key: KnobExecutors, Val: StringLit("h:1")},
		{Key: KnobShardBy, Val: IdentLit("hash")},
	}); err != nil {
		t.Fatal(err)
	}

	rejects := [][]Param{
		// Malformed address lists.
		{{Key: KnobExecutors, Val: StringLit("no-port")}},
		{{Key: KnobExecutors, Val: StringLit("h:0")}},
		{{Key: KnobExecutors, Val: StringLit("h:70000")}},
		{{Key: KnobExecutors, Val: StringLit("h:x")}},
		{{Key: KnobExecutors, Val: StringLit(":4053")}},
		{{Key: KnobExecutors, Val: StringLit("h:1,,h:2")}},
		{{Key: KnobExecutors, Val: StringLit("h:1,h:1")}},
		// Conflicts with the other training modes, same as shards.
		{{Key: KnobExecutors, Val: StringLit("h:1")}, {Key: KnobParallel, Val: IdentLit("lock")}},
		{{Key: KnobExecutors, Val: StringLit("h:1")}, {Key: KnobMRS, Val: IntLit(10)}},
		{{Key: KnobExecutors, Val: StringLit("h:1")}, {Key: KnobReservoir, Val: IntLit(10)}},
		{{Key: KnobExecutors, Val: StringLit("h:1")}, {Key: KnobWorkers, Val: IntLit(4)}},
		{{Key: KnobExecutors, Val: StringLit("h:1")}, {Key: KnobSolver, Val: IdentLit("irls")}},
	}
	for _, with := range rejects {
		if _, _, err := SplitKnobs(with); err == nil {
			t.Fatalf("%+v: expected an error", with)
		}
	}
}

// TestParseExecutorsLimit pins the MaxExecutors cap.
func TestParseExecutorsLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxExecutors; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "h:%d", i+1)
	}
	if _, err := ParseExecutors(sb.String()); err == nil {
		t.Fatalf("%d executors must exceed the cap", MaxExecutors+1)
	}
}

// TestValidateShardCountUnified pins the single-place bounds rule all
// three entry points (parser, knobs, SHOW SHARDS execution) share.
func TestValidateShardCountUnified(t *testing.T) {
	for _, bad := range []int64{0, -1, MaxShards + 1} {
		if err := ValidateShardCount(bad); err == nil {
			t.Fatalf("ValidateShardCount(%d) must fail", bad)
		}
	}
	for _, ok := range []int64{1, 2, MaxShards} {
		if err := ValidateShardCount(ok); err != nil {
			t.Fatalf("ValidateShardCount(%d): %v", ok, err)
		}
	}
}
