package spec

import (
	"strings"
	"testing"
)

func lrLikeSpecs() []ParamSpec {
	return []ParamSpec{
		IntParam("dim", "feature dimension"),
		FloatDefault("mu", 0.5, "regularization"),
		EnumParam("kernel", []string{"linear", "poly"}, "kernel"),
	}
}

func TestBindParamsDefaultsAndTypes(t *testing.T) {
	p, err := BindParams(lrLikeSpecs(), []Param{{Key: "dim", Val: IntLit(54)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("dim") != 54 {
		t.Fatalf("dim: %d", p.Int("dim"))
	}
	if p.Float("mu") != 0.5 {
		t.Fatalf("mu default: %g", p.Float("mu"))
	}
	if p.Str("kernel") != "linear" {
		t.Fatalf("kernel default: %q", p.Str("kernel"))
	}
	// Floats accept integer literals.
	p, err = BindParams(lrLikeSpecs(), []Param{{Key: "mu", Val: IntLit(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Float("mu") != 2 {
		t.Fatalf("mu: %g", p.Float("mu"))
	}
}

func TestBindParamsErrors(t *testing.T) {
	cases := []struct {
		with []Param
		want string
	}{
		{[]Param{{Key: "nope", Val: IntLit(1)}}, "unknown parameter"},
		{[]Param{{Key: "dim", Val: FloatLit(1.5)}}, "wants an integer"},
		{[]Param{{Key: "dim", Val: StringLit("ten")}}, "wants an integer"},
		{[]Param{{Key: "mu", Val: StringLit("a lot")}}, "wants a number"},
		{[]Param{{Key: "kernel", Val: IdentLit("rbf")}}, "wants one of linear|poly"},
		{[]Param{{Key: "kernel", Val: IntLit(3)}}, "wants one of"},
	}
	for _, c := range cases {
		if _, err := BindParams(lrLikeSpecs(), c.with); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Fatalf("%+v: error %v does not mention %q", c.with, err, c.want)
		}
	}
}

func TestRebindStringsRoundTrip(t *testing.T) {
	p, err := BindParams(lrLikeSpecs(), []Param{
		{Key: "dim", Val: IntLit(7)},
		{Key: "mu", Val: FloatLit(0.25)},
		{Key: "kernel", Val: IdentLit("poly")},
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := RebindStrings(lrLikeSpecs(), p.Strings())
	if err != nil {
		t.Fatal(err)
	}
	if back.Int("dim") != 7 || back.Float("mu") != 0.25 || back.Str("kernel") != "poly" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestSplitKnobsConflicts(t *testing.T) {
	conflicts := [][]Param{
		{{Key: KnobMRS, Val: IntLit(10)}, {Key: KnobReservoir, Val: IntLit(10)}},
		{{Key: KnobMRS, Val: IntLit(10)}, {Key: KnobParallel, Val: IdentLit("nolock")}},
		{{Key: KnobSolver, Val: IdentLit("irls")}, {Key: KnobParallel, Val: IdentLit("lock")}},
	}
	for _, with := range conflicts {
		if _, _, err := SplitKnobs(with); err == nil {
			t.Fatalf("%+v: expected a conflict error", with)
		}
	}
	// Task-specific keys pass through untouched.
	k, rest, err := SplitKnobs([]Param{
		{Key: KnobAlpha, Val: FloatLit(0.3)},
		{Key: "rank", Val: IntLit(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Alpha != 0.3 {
		t.Fatalf("alpha: %g", k.Alpha)
	}
	if len(rest) != 1 || rest[0].Key != "rank" {
		t.Fatalf("rest: %+v", rest)
	}
}
